"""Recording helpers: fold simulation results into a registry.

These helpers define the repo's metric-name schema in one place, so the
scheduler, the reliability campaign and the CLI all emit the same
series.  They only *read* the result objects handed to them (duck
typed), keeping :mod:`repro.telemetry` import-light — the scheduler
imports this module lazily, only when a caller actually passes a
registry, so instrumentation can never perturb the model.

Schema (all labels are optional-by-construction; ``block`` is the
ResBlock, ``unit`` the hardware unit):

* ``repro_schedule_runs_total{block}`` — instrumented schedule builds;
* ``repro_schedule_cycles_total{block}`` — end-to-end latency cycles;
* ``repro_schedule_unit_busy_cycles_total{block,unit}`` — per-unit
  event time on the timeline;
* ``repro_schedule_sa_active_cycles_total{block}`` — useful MAC
  streaming cycles;
* ``repro_schedule_sa_passes_total{block}`` — SA passes issued;
* ``repro_schedule_memsys_stall_cycles_total{block}`` — SA cycles
  exposed to off-chip weight fetches;
* ``repro_reliability_trials_total{site,mode}`` /
  ``..._injected_total`` / ``..._detections_total`` /
  ``..._corrections_total`` / ``..._silent_total`` — fault-campaign
  outcome counters.

Cluster schema (:mod:`repro.cluster`; ``tenant`` is the traffic
source, ``pool`` the device pool, ``policy`` the router policy):

* ``repro_cluster_requests_offered_total{tenant}`` — arrivals;
* ``repro_cluster_requests_total{tenant,outcome}`` — final outcomes
  (``completed`` / ``shed`` / ``rejected`` / ``expired``);
* ``repro_cluster_slo_attained_total{tenant}`` — completions within
  the tenant's SLO;
* ``repro_cluster_latency_us{tenant}`` — completion-latency histogram;
* ``repro_cluster_routing_decisions_total{pool,policy}`` — requests
  the router sent to each pool;
* ``repro_cluster_shed_total`` — requests the SLO router refused;
* ``repro_cluster_autoscaler_actions_total{pool,direction,reason}`` —
  scale-ups/downs by trigger signal;
* ``repro_cluster_batches_total{pool}`` /
  ``..._batch_requests_total{pool}`` / ``..._batch_tokens_total{pool}``
  — per-pool dispatch accounting;
* ``repro_cluster_weight_cache_lookups_total{pool,outcome}`` —
  ResBlock weight-cache hits/misses;
* ``repro_cluster_queue_depth{pool}`` / ``repro_cluster_devices{pool}``
  — timeseries of queue pressure and replica count;
* gauges set at summary time: ``repro_cluster_slo_attainment{tenant}``
  (plus the unlabeled cluster-wide series),
  ``repro_cluster_pool_busy_fraction{pool}``,
  ``repro_cluster_throughput_rps``, ``repro_cluster_makespan_us``.

Decode schema (:mod:`repro.decode`; ``policy`` is the interleaving
policy, ``outcome`` a KV-residency hit/miss):

* ``repro_decode_streams_total{outcome}`` — stream outcomes
  (``completed`` / ``rejected``);
* ``repro_decode_steps_total{policy}`` — per-token decode steps run;
* ``repro_decode_batches_total{policy}`` /
  ``repro_decode_prefill_chunks_total{policy}`` — dispatch accounting;
* ``repro_decode_tokens_total`` — tokens emitted (prefill first token
  plus decode steps);
* ``repro_decode_kv_lookups_total{outcome}`` — page-granular KV
  residency reads (hits + misses == lookups, by construction);
* ``repro_decode_kv_refetch_cycles_total`` — off-chip cycles re-reading
  evicted K/V pages;
* ``repro_decode_prefill_latency_us`` — arrival-to-first-token
  histogram;
* ``repro_decode_token_latency_us`` — per-step inter-token histogram;
* gauges set at summary time: ``repro_decode_tokens_per_s``,
  ``repro_decode_kv_hit_rate``, ``repro_decode_makespan_us``.

Compress schema (:mod:`repro.compress`; ``spec`` is the compression
spec label — ``dense``, ``circ8``, ``2:4`` — and ``scheme`` its
family):

* ``repro_compress_points_total{scheme}`` — sweep points measured;
* ``repro_compress_layer_cycles_total{spec}`` — compressed MHA + FFN
  layer cycles at the swept operating point;
* ``repro_compress_index_overhead_cycles_total{spec}`` — paid
  circulant row-generator / N:M index-decode cycles;
* ``repro_compress_skipped_cycles_total{spec}`` — SA active cycles the
  sparsity skipped vs the dense schedule;
* ``repro_compress_memsys_stall_cycles_total{spec}`` — layer memsys
  stall at the swept point;
* gauges set per point: ``repro_compress_cycle_savings_frac{spec}``,
  ``repro_compress_weight_bytes_ratio{spec}``,
  ``repro_compress_layers_resident{spec}``, and — when the sweep
  measured them — ``repro_compress_bleu{spec}`` and
  ``repro_compress_throughput_rps{spec}``.

Serving schema (:mod:`repro.serving`; ``outcome``/``reason`` label the
request disposition):

* ``repro_serving_requests_offered_total`` /
  ``repro_serving_requests_total{outcome}`` /
  ``repro_serving_retries_total`` — request accounting;
* ``repro_serving_batches_total`` / ``..._batch_requests_total`` /
  ``..._batch_tokens_total`` — dispatch accounting;
* ``repro_serving_device_failures_total`` /
  ``repro_serving_corrupted_total`` /
  ``repro_serving_reload_stall_cycles_total`` — fault handling;
* ``repro_serving_weight_cache_lookups_total{outcome}`` — ResBlock
  weight-cache hits/misses;
* ``repro_serving_latency_us`` / ``repro_serving_queue_depth`` —
  latency histogram and queue-pressure series;
* gauges set at summary time: ``repro_serving_makespan_us``,
  ``repro_serving_device_busy_fraction``,
  ``repro_serving_sa_utilization``, ``repro_serving_occupancy``.

Observability schema (:mod:`repro.obs`; ``tenant`` labels the traffic
source and ``window`` the burn-rate lookback):

* ``repro_obs_traces_total{status}`` — request traces the collector
  observed, by terminal status;
* ``repro_obs_traces_retained_total`` — traces kept in full by the
  tail-based sampler (violations/retries/sheds always, plus the seeded
  head-sample);
* ``repro_obs_slo_good_total{tenant}`` / ``repro_obs_slo_bad_total{tenant}``
  — terminal request events the SLO monitor scored;
* ``repro_obs_burn_rate{tenant,window}`` — windowed burn-rate
  timeseries (bad fraction over the error budget, long + short
  windows);
* ``repro_obs_alerts_total{tenant}`` — burn-rate alert firings;
* ``repro_obs_alert_active{tenant}`` — 1 while a tenant's alert is
  firing, 0 once the short window clears.

Device-level schema (emitted by the instrumented units themselves):

* ``repro_sa_passes_total`` / ``repro_sa_compute_cycles_total`` /
  ``repro_sa_useful_macs_total`` —
  :class:`repro.core.systolic_array.SystolicArray` pass accounting;
* ``repro_memsys_prefetch_tiles_total`` /
  ``repro_memsys_prefetch_bytes_total`` /
  ``repro_memsys_stall_cycles_total`` —
  :class:`repro.memsys.prefetch.WeightPrefetcher` traffic.

:data:`METRIC_FAMILIES` below is the machine-readable form of this
schema; the statcheck PRC engine proves every emission site in the
package names one of these families, and every family is emitted
somewhere.
"""

from __future__ import annotations

from .registry import MetricsRegistry

#: Scheduler units recorded per block (mirrors core.trace._UNIT_TRACKS).
SCHEDULE_UNITS = ("sa", "softmax", "layernorm", "dram")

#: The canonical metric-family registry — every ``repro_*`` name any
#: module may emit.  Adding an emission site without registering its
#: family here fails ``repro check`` (PRC002); registering a family no
#: site emits warns (PRC003).  Keep sorted.
METRIC_FAMILIES: tuple[str, ...] = (
    "repro_cluster_autoscaler_actions_total",
    "repro_cluster_batch_requests_total",
    "repro_cluster_batch_tokens_total",
    "repro_cluster_batches_total",
    "repro_cluster_devices",
    "repro_cluster_latency_us",
    "repro_cluster_makespan_us",
    "repro_cluster_pool_busy_fraction",
    "repro_cluster_queue_depth",
    "repro_cluster_requests_offered_total",
    "repro_cluster_requests_total",
    "repro_cluster_routing_decisions_total",
    "repro_cluster_shed_total",
    "repro_cluster_slo_attained_total",
    "repro_cluster_slo_attainment",
    "repro_cluster_throughput_rps",
    "repro_cluster_weight_cache_lookups_total",
    "repro_compress_bleu",
    "repro_compress_cycle_savings_frac",
    "repro_compress_index_overhead_cycles_total",
    "repro_compress_layer_cycles_total",
    "repro_compress_layers_resident",
    "repro_compress_memsys_stall_cycles_total",
    "repro_compress_points_total",
    "repro_compress_skipped_cycles_total",
    "repro_compress_throughput_rps",
    "repro_compress_weight_bytes_ratio",
    "repro_decode_batches_total",
    "repro_decode_kv_hit_rate",
    "repro_decode_kv_lookups_total",
    "repro_decode_kv_refetch_cycles_total",
    "repro_decode_makespan_us",
    "repro_decode_prefill_chunks_total",
    "repro_decode_prefill_latency_us",
    "repro_decode_steps_total",
    "repro_decode_streams_total",
    "repro_decode_token_latency_us",
    "repro_decode_tokens_per_s",
    "repro_decode_tokens_total",
    "repro_memsys_prefetch_bytes_total",
    "repro_memsys_prefetch_tiles_total",
    "repro_memsys_stall_cycles_total",
    "repro_obs_alert_active",
    "repro_obs_alerts_total",
    "repro_obs_burn_rate",
    "repro_obs_slo_bad_total",
    "repro_obs_slo_good_total",
    "repro_obs_traces_retained_total",
    "repro_obs_traces_total",
    "repro_reliability_corrections_total",
    "repro_reliability_detections_total",
    "repro_reliability_injected_total",
    "repro_reliability_silent_total",
    "repro_reliability_trials_total",
    "repro_sa_compute_cycles_total",
    "repro_sa_passes_total",
    "repro_sa_useful_macs_total",
    "repro_schedule_cycles_total",
    "repro_schedule_memsys_stall_cycles_total",
    "repro_schedule_runs_total",
    "repro_schedule_sa_active_cycles_total",
    "repro_schedule_sa_passes_total",
    "repro_schedule_unit_busy_cycles_total",
    "repro_serving_batch_requests_total",
    "repro_serving_batch_tokens_total",
    "repro_serving_batches_total",
    "repro_serving_corrupted_total",
    "repro_serving_device_busy_fraction",
    "repro_serving_device_failures_total",
    "repro_serving_latency_us",
    "repro_serving_makespan_us",
    "repro_serving_occupancy",
    "repro_serving_queue_depth",
    "repro_serving_reload_stall_cycles_total",
    "repro_serving_requests_offered_total",
    "repro_serving_requests_total",
    "repro_serving_retries_total",
    "repro_serving_sa_utilization",
    "repro_serving_weight_cache_lookups_total",
)

#: Where each CycleBreakdown field surfaces in telemetry — the last hop
#: of the pricing chain (scheduler unit -> UNIT_PRICING -> breakdown
#: field -> metric family).  ``ideal_cycles`` is MACs / PE count, so it
#: surfaces through the useful-MAC counter rather than a latency family.
CYCLE_FIELD_FAMILIES: dict[str, str] = {
    "active_cycles": "repro_schedule_sa_active_cycles_total",
    "issue_cycles": "repro_schedule_unit_busy_cycles_total",
    "skew_cycles": "repro_schedule_unit_busy_cycles_total",
    "softmax_stall_cycles": "repro_schedule_unit_busy_cycles_total",
    "layernorm_cycles": "repro_schedule_unit_busy_cycles_total",
    "abft_cycles": "repro_schedule_unit_busy_cycles_total",
    "memsys_stall_cycles": "repro_schedule_memsys_stall_cycles_total",
    "total_cycles": "repro_schedule_cycles_total",
    "ideal_cycles": "repro_sa_useful_macs_total",
}


def record_schedule(result, registry: MetricsRegistry) -> None:
    """Record one :class:`~repro.core.scheduler.ScheduleResult`."""
    block = result.block
    registry.counter(
        "repro_schedule_runs_total",
        "Instrumented schedule builds",
    ).inc(1, block=block)
    registry.counter(
        "repro_schedule_cycles_total",
        "End-to-end ResBlock latency in cycles",
    ).inc(result.total_cycles, block=block)
    busy = registry.counter(
        "repro_schedule_unit_busy_cycles_total",
        "Cycles each hardware unit spends busy on the timeline",
    )
    for unit in SCHEDULE_UNITS:
        cycles = result.unit_busy_cycles(unit)
        if cycles:
            busy.inc(cycles, block=block, unit=unit)
    registry.counter(
        "repro_schedule_sa_active_cycles_total",
        "Useful MAC-streaming cycles on the systolic array",
    ).inc(result.sa_active_cycles, block=block)
    registry.counter(
        "repro_schedule_sa_passes_total",
        "Systolic-array passes issued",
    ).inc(len(result.sa_events), block=block)
    if result.memsys_stall_cycles:
        registry.counter(
            "repro_schedule_memsys_stall_cycles_total",
            "SA cycles exposed to off-chip weight-tile fetches",
        ).inc(result.memsys_stall_cycles, block=block)


def record_campaign(result, registry: MetricsRegistry) -> None:
    """Record a :class:`~repro.reliability.campaign.CampaignResult`."""
    trials = registry.counter(
        "repro_reliability_trials_total",
        "Fault-campaign trials run",
    )
    injected = registry.counter(
        "repro_reliability_injected_total",
        "Trials in which a fault was actually injected",
    )
    detections = registry.counter(
        "repro_reliability_detections_total",
        "Injected faults flagged by a checker (ABFT syndrome)",
    )
    corrections = registry.counter(
        "repro_reliability_corrections_total",
        "Injected faults repaired to the golden output",
    )
    silent = registry.counter(
        "repro_reliability_silent_total",
        "Injected faults that corrupted the output undetected",
    )
    for outcome in result.outcomes:
        labels = {"site": outcome.site, "mode": outcome.mode}
        trials.inc(1, **labels)
        if outcome.injected:
            injected.inc(1, **labels)
        if outcome.detected:
            detections.inc(1, **labels)
        if outcome.corrected:
            corrections.inc(1, **labels)
        if outcome.silent:
            silent.inc(1, **labels)


def record_decode(
    registry: MetricsRegistry,
    *,
    policy: str,
    metrics,
    prefill_latencies_us: list,
    token_gaps_us: list,
    kv_hits: int,
    kv_misses: int,
) -> None:
    """Record one mixed prefill/decode run's ``repro_decode_*`` series.

    ``metrics`` is a :class:`~repro.decode.serving.DecodeMetrics` (duck
    typed).  Defines the decode schema (see the module docstring) in
    one place, mirroring :func:`record_cluster`.
    """
    streams = registry.counter(
        "repro_decode_streams_total",
        "Generation streams by final outcome",
    )
    if metrics.completed:
        streams.inc(metrics.completed, outcome="completed")
    if metrics.rejected:
        streams.inc(metrics.rejected, outcome="rejected")
    if metrics.decode_steps:
        registry.counter(
            "repro_decode_steps_total",
            "Per-token decode steps run",
        ).inc(metrics.decode_steps, policy=policy)
    if metrics.decode_batches:
        registry.counter(
            "repro_decode_batches_total",
            "Decode-step batch dispatches",
        ).inc(metrics.decode_batches, policy=policy)
    if metrics.prefill_chunks:
        registry.counter(
            "repro_decode_prefill_chunks_total",
            "Prefill dispatches (whole prompts or 64-row chunks)",
        ).inc(metrics.prefill_chunks, policy=policy)
    if metrics.decoded_tokens:
        registry.counter(
            "repro_decode_tokens_total",
            "Tokens emitted (first token per prefill + decode steps)",
        ).inc(metrics.decoded_tokens)
    lookups = registry.counter(
        "repro_decode_kv_lookups_total",
        "Page-granular KV residency reads by outcome",
    )
    if kv_hits:
        lookups.inc(kv_hits, outcome="hit")
    if kv_misses:
        lookups.inc(kv_misses, outcome="miss")
    if metrics.kv_refetch_cycles:
        registry.counter(
            "repro_decode_kv_refetch_cycles_total",
            "Off-chip cycles re-reading evicted K/V pages",
        ).inc(metrics.kv_refetch_cycles)
    prefill_hist = registry.histogram(
        "repro_decode_prefill_latency_us",
        "Arrival-to-first-token latency of completed prefills (us)",
    )
    for value in prefill_latencies_us:
        prefill_hist.observe(value)
    token_hist = registry.histogram(
        "repro_decode_token_latency_us",
        "Inter-token latency of decode steps (us)",
    )
    for value in token_gaps_us:
        token_hist.observe(value)
    registry.gauge(
        "repro_decode_tokens_per_s",
        "Decode-run token throughput over the makespan",
    ).set(metrics.tokens_per_s)
    registry.gauge(
        "repro_decode_kv_hit_rate",
        "Cumulative KV-cache page hit rate of the run",
    ).set(metrics.kv_hit_rate)
    registry.gauge(
        "repro_decode_makespan_us",
        "First arrival to last completion (us)",
    ).set(metrics.makespan_us)


def record_compress(registry: MetricsRegistry, *, point) -> None:
    """Record one compression sweep point's ``repro_compress_*`` series.

    ``point`` is a :class:`~repro.compress.sweep.CompressPoint` (duck
    typed).  Defines the compress schema (see the module docstring) in
    one place, mirroring :func:`record_decode`.
    """
    spec = point.label
    registry.counter(
        "repro_compress_points_total",
        "Compression sweep points measured",
    ).inc(1, scheme=point.spec.scheme)
    registry.counter(
        "repro_compress_layer_cycles_total",
        "Compressed MHA + FFN layer cycles at the swept point",
    ).inc(point.mha_cycles + point.ffn_cycles, spec=spec)
    if point.index_overhead_cycles:
        registry.counter(
            "repro_compress_index_overhead_cycles_total",
            "Paid circulant row-generator / N:M index-decode cycles",
        ).inc(point.index_overhead_cycles, spec=spec)
    if point.skipped_cycles:
        registry.counter(
            "repro_compress_skipped_cycles_total",
            "SA active cycles skipped vs the dense schedule",
        ).inc(point.skipped_cycles, spec=spec)
    if point.memsys_stall_cycles:
        registry.counter(
            "repro_compress_memsys_stall_cycles_total",
            "Layer memsys stall cycles at the swept point",
        ).inc(point.memsys_stall_cycles, spec=spec)
    registry.gauge(
        "repro_compress_cycle_savings_frac",
        "Layer cycle savings vs dense (negative = overhead dominates)",
    ).set(point.cycle_savings_frac, spec=spec)
    registry.gauge(
        "repro_compress_weight_bytes_ratio",
        "Compressed / dense layer weight bytes (metadata included)",
    ).set(point.weight_bytes_ratio, spec=spec)
    registry.gauge(
        "repro_compress_layers_resident",
        "Encoder-layer weight sets fitting the Table II BRAM budget",
    ).set(point.footprint.layers_resident, spec=spec)
    if point.bleu is not None:
        registry.gauge(
            "repro_compress_bleu",
            "BLEU proxy of the compressed NMT model",
        ).set(point.bleu, spec=spec)
    if point.throughput_rps is not None:
        registry.gauge(
            "repro_compress_throughput_rps",
            "Simulated serving throughput with the compressed cost model",
        ).set(point.throughput_rps, spec=spec)


def record_cluster(
    registry: MetricsRegistry,
    *,
    policy: str,
    tenant_offered: dict,
    tenant_outcomes: dict,
    tenant_slo_attained: dict,
    tenant_latencies_us: dict,
    routing_decisions: dict,
    shed: int,
    autoscale_actions: list,
    pool_batches: dict,
    pool_cache: dict,
    pool_depth_samples: dict,
    pool_device_samples: dict,
) -> None:
    """Record one cluster run's raw outcomes into ``registry``.

    Defines the ``repro_cluster_*`` schema (see the module docstring)
    in one place, mirroring :func:`repro.serving.metrics.record_serving`.
    ``pool_batches`` maps pool -> ``(batches, requests, tokens)``
    totals; ``pool_cache`` maps pool -> ``(hits, misses)``.
    """
    offered = registry.counter(
        "repro_cluster_requests_offered_total",
        "Requests each tenant's workload generated",
    )
    outcomes = registry.counter(
        "repro_cluster_requests_total",
        "Requests by tenant and final outcome",
    )
    attained = registry.counter(
        "repro_cluster_slo_attained_total",
        "Requests completed within their tenant's SLO",
    )
    latency = registry.histogram(
        "repro_cluster_latency_us",
        "Arrival-to-completion latency of completed requests (us)",
    )
    for tenant, count in tenant_offered.items():
        offered.inc(count, tenant=tenant)
        for outcome, n in tenant_outcomes[tenant].items():
            if n:
                outcomes.inc(n, tenant=tenant, outcome=outcome)
        if tenant_slo_attained[tenant]:
            attained.inc(tenant_slo_attained[tenant], tenant=tenant)
        for value in tenant_latencies_us[tenant]:
            latency.observe(value, tenant=tenant)
    decisions = registry.counter(
        "repro_cluster_routing_decisions_total",
        "Requests the router sent to each pool",
    )
    for pool, count in routing_decisions.items():
        if count:
            decisions.inc(count, pool=pool, policy=policy)
    registry.counter(
        "repro_cluster_shed_total",
        "Requests the SLO router refused at the door",
    ).inc(shed)
    actions = registry.counter(
        "repro_cluster_autoscaler_actions_total",
        "Autoscaler scale-ups/downs by pool and trigger signal",
    )
    for _, pool, direction, reason in autoscale_actions:
        actions.inc(1, pool=pool, direction=direction, reason=reason)
    batches = registry.counter(
        "repro_cluster_batches_total", "Batches dispatched per pool",
    )
    batch_requests = registry.counter(
        "repro_cluster_batch_requests_total",
        "Requests summed over each pool's batches",
    )
    batch_tokens = registry.counter(
        "repro_cluster_batch_tokens_total",
        "Valid tokens summed over each pool's batches",
    )
    cache = registry.counter(
        "repro_cluster_weight_cache_lookups_total",
        "ResBlock weight-set lookups by pool and outcome",
    )
    depth = registry.series(
        "repro_cluster_queue_depth",
        "Per-pool admission-queue depth at each change",
    )
    devices = registry.series(
        "repro_cluster_devices",
        "Per-pool active replica count at each change",
    )
    for pool, (n_batches, n_requests, n_tokens) in pool_batches.items():
        if n_batches:
            batches.inc(n_batches, pool=pool)
            batch_requests.inc(n_requests, pool=pool)
            batch_tokens.inc(n_tokens, pool=pool)
        hits, misses = pool_cache[pool]
        if hits:
            cache.inc(hits, pool=pool, outcome="hit")
        if misses:
            cache.inc(misses, pool=pool, outcome="miss")
        for ts_us, value in pool_depth_samples[pool]:
            depth.sample(ts_us, value, pool=pool)
        for ts_us, value in pool_device_samples[pool]:
            devices.sample(ts_us, value, pool=pool)
