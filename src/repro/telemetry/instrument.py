"""Recording helpers: fold simulation results into a registry.

These helpers define the repo's metric-name schema in one place, so the
scheduler, the reliability campaign and the CLI all emit the same
series.  They only *read* the result objects handed to them (duck
typed), keeping :mod:`repro.telemetry` import-light — the scheduler
imports this module lazily, only when a caller actually passes a
registry, so instrumentation can never perturb the model.

Schema (all labels are optional-by-construction; ``block`` is the
ResBlock, ``unit`` the hardware unit):

* ``repro_schedule_runs_total{block}`` — instrumented schedule builds;
* ``repro_schedule_cycles_total{block}`` — end-to-end latency cycles;
* ``repro_schedule_unit_busy_cycles_total{block,unit}`` — per-unit
  event time on the timeline;
* ``repro_schedule_sa_active_cycles_total{block}`` — useful MAC
  streaming cycles;
* ``repro_schedule_sa_passes_total{block}`` — SA passes issued;
* ``repro_schedule_memsys_stall_cycles_total{block}`` — SA cycles
  exposed to off-chip weight fetches;
* ``repro_reliability_trials_total{site,mode}`` /
  ``..._injected_total`` / ``..._detections_total`` /
  ``..._corrections_total`` / ``..._silent_total`` — fault-campaign
  outcome counters.
"""

from __future__ import annotations

from .registry import MetricsRegistry

#: Scheduler units recorded per block (mirrors core.trace._UNIT_TRACKS).
SCHEDULE_UNITS = ("sa", "softmax", "layernorm", "dram")


def record_schedule(result, registry: MetricsRegistry) -> None:
    """Record one :class:`~repro.core.scheduler.ScheduleResult`."""
    block = result.block
    registry.counter(
        "repro_schedule_runs_total",
        "Instrumented schedule builds",
    ).inc(1, block=block)
    registry.counter(
        "repro_schedule_cycles_total",
        "End-to-end ResBlock latency in cycles",
    ).inc(result.total_cycles, block=block)
    busy = registry.counter(
        "repro_schedule_unit_busy_cycles_total",
        "Cycles each hardware unit spends busy on the timeline",
    )
    for unit in SCHEDULE_UNITS:
        cycles = result.unit_busy_cycles(unit)
        if cycles:
            busy.inc(cycles, block=block, unit=unit)
    registry.counter(
        "repro_schedule_sa_active_cycles_total",
        "Useful MAC-streaming cycles on the systolic array",
    ).inc(result.sa_active_cycles, block=block)
    registry.counter(
        "repro_schedule_sa_passes_total",
        "Systolic-array passes issued",
    ).inc(len(result.sa_events), block=block)
    if result.memsys_stall_cycles:
        registry.counter(
            "repro_schedule_memsys_stall_cycles_total",
            "SA cycles exposed to off-chip weight-tile fetches",
        ).inc(result.memsys_stall_cycles, block=block)


def record_campaign(result, registry: MetricsRegistry) -> None:
    """Record a :class:`~repro.reliability.campaign.CampaignResult`."""
    trials = registry.counter(
        "repro_reliability_trials_total",
        "Fault-campaign trials run",
    )
    injected = registry.counter(
        "repro_reliability_injected_total",
        "Trials in which a fault was actually injected",
    )
    detections = registry.counter(
        "repro_reliability_detections_total",
        "Injected faults flagged by a checker (ABFT syndrome)",
    )
    corrections = registry.counter(
        "repro_reliability_corrections_total",
        "Injected faults repaired to the golden output",
    )
    silent = registry.counter(
        "repro_reliability_silent_total",
        "Injected faults that corrupted the output undetected",
    )
    for outcome in result.outcomes:
        labels = {"site": outcome.site, "mode": outcome.mode}
        trials.inc(1, **labels)
        if outcome.injected:
            injected.inc(1, **labels)
        if outcome.detected:
            detections.inc(1, **labels)
        if outcome.corrected:
            corrections.inc(1, **labels)
        if outcome.silent:
            silent.inc(1, **labels)
