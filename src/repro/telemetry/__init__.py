"""repro.telemetry — unified metrics registry, profiler, perf gate.

The observability backbone (docs/ARCHITECTURE.md §13):

* :class:`MetricsRegistry` and its instruments
  (:mod:`~repro.telemetry.registry`) — label-aware counters, gauges,
  fixed-bucket histograms with exact p50/p95/p99, and timestamped
  series, threaded through the scheduler, the memory system, the
  reliability campaign and the serving simulator;
* exporters (:mod:`~repro.telemetry.exporters`) — Prometheus text
  exposition, structured JSON, Chrome-trace counter tracks;
* the cycle-attribution profiler (:mod:`~repro.telemetry.profiler`)
  behind ``repro profile`` — per-unit self-time/stall tables whose
  totals match the closed-form cycle model exactly, plus
  collapsed-stack output for flamegraph tooling;
* the perf-regression gate (:mod:`~repro.telemetry.benchdiff`) behind
  ``repro bench-diff`` — current ``BENCH_*.json`` headlines vs the
  committed ``benchmarks/baseline.json`` with tolerance bands.
"""

from .benchdiff import (
    DEFAULT_REL_TOL,
    BenchDiffReport,
    DiffRow,
    HeadlineSpec,
    config_fingerprint,
    diff_benchmarks,
    git_sha,
    load_json,
    parse_baseline,
)
from .exporters import (
    timeseries_counter_events,
    to_json,
    to_prometheus_text,
    write_json,
)
from .instrument import record_campaign, record_schedule
from .profiler import (
    ScheduleProfile,
    UnitAttribution,
    collapsed_stacks,
    profile_schedule,
    write_collapsed,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_REL_TOL",
    "BenchDiffReport",
    "Counter",
    "DiffRow",
    "Gauge",
    "HeadlineSpec",
    "Histogram",
    "MetricsRegistry",
    "ScheduleProfile",
    "Timeseries",
    "UnitAttribution",
    "collapsed_stacks",
    "config_fingerprint",
    "diff_benchmarks",
    "git_sha",
    "load_json",
    "parse_baseline",
    "profile_schedule",
    "record_campaign",
    "record_schedule",
    "timeseries_counter_events",
    "to_json",
    "to_prometheus_text",
    "write_collapsed",
    "write_json",
]
