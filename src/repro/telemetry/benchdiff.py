"""Perf-regression gate: current ``BENCH_*.json`` vs a committed baseline.

``benchmarks/baseline.json`` pins the headline numbers a known-good
commit produced (cycle counts, serving throughput/p99, memsys stall
shares) together with a tolerance band and a *direction* per headline:

* ``"lower"`` — smaller is better (cycles, latency); a regression is
  ``current > baseline * (1 + rel_tol)``;
* ``"higher"`` — bigger is better (throughput, hit rate); a regression
  is ``current < baseline * (1 - rel_tol)``;
* ``"either"`` — a tracking number that should simply not move; any
  relative change beyond ``rel_tol`` regresses.

:func:`diff_benchmarks` compares the ``headlines`` section of a bench
artifact (:mod:`benchmarks.conftest` writes one per suite run, stamped
with git SHA / UTC time / config fingerprint) against the baseline and
``repro bench-diff`` exits nonzero when anything regressed or a pinned
headline went missing — with a ``--seed-slowdown`` self-proof mode that
perturbs the current numbers to show the gate actually fails.
"""

from __future__ import annotations

import hashlib
import json
import math
import subprocess
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from typing import Optional

from ..errors import TelemetryError

DIRECTIONS = ("lower", "higher", "either")

#: Default tolerance band when a baseline entry does not set one.
DEFAULT_REL_TOL = 0.05


@dataclass(frozen=True)
class HeadlineSpec:
    """One pinned headline: expected value, direction, tolerance."""

    value: float
    direction: str = "either"
    rel_tol: float = DEFAULT_REL_TOL

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise TelemetryError(
                f"direction {self.direction!r} is not one of {DIRECTIONS}"
            )
        if self.rel_tol < 0:
            raise TelemetryError("rel_tol must be non-negative")


@dataclass(frozen=True)
class DiffRow:
    """Comparison outcome for one headline.

    ``status`` is ``"ok"`` (inside the band), ``"improved"`` (outside
    the band in the good direction), ``"regressed"``, ``"missing"``
    (pinned but absent from the current run) or ``"new"`` (present in
    the current run but unpinned — informational).
    """

    name: str
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    direction: str = "either"
    rel_tol: float = DEFAULT_REL_TOL

    @property
    def delta_rel(self) -> float:
        if self.baseline in (None, 0) or self.current is None:
            return float("nan")
        return self.current / self.baseline - 1.0


@dataclass(frozen=True)
class BenchDiffReport:
    """Every headline comparison of one gate run."""

    rows: tuple[DiffRow, ...]
    baseline_meta: dict
    current_meta: dict

    @property
    def regressions(self) -> tuple[DiffRow, ...]:
        return tuple(
            r for r in self.rows if r.status in ("regressed", "missing")
        )

    @property
    def passed(self) -> bool:
        return not self.regressions

    def table_rows(self) -> list[list[str]]:
        def fmt(value: Optional[float]) -> str:
            if value is None:
                return "-"
            return f"{value:,.6g}"

        rows = []
        for r in self.rows:
            delta = (f"{r.delta_rel:+.2%}"
                     if not math.isnan(r.delta_rel) else "-")
            rows.append([
                r.name, fmt(r.baseline), fmt(r.current), delta,
                r.direction, f"{r.rel_tol:.0%}", r.status,
            ])
        return rows

    def as_dict(self) -> dict:
        return {
            "passed": self.passed,
            "baseline_meta": dict(self.baseline_meta),
            "current_meta": dict(self.current_meta),
            "rows": [asdict(r) for r in self.rows],
        }


def _classify(spec: HeadlineSpec, current: float) -> str:
    if spec.value == 0:
        # No relative band exists around zero; require exact agreement.
        return "ok" if current == 0 else (
            "regressed" if spec.direction in ("lower", "either")
            and current > 0 else "improved"
        )
    rel = current / spec.value - 1.0
    if abs(rel) <= spec.rel_tol:
        return "ok"
    if spec.direction == "either":
        return "regressed"
    worse = rel > 0 if spec.direction == "lower" else rel < 0
    return "regressed" if worse else "improved"


def parse_baseline(payload: dict) -> tuple[dict[str, HeadlineSpec], dict]:
    """Split a baseline document into headline specs and metadata."""
    if "headlines" not in payload:
        raise TelemetryError("baseline has no 'headlines' section")
    specs: dict[str, HeadlineSpec] = {}
    for name, entry in payload["headlines"].items():
        if isinstance(entry, dict):
            try:
                specs[name] = HeadlineSpec(
                    value=float(entry["value"]),
                    direction=entry.get("direction", "either"),
                    rel_tol=float(
                        entry.get("rel_tol", DEFAULT_REL_TOL)
                    ),
                )
            except KeyError as exc:
                raise TelemetryError(
                    f"baseline headline {name!r} is missing {exc}"
                ) from exc
        else:
            specs[name] = HeadlineSpec(value=float(entry))
    meta = {k: v for k, v in payload.items() if k != "headlines"}
    return specs, meta


def diff_benchmarks(
    current: dict,
    baseline: dict,
    seed_slowdown: Optional[float] = None,
    only: Optional[Sequence[str]] = None,
) -> BenchDiffReport:
    """Compare a bench artifact against a baseline document.

    Args:
        current: Parsed ``BENCH_<suite>.json`` (needs ``headlines``).
        baseline: Parsed ``benchmarks/baseline.json``.
        seed_slowdown: Self-proof factor: pretend every lower-is-better
            headline got this many times slower (and higher-is-better
            ones proportionally worse) before comparing, so the gate
            can demonstrate a nonzero exit (analogous to
            ``repro check --seed-bug``).
        only: Optional headline-name prefixes; when given, the gate
            considers only pinned headlines matching one of them.  A
            suite-scoped CI job (e.g. the cluster smoke run, which only
            produces ``cluster.*`` numbers) uses this so the other
            suites' pins do not read as "missing" regressions.
    """
    specs, baseline_meta = parse_baseline(baseline)
    if only:
        specs = {
            name: spec for name, spec in specs.items()
            if any(name.startswith(prefix) for prefix in only)
        }
        if not specs:
            raise TelemetryError(
                f"no pinned headline matches prefixes {list(only)}"
            )
    headlines = dict(current.get("headlines", {}))
    if seed_slowdown is not None:
        if seed_slowdown <= 1.0:
            raise TelemetryError("seed_slowdown must exceed 1.0")
        for name, value in headlines.items():
            spec = specs.get(name)
            if spec is None or not isinstance(value, (int, float)):
                continue
            factor = (seed_slowdown if spec.direction in ("lower", "either")
                      else 1.0 / seed_slowdown)
            headlines[name] = value * factor
    rows: list[DiffRow] = []
    for name in sorted(specs):
        spec = specs[name]
        if name not in headlines:
            rows.append(DiffRow(
                name=name, status="missing", baseline=spec.value,
                direction=spec.direction, rel_tol=spec.rel_tol,
            ))
            continue
        value = headlines.pop(name)
        if not isinstance(value, (int, float)):
            raise TelemetryError(
                f"headline {name!r} is not numeric: {value!r}"
            )
        rows.append(DiffRow(
            name=name,
            status=_classify(spec, float(value)),
            baseline=spec.value,
            current=float(value),
            direction=spec.direction,
            rel_tol=spec.rel_tol,
        ))
    for name in sorted(headlines):
        if only and not any(name.startswith(p) for p in only):
            continue
        value = headlines[name]
        rows.append(DiffRow(
            name=name, status="new",
            current=(float(value)
                     if isinstance(value, (int, float)) else None),
        ))
    current_meta = {
        k: current[k]
        for k in ("suite", "git_sha", "generated_utc",
                  "config_fingerprint")
        if k in current
    }
    return BenchDiffReport(
        rows=tuple(rows),
        baseline_meta=baseline_meta,
        current_meta=current_meta,
    )


def load_json(path: str) -> dict:
    """Read one JSON document, with a gate-friendly error."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError as exc:
        raise TelemetryError(f"no such file: {path}") from exc
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"{path} is not valid JSON: {exc}") from exc


# ----------------------------------------------------------------------
# Artifact provenance helpers (shared with benchmarks/conftest.py)
# ----------------------------------------------------------------------
def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def config_fingerprint() -> str:
    """Stable hash of the paper-point model + accelerator configs.

    Any change to the defaults that define the benchmarked operating
    point (Transformer-base, the 64x64 SA) changes this fingerprint, so
    ``repro bench-diff`` can tell a true perf regression from a
    baseline that simply pins a different configuration.
    """
    from ..config import paper_accelerator, transformer_base

    payload = {
        "model": asdict(transformer_base()),
        "accelerator": asdict(paper_accelerator()),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    )
    return digest.hexdigest()[:16]
