"""Label-aware metrics registry (counters, gauges, histograms, series).

The registry is the repo's single metrics surface: the scheduler, the
systolic-array model, the memory system, the reliability layer and the
serving simulator all record into one :class:`MetricsRegistry`, and the
exporters (:mod:`repro.telemetry.exporters`) turn it into Prometheus
text exposition, structured JSON, or Chrome-trace counter tracks.

Design notes:

* **Instruments are get-or-create.**  ``registry.counter(name)`` returns
  the existing instrument when one is already registered under ``name``
  (and raises :class:`~repro.errors.TelemetryError` on a kind clash), so
  independently instrumented components share series without plumbing.
* **Labels are keyword arguments.**  ``c.inc(3, block="mha", unit="sa")``
  keys one series per distinct label set; the empty label set is just
  another series.  Label values are stringified, Prometheus-style.
* **Histograms are fixed-bucket plus exact percentiles.**  The bucket
  counters feed the Prometheus exposition (cumulative ``le`` buckets);
  the raw samples are retained as well so :meth:`Histogram.percentile`
  returns the same deterministic nearest-rank p50/p95/p99 the serving
  metrics always reported (and tests can pin against a NumPy
  reference).
* **Deterministic output.**  Instruments iterate in registration order
  and series in first-use order, so exports are reproducible.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from collections.abc import Sequence

from ..errors import TelemetryError

#: One series key: labels sorted by name, values stringified.
LabelKey = tuple[tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:.]*$")

#: Default histogram buckets: 1-2-5 decades covering everything from a
#: single cycle to a full multi-second serving run in microseconds.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(9) for m in (1.0, 2.0, 5.0)
)

#: Trace exemplars kept per histogram bucket (largest values win).
MAX_EXEMPLARS_PER_BUCKET = 4


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TelemetryError(f"invalid metric name {name!r}")
    return name


class Instrument:
    """Common base: a named instrument holding one series per label set."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help

    def label_keys(self) -> list[LabelKey]:
        """Series keys in first-use order."""
        raise NotImplementedError

    def series_value(self, key: LabelKey) -> object:
        """JSON-ready value of one series (scalar or dict)."""
        raise NotImplementedError


class Counter(Instrument):
    """Monotonically increasing count (events, cycles, bytes)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        """Current count of one series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def label_keys(self) -> list[LabelKey]:
        return list(self._values)

    def series_value(self, key: LabelKey) -> object:
        return self._values[key]


class Gauge(Instrument):
    """Point-in-time value (utilization, makespan, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        if key not in self._values:
            raise TelemetryError(
                f"gauge {self.name} has no series for labels {dict(key)}"
            )
        return self._values[key]

    def label_keys(self) -> list[LabelKey]:
        return list(self._values)

    def series_value(self, key: LabelKey) -> object:
        return self._values[key]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "samples", "exemplars")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # + overflow
        self.total = 0.0
        self.samples: list[float] = []
        # bucket index -> [(value, ref)] kept sorted by value desc
        self.exemplars: dict[int, list[tuple[float, str]]] = {}


class Histogram(Instrument):
    """Fixed-bucket distribution with exact nearest-rank percentiles.

    ``buckets`` are the finite upper bounds (strictly increasing); an
    implicit ``+Inf`` bucket catches the overflow.  Bucket counts are
    kept per label set for the Prometheus exposition, and every observed
    sample is retained so percentiles are exact (nearest rank — the
    smallest observed value with at least ``pct%`` of the sample at or
    below it), matching :func:`repro.serving.metrics.percentile`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name} needs >= 1 bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name} buckets must strictly increase"
            )
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise TelemetryError(
                f"histogram {name} buckets must be finite (+Inf is "
                "implicit)"
            )
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def _get(self, labels: dict) -> _HistogramSeries:
        key = _label_key(labels)
        if key not in self._series:
            self._series[key] = _HistogramSeries(len(self.buckets))
        return self._series[key]

    def observe(self, value: float, **labels: object) -> None:
        """Record one sample."""
        value = float(value)
        if math.isnan(value):
            raise TelemetryError(f"histogram {self.name}: NaN sample")
        series = self._get(labels)
        series.bucket_counts[bisect_left(self.buckets, value)] += 1
        series.total += value
        series.samples.append(value)

    def attach_exemplar(
        self, value: float, ref: str, **labels: object
    ) -> None:
        """Link a trace reference to the bucket ``value`` falls in.

        Exemplars are the histogram-to-trace bridge: a p99 bucket can
        point at the ids of the slowest traces that landed in it.  At
        most :data:`MAX_EXEMPLARS_PER_BUCKET` refs are kept per bucket,
        preferring the largest values (the interesting tail).
        """
        value = float(value)
        if math.isnan(value):
            raise TelemetryError(f"histogram {self.name}: NaN exemplar")
        series = self._get(labels)
        idx = bisect_left(self.buckets, value)
        bucket = series.exemplars.setdefault(idx, [])
        bucket.append((value, ref))
        bucket.sort(key=lambda e: (-e[0], e[1]))
        del bucket[MAX_EXEMPLARS_PER_BUCKET:]

    def exemplars(
        self, **labels: object
    ) -> dict[int, list[tuple[float, str]]]:
        """Exemplars of one series, keyed by bucket index."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            return {}
        return {idx: list(refs) for idx, refs in series.exemplars.items()}

    def count(self, **labels: object) -> int:
        key = _label_key(labels)
        return len(self._series[key].samples) if key in self._series else 0

    def sum(self, **labels: object) -> float:
        key = _label_key(labels)
        return self._series[key].total if key in self._series else 0.0

    def mean(self, **labels: object) -> float:
        n = self.count(**labels)
        return self.sum(**labels) / n if n else float("nan")

    def percentile(self, pct: float, **labels: object) -> float:
        """Nearest-rank percentile of one series (``pct`` in (0, 100])."""
        if not 0 < pct <= 100:
            raise TelemetryError(f"percentile {pct} outside (0, 100]")
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None or not series.samples:
            raise TelemetryError(
                f"histogram {self.name}: percentile of an empty series"
            )
        ordered = sorted(series.samples)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def cumulative_buckets(
        self, **labels: object
    ) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs (+Inf last)."""
        key = _label_key(labels)
        series = self._series.get(key)
        counts = (series.bucket_counts if series is not None
                  else [0] * (len(self.buckets) + 1))
        out = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def label_keys(self) -> list[LabelKey]:
        return list(self._series)

    def series_value(self, key: LabelKey) -> object:
        series = self._series[key]
        value: dict[str, object] = {
            "count": len(series.samples),
            "sum": series.total,
            # The overflow bound renders as the string "+Inf" so the
            # JSON export stays loadable under allow_nan=False.
            "buckets": [
                {"le": "+Inf" if math.isinf(le) else le, "count": count}
                for le, count in self.cumulative_buckets(**dict(key))
            ],
        }
        if series.exemplars:
            # "+Inf" stays a string so json.dump(..., allow_nan=False)
            # callers survive the overflow bucket.
            value["exemplars"] = [
                {
                    "le": (self.buckets[idx] if idx < len(self.buckets)
                           else "+Inf"),
                    "refs": [
                        {"value": v, "trace": ref}
                        for v, ref in series.exemplars[idx]
                    ],
                }
                for idx in sorted(series.exemplars)
            ]
        return value


class Timeseries(Instrument):
    """Timestamped value samples — the Chrome counter-track instrument.

    Samples may arrive out of order (retries complete in the future
    relative to the next dispatch); :meth:`samples` returns them sorted
    by timestamp so the exported counter track is always monotonic.
    """

    kind = "timeseries"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._samples: dict[LabelKey, list[tuple[float, float]]] = {}
        self._sorted: dict[LabelKey, bool] = {}

    def sample(self, ts_us: float, value: float, **labels: object) -> None:
        """Record ``value`` at ``ts_us`` (microseconds)."""
        key = _label_key(labels)
        bucket = self._samples.setdefault(key, [])
        if bucket and ts_us < bucket[-1][0]:
            self._sorted[key] = False
        bucket.append((float(ts_us), value))

    def samples(self, **labels: object) -> list[tuple[float, float]]:
        """Samples of one series, sorted by timestamp (stable)."""
        key = _label_key(labels)
        bucket = self._samples.get(key, [])
        if not self._sorted.get(key, True):
            bucket.sort(key=lambda s: s[0])
            self._sorted[key] = True
        return list(bucket)

    def last(self, **labels: object) -> float:
        """Value of the latest sample (by timestamp)."""
        ordered = self.samples(**labels)
        if not ordered:
            raise TelemetryError(
                f"timeseries {self.name} has no samples for these labels"
            )
        return ordered[-1][1]

    def label_keys(self) -> list[LabelKey]:
        return list(self._samples)

    def series_value(self, key: LabelKey) -> object:
        return {
            "samples": [
                {"ts_us": ts, "value": v}
                for ts, v in self.samples(**dict(key))
            ]
        }


class MetricsRegistry:
    """Collection of named instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def _get_or_create(
        self, cls: type, name: str, help: str, **kwargs: object
    ) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TelemetryError(
                    f"metric {name!r} is a {existing.kind}, not a "
                    f"{cls.kind}"  # type: ignore[attr-defined]
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._get_or_create(Counter, name, help)
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._get_or_create(Gauge, name, help)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        inst = self._get_or_create(Histogram, name, help, buckets=buckets)
        assert isinstance(inst, Histogram)
        return inst

    def series(self, name: str, help: str = "") -> Timeseries:
        inst = self._get_or_create(Timeseries, name, help)
        assert isinstance(inst, Timeseries)
        return inst

    def get(self, name: str) -> Instrument:
        """Look up an instrument; raises if it was never registered."""
        if name not in self._instruments:
            raise TelemetryError(f"no metric named {name!r}")
        return self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> list[Instrument]:
        """Instruments in registration order."""
        return list(self._instruments.values())
