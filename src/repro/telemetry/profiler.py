"""Cycle-attribution profiler over a :class:`ScheduleResult` timeline.

Answers "where do the cycles go" for one ResBlock run: every wall-clock
cycle between 0 and ``total_cycles`` is attributed to exactly one unit
— the SA when it is busy, else the DRAM link (a weight fetch the SA is
stalled on), else the softmax module (its exposed tail), else the
LayerNorm module, else *idle*.  Because the attribution partitions the
wall clock, the per-unit exclusive cycles sum to ``total_cycles``
**exactly**, which is what lets ``repro profile`` cross-check the table
against the closed-form cycle model and the selftest pin the paper
point's 21578/39052/21834 totals.

Two renderings:

* :meth:`ScheduleProfile.rows` — the per-unit self-time/stall table;
* :func:`collapsed_stacks` — ``block;unit;event cycles`` lines in the
  collapsed-stack format flamegraph tooling consumes
  (``flamegraph.pl``, speedscope, inferno).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import ScheduleResult, TimelineEvent
from ..errors import TelemetryError

#: Wall-clock attribution priority: when several units are busy in the
#: same cycle, the cycle belongs to the first of these.  The SA is the
#: resource whose stalls the paper reasons about, so it wins; a fetch
#: only *owns* time the SA spends waiting on it, the softmax tail only
#: owns time the SA spends waiting on softmax, and so on.
ATTRIBUTION_PRIORITY = ("sa", "dram", "softmax", "layernorm")

#: Pseudo-unit for wall cycles no unit occupies.
IDLE = "idle"


@dataclass(frozen=True)
class UnitAttribution:
    """One unit's share of a profiled ResBlock run.

    Attributes:
        unit: Hardware unit (``"sa"``, ``"softmax"``, ``"layernorm"``,
            ``"dram"``) or ``"idle"``.
        busy_cycles: Total cycles the unit's events span (may overlap
            other units: the softmax runs under the V projection).
        active_cycles: Useful cycles inside those events (``k`` per SA
            pass; equal to ``busy_cycles`` for the module units).
        exclusive_cycles: Wall-clock cycles attributed to this unit by
            the priority sweep; these sum to the run's total exactly.
    """

    unit: str
    busy_cycles: int
    active_cycles: int
    exclusive_cycles: int

    @property
    def overhead_cycles(self) -> int:
        """Busy cycles that were not useful work (skew, issue, drain)."""
        return self.busy_cycles - self.active_cycles


@dataclass(frozen=True)
class ScheduleProfile:
    """Per-unit cycle attribution of one ResBlock schedule."""

    block: str
    total_cycles: int
    units: tuple[UnitAttribution, ...]

    def unit(self, name: str) -> UnitAttribution:
        for attribution in self.units:
            if attribution.unit == name:
                return attribution
        raise TelemetryError(f"profile has no unit {name!r}")

    @property
    def attributed_cycles(self) -> int:
        """Sum of exclusive cycles — always equals ``total_cycles``."""
        return sum(u.exclusive_cycles for u in self.units)

    def rows(self) -> list[list[str]]:
        """Table rows: unit, busy, active, overhead, exclusive, share."""
        rows = []
        for u in self.units:
            share = (u.exclusive_cycles / self.total_cycles
                     if self.total_cycles else 0.0)
            rows.append([
                u.unit, f"{u.busy_cycles:,}", f"{u.active_cycles:,}",
                f"{u.overhead_cycles:,}", f"{u.exclusive_cycles:,}",
                f"{share:.1%}",
            ])
        rows.append([
            "total", "", "", "", f"{self.attributed_cycles:,}", "100.0%",
        ])
        return rows


def _boundaries(events: list[TimelineEvent], total: int) -> list[int]:
    marks = {0, total}
    for event in events:
        marks.add(event.start)
        marks.add(event.end)
    return sorted(m for m in marks if 0 <= m <= total)


def profile_schedule(result: ScheduleResult) -> ScheduleProfile:
    """Attribute every wall-clock cycle of ``result`` to one unit."""
    if not result.events:
        raise TelemetryError("cannot profile a schedule with no events")
    total = result.total_cycles
    busy: dict[str, int] = {}
    active: dict[str, int] = {}
    for event in result.events:
        busy[event.unit] = busy.get(event.unit, 0) + event.duration
        active[event.unit] = (
            active.get(event.unit, 0) + event.active_cycles
        )
    exclusive = {unit: 0 for unit in busy}
    exclusive[IDLE] = 0
    marks = _boundaries(result.events, total)
    for lo, hi in zip(marks, marks[1:]):
        span = hi - lo
        covering = {
            e.unit for e in result.events if e.start <= lo and hi <= e.end
        }
        owner = next(
            (u for u in ATTRIBUTION_PRIORITY if u in covering), IDLE
        )
        exclusive[owner] += span
    units = tuple(
        UnitAttribution(
            unit=unit,
            busy_cycles=busy.get(unit, 0),
            active_cycles=active.get(unit, 0),
            exclusive_cycles=exclusive.get(unit, 0),
        )
        for unit in (*ATTRIBUTION_PRIORITY, IDLE)
        if unit in exclusive
    )
    return ScheduleProfile(
        block=result.block, total_cycles=total, units=units
    )


def collapsed_stacks(results: list[ScheduleResult]) -> list[str]:
    """Collapsed-stack lines for flamegraph tooling.

    One line per timeline event, ``block;unit;event cycles``, weighted
    by the event's *exclusive* wall-clock cycles (the same priority
    sweep as :func:`profile_schedule`, resolved to the covering event),
    plus one ``block;idle`` line when any wall cycles went unowned — so
    each block's stack totals its ``total_cycles`` exactly.
    """
    lines: list[str] = []
    for result in results:
        if not result.events:
            raise TelemetryError(
                "cannot profile a schedule with no events"
            )
        weights: dict[tuple[str, str], int] = {}
        idle = 0
        marks = _boundaries(result.events, result.total_cycles)
        for lo, hi in zip(marks, marks[1:]):
            span = hi - lo
            covering = [
                e for e in result.events
                if e.start <= lo and hi <= e.end
            ]
            owner = None
            for unit in ATTRIBUTION_PRIORITY:
                owner = next(
                    (e for e in covering if e.unit == unit), None
                )
                if owner is not None:
                    break
            if owner is None:
                idle += span
                continue
            key = (owner.unit, owner.name)
            weights[key] = weights.get(key, 0) + span
        for (unit, name), cycles in weights.items():
            if cycles > 0:
                lines.append(f"{result.block};{unit};{name} {cycles}")
        if idle > 0:
            lines.append(f"{result.block};{IDLE} {idle}")
    return lines


def write_collapsed(results: list[ScheduleResult], path: str) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = collapsed_stacks(results)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(lines)
