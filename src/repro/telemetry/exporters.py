"""Registry exporters: Prometheus text, structured JSON, Chrome counters.

Three consumers, one registry:

* :func:`to_prometheus_text` — the text exposition format every scrape
  stack understands (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram series, timeseries flattened to their
  latest value as gauges);
* :func:`to_json` / :func:`write_json` — the machine-readable artifact
  CI uploads (full series detail, including raw timeseries samples);
* :func:`timeseries_counter_events` — Chrome-trace counter ("C")
  events, so Perfetto shows utilization/queue-depth/hit-rate curves
  alongside the span rows the scheduler and serving simulator already
  emit.
"""

from __future__ import annotations

import json
import math

from ..errors import TelemetryError
from .registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    LabelKey,
    MetricsRegistry,
    Timeseries,
)


def _fmt(value: float) -> str:
    """Prometheus-style number: integral values without the trailing .0."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")


def _labels_text(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_name(name: str) -> str:
    """Metric names may use dots internally; Prometheus wants [a-z_:]."""
    return name.replace(".", "_")


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for inst in registry.instruments():
        name = _prom_name(inst.name)
        if inst.help:
            lines.append(f"# HELP {name} {inst.help}")
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {name} counter")
            for key in inst.label_keys():
                lines.append(
                    f"{name}{_labels_text(key)} "
                    f"{_fmt(inst.series_value(key))}"  # type: ignore[arg-type]
                )
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {name} gauge")
            for key in inst.label_keys():
                lines.append(
                    f"{name}{_labels_text(key)} "
                    f"{_fmt(inst.series_value(key))}"  # type: ignore[arg-type]
                )
        elif isinstance(inst, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for key in inst.label_keys():
                labels = dict(key)
                for le, count in inst.cumulative_buckets(**labels):
                    le_text = 'le="' + _fmt(le) + '"'
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(key, le_text)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(key)} "
                    f"{_fmt(inst.sum(**labels))}"
                )
                lines.append(
                    f"{name}_count{_labels_text(key)} "
                    f"{inst.count(**labels)}"
                )
        elif isinstance(inst, Timeseries):
            # A scrape sees the latest sample; history stays in the
            # JSON/Chrome exports.
            lines.append(f"# TYPE {name} gauge")
            for key in inst.label_keys():
                lines.append(
                    f"{name}{_labels_text(key)} "
                    f"{_fmt(inst.last(**dict(key)))}"
                )
        else:  # pragma: no cover - new kinds must pick an exposition
            raise TelemetryError(
                f"no Prometheus exposition for instrument kind "
                f"{inst.kind!r}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _series_json(inst: Instrument) -> list[dict]:
    return [
        {"labels": dict(key), "value": inst.series_value(key)}
        for key in inst.label_keys()
    ]


def to_json(registry: MetricsRegistry) -> dict:
    """Structured-JSON form of the registry (full series detail)."""
    return {
        "metrics": [
            {
                "name": inst.name,
                "kind": inst.kind,
                "help": inst.help,
                "series": _series_json(inst),
            }
            for inst in registry.instruments()
        ]
    }


def write_json(registry: MetricsRegistry, path: str) -> int:
    """Write :func:`to_json` to ``path``; returns the metric count."""
    payload = to_json(registry)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return len(payload["metrics"])


def timeseries_counter_events(
    registry: MetricsRegistry,
    names: dict[str, str] | None = None,
    category: str = "metrics",
) -> list[dict]:
    """Chrome counter events for every (non-empty) timeseries instrument.

    Args:
        registry: The registry to export.
        names: Optional ``{metric_name: track_name}`` mapping; metrics
            not listed keep their own name as the track.  Only the
            mapped metrics are exported when a mapping is given.
        category: Trace-event ``cat`` for the counter samples.
    """
    from ..core.trace import counter_events

    events: list[dict] = []
    for inst in registry.instruments():
        if not isinstance(inst, Timeseries):
            continue
        if names is not None and inst.name not in names:
            continue
        track = inst.name if names is None else names[inst.name]
        for key in inst.label_keys():
            samples = inst.samples(**dict(key))
            if not samples:
                continue
            suffix = "|".join(f"{k}={v}" for k, v in key)
            label = f"{track}[{suffix}]" if suffix else track
            events.extend(counter_events(label, samples, category))
    return events
