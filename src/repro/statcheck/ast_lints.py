"""Repo-specific AST lints (stdlib ``ast``, ruff-style ``REPxxx`` codes).

Four rules, each encoding a contract the test suite can only spot-check:

* ``REP001`` — integer-only datapath modules must not contain float
  literals or true division outside their explicitly real-valued helper
  functions.  The bit-accurate models in :data:`INTEGER_ONLY_MODULES`
  mirror RTL adders/shifters; a stray ``0.5`` silently turns a
  bit-exact path into an approximation.
* ``REP002`` — every hardware unit the scheduler books has a pricing
  counterpart in :class:`~repro.core.cycle_model.CycleBreakdown`, and
  every ``*_cycles`` breakdown field is claimed by some unit, so the
  event timeline and the closed-form model cannot drift structurally.
* ``REP003`` — every ``TraceSpan(track=...)`` site uses a track
  registered in :data:`repro.core.trace.KNOWN_TRACK_PATTERNS`.
* ``REP004`` — public fields of config dataclasses (``*Config``)
  appear in the class docstring's ``Attributes:`` section.

Each rule reports :class:`~repro.statcheck.findings.Finding` objects
with ``file:line`` anchors.  :func:`lint_source` lints a source string
(used by the seeded-bug tests); :func:`run_ast_lints` walks the
installed ``repro`` package.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional

from .findings import Finding

#: Modules whose non-helper code must stay in the integer domain
#: (repo-relative posix paths).
INTEGER_ONLY_MODULES = (
    "repro/fixedpoint/ops.py",
    "repro/fixedpoint/exp_unit.py",
    "repro/fixedpoint/ln_unit.py",
    "repro/core/pe.py",
)

#: Functions inside integer-only modules that intentionally touch real
#: values (quantize/dequantize conveniences and error-measurement
#: helpers).
REAL_VALUED_HELPERS = (
    "evaluate",
    "max_relative_error",
    "max_absolute_error",
    "max_error_vs_float",
    "shift_add_constant",
)

#: Which CycleBreakdown fields price each hardware unit's time.
UNIT_PRICING: dict[str, tuple[str, ...]] = {
    "sa": ("active_cycles", "issue_cycles", "skew_cycles", "abft_cycles"),
    "softmax": ("softmax_stall_cycles",),
    "layernorm": ("layernorm_cycles",),
    "dram": ("memsys_stall_cycles",),
}

#: CycleBreakdown ``*_cycles`` fields that are aggregates, not unit time.
AGGREGATE_FIELDS = ("total_cycles", "ideal_cycles")

ALL_CODES = ("REP001", "REP002", "REP003", "REP004")


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return None


def _rel(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


# ----------------------------------------------------------------------
# REP001 — float purity of the integer datapath
# ----------------------------------------------------------------------
def _docstring_nodes(tree: ast.Module) -> set[int]:
    """ids of Constant nodes that are doc/bare-string statements."""
    ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            for stmt in getattr(node, "body", []):
                if (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)):
                    ids.add(id(stmt.value))
    return ids


def _helper_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans of the allowlisted real-valued helper functions."""
    spans = []
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in REAL_VALUED_HELPERS):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def lint_float_purity(tree: ast.Module, rel_path: str) -> list[Finding]:
    """REP001: no float literals / true division outside helpers."""
    findings: list[Finding] = []
    doc_ids = _docstring_nodes(tree)
    spans = _helper_spans(tree)

    def in_helper(lineno: int) -> bool:
        return any(lo <= lineno <= hi for lo, hi in spans)

    for node in ast.walk(tree):
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, float)
                and id(node) not in doc_ids
                and not in_helper(node.lineno)):
            findings.append(Finding(
                code="REP001",
                check="ast",
                file=rel_path,
                line=node.lineno,
                message=(
                    f"float literal {node.value!r} in integer-only "
                    "datapath module (move real-valued code into an "
                    "allowlisted helper)"
                ),
            ))
        if (isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Div)
                and not in_helper(node.lineno)):
            findings.append(Finding(
                code="REP001",
                check="ast",
                file=rel_path,
                line=node.lineno,
                message=(
                    "true division in integer-only datapath module "
                    "(use shifts or floor division)"
                ),
            ))
        # Float-typed round-trips (np.float64 casts, float() calls) are
        # how the leading_one_position bug slipped in: exact below 2**53,
        # silently wrong above.
        if (isinstance(node, ast.Attribute)
                and node.attr in ("float16", "float32", "float64",
                                  "floating", "float_")
                and not in_helper(node.lineno)):
            findings.append(Finding(
                code="REP001",
                check="ast",
                file=rel_path,
                line=node.lineno,
                message=(
                    f"float dtype .{node.attr} in integer-only datapath "
                    "module (float round-trips lose precision beyond "
                    "2**53)"
                ),
            ))
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and not in_helper(node.lineno)):
            findings.append(Finding(
                code="REP001",
                check="ast",
                file=rel_path,
                line=node.lineno,
                message=(
                    "float() conversion in integer-only datapath module"
                ),
            ))
    return findings


# ----------------------------------------------------------------------
# REP002 — scheduler units <-> cycle-model pricing parity
# ----------------------------------------------------------------------
def _scheduler_units(tree: ast.Module) -> set[str]:
    """Unit names the scheduler books events on.

    Collects ``unit="..."`` keyword arguments and the unit operand of
    ``module_event(name, unit, ...)`` calls.
    """
    units: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if (kw.arg == "unit" and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)):
                units.add(kw.value.value)
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr == "module_event"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            units.add(node.args[1].value)
    return units


def _breakdown_fields(tree: ast.Module) -> set[str]:
    """Annotated field names of the CycleBreakdown dataclass."""
    fields: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "CycleBreakdown":
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    fields.add(stmt.target.id)
    return fields


def lint_pricing_parity(
    scheduler_tree: ast.Module,
    cycle_model_tree: ast.Module,
    scheduler_path: str,
    cycle_model_path: str,
) -> list[Finding]:
    """REP002: units and pricing fields must cover each other."""
    findings: list[Finding] = []
    units = _scheduler_units(scheduler_tree)
    fields = _breakdown_fields(cycle_model_tree)
    for unit in sorted(units):
        pricing = UNIT_PRICING.get(unit)
        if pricing is None:
            findings.append(Finding(
                code="REP002",
                check="ast",
                file=scheduler_path,
                message=(
                    f"scheduler books unit {unit!r} but UNIT_PRICING has "
                    "no CycleBreakdown mapping for it"
                ),
                details={"unit": unit},
            ))
            continue
        missing = [f for f in pricing if f not in fields]
        if missing:
            findings.append(Finding(
                code="REP002",
                check="ast",
                file=cycle_model_path,
                message=(
                    f"unit {unit!r} is priced by {missing} which are not "
                    "CycleBreakdown fields"
                ),
                details={"unit": unit, "missing_fields": missing},
            ))
    claimed = {f for pricing in UNIT_PRICING.values() for f in pricing}
    for field_name in sorted(fields):
        if not field_name.endswith("_cycles"):
            continue
        if field_name in AGGREGATE_FIELDS or field_name in claimed:
            continue
        findings.append(Finding(
            code="REP002",
            check="ast",
            file=cycle_model_path,
            message=(
                f"CycleBreakdown field {field_name!r} prices no scheduler "
                "unit (add it to UNIT_PRICING or an aggregate)"
            ),
            details={"field": field_name},
        ))
    return findings


# ----------------------------------------------------------------------
# REP003 — TraceSpan tracks registered in core/trace.py
# ----------------------------------------------------------------------
def _track_literal(node: ast.expr) -> Optional[str]:
    """Static value of a ``track=`` argument as an fnmatch pattern.

    String constants map to themselves; f-strings map their formatted
    holes to ``*``; anything else is unresolvable (``None``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def lint_trace_tracks(
    tree: ast.Module,
    rel_path: str,
    known_patterns: Sequence[str],
) -> list[Finding]:
    """REP003: every TraceSpan emission uses a registered track."""
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name != "TraceSpan":
            continue
        track_node = None
        for kw in node.keywords:
            if kw.arg == "track":
                track_node = kw.value
        if track_node is None and len(node.args) >= 2:
            track_node = node.args[1]
        if track_node is None:
            continue
        track = _track_literal(track_node)
        if track is None:
            continue  # dynamically computed; runtime lint_spans covers it
        # A literal "device3" matches the "device*" registration; an
        # f-string pattern "device*" must itself be a registered pattern.
        registered = any(
            fnmatch(track, pattern) or track == pattern
            for pattern in known_patterns
        )
        if not registered:
            findings.append(Finding(
                code="REP003",
                check="ast",
                file=rel_path,
                line=node.lineno,
                message=(
                    f"TraceSpan track {track!r} is not registered in "
                    "repro.core.trace.KNOWN_TRACK_PATTERNS"
                ),
                details={"track": track},
            ))
    return findings


# ----------------------------------------------------------------------
# REP004 — config dataclass fields documented
# ----------------------------------------------------------------------
def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (target.id if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute)
                else None)
        if name == "dataclass":
            return True
    return False


def lint_config_docstrings(tree: ast.Module, rel_path: str) -> list[Finding]:
    """REP004: public ``*Config`` dataclass fields appear in Attributes."""
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Config"):
            continue
        if not _is_dataclass_decorated(node):
            continue
        doc = ast.get_docstring(node) or ""
        documented = {
            line.split(":", 1)[0].strip()
            for line in doc.splitlines()
            if ":" in line
        }
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            field_name = stmt.target.id
            if field_name.startswith("_") or field_name.isupper():
                continue
            # "x / y" style lines document several fields at once.
            in_doc = field_name in documented or any(
                field_name in entry.replace(" ", "").split("/")
                for entry in documented
            )
            if not in_doc:
                findings.append(Finding(
                    code="REP004",
                    check="ast",
                    file=rel_path,
                    line=stmt.lineno,
                    message=(
                        f"config field {node.name}.{field_name} is not "
                        "documented in the class docstring's Attributes"
                    ),
                    details={"class": node.name, "field": field_name},
                ))
    return findings


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    rel_path: str,
    codes: Iterable[str] = ALL_CODES,
    known_patterns: Optional[Sequence[str]] = None,
    integer_only: Optional[bool] = None,
) -> list[Finding]:
    """Lint one source string (single-file rules only: REP001/003/004).

    Args:
        source: Python source to lint.
        rel_path: Repo-relative path reported in findings.
        codes: Which rules to run.
        known_patterns: Track registry for REP003 (defaults to the real
            one from :mod:`repro.core.trace`).
        integer_only: Force REP001 applicability; by default the path is
            matched against :data:`INTEGER_ONLY_MODULES`.
    """
    tree = ast.parse(source, filename=rel_path)
    codes = set(codes)
    findings: list[Finding] = []
    if "REP001" in codes:
        applies = (integer_only if integer_only is not None
                   else any(rel_path.endswith(m)
                            for m in INTEGER_ONLY_MODULES))
        if applies:
            findings.extend(lint_float_purity(tree, rel_path))
    if "REP003" in codes:
        if known_patterns is None:
            from ..core.trace import KNOWN_TRACK_PATTERNS
            known_patterns = KNOWN_TRACK_PATTERNS
        findings.extend(lint_trace_tracks(tree, rel_path, known_patterns))
    if "REP004" in codes:
        findings.extend(lint_config_docstrings(tree, rel_path))
    return findings


def run_ast_lints(
    root: Optional[Path] = None,
    codes: Iterable[str] = ALL_CODES,
) -> tuple[dict[str, int], list[Finding]]:
    """Run every AST rule over the ``repro`` package.

    Args:
        root: Directory containing the ``repro`` package; defaults to
            the installed package's parent (``src/``).
        codes: Which rules to run.

    Returns:
        ``(files_checked_per_rule, findings)``.
    """
    from ..core.trace import KNOWN_TRACK_PATTERNS

    if root is None:
        root = Path(__file__).resolve().parents[2]
    root = Path(root)
    package = root / "repro"
    files = sorted(package.rglob("*.py")) if package.is_dir() else []
    codes = set(codes)
    counts: dict[str, int] = {code: 0 for code in sorted(codes)}
    findings: list[Finding] = []

    trees: dict[Path, ast.Module] = {}
    for path in files:
        tree = _parse(path)
        if tree is not None:
            trees[path] = tree

    for path, tree in trees.items():
        rel = _rel(path, root)
        if "REP001" in codes and any(
            rel.endswith(m) for m in INTEGER_ONLY_MODULES
        ):
            counts["REP001"] += 1
            findings.extend(lint_float_purity(tree, rel))
        if "REP003" in codes:
            counts["REP003"] += 1
            findings.extend(
                lint_trace_tracks(tree, rel, KNOWN_TRACK_PATTERNS)
            )
        if "REP004" in codes:
            counts["REP004"] += 1
            findings.extend(lint_config_docstrings(tree, rel))

    if "REP002" in codes:
        scheduler = package / "core" / "scheduler.py"
        cycle_model = package / "core" / "cycle_model.py"
        if scheduler in trees and cycle_model in trees:
            counts["REP002"] = 2
            findings.extend(lint_pricing_parity(
                trees[scheduler], trees[cycle_model],
                _rel(scheduler, root), _rel(cycle_model, root),
            ))
    return counts, findings
