"""repro.statcheck — static analysis for the accelerator models.

Three passes, one reporter:

* :mod:`~repro.statcheck.overflow` — interval-arithmetic overflow
  certifier for the fixed-point datapath;
* :mod:`~repro.statcheck.schedule_lint` — structural linter for
  scheduler timelines and trace spans (resource exclusivity, cycle
  conservation, pinned paper points);
* :mod:`~repro.statcheck.ast_lints` — repo-specific ``REPxxx`` AST
  lints.

``repro check`` (see :mod:`repro.cli`) and selftest check 6 drive
:func:`~repro.statcheck.runner.run_check`.
"""

from .ast_lints import ALL_CODES, lint_source, run_ast_lints
from .findings import SEVERITIES, CheckReport, Finding, sort_findings
from .interval import Interval, envelope
from .overflow import (
    OverflowPoint,
    StageBound,
    certify_compress,
    certify_fused_softmax,
    certify_layernorm,
    certify_overflow,
    certify_sa_accumulators,
    certify_softmax,
    min_sa_acc_bits,
    paper_point,
)
from .runner import PASSES, SEED_BUGS, run_check, selftest_check
from .schedule_lint import (
    PINNED_PAPER_POINTS,
    lint_paper_points,
    lint_schedule,
    lint_spans,
)

__all__ = [
    "ALL_CODES",
    "CheckReport",
    "Finding",
    "Interval",
    "OverflowPoint",
    "PASSES",
    "PINNED_PAPER_POINTS",
    "SEED_BUGS",
    "SEVERITIES",
    "StageBound",
    "certify_compress",
    "certify_fused_softmax",
    "certify_layernorm",
    "certify_overflow",
    "certify_sa_accumulators",
    "certify_softmax",
    "envelope",
    "lint_paper_points",
    "lint_schedule",
    "lint_source",
    "lint_spans",
    "min_sa_acc_bits",
    "paper_point",
    "run_ast_lints",
    "run_check",
    "selftest_check",
    "sort_findings",
]
