"""repro.statcheck — static analysis for the accelerator models.

Six passes, one reporter:

* :mod:`~repro.statcheck.overflow` — interval-arithmetic overflow
  certifier for the fixed-point datapath;
* :mod:`~repro.statcheck.schedule_lint` — structural linter for
  scheduler timelines and trace spans (resource exclusivity, cycle
  conservation, pinned paper points);
* :mod:`~repro.statcheck.ast_lints` — repo-specific ``REPxxx`` AST
  lints;
* :mod:`~repro.statcheck.det_lints` — ``DETxxx`` determinism lints
  over the simulation packages (unseeded RNG, set-order dispatch,
  wall clock, float tie-breaks);
* :mod:`~repro.statcheck.qformat` — whole-graph Q-format/width
  dataflow checker (``QFMTxxx``), tied to the certifier's stage
  bounds;
* :mod:`~repro.statcheck.pricing_graph` — whole-program pricing /
  telemetry coverage (``PRCxxx``).

Shared infrastructure: SARIF 2.1.0 export
(:mod:`~repro.statcheck.sarif`), reviewed baseline suppressions
(:mod:`~repro.statcheck.baseline`) and a content-hash incremental
cache (:mod:`~repro.statcheck.cache`).

``repro check`` (see :mod:`repro.cli`) and selftest check 6 drive
:func:`~repro.statcheck.runner.run_check`.
"""

from .ast_lints import ALL_CODES, lint_source, run_ast_lints
from .baseline import Baseline, Suppression, load_baseline, write_baseline
from .cache import AnalysisUnit, CheckCache, UnitResult
from .det_lints import (
    DET_CODES,
    lint_determinism_source,
    run_det_lints,
    sim_module_files,
)
from .findings import SEVERITIES, CheckReport, Finding, sort_findings
from .interval import Interval, envelope
from .pricing_graph import PRC_CODES, check_pricing, scan_pricing
from .qformat import (
    QFMT_CODES,
    Connection,
    DatapathGraph,
    Port,
    build_datapath_graph,
    check_graph,
    check_qformat,
)
from .sarif import RULE_DOCS, to_sarif, write_sarif
from .overflow import (
    OverflowPoint,
    StageBound,
    certify_compress,
    certify_fused_softmax,
    certify_layernorm,
    certify_overflow,
    certify_sa_accumulators,
    certify_softmax,
    min_sa_acc_bits,
    paper_point,
)
from .runner import (
    PASSES,
    SEED_BUG_PASS,
    SEED_BUGS,
    build_units,
    run_check,
    selftest_check,
)
from .schedule_lint import (
    PINNED_PAPER_POINTS,
    lint_paper_points,
    lint_schedule,
    lint_spans,
)

__all__ = [
    "ALL_CODES",
    "AnalysisUnit",
    "Baseline",
    "CheckCache",
    "CheckReport",
    "Connection",
    "DET_CODES",
    "DatapathGraph",
    "Finding",
    "Interval",
    "OverflowPoint",
    "PASSES",
    "PINNED_PAPER_POINTS",
    "PRC_CODES",
    "Port",
    "QFMT_CODES",
    "RULE_DOCS",
    "SEED_BUGS",
    "SEED_BUG_PASS",
    "SEVERITIES",
    "StageBound",
    "Suppression",
    "UnitResult",
    "build_datapath_graph",
    "build_units",
    "certify_compress",
    "certify_fused_softmax",
    "certify_layernorm",
    "certify_overflow",
    "certify_sa_accumulators",
    "certify_softmax",
    "check_graph",
    "check_pricing",
    "check_qformat",
    "envelope",
    "lint_determinism_source",
    "lint_paper_points",
    "lint_schedule",
    "lint_source",
    "lint_spans",
    "load_baseline",
    "min_sa_acc_bits",
    "paper_point",
    "run_ast_lints",
    "run_check",
    "run_det_lints",
    "scan_pricing",
    "selftest_check",
    "sim_module_files",
    "sort_findings",
    "to_sarif",
    "write_baseline",
    "write_sarif",
]
