"""Integer interval arithmetic for the overflow certifier.

An :class:`Interval` is a closed range of integer *codes* ``[lo, hi]``.
Every operation returns a sound over-approximation of the set of values
the corresponding hardware stage can produce: if the inputs lie inside
their intervals, the output provably lies inside the result interval.
Tightness is sacrificed where operands are correlated (e.g. the
shift-add constant multipliers sum per-term bounds), which only ever
*widens* the certified range — the property the hypothesis suite checks.

All endpoints are Python ints, so chains like ``d_ff`` 48-bit products
never themselves overflow while being analyzed.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..errors import FixedPointError
from ..fixedpoint.types import QFormat


@dataclass(frozen=True)
class Interval:
    """A closed integer range ``[lo, hi]``.

    Attributes:
        lo: Smallest value the stage can produce.
        hi: Largest value the stage can produce.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise FixedPointError(
                f"empty interval [{self.lo}, {self.hi}]"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: int) -> Interval:
        return cls(value, value)

    @classmethod
    def from_qformat(cls, fmt: QFormat) -> Interval:
        """Full code range of a fixed-point format."""
        return cls(fmt.min_code, fmt.max_code)

    @classmethod
    def signed_width(cls, bits: int) -> Interval:
        """Full range of a signed two's complement ``bits``-wide word."""
        if bits < 1:
            raise FixedPointError("width must be at least 1 bit")
        return cls(-(1 << (bits - 1)), (1 << (bits - 1)) - 1)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Interval) -> Interval:
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: Interval) -> Interval:
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> Interval:
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: Interval) -> Interval:
        corners = (
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        )
        return Interval(min(corners), max(corners))

    def accumulate(self, terms: int) -> Interval:
        """Sum of ``terms`` independent values from this interval.

        Models an accumulator fed ``terms`` times — the MAC chain of one
        SA pass, a softmax row sum, a LayerNorm register bank.
        """
        if terms < 0:
            raise FixedPointError("terms must be non-negative")
        return Interval(self.lo * terms, self.hi * terms)

    def shr(self, bits: int) -> Interval:
        """Arithmetic (floor) right shift — monotone, so endpoints map."""
        if bits < 0:
            raise FixedPointError("shift must be non-negative")
        return Interval(self.lo >> bits, self.hi >> bits)

    def rounding_shr(self, bits: int) -> Interval:
        """Round-to-nearest right shift (``(x + half) >> bits``)."""
        if bits < 0:
            raise FixedPointError("shift must be non-negative")
        if bits == 0:
            return self
        half = 1 << (bits - 1)
        return Interval((self.lo + half) >> bits, (self.hi + half) >> bits)

    def shl(self, bits: int) -> Interval:
        if bits < 0:
            raise FixedPointError("shift must be non-negative")
        return Interval(self.lo << bits, self.hi << bits)

    def shift_add(self, terms: Sequence[tuple[int, int]]) -> Interval:
        """Bound of :func:`repro.fixedpoint.ops.shift_add_multiply`.

        Sums the per-term intervals; conservative because the terms all
        come from the same operand (correlation is ignored).
        """
        if not terms:
            raise FixedPointError("shift_add needs at least one term")
        total = Interval.point(0)
        for sign, shift in terms:
            if sign not in (1, -1):
                raise FixedPointError(f"term sign must be +1/-1, got {sign}")
            term = self.shr(shift)
            total = total + (term if sign == 1 else -term)
        return total

    def nonneg(self) -> Interval:
        """``max(x, 0)`` applied element-wise (the variance clamp)."""
        return Interval(max(self.lo, 0), max(self.hi, 0))

    def union(self, other: Interval) -> Interval:
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def max_abs(self) -> int:
        return max(abs(self.lo), abs(self.hi))

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def contains_interval(self, other: Interval) -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def fits_signed(self, bits: int) -> bool:
        """Whether every value fits a signed ``bits``-wide word."""
        if bits < 1:
            return False
        return (self.lo >= -(1 << (bits - 1))
                and self.hi <= (1 << (bits - 1)) - 1)

    def fits_qformat(self, fmt: QFormat) -> bool:
        return fmt.min_code <= self.lo and self.hi <= fmt.max_code

    @property
    def required_signed_bits(self) -> int:
        """Smallest signed word width holding every value."""
        bits = 1
        while not self.fits_signed(bits):
            bits += 1
        return bits

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def envelope(intervals: Iterable[Interval]) -> Interval:
    """Union of a non-empty collection of intervals."""
    result: Interval | None = None
    for interval in intervals:
        result = interval if result is None else result.union(interval)
    if result is None:
        raise FixedPointError("envelope of no intervals")
    return result
