"""SARIF 2.1.0 export for ``repro check`` findings.

`SARIF <https://sarifweb.azurewebsites.net/>`__ is the interchange
format code-scanning UIs (GitHub, VS Code) ingest; exporting it lets
the statcheck gate annotate PR diffs instead of only failing CI.  One
:class:`~repro.statcheck.findings.CheckReport` maps to one run of a
single ``repro-statcheck`` tool whose rule inventory is
:data:`RULE_DOCS`.

Only the stable core of the spec is emitted (tool + rules + results
with physical locations); optional blocks the consumers ignore are left
out so the artifact stays diffable.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .findings import CheckReport, Finding, sort_findings

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``severity`` -> SARIF ``level``.
LEVELS = {"error": "error", "warning": "warning", "info": "note"}

#: Rule inventory: code -> (name, short description).
RULE_DOCS: dict[str, tuple[str, str]] = {
    "OVF001": ("overflow-width", "Certified interval exceeds a declared "
               "register width"),
    "SCH001": ("schedule-overlap", "Two passes double-book a hardware unit"),
    "SCH002": ("schedule-bounds", "Event cycle accounting is inconsistent"),
    "SCH003": ("schedule-order", "Pinned schedule violates the paper's "
               "pass order"),
    "SCH004": ("schedule-dependency", "Consumer pass starts before its "
               "producer drains"),
    "REP001": ("pricing-literal", "Cycle cost written as a magic literal"),
    "REP002": ("pricing-parity", "UNIT_PRICING and CycleBreakdown disagree"),
    "REP003": ("trace-track", "Trace track name is not registered"),
    "REP004": ("float-cycles", "Cycle arithmetic leaves the integer domain"),
    "DET001": ("unseeded-rng", "Random draw from an unseeded generator in "
               "a simulation path"),
    "DET002": ("set-iteration", "Iteration over an unordered set feeds "
               "event ordering"),
    "DET003": ("wall-clock", "Wall-clock time read inside a simulation "
               "path"),
    "DET004": ("float-tiebreak", "Float equality used as an ordering "
               "tie-break"),
    "QFMT001": ("truncating-connection", "Connection narrows the word "
                "width with no declared requantize/truncate"),
    "QFMT002": ("orphan-certification", "Certified stage is not reachable "
                "from any input port"),
    "QFMT003": ("format-mismatch", "Q-format fractional widths differ "
                "across an unmarked connection"),
    "QFMT004": ("dangling-node", "Datapath node unreachable from the "
                "input ports"),
    "PRC001": ("unpriced-cycle-site", "Timeline booking names a unit with "
               "no UNIT_PRICING mapping"),
    "PRC002": ("unregistered-metric", "Emitted metric family is not in "
               "METRIC_FAMILIES"),
    "PRC003": ("stale-metric-family", "Registered metric family is never "
               "emitted"),
    "PRC004": ("dynamic-metric-name", "Metric/unit name is not statically "
               "resolvable"),
    "PRC005": ("unmapped-cycle-field", "CycleBreakdown field maps to no "
               "registered metric family"),
    "BAS001": ("stale-suppression", "Baseline entry matches no current "
               "finding"),
}


def _artifact_uri(finding: Finding) -> Optional[str]:
    """Repo-relative URI for a finding's file, if it has one.

    AST-based passes report paths relative to the source root
    (``repro/...``); the repository keeps that tree under ``src/``.
    """
    if finding.file is None:
        return None
    uri = finding.file.replace("\\", "/")
    if uri.startswith("repro/"):
        uri = f"src/{uri}"
    return uri


def _result(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.code,
        "level": LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
    }
    uri = _artifact_uri(finding)
    if uri is not None:
        region = {}
        if finding.line is not None:
            region = {"region": {"startLine": finding.line}}
        result["locations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri},
                **region,
            },
        }]
    if finding.details:
        result["properties"] = {
            key: value for key, value in finding.details.items()
        }
    return result


def to_sarif(report: CheckReport) -> dict[str, Any]:
    """Render one check report as a SARIF 2.1.0 log object."""
    used = sorted({f.code for f in report.findings})
    rules = []
    for code in used:
        name, description = RULE_DOCS.get(
            code, (code.lower(), "repro statcheck finding")
        )
        rules.append({
            "id": code,
            "name": name,
            "shortDescription": {"text": description},
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-statcheck",
                    "informationUri":
                        "https://github.com/paper-repro/repro",
                    "rules": rules,
                },
            },
            "results": [
                _result(finding)
                for finding in sort_findings(report.findings)
            ],
        }],
    }


def write_sarif(report: CheckReport, path: str) -> None:
    """Write the SARIF artifact the CI job uploads."""
    with open(path, "w") as handle:
        json.dump(to_sarif(report), handle, indent=1)
        handle.write("\n")
