"""Orchestrates the three statcheck passes behind ``repro check``.

:func:`run_check` runs the overflow certifier, the schedule/trace
linter and the AST lints for one configuration point, merges their
findings into a single :class:`~repro.statcheck.findings.CheckReport`,
and optionally writes the JSON artifact the CI job uploads.

The ``seed_bug`` hook deliberately breaks the configuration so tests
(and the CI job's self-test) can prove the gate actually fails:

* ``"sa-acc-width"`` shrinks the SA accumulator to one bit below the
  smallest width the point certifies;
* ``"double-book"`` shifts one pinned-schedule event backwards so two
  SA passes overlap.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from pathlib import Path
from typing import Optional

from ..config import paper_accelerator, transformer_base
from ..core.scheduler import TimelineEvent, schedule_mha
from ..errors import ConfigError
from .ast_lints import run_ast_lints
from .findings import CheckReport, Finding
from .overflow import OverflowPoint, certify_overflow, min_sa_acc_bits
from .schedule_lint import lint_paper_points, lint_schedule

#: Pass names accepted by ``skip``.
PASSES = ("overflow", "schedule", "ast")

#: Supported seeded bugs (see module docstring).
SEED_BUGS = ("sa-acc-width", "double-book")


def _double_booked_schedule():
    """The paper MHA timeline with its second SA pass shifted to overlap."""
    result = schedule_mha(transformer_base(), paper_accelerator())
    second = result.events[1]
    shift = min(50, second.start)
    result.events[1] = TimelineEvent(
        name=second.name, unit=second.unit,
        start=second.start - shift, end=second.end - shift,
        active_cycles=second.active_cycles,
    )
    return result


def run_check(
    point: Optional[OverflowPoint] = None,
    sa_acc_bits: Optional[int] = None,
    seed_bug: Optional[str] = None,
    skip: Sequence[str] = (),
    json_path: Optional[str] = None,
    ast_root: Optional[Path] = None,
) -> CheckReport:
    """Run every statcheck pass and return the merged report.

    Args:
        point: Configuration point to certify (default: the paper point,
            Transformer-base on the 64x64 SA).
        sa_acc_bits: Override the declared SA accumulator width.
        seed_bug: Deliberately break the run (one of :data:`SEED_BUGS`).
        skip: Pass names to leave out (subset of :data:`PASSES`).
        json_path: Where to write the JSON findings artifact, if given.
        ast_root: Source root for the AST lints (default: the installed
            package).
    """
    for name in skip:
        if name not in PASSES:
            raise ConfigError(f"unknown pass {name!r}; choose from {PASSES}")
    if seed_bug is not None and seed_bug not in SEED_BUGS:
        raise ConfigError(
            f"unknown seed_bug {seed_bug!r}; choose from {SEED_BUGS}"
        )
    point = point or OverflowPoint()
    if sa_acc_bits is not None:
        point = dataclasses.replace(point, sa_acc_bits=sa_acc_bits)
    if seed_bug == "sa-acc-width":
        point = dataclasses.replace(
            point, sa_acc_bits=min_sa_acc_bits(point) - 1
        )

    report = CheckReport(point=point.as_dict())
    if seed_bug:
        report.point["seed_bug"] = seed_bug

    if "overflow" not in skip:
        stages, findings = certify_overflow(point)
        report.certified = [stage.as_dict() for stage in stages]
        report.checks_run["overflow"] = len(stages)
        report.extend(findings)

    if "schedule" not in skip:
        checked, findings = lint_paper_points()
        if seed_bug == "double-book":
            findings = list(findings)
            findings.extend(lint_schedule(_double_booked_schedule()))
            checked += 1
        report.checks_run["schedule"] = checked
        report.extend(findings)

    if "ast" not in skip:
        counts, findings = run_ast_lints(root=ast_root)
        report.checks_run["ast"] = sum(counts.values())
        report.extend(findings)

    if json_path is not None:
        report.write_json(json_path)
    return report


def selftest_check(verbose: bool = False) -> list[str]:
    """Statcheck's entry in ``python -m repro selftest`` (check 6).

    Runs the full gate at the paper point *and* proves the gate can
    fail, by seeding the undersized-accumulator bug and requiring a
    finding.  Returns a list of problem strings (empty = pass).
    """
    problems: list[str] = []
    report = run_check()
    if not report.passed:
        for finding in report.errors:
            problems.append(f"statcheck: {finding.render()}")
    seeded = run_check(seed_bug="sa-acc-width", skip=("schedule", "ast"))
    if seeded.passed:
        problems.append(
            "statcheck: seeded sa-acc-width bug produced no finding "
            "(the overflow gate cannot fail)"
        )
    if verbose and not problems:
        total = sum(report.checks_run.values())
        print(f"  statcheck: {total} checks, 0 findings; "
              "seeded overflow correctly detected")
    return problems
