"""Orchestrates the statcheck passes behind ``repro check``.

:func:`run_check` runs six passes for one configuration point and
merges their findings into a single
:class:`~repro.statcheck.findings.CheckReport`:

* **overflow** — interval-arithmetic certification of every register;
* **schedule** — timeline/trace invariants on the paper's schedules;
* **ast** — REP001-004 source lints (pricing literals, parity, tracks);
* **det** — DET001-004 determinism lints over the simulation packages;
* **qformat** — the Q-format/width dataflow graph (QFMT001-004);
* **pricing** — whole-program pricing/telemetry coverage (PRC001-005).

The three source-scanning passes (``ast``, ``det``, ``pricing``)
dominate the runtime, so they are split into
:class:`~repro.statcheck.cache.AnalysisUnit` slices with honest
dependency sets and replayed from a content-hash cache when a
:class:`~repro.statcheck.cache.CheckCache` is supplied — a warm
``repro check --changed`` run reduces to hashing the tree.  The
pure-math passes re-run every time (they cost milliseconds).

The ``seed_bug`` hook deliberately breaks the run so tests (and the CI
job's self-proof) can show each gate actually fails:

* ``"sa-acc-width"`` — SA accumulator one bit below the certified
  minimum (overflow pass);
* ``"double-book"`` — one pinned SA pass shifted to overlap (schedule);
* ``"unseeded-rng"`` — synthetic sim module drawing from an unseeded
  generator (det, DET001);
* ``"set-order"`` — synthetic sim module dispatching from a bare set
  (det, DET002);
* ``"orphan-bound"`` — phantom StageBound no datapath node backs
  (qformat, QFMT002);
* ``"port-width"`` — the softmax row-sum port shrunk to 8 bits
  (qformat, QFMT001);
* ``"unpriced-cycle"`` — synthetic scheduler booking a ``dma2`` unit
  UNIT_PRICING does not map (pricing, PRC001);
* ``"unregistered-metric"`` — synthetic emission of a ``repro_*``
  family METRIC_FAMILIES does not register (pricing, PRC002).

Seeded runs never consult or populate the cache.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from pathlib import Path
from typing import Callable, Optional

from ..config import paper_accelerator, transformer_base
from ..core.scheduler import TimelineEvent, schedule_mha
from ..errors import ConfigError
from .ast_lints import run_ast_lints
from .baseline import load_baseline
from .cache import AnalysisUnit, CheckCache, run_units_uncached
from .det_lints import lint_determinism_source, sim_module_files
from .findings import CheckReport, Finding
from .overflow import OverflowPoint, certify_overflow, min_sa_acc_bits
from .pricing_graph import check_pricing
from .qformat import build_datapath_graph, check_graph
from .sarif import write_sarif
from .schedule_lint import lint_paper_points, lint_schedule

#: Pass names accepted by ``skip``.
PASSES = ("overflow", "schedule", "ast", "det", "qformat", "pricing")

#: Supported seeded bugs (see module docstring).
SEED_BUGS = (
    "sa-acc-width",
    "double-book",
    "unseeded-rng",
    "set-order",
    "orphan-bound",
    "port-width",
    "unpriced-cycle",
    "unregistered-metric",
)

#: Which pass each seeded bug breaks (the self-proof runs only that one).
SEED_BUG_PASS = {
    "sa-acc-width": "overflow",
    "double-book": "schedule",
    "unseeded-rng": "det",
    "set-order": "det",
    "orphan-bound": "qformat",
    "port-width": "qformat",
    "unpriced-cycle": "pricing",
    "unregistered-metric": "pricing",
}

_SEEDED_DET_SOURCES = {
    "unseeded-rng": (
        "repro/serving/_seeded_bug.py",
        "import numpy as np\n"
        "__simulation__ = True\n"
        "def jitter():\n"
        "    rng = np.random.default_rng()\n"
        "    return rng.random()\n",
    ),
    "set-order": (
        "repro/serving/_seeded_bug.py",
        "__simulation__ = True\n"
        "def dispatch(pending, emit):\n"
        "    for device in {1, 2, 3}:\n"
        "        emit(device)\n",
    ),
}

_SEEDED_PRICING_SOURCES = {
    "unpriced-cycle": {
        "repro/core/_seeded_bug.py":
            "def schedule(timeline):\n"
            "    timeline.module_event('rowgen', 'dma2', 0, 64)\n",
    },
    "unregistered-metric": {
        "repro/telemetry/_seeded_bug.py":
            "def record(registry):\n"
            "    registry.counter(\n"
            "        'repro_phantom_widget_total', 'seeded').inc(1)\n",
    },
}


def _double_booked_schedule():
    """The paper MHA timeline with its second SA pass shifted to overlap."""
    result = schedule_mha(transformer_base(), paper_accelerator())
    second = result.events[1]
    shift = min(50, second.start)
    result.events[1] = TimelineEvent(
        name=second.name, unit=second.unit,
        start=second.start - shift, end=second.end - shift,
        active_cycles=second.active_cycles,
    )
    return result


def _source_root(ast_root: Optional[Path]) -> Path:
    if ast_root is not None:
        return Path(ast_root)
    return Path(__file__).resolve().parents[2]


def _package_files(root: Path) -> list[Path]:
    package = root / "repro"
    return sorted(package.rglob("*.py")) if package.is_dir() else []


def _engine_file(name: str) -> Path:
    return Path(__file__).resolve().parent / name


def build_units(
    skip: Sequence[str] = (),
    ast_root: Optional[Path] = None,
) -> list[AnalysisUnit]:
    """The cacheable source-scanning slices of one check run.

    ``ast`` and ``pricing`` are whole-program (REP002 parity and PRC
    coverage cross files), so they depend on the full tree; the DET
    lints are per-file, so each simulation module is its own unit and
    touching one re-analyzes only that unit plus the whole-program
    ones.
    """
    root = _source_root(ast_root)
    all_files = tuple(_package_files(root))
    units: list[AnalysisUnit] = []
    if "ast" not in skip:
        def _run_ast() -> tuple[int, Sequence[Finding]]:
            counts, findings = run_ast_lints(root=root)
            return sum(counts.values()), findings

        units.append(AnalysisUnit(
            name="ast", deps=all_files, run=_run_ast,
        ))
    if "det" not in skip:
        det_engine = _engine_file("det_lints.py")

        def _det_runner(path: Path) -> Callable[
            [], tuple[int, Sequence[Finding]]
        ]:
            def _run() -> tuple[int, Sequence[Finding]]:
                rel = path.relative_to(root).as_posix()
                findings = lint_determinism_source(path.read_text(), rel)
                return 1, findings
            return _run

        for path in sim_module_files(root):
            rel = path.relative_to(root).as_posix()
            units.append(AnalysisUnit(
                name=f"det:{rel}",
                deps=(path, det_engine),
                run=_det_runner(path),
            ))
    if "pricing" not in skip:
        def _run_pricing() -> tuple[int, Sequence[Finding]]:
            return check_pricing(root=root)

        units.append(AnalysisUnit(
            name="pricing",
            deps=all_files + (_engine_file("pricing_graph.py"),),
            run=_run_pricing,
        ))
    return units


def run_check(
    point: Optional[OverflowPoint] = None,
    sa_acc_bits: Optional[int] = None,
    seed_bug: Optional[str] = None,
    skip: Sequence[str] = (),
    json_path: Optional[str] = None,
    ast_root: Optional[Path] = None,
    sarif_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
    cache: Optional[CheckCache] = None,
) -> CheckReport:
    """Run every statcheck pass and return the merged report.

    Args:
        point: Configuration point to certify (default: the paper point,
            Transformer-base on the 64x64 SA).
        sa_acc_bits: Override the declared SA accumulator width.
        seed_bug: Deliberately break the run (one of :data:`SEED_BUGS`).
        skip: Pass names to leave out (subset of :data:`PASSES`).
        json_path: Where to write the JSON findings artifact, if given.
        ast_root: Source root for the source-scanning passes (default:
            the installed package).
        sarif_path: Where to write a SARIF 2.1.0 artifact, if given.
        baseline_path: Reviewed suppression file; suppressed findings
            move to ``report.suppressed`` and stale entries warn
            (BAS001).
        cache: Incremental content-hash cache for the source-scanning
            passes; ignored when ``seed_bug`` is set.
    """
    for name in skip:
        if name not in PASSES:
            raise ConfigError(f"unknown pass {name!r}; choose from {PASSES}")
    if seed_bug is not None and seed_bug not in SEED_BUGS:
        raise ConfigError(
            f"unknown seed_bug {seed_bug!r}; choose from {SEED_BUGS}"
        )
    point = point or OverflowPoint()
    if sa_acc_bits is not None:
        point = dataclasses.replace(point, sa_acc_bits=sa_acc_bits)
    if seed_bug == "sa-acc-width":
        point = dataclasses.replace(
            point, sa_acc_bits=min_sa_acc_bits(point) - 1
        )

    report = CheckReport(point=point.as_dict())
    if seed_bug:
        report.point["seed_bug"] = seed_bug
        cache = None   # seeded runs must never pollute or reuse the cache

    certified_names: list[str] = []
    if "overflow" not in skip:
        stages, findings = certify_overflow(point)
        certified_names = [stage.name for stage in stages]
        report.certified = [stage.as_dict() for stage in stages]
        report.checks_run["overflow"] = len(stages)
        report.extend(findings)

    if "schedule" not in skip:
        checked, findings = lint_paper_points()
        if seed_bug == "double-book":
            findings = list(findings)
            findings.extend(lint_schedule(_double_booked_schedule()))
            checked += 1
        report.checks_run["schedule"] = checked
        report.extend(findings)

    if "qformat" not in skip:
        graph = build_datapath_graph(point)
        extra_certified: tuple[str, ...] = ()
        if seed_bug == "orphan-bound":
            extra_certified = ("softmax.ghost_reg",)
        elif seed_bug == "port-width":
            graph.override_width("softmax.row_sum", 8)
        if "overflow" in skip:
            stages, _ = certify_overflow(point)
            certified_names = [stage.name for stage in stages]
        checked, findings = check_graph(
            graph, certified_names=certified_names + list(extra_certified)
        )
        report.checks_run["qformat"] = checked
        report.extend(findings)

    # Cached source-scanning passes (ast / det / pricing).
    units = build_units(skip=skip, ast_root=ast_root)
    if units:
        if cache is not None:
            results = cache.run_units(units)
            report.cache_stats = {
                "hits": cache.hits, "misses": cache.misses,
            }
        else:
            results = run_units_uncached(units)
        for unit_name, result in results.items():
            pass_name = unit_name.split(":", 1)[0]
            report.checks_run[pass_name] = (
                report.checks_run.get(pass_name, 0) + result.checks
            )
            report.extend(result.findings)

    # Seeded source-level bugs run outside the cache, on synthetic input.
    if seed_bug in _SEEDED_DET_SOURCES and "det" not in skip:
        rel, source = _SEEDED_DET_SOURCES[seed_bug]
        report.extend(lint_determinism_source(source, rel))
        report.checks_run["det"] = report.checks_run.get("det", 0) + 1
    if seed_bug in _SEEDED_PRICING_SOURCES and "pricing" not in skip:
        extra = _SEEDED_PRICING_SOURCES[seed_bug]
        checked, findings = check_pricing(
            root=_source_root(ast_root), extra_sources=extra,
        )
        seeded_only = [
            f for f in findings if f.file in extra
        ]
        report.extend(seeded_only)

    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        kept, suppressed, stale = baseline.apply(report.findings)
        report.findings = kept
        report.suppressed = suppressed
        report.extend(baseline.stale_findings(stale))

    if cache is not None:
        cache.save()
    if json_path is not None:
        report.write_json(json_path)
    if sarif_path is not None:
        write_sarif(report, sarif_path)
    return report


def selftest_check(verbose: bool = False) -> list[str]:
    """Statcheck's entry in ``python -m repro selftest`` (check 6).

    Runs the full gate at the paper point *and* proves each engine's
    gate can fail, by seeding one bug per pass family and requiring an
    error finding.  Returns a list of problem strings (empty = pass).
    """
    problems: list[str] = []
    report = run_check()
    if not report.passed:
        for finding in report.errors:
            problems.append(f"statcheck: {finding.render()}")
    for bug in ("sa-acc-width", "unseeded-rng", "orphan-bound",
                "unpriced-cycle"):
        target = SEED_BUG_PASS[bug]
        seeded = run_check(
            seed_bug=bug,
            skip=tuple(p for p in PASSES
                       if p not in (target, "overflow")),
        )
        if seeded.passed:
            problems.append(
                f"statcheck: seeded {bug} bug produced no finding "
                f"(the {target} gate cannot fail)"
            )
    if verbose and not problems:
        total = sum(report.checks_run.values())
        print(f"  statcheck: {total} checks, 0 findings; "
              "all seeded bugs correctly detected")
    return problems
