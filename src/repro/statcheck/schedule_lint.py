"""Structural linter for scheduler timelines and trace spans.

Checks the contracts every :class:`~repro.core.scheduler.ScheduleResult`
and :class:`~repro.core.trace.TraceSpan` stream must obey:

* ``SCH001`` — no double-booking: each hardware unit (SA, softmax,
  LayerNorm, DRAM channel) executes at most one event at a time.
* ``SCH002`` — well-formed events: positive duration, ``active_cycles``
  inside the occupied interval, unit known to the trace exporter.
* ``SCH003`` — the reported ``total_cycles`` equals the timeline's
  makespan (last event end).
* ``SCH004`` — cycle conservation against the closed-form model: the
  scheduler's total and memsys stalls equal the analytic
  :class:`~repro.core.cycle_model.CycleBreakdown`, and the SA events'
  active cycles equal the breakdown's ``active_cycles`` term.
* ``SCH005`` — pinned paper points: the Transformer-base schedules
  reproduce the frozen 21578 / 39052 / 21834 cycle totals, plus the
  decode-subsystem points (fused s=512 prefill, one decode step).
* ``SPN001``/``SPN002`` — the same exclusivity / well-formedness checks
  for :class:`TraceSpan` streams (serving traces), with exclusive
  tracks selected by fnmatch patterns.
"""

from __future__ import annotations

from collections.abc import Sequence
from fnmatch import fnmatch
from typing import Optional

from ..config import AcceleratorConfig, ModelConfig, paper_accelerator, transformer_base
from ..core.cycle_model import (
    CycleBreakdown,
    ffn_cycle_breakdown,
    mha_cycle_breakdown,
)
from ..core.scheduler import (
    ScheduleResult,
    TimelineEvent,
    schedule_ffn,
    schedule_mha,
)
from ..core.trace import _UNIT_TRACKS, TraceSpan
from .findings import Finding

#: Hardware units a timeline may book (the trace exporter's tracks).
KNOWN_UNITS = tuple(_UNIT_TRACKS)

#: Frozen Transformer-base cycle totals (seed values; see
#: tests/core/test_scheduler.py).  Each entry: (label, accelerator
#: overrides, block, pinned total).
PINNED_PAPER_POINTS: tuple[tuple[str, dict[str, int], str, int], ...] = (
    ("paper", {}, "mha", 21_578),
    ("paper", {}, "ffn", 39_052),
    ("wl8", {"weight_load_cycles": 8}, "mha", 21_834),
    ("wl8", {"weight_load_cycles": 8}, "ffn", 39_372),
    ("wl64", {"weight_load_cycles": 64}, "mha", 23_626),
    ("wl64", {"weight_load_cycles": 64}, "ffn", 41_612),
    # Decode-subsystem points: the fused online-softmax prefill at
    # s = 512 and one autoregressive decode step at context 64 (which
    # is structurally the base MHA schedule, hence the shared total).
    ("paper", {}, "fused512", 312_538),
    ("paper", {}, "decode64", 21_578),
    # Compress-subsystem points: block-circulant b=8 pays the
    # row-generator setup on every weight pass (slower without a
    # memory system, the bytes win shows up in memsys stalls); 2:4
    # sparsity halves the weight-pass chains net of index decode.
    ("paper", {}, "circ8_mha", 23_626),
    ("paper", {}, "circ8_ffn", 43_148),
    ("paper", {}, "nm24_mha", 17_482),
    ("paper", {}, "nm24_ffn", 30_860),
)

#: Span tracks that model an exclusive resource in serving traces.
DEFAULT_EXCLUSIVE_TRACKS = ("device*", "sa", "softmax", "layernorm", "dram")


def _overlap_findings(
    code: str,
    check: str,
    resource: str,
    events: Sequence[tuple[str, float, float]],
) -> list[Finding]:
    """Findings for overlapping ``(name, start, end)`` intervals."""
    findings: list[Finding] = []
    ordered = sorted(events, key=lambda item: (item[1], item[2]))
    for (prev_name, _, prev_end), (name, start, end) in zip(
        ordered, ordered[1:]
    ):
        if start < prev_end:
            findings.append(Finding(
                code=code,
                check=check,
                message=(
                    f"double-booked {resource!r}: {name!r} starts at "
                    f"{start} before {prev_name!r} ends at {prev_end}"
                ),
                details={
                    "resource": resource,
                    "first": prev_name,
                    "second": name,
                    "overlap": prev_end - start,
                },
            ))
    return findings


def lint_schedule(
    result: ScheduleResult,
    breakdown: Optional[CycleBreakdown] = None,
) -> list[Finding]:
    """Lint one ResBlock timeline (SCH001-SCH004)."""
    findings: list[Finding] = []
    for event in result.events:
        problems = []
        if event.end <= event.start:
            problems.append(
                f"empty/negative interval [{event.start}, {event.end})"
            )
        if event.active_cycles < 0:
            problems.append(f"negative active_cycles {event.active_cycles}")
        elif event.active_cycles > event.duration:
            problems.append(
                f"active_cycles {event.active_cycles} exceed duration "
                f"{event.duration}"
            )
        if event.unit not in KNOWN_UNITS:
            problems.append(
                f"unit {event.unit!r} is not a trace track "
                f"{sorted(KNOWN_UNITS)}"
            )
        for problem in problems:
            findings.append(Finding(
                code="SCH002",
                check="schedule",
                message=f"malformed event {event.name!r}: {problem}",
                details={"event": event.name, "unit": event.unit},
            ))

    by_unit: dict[str, list[TimelineEvent]] = {}
    for event in result.events:
        by_unit.setdefault(event.unit, []).append(event)
    for unit, events in sorted(by_unit.items()):
        findings.extend(_overlap_findings(
            "SCH001", "schedule", unit,
            [(e.name, e.start, e.end) for e in events],
        ))

    if result.events:
        makespan = max(e.end for e in result.events)
        if result.total_cycles != makespan:
            findings.append(Finding(
                code="SCH003",
                check="schedule",
                message=(
                    f"{result.block} total_cycles={result.total_cycles} "
                    f"!= timeline makespan {makespan}"
                ),
                details={"total_cycles": result.total_cycles,
                         "makespan": makespan},
            ))

    if breakdown is not None:
        sa_active = sum(
            e.active_cycles for e in result.events if e.unit == "sa"
        )
        checks = (
            ("total_cycles", result.total_cycles, breakdown.total_cycles),
            ("memsys_stall_cycles", result.memsys_stall_cycles,
             breakdown.memsys_stall_cycles),
            ("sa active cycles", sa_active, breakdown.active_cycles),
            ("ideal_cycles", result.ideal_sa_cycles, breakdown.ideal_cycles),
        )
        for label, scheduled, analytic in checks:
            if scheduled != analytic:
                findings.append(Finding(
                    code="SCH004",
                    check="schedule",
                    message=(
                        f"{result.block} {label} conservation violated: "
                        f"scheduler says {scheduled}, closed-form model "
                        f"says {analytic}"
                    ),
                    details={"quantity": label, "scheduler": scheduled,
                             "cycle_model": analytic},
                ))
    return findings


def lint_paper_points(
    model: Optional[ModelConfig] = None,
    acc: Optional[AcceleratorConfig] = None,
) -> tuple[int, list[Finding]]:
    """Lint the pinned Transformer-base schedules (SCH001-SCH005).

    Builds each frozen operating point, lints its timeline, checks
    scheduler/closed-form agreement, and pins the totals to the seed
    values.  Returns ``(points_checked, findings)``.
    """
    model = model or transformer_base()
    base_acc = acc or paper_accelerator()
    findings: list[Finding] = []
    checked = 0
    for label, overrides, block, pinned in PINNED_PAPER_POINTS:
        point_acc = (
            base_acc.with_updates(**overrides) if overrides else base_acc
        )
        if block == "mha":
            result = schedule_mha(model, point_acc)
            breakdown = mha_cycle_breakdown(model, point_acc)
        elif block == "ffn":
            result = schedule_ffn(model, point_acc)
            breakdown = ffn_cycle_breakdown(model, point_acc)
        elif block == "fused512":
            # Lazy import: repro.decode builds on repro.core; pulling
            # it in at module scope would make the core lint depend on
            # the decode subsystem even when it is never checked.
            from ..decode import fused_mha_breakdown, schedule_fused_mha
            result = schedule_fused_mha(model, point_acc, 512)
            breakdown = fused_mha_breakdown(model, point_acc, 512)
        elif block == "decode64":
            from ..decode import (
                decode_step_breakdown,
                schedule_decode_step,
            )
            result = schedule_decode_step(model, point_acc, 64)
            breakdown = decode_step_breakdown(model, point_acc, 64)
        else:  # circ8_* / nm24_* — compressed weight passes
            from ..compress import (
                compressed_ffn_breakdown,
                compressed_mha_breakdown,
                schedule_compressed_ffn,
                schedule_compressed_mha,
            )
            from ..config import circulant_spec, nm_sparse_spec
            spec = (circulant_spec(8) if block.startswith("circ8")
                    else nm_sparse_spec(2, 4))
            if block.endswith("_mha"):
                result = schedule_compressed_mha(model, point_acc, spec)
                breakdown = compressed_mha_breakdown(model, point_acc, spec)
            else:
                result = schedule_compressed_ffn(model, point_acc, spec)
                breakdown = compressed_ffn_breakdown(model, point_acc, spec)
        findings.extend(lint_schedule(result, breakdown))
        if result.total_cycles != pinned:
            findings.append(Finding(
                code="SCH005",
                check="schedule",
                message=(
                    f"pinned point drifted: {label}/{block} now totals "
                    f"{result.total_cycles} cycles, seed pinned {pinned}"
                ),
                details={"point": label, "block": block,
                         "expected": pinned,
                         "actual": result.total_cycles},
            ))
        checked += 1
    return checked, findings


def lint_spans(
    spans: Sequence[TraceSpan],
    exclusive_tracks: Sequence[str] = DEFAULT_EXCLUSIVE_TRACKS,
) -> list[Finding]:
    """Lint a serving-trace span stream (SPN001/SPN002).

    Tracks matching any fnmatch pattern in ``exclusive_tracks`` model a
    physical resource and must not carry overlapping spans; every span
    must have a non-negative duration.
    """
    findings: list[Finding] = []
    by_track: dict[str, list[TraceSpan]] = {}
    for span in spans:
        if span.duration_us < 0:
            findings.append(Finding(
                code="SPN002",
                check="schedule",
                message=(
                    f"span {span.name!r} on track {span.track!r} has "
                    f"negative duration {span.duration_us}"
                ),
                details={"span": span.name, "track": span.track},
            ))
        by_track.setdefault(span.track, []).append(span)
    for track, track_spans in sorted(by_track.items()):
        if not any(fnmatch(track, pat) for pat in exclusive_tracks):
            continue
        findings.extend(_overlap_findings(
            "SPN001", "schedule", track,
            [(s.name, s.start_us, s.end_us) for s in track_spans],
        ))
    return findings
