"""Typed findings and the shared reporter for every static-analysis pass.

All three ``repro.statcheck`` passes — the overflow certifier, the
schedule/trace linter and the AST lints — speak the same language: a
:class:`Finding` names what is wrong, where, and how bad it is, and a
:class:`CheckReport` aggregates everything one ``repro check`` run saw
(including the proved-safe stage bounds, so the JSON artifact documents
*why* the datapath cannot overflow, not just that no check fired).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Optional

#: Severity levels in increasing order of importance.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One defect reported by a static-analysis pass.

    Attributes:
        code: Stable identifier (``OVF001``/``SCH00x``/``REP00x``).
        message: Human-readable one-line description.
        severity: ``"error"`` findings fail ``repro check``;
            ``"warning"``/``"info"`` findings are reported only.
        file: Source file the finding anchors to (AST lints), if any.
        line: 1-indexed line within ``file``, if any.
        check: Which pass produced it (``overflow``/``schedule``/``ast``).
        details: Extra structured context (exact bounds, event names,
            breaking configurations) for the JSON artifact.
    """

    code: str
    message: str
    severity: str = "error"
    file: Optional[str] = None
    line: Optional[int] = None
    check: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        """``file:line`` anchor, or an empty string for config findings."""
        if self.file is None:
            return ""
        if self.line is None:
            return self.file
        return f"{self.file}:{self.line}"

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "check": self.check,
            "details": dict(self.details),
        }

    def render(self) -> str:
        """One-line text rendering (``CODE severity location message``)."""
        loc = self.location
        prefix = f"{self.code} [{self.severity}]"
        return f"{prefix} {loc + ': ' if loc else ''}{self.message}"


def _severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity)


def sort_findings(findings: Sequence[Finding]) -> list[Finding]:
    """Order findings most severe first, then by code and location."""
    return sorted(
        findings,
        key=lambda f: (
            -_severity_rank(f.severity),
            f.code,
            f.file or "",
            f.line or 0,
        ),
    )


@dataclass
class CheckReport:
    """Aggregated result of one ``repro check`` run.

    Attributes:
        findings: Every finding from every executed pass.
        certified: Proved-safe stage bounds from the overflow certifier
            (one dict per stage: name, interval, declared/required bits,
            headroom), recorded even when no finding fired.
        checks_run: Per-pass count of individual checks executed, so an
            all-green report still shows the coverage it bought.
        point: Description of the configuration point that was checked.
        suppressed: Findings a reviewed baseline file silenced (kept so
            the artifact still shows them, marked as suppressed).
        cache_stats: ``{"hits": n, "misses": m}`` when the incremental
            cache was consulted (empty on cold/uncached runs).
    """

    findings: list[Finding] = field(default_factory=list)
    certified: list[dict[str, Any]] = field(default_factory=list)
    checks_run: dict[str, int] = field(default_factory=dict)
    point: dict[str, Any] = field(default_factory=dict)
    suppressed: list[Finding] = field(default_factory=list)
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def passed(self) -> bool:
        """True when no error-severity finding fired."""
        return not self.errors

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def summary(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        counts["checks_run"] = sum(self.checks_run.values())
        counts["suppressed"] = len(self.suppressed)
        return counts

    def render_text(self) -> str:
        """Multi-line human-readable report."""
        lines: list[str] = []
        total_checks = sum(self.checks_run.values())
        per_pass = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.checks_run.items())
        )
        lines.append(
            f"statcheck — {total_checks} checks ({per_pass or 'none'})"
        )
        if self.point:
            desc = ", ".join(f"{k}={v}" for k, v in self.point.items())
            lines.append(f"point: {desc}")
        if self.cache_stats:
            lines.append(
                f"cache: {self.cache_stats.get('hits', 0)} hit(s), "
                f"{self.cache_stats.get('misses', 0)} miss(es)"
            )
        ordered = sort_findings(self.findings)
        if not ordered:
            lines.append("no findings — all declared widths and schedule "
                         "invariants hold")
        for finding in ordered:
            lines.append(finding.render())
        summary = self.summary()
        tail = (
            f"{summary['error']} error(s), {summary['warning']} warning(s), "
            f"{summary['info']} info"
        )
        if self.suppressed:
            tail += f", {len(self.suppressed)} suppressed by baseline"
        lines.append(tail)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        payload = {
            "point": dict(self.point),
            "summary": self.summary(),
            "checks_run": dict(self.checks_run),
            "findings": [f.as_dict() for f in sort_findings(self.findings)],
            "certified": [dict(stage) for stage in self.certified],
        }
        if self.suppressed:
            payload["suppressed"] = [
                f.as_dict() for f in sort_findings(self.suppressed)
            ]
        if self.cache_stats:
            payload["cache"] = dict(self.cache_stats)
        return payload

    def write_json(self, path: str) -> None:
        """Write the JSON artifact consumed by the CI job."""
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1, default=_jsonable)


def _jsonable(value: Any) -> Any:
    if isinstance(value, Mapping):
        return dict(value)
    return str(value)
