"""DET determinism lints for the discrete-event simulators.

The serving, cluster and decode simulators promise *seeded determinism*:
the same config (and therefore the same seed) must replay the exact same
event sequence.  The dynamic tests check this on pinned scenarios; these
AST lints prove the syntactic preconditions on **all** code paths of the
simulation packages:

* ``DET001`` — every RNG draw must be reachable from a seeded
  ``numpy.random.Generator``: no stdlib ``random`` module draws, no
  global ``numpy.random`` draws, no ``default_rng()`` without a seed,
  and no draw on an rng-named receiver that is neither a
  ``Generator``-annotated parameter nor assigned from a seeded
  ``default_rng(...)``.
* ``DET002`` — no iteration over ``set``/``frozenset`` values (loop,
  comprehension, or ``list``/``tuple``/``iter`` conversion): set order
  is salted per process, so any event ordering or sort key fed from it
  diverges between runs.  ``sorted(...)`` over a set is fine.
* ``DET003`` — no wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now`` and friends) inside simulation code; simulated time
  comes from the event heap only.
* ``DET004`` — no float equality (``==``/``!=``) in event comparators
  (``__lt__``/``__eq__``/... methods and ``key=`` lambdas): ties between
  float timestamps must break on a deterministic integer sequence
  number, never on float identity.

Modules are in scope when they live under one of :data:`SIM_PACKAGES`
or declare a module-level ``__simulation__ = True`` marker (the
annotation hook for simulators that live elsewhere).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Optional, Union

from .findings import Finding

#: Package sub-trees (repo-relative, posix) whose modules are linted.
SIM_PACKAGES = ("repro/serving", "repro/cluster", "repro/decode")

#: stdlib ``random`` module functions that draw from the global RNG.
STDLIB_DRAWS = frozenset({
    "random", "uniform", "normalvariate", "gauss", "expovariate",
    "randint", "randrange", "choice", "choices", "shuffle", "sample",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
})

#: ``numpy.random.Generator`` draw methods (also the legacy global
#: ``numpy.random.*`` functions of the same names).
GENERATOR_DRAWS = frozenset({
    "random", "uniform", "normal", "standard_normal", "exponential",
    "poisson", "integers", "choice", "shuffle", "permutation",
    "gamma", "beta", "binomial", "lognormal", "geometric", "multinomial",
    "standard_exponential", "randint", "rand", "randn",
})

#: ``(module, attribute)`` pairs that read the wall clock.
WALL_CLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "time_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
})

#: Receiver names treated as RNG handles for the seeded-dataflow check.
_RNG_NAME = re.compile(r"(^|_)rng$|^gen$|^generator$")

#: Attribute/variable names treated as float-valued in comparators.
_FLOATY_NAME = re.compile(
    r"(_us|_ms|_s|_secs|_seconds|_rate|_frac)$|latency|deadline"
)

#: Comparator method names DET004 inspects.
_COMPARATOR_METHODS = frozenset({
    "__lt__", "__le__", "__gt__", "__ge__", "__eq__", "__ne__",
})

DET_CODES = ("DET001", "DET002", "DET003", "DET004")


def _attr_chain(node: ast.expr) -> Optional[tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_names(node: Optional[ast.expr]) -> str:
    """Flat text of an annotation expression (best effort)."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""


class _ModuleContext:
    """Import aliases and module-wide seeded-RNG assignments."""

    def __init__(self, tree: ast.Module) -> None:
        self.random_aliases: set[str] = set()
        self.numpy_aliases: set[str] = set()
        self.time_aliases: set[str] = set()
        self.datetime_aliases: set[str] = set()
        # direct imports: local name -> (module, attr)
        self.direct: dict[str, tuple[str, str]] = {}
        self.seeded_attrs: set[str] = set()
        self.simulation_marker = False
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_aliases.add(local)
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(local)
                    elif alias.name == "time":
                        self.time_aliases.add(local)
                    elif alias.name == "datetime":
                        self.datetime_aliases.add(local)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    if module in ("random", "numpy.random", "time",
                                  "datetime"):
                        self.direct[local] = (
                            module.split(".")[-1], alias.name
                        )
            elif isinstance(node, ast.Assign):
                # __simulation__ marker and self.<rng> = default_rng(seed)
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == "__simulation__"):
                        self.simulation_marker = True
                    if (isinstance(target, ast.Attribute)
                            and _RNG_NAME.search(target.attr)
                            and _is_seeded_default_rng(node.value)):
                        self.seeded_attrs.add(target.attr)

    def is_numpy_random_chain(
        self, chain: tuple[str, ...]
    ) -> Optional[str]:
        """Terminal attr when ``chain`` is ``np.random.<attr>``."""
        if (len(chain) == 3 and chain[0] in self.numpy_aliases
                and chain[1] == "random"):
            return chain[2]
        return None


def _is_seeded_default_rng(node: ast.expr) -> bool:
    """True for ``default_rng(<something>)`` / ``np.random.default_rng(x)``."""
    if not isinstance(node, ast.Call):
        return False
    chain = _attr_chain(node.func)
    if chain is None:
        return False
    if chain[-1] not in ("default_rng", "SeedSequence", "Generator"):
        return False
    return bool(node.args) or bool(node.keywords)


def _is_unseeded_default_rng(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = _attr_chain(node.func)
    if chain is None or chain[-1] != "default_rng":
        return False
    return not node.args and not node.keywords


_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _seeded_names(func: _FuncNode, ctx: _ModuleContext) -> set[str]:
    """Names provably bound to a seeded Generator inside ``func``."""
    seeded: set[str] = set()
    for arg in (list(func.args.posonlyargs) + list(func.args.args)
                + list(func.args.kwonlyargs)):
        if "Generator" in _annotation_names(arg.annotation):
            seeded.add(arg.arg)
    # A Generator-typed annotated assignment is the same reviewed
    # assertion as a Generator-typed parameter: the developer declares
    # the source seeded (e.g. ``rng: np.random.Generator =
    # injector.rng`` aliasing a FaultInjector's seeded stream).
    for node in ast.walk(func):
        if (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and "Generator" in _annotation_names(node.annotation)):
            seeded.add(node.target.id)
    # iterate to a fixed point so rng2 = rng.spawn(...)[0] chains resolve
    for _ in range(3):
        grew = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            derived = _is_seeded_default_rng(value)
            if not derived and isinstance(value, ast.Call):
                chain = _attr_chain(value.func)
                if (chain is not None and len(chain) >= 2
                        and chain[0] in seeded
                        and chain[-1] in ("spawn", "bit_generator")):
                    derived = True
            if not derived and isinstance(value, ast.Subscript):
                inner = value.value
                if isinstance(inner, ast.Call):
                    chain = _attr_chain(inner.func)
                    if (chain is not None and len(chain) >= 2
                            and chain[0] in seeded
                            and chain[-1] == "spawn"):
                        derived = True
            if derived:
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id not in seeded):
                        seeded.add(target.id)
                        grew = True
        if not grew:
            break
    return seeded


def _direct_children(node: ast.AST) -> tuple[list[ast.Call], list[_FuncNode]]:
    """Calls directly inside ``node`` and its nested function defs.

    "Directly" means without descending into nested function bodies —
    those form their own scopes (with inherited seeded names).
    """
    calls: list[ast.Call] = []
    nested: list[_FuncNode] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append(child)
            continue
        if isinstance(child, ast.Call):
            calls.append(child)
        stack.extend(ast.iter_child_nodes(child))
    return calls, nested


def _rng_scopes(
    tree: ast.Module, ctx: _ModuleContext
) -> list[tuple[ast.AST, set[str], list[ast.Call]]]:
    """``(scope node, seeded names, direct calls)`` for every scope.

    Seeded names flow lexically: a closure inherits every name its
    enclosing functions proved seeded (``fault_rng`` assigned in the
    driver, drawn inside a nested dispatch helper).
    """
    scopes: list[tuple[ast.AST, set[str], list[ast.Call]]] = []
    module_seeded: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and _is_seeded_default_rng(
                node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_seeded.add(target.id)

    def visit(node: ast.AST, inherited: set[str]) -> None:
        calls, nested = _direct_children(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            seeded = inherited | _seeded_names(node, ctx)
        else:
            seeded = set(inherited)
        scopes.append((node, seeded, calls))
        for func in nested:
            visit(func, seeded)

    visit(tree, module_seeded)
    return scopes


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _set_typed_names(tree: ast.AST) -> set[str]:
    """Names assigned from set expressions anywhere in ``tree``."""
    names: set[str] = set()
    for _ in range(2):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_expr(
                    node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _floaty_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.Attribute) and _FLOATY_NAME.search(node.attr):
        return True
    if isinstance(node, ast.Name) and _FLOATY_NAME.search(node.id):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    return False


def _comparator_nodes(tree: ast.Module) -> list[ast.AST]:
    """Function bodies DET004 inspects: rich comparisons and key= lambdas."""
    contexts: list[ast.AST] = []
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _COMPARATOR_METHODS):
            contexts.append(node)
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "key" and isinstance(kw.value, ast.Lambda):
                    contexts.append(kw.value)
    return contexts


def lint_determinism_source(
    source: str,
    rel_path: str,
    codes: tuple[str, ...] = DET_CODES,
) -> list[Finding]:
    """Run the DET rules over one simulation-module source string."""
    tree = ast.parse(source, filename=rel_path)
    ctx = _ModuleContext(tree)
    findings: list[Finding] = []
    wanted = set(codes)

    def report(code: str, line: int, message: str, **details: object) -> None:
        findings.append(Finding(
            code=code, check="det", file=rel_path, line=line,
            message=message, details=dict(details),
        ))

    # ---------------- DET001: unseeded RNG draws -----------------------
    if "DET001" in wanted:
        for scope_node, seeded, calls in _rng_scopes(tree, ctx):
            for call in calls:
                chain = _attr_chain(call.func)
                if chain is None:
                    continue
                head, tail = chain[0], chain[-1]
                # stdlib random module draws
                if (len(chain) == 2 and head in ctx.random_aliases
                        and tail in STDLIB_DRAWS):
                    report(
                        "DET001", call.lineno,
                        f"stdlib random.{tail}() draws from the process-"
                        "global RNG; thread a seeded numpy Generator "
                        "instead", draw=tail,
                    )
                    continue
                # from random import shuffle
                if len(chain) == 1 and ctx.direct.get(tail, ("", ""))[0] \
                        == "random" and tail in STDLIB_DRAWS:
                    report(
                        "DET001", call.lineno,
                        f"stdlib random draw {tail}() imported directly; "
                        "thread a seeded numpy Generator instead",
                        draw=tail,
                    )
                    continue
                # numpy.random global draws / unseeded default_rng
                np_attr = ctx.is_numpy_random_chain(chain)
                if np_attr is not None:
                    if np_attr == "default_rng" and not call.args \
                            and not call.keywords:
                        report(
                            "DET001", call.lineno,
                            "default_rng() without a seed draws OS "
                            "entropy; pass the scenario seed",
                        )
                    elif np_attr in GENERATOR_DRAWS:
                        report(
                            "DET001", call.lineno,
                            f"numpy.random.{np_attr}() uses the global "
                            "legacy RNG; draw from a seeded Generator",
                            draw=np_attr,
                        )
                    continue
                if tail == "default_rng" and len(chain) == 1 \
                        and not call.args and not call.keywords:
                    report(
                        "DET001", call.lineno,
                        "default_rng() without a seed draws OS entropy; "
                        "pass the scenario seed",
                    )
                    continue
                # draw on an rng-named receiver that is not provably seeded
                if (len(chain) == 2 and tail in GENERATOR_DRAWS
                        and _RNG_NAME.search(head)
                        and head not in seeded):
                    if isinstance(call.func, ast.Attribute) and isinstance(
                            call.func.value, ast.Attribute):
                        continue  # self.x.draw handled via seeded_attrs
                    report(
                        "DET001", call.lineno,
                        f"draw {head}.{tail}() on an RNG that is not "
                        "provably seeded in this scope (annotate the "
                        "parameter np.random.Generator or assign from "
                        "default_rng(seed))", receiver=head, draw=tail,
                    )
                # self.<rng>.draw(): receiver attr must be seeded somewhere
                if (isinstance(call.func, ast.Attribute)
                        and tail in GENERATOR_DRAWS and len(chain) >= 3
                        and _RNG_NAME.search(chain[-2])
                        and chain[-2] not in ctx.seeded_attrs):
                    report(
                        "DET001", call.lineno,
                        f"draw .{chain[-2]}.{tail}() on an attribute RNG "
                        "never assigned from a seeded default_rng(...)",
                        receiver=chain[-2], draw=tail,
                    )

    # ---------------- DET002: set-order dependence ---------------------
    if "DET002" in wanted:
        set_names = _set_typed_names(tree)

        def check_iter(expr: ast.expr, lineno: int, where: str) -> None:
            if _is_set_expr(expr, set_names):
                report(
                    "DET002", lineno,
                    f"iteration over a set in {where}: set order is "
                    "salted per process — sort it (sorted(...)) before "
                    "it can feed event ordering",
                )

        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                check_iter(node.iter, node.lineno, "a for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    check_iter(gen.iter, node.lineno, "a comprehension")
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in ("list", "tuple", "iter")
                  and node.args):
                check_iter(
                    node.args[0], node.lineno,
                    f"a {node.func.id}() conversion",
                )

    # ---------------- DET003: wall-clock reads -------------------------
    if "DET003" in wanted:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            head, tail = chain[0], chain[-1]
            hit = None
            if len(chain) >= 2 and head in ctx.time_aliases \
                    and ("time", tail) in WALL_CLOCK_CALLS:
                hit = f"time.{tail}"
            elif len(chain) >= 2 and (head in ctx.datetime_aliases
                                      or head == "datetime") \
                    and ("datetime", tail) in WALL_CLOCK_CALLS:
                hit = f"datetime.{tail}"
            elif len(chain) == 1 and tail in ctx.direct:
                module, attr = ctx.direct[tail]
                if (module, attr) in WALL_CLOCK_CALLS:
                    hit = f"{module}.{attr}"
            if hit is not None:
                report(
                    "DET003", node.lineno,
                    f"wall-clock read {hit}() inside simulation code; "
                    "simulated time must come from the event heap",
                    call=hit,
                )

    # ---------------- DET004: float-equality tie-breaks ----------------
    if "DET004" in wanted:
        for context in _comparator_nodes(tree):
            for node in ast.walk(context):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq))
                           for op in node.ops):
                    continue
                operands = [node.left] + list(node.comparators)
                if any(_floaty_operand(op) for op in operands):
                    report(
                        "DET004", node.lineno,
                        "float equality in an event comparator: break "
                        "timestamp ties on a deterministic integer "
                        "sequence number, not float identity",
                    )
    return findings


def is_simulation_module(rel_path: str, source: str) -> bool:
    """True when the DET rules apply to this module."""
    posix = rel_path.replace("\\", "/")
    if any(posix.startswith(pkg + "/") for pkg in SIM_PACKAGES):
        return True
    if "__simulation__" not in source:
        return False
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return False
    return _ModuleContext(tree).simulation_marker


def sim_module_files(root: Path) -> list[Path]:
    """Every module the DET pass covers under ``root`` (a src dir)."""
    package = root / "repro"
    files: list[Path] = []
    for path in sorted(package.rglob("*.py")):
        try:
            rel = path.relative_to(root).as_posix()
            source = path.read_text()
        except (OSError, ValueError):
            continue
        if is_simulation_module(rel, source):
            files.append(path)
    return files


def run_det_lints(
    root: Optional[Path] = None,
) -> tuple[int, list[Finding]]:
    """Run the DET rules over every simulation module.

    Args:
        root: Directory containing the ``repro`` package (default: the
            installed package's parent).

    Returns:
        ``(modules_checked, findings)``.
    """
    if root is None:
        root = Path(__file__).resolve().parents[2]
    root = Path(root)
    findings: list[Finding] = []
    files = sim_module_files(root)
    for path in files:
        rel = path.relative_to(root).as_posix()
        try:
            findings.extend(lint_determinism_source(path.read_text(), rel))
        except SyntaxError:
            continue
    return len(files), findings
