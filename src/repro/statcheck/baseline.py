"""Reviewed baseline suppressions for ``repro check``.

A baseline file lets a reviewed, deliberately-accepted finding stop
failing the gate without weakening the check for new code.  The format
is JSON so entries diff cleanly and carry a mandatory ``reason``::

    {
      "version": 1,
      "suppressions": [
        {"code": "QFMT003", "file": "repro/fixedpoint/exp_unit.py",
         "reason": "intentional requantize documented in Fig. 6"}
      ]
    }

Matching is by ``code`` (required) plus optional ``file`` (exact
relative path), ``line`` and ``message_prefix``.  Every entry must
suppress at least one finding in the run it is applied to — otherwise
it is *stale* and reported as a ``BAS001`` warning, so dead
suppressions cannot accumulate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence

from ..errors import ConfigError
from .findings import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Suppression:
    """One reviewed baseline entry."""

    code: str
    reason: str
    file: Optional[str] = None
    line: Optional[int] = None
    message_prefix: Optional[str] = None

    def matches(self, finding: Finding) -> bool:
        if finding.code != self.code:
            return False
        if self.file is not None and finding.file != self.file:
            return False
        if self.line is not None and finding.line != self.line:
            return False
        if (self.message_prefix is not None
                and not finding.message.startswith(self.message_prefix)):
            return False
        return True

    def as_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {"code": self.code, "reason": self.reason}
        for key in ("file", "line", "message_prefix"):
            value = getattr(self, key)
            if value is not None:
                entry[key] = value
        return entry

    def describe(self) -> str:
        parts = [self.code]
        if self.file:
            loc = self.file if self.line is None else f"{self.file}:{self.line}"
            parts.append(loc)
        if self.message_prefix:
            parts.append(f"message^={self.message_prefix!r}")
        return " ".join(parts)


@dataclass
class Baseline:
    """A parsed suppression file."""

    suppressions: list[Suppression] = field(default_factory=list)
    path: Optional[str] = None

    def apply(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], list[Suppression]]:
        """Split ``findings`` against the baseline.

        Returns ``(kept, suppressed, stale)`` where ``stale`` are
        entries that matched nothing.
        """
        kept: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[int] = set()
        for finding in findings:
            hit = False
            for index, entry in enumerate(self.suppressions):
                if entry.matches(finding):
                    used.add(index)
                    hit = True
            (suppressed if hit else kept).append(finding)
        stale = [
            entry for index, entry in enumerate(self.suppressions)
            if index not in used
        ]
        return kept, suppressed, stale

    def stale_findings(self, stale: Sequence[Suppression]) -> list[Finding]:
        """BAS001 warnings for entries that matched nothing."""
        return [
            Finding(
                code="BAS001",
                check="baseline",
                severity="warning",
                file=self.path,
                message=(
                    f"stale baseline entry ({entry.describe()}): it "
                    "suppresses nothing — delete it or fix the pattern"
                ),
                details={"entry": entry.as_dict()},
            )
            for entry in stale
        ]


def load_baseline(path: str | Path) -> Baseline:
    """Parse a baseline file (raises ConfigError on malformed input)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigError(f"baseline {path} must be a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path} has version {version!r}; "
            f"expected {BASELINE_VERSION}"
        )
    entries = payload.get("suppressions", [])
    if not isinstance(entries, list):
        raise ConfigError(f"baseline {path}: 'suppressions' must be a list")
    suppressions: list[Suppression] = []
    for index, raw in enumerate(entries):
        if not isinstance(raw, dict):
            raise ConfigError(
                f"baseline {path}: entry {index} must be an object"
            )
        unknown = set(raw) - {"code", "reason", "file", "line",
                              "message_prefix"}
        if unknown:
            raise ConfigError(
                f"baseline {path}: entry {index} has unknown keys "
                f"{sorted(unknown)}"
            )
        code = raw.get("code")
        reason = raw.get("reason")
        if not isinstance(code, str) or not code:
            raise ConfigError(
                f"baseline {path}: entry {index} needs a 'code' string"
            )
        if not isinstance(reason, str) or not reason.strip():
            raise ConfigError(
                f"baseline {path}: entry {index} needs a non-empty "
                "'reason' (suppressions must be reviewed)"
            )
        suppressions.append(Suppression(
            code=code,
            reason=reason,
            file=raw.get("file"),
            line=raw.get("line"),
            message_prefix=raw.get("message_prefix"),
        ))
    return Baseline(suppressions=suppressions, path=str(path))


def write_baseline(
    suppressions: Sequence[Suppression], path: str | Path
) -> None:
    """Write a baseline file (sorted, one canonical form)."""
    payload = {
        "version": BASELINE_VERSION,
        "suppressions": [
            entry.as_dict()
            for entry in sorted(
                suppressions,
                key=lambda e: (e.code, e.file or "", e.line or 0),
            )
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")
