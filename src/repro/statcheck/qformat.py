"""QFMT — whole-graph Q-format/width dataflow checker.

The overflow certifier (:mod:`~repro.statcheck.overflow`) proves each
register *in isolation* holds its worst-case interval.  This engine
complements it with the *connective* proof: it builds a static graph of
the fixed-point datapath — every module port and certified register is
a node carrying its declared width (and Q-format where one exists),
every physical wire is an edge — and checks the whole graph at once:

* ``QFMT001`` — **truncating connection**: an edge whose source is
  declared wider than its destination without an explicit
  ``requantizes``/``truncates`` marker silently drops bits in hardware.
* ``QFMT002`` — **orphan certification**: every
  :class:`~repro.statcheck.overflow.StageBound` the certifier emits
  must name a graph node *reachable from an input port*.  A certified
  stage nothing feeds is a proof about hardware that does not exist —
  exactly the drift whole-program analysis is meant to catch.
* ``QFMT003`` — **format mismatch** (warning): both endpoints carry
  Q-formats whose fractional widths differ and the edge is not marked
  ``requantizes`` — the wire silently re-scales values.
* ``QFMT004`` — **dangling node** (warning): a non-input node no input
  port reaches.

The graph is built from the *real* datapath objects through their
``ports()`` hooks (:class:`~repro.fixedpoint.exp_unit.ExpUnit`,
:class:`~repro.fixedpoint.ln_unit.LnUnit`,
:class:`~repro.fixedpoint.layernorm_datapath.FixedPointLayerNorm`,
:func:`repro.core.pe.mac_port_widths`,
:data:`repro.compress.formats.CONTROL_COUNTER_BITS`), so declared
widths cannot drift from the code they describe.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.pe import mac_port_widths
from ..errors import ConfigError
from ..fixedpoint.exp_unit import ExpUnit
from ..fixedpoint.layernorm_datapath import FixedPointLayerNorm
from ..fixedpoint.ln_unit import LnUnit
from ..fixedpoint.types import QFormat
from .findings import Finding
from .overflow import OverflowPoint, certify_overflow

QFMT_CODES = ("QFMT001", "QFMT002", "QFMT003", "QFMT004")


@dataclass(frozen=True)
class Port:
    """One node of the datapath graph.

    Attributes:
        name: Dotted identifier; certified registers use their
            :class:`~repro.statcheck.overflow.StageBound` name verbatim.
        bits: Declared signed word width.
        fmt: Q-format when the node carries fixed-point values (control
            counters have a width but no format).
        kind: ``"input"`` ports seed reachability; everything else is a
            ``"register"``, ``"bus"`` or ``"output"``.
    """

    name: str
    bits: int
    fmt: Optional[QFormat] = None
    kind: str = "register"

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ConfigError(f"port {self.name!r} needs a positive width")
        if self.kind not in ("input", "register", "bus", "output"):
            raise ConfigError(f"unknown port kind {self.kind!r}")


@dataclass(frozen=True)
class Connection:
    """One directed wire of the datapath graph.

    ``requantizes`` marks an intentional format change (rounding shift,
    divider, priority encoder); ``truncates`` marks an intentional
    plain truncation.  Either suppresses QFMT001/QFMT003 on the edge.
    """

    src: str
    dst: str
    requantizes: bool = False
    truncates: bool = False
    note: str = ""


@dataclass
class DatapathGraph:
    """The static port graph the QFMT engine checks."""

    ports: dict[str, Port] = field(default_factory=dict)
    edges: list[Connection] = field(default_factory=list)

    def add(self, port: Port) -> None:
        if port.name in self.ports:
            raise ConfigError(f"duplicate port {port.name!r}")
        self.ports[port.name] = port

    def connect(
        self,
        src: str,
        dst: str,
        requantizes: bool = False,
        truncates: bool = False,
        note: str = "",
    ) -> None:
        for name in (src, dst):
            if name not in self.ports:
                raise ConfigError(f"connection names unknown port {name!r}")
        self.edges.append(Connection(
            src=src, dst=dst, requantizes=requantizes,
            truncates=truncates, note=note,
        ))

    def override_width(self, name: str, bits: int) -> None:
        """Shrink/grow one port's declared width (seeded-bug hook)."""
        port = self.ports[name]
        self.ports[name] = Port(
            name=port.name, bits=bits, fmt=port.fmt, kind=port.kind
        )

    def input_ports(self) -> list[str]:
        return [p.name for p in self.ports.values() if p.kind == "input"]

    def reachable(self) -> set[str]:
        """Every node reachable from an input port."""
        adjacency: dict[str, list[str]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.src, []).append(edge.dst)
        seen: set[str] = set(self.input_ports())
        frontier = deque(seen)
        while frontier:
            node = frontier.popleft()
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def as_dict(self) -> dict[str, Any]:
        return {
            "ports": [
                {"name": p.name, "bits": p.bits, "kind": p.kind,
                 "fmt": str(p.fmt) if p.fmt else None}
                for p in self.ports.values()
            ],
            "edges": [
                {"src": e.src, "dst": e.dst,
                 "requantizes": e.requantizes, "truncates": e.truncates}
                for e in self.edges
            ],
        }


def build_datapath_graph(point: Optional[OverflowPoint] = None) -> DatapathGraph:
    """The accelerator's port graph at one operating point.

    Mirrors the physical dataflow of the paper's design: SA MAC chains,
    the log-sum-exp softmax pipeline, the fused online-softmax
    registers, the compressed-pass control counters and the LayerNorm
    statistics pipeline.  Node names match the overflow certifier's
    :class:`~repro.statcheck.overflow.StageBound` names exactly, so the
    QFMT002 orphan check ties the two engines together.
    """
    point = point or OverflowPoint()
    graph = DatapathGraph()
    pe = mac_port_widths(
        act_bits=point.act_bits, weight_bits=point.weight_bits,
        acc_bits=point.sa_acc_bits,
    )
    exp = ExpUnit(
        in_fmt=point.softmax_fmt, out_frac_bits=point.exp_out_frac_bits
    )
    sum_int_bits = int(math.ceil(math.log2(point.softmax_max_row))) + 2
    ln = LnUnit(in_fmt=QFormat(
        int_bits=sum_int_bits, frac_bits=point.exp_out_frac_bits,
    ))
    layernorm = FixedPointLayerNorm(
        d_model=point.d_model, in_fmt=point.layernorm_fmt
    )
    ln_ports = layernorm.ports()
    fused_sum_fmt = QFormat(
        int_bits=point.fused_sum_int_bits,
        frac_bits=point.exp_out_frac_bits,
    )

    # -- inputs --------------------------------------------------------
    graph.add(Port("input.activations", pe["act"], kind="input"))
    graph.add(Port("input.weights", pe["weight"], kind="input"))
    graph.add(Port(
        "input.residual", ln_ports["in"].total_bits,
        fmt=ln_ports["in"], kind="input",
    ))
    graph.add(Port("input.pass_control",
                   point.compress_counter_bits, kind="input"))

    # -- systolic array ------------------------------------------------
    graph.add(Port("sa.mac.product", pe["product"], kind="bus"))
    graph.connect("input.activations", "sa.mac.product")
    graph.connect("input.weights", "sa.mac.product")
    for kind in ("proj", "qkt", "pv", "ffn_w1", "ffn_w2"):
        name = f"sa.acc.{kind}"
        graph.add(Port(name, pe["acc"]))
        graph.connect("sa.mac.product", name)

    # -- softmax module (Fig. 6) --------------------------------------
    exp_ports = exp.ports()
    graph.add(Port(
        "softmax.exp.log2e_product",
        point.softmax_fmt.total_bits + 1, fmt=exp_ports["in"], kind="bus",
    ))
    graph.connect(
        "sa.acc.qkt", "softmax.exp.log2e_product", requantizes=True,
        note="QK^T accumulator requantized to the softmax Q-format",
    )
    graph.add(Port(
        "softmax.exp.out", exp_ports["out"].total_bits,
        fmt=exp_ports["out"],
    ))
    graph.connect(
        "softmax.exp.log2e_product", "softmax.exp.out", requantizes=True,
        note="2**I barrel shift onto the EXP output format",
    )
    ln_unit_ports = ln.ports()
    graph.add(Port(
        "softmax.row_sum", ln_unit_ports["in"].total_bits,
        fmt=ln_unit_ports["in"],
    ))
    graph.connect("softmax.exp.out", "softmax.row_sum")
    graph.add(Port(
        "softmax.ln.log2_codes", ln_unit_ports["out"].total_bits + 2,
        kind="bus",
    ))
    graph.connect(
        "softmax.row_sum", "softmax.ln.log2_codes", requantizes=True,
        note="leading-one detector (priority encoder)",
    )
    graph.add(Port(
        "softmax.ln.out", ln_unit_ports["out"].total_bits,
        fmt=ln_unit_ports["out"],
    ))
    graph.connect(
        "softmax.ln.log2_codes", "softmax.ln.out", requantizes=True,
        note="shift-add by the ln(2) constant (< 1)",
    )

    # -- fused online softmax (repro.decode) ---------------------------
    graph.add(Port(
        "fused.softmax.running_max", point.softmax_fmt.total_bits,
        fmt=point.softmax_fmt,
    ))
    graph.connect(
        "sa.acc.qkt", "fused.softmax.running_max", requantizes=True,
        note="logit requantized to the softmax format, compare/select",
    )
    graph.add(Port(
        "fused.softmax.rescale", exp_ports["out"].total_bits,
        fmt=exp_ports["out"],
    ))
    graph.connect("fused.softmax.running_max", "fused.softmax.rescale",
                  requantizes=True, note="exp(m_old - m_new) via the EXP unit")
    graph.add(Port(
        "fused.softmax.running_sum", fused_sum_fmt.total_bits,
        fmt=fused_sum_fmt,
    ))
    graph.connect("fused.softmax.rescale", "fused.softmax.running_sum")

    # -- compressed-pass control (repro.compress) ----------------------
    for name in ("compress.circulant.rotation_counter",
                 "compress.nm.group_counter",
                 "compress.nm.index_field"):
        graph.add(Port(name, point.compress_counter_bits))
        graph.connect("input.pass_control", name)
    for name in ("compress.circulant.acc", "compress.nm.acc"):
        graph.add(Port(name, pe["acc"]))
        graph.connect("sa.mac.product", name)

    # -- LayerNorm statistics pipeline (Fig. 8) -------------------------
    fmt = point.layernorm_fmt
    graph.add(Port("layernorm.sum", point.layernorm_sum_bits))
    graph.connect("input.residual", "layernorm.sum")
    graph.add(Port("layernorm.sq", point.layernorm_sq_bits, kind="bus"))
    graph.connect("input.residual", "layernorm.sq", requantizes=True,
                  note="G^2 rounded back by frac_bits")
    graph.add(Port("layernorm.sumsq", point.layernorm_sumsq_bits))
    graph.connect("layernorm.sq", "layernorm.sumsq")
    graph.add(Port("layernorm.mean", fmt.total_bits, fmt=fmt, kind="bus"))
    graph.connect("layernorm.sum", "layernorm.mean", requantizes=True,
                  note="divide by d_model (shift for powers of two)")
    graph.add(Port(
        "layernorm.isqrt_in", ln_ports["isqrt_in"].total_bits,
        fmt=ln_ports["isqrt_in"],
    ))
    graph.connect("layernorm.sumsq", "layernorm.isqrt_in",
                  requantizes=True, note="E[G^2] - E[G]^2 variance math")
    graph.connect("layernorm.mean", "layernorm.isqrt_in",
                  requantizes=True, note="E[G]^2 term of Eq. (9)")
    graph.add(Port("layernorm.centered", fmt.total_bits + 1, kind="bus"))
    graph.connect("input.residual", "layernorm.centered")
    graph.connect("layernorm.mean", "layernorm.centered")
    return graph


def check_graph(
    graph: DatapathGraph,
    certified_names: Optional[list[str]] = None,
) -> tuple[int, list[Finding]]:
    """Check one graph; returns ``(checks_run, findings)``.

    ``certified_names`` are the StageBound names the overflow certifier
    produced; each must be a reachable node (QFMT002).
    """
    findings: list[Finding] = []
    checks = 0
    for edge in graph.edges:
        checks += 1
        src, dst = graph.ports[edge.src], graph.ports[edge.dst]
        if (src.bits > dst.bits
                and not edge.requantizes and not edge.truncates):
            findings.append(Finding(
                code="QFMT001",
                check="qformat",
                message=(
                    f"truncating connection {edge.src} ({src.bits}b) -> "
                    f"{edge.dst} ({dst.bits}b) drops "
                    f"{src.bits - dst.bits} bits with no declared "
                    "requantize/truncate step"
                ),
                details={"src": edge.src, "dst": edge.dst,
                         "src_bits": src.bits, "dst_bits": dst.bits},
            ))
        if (src.fmt is not None and dst.fmt is not None
                and src.fmt.frac_bits != dst.fmt.frac_bits
                and not edge.requantizes):
            findings.append(Finding(
                code="QFMT003",
                check="qformat",
                severity="warning",
                message=(
                    f"format mismatch on {edge.src} ({src.fmt}) -> "
                    f"{edge.dst} ({dst.fmt}): fractional widths differ "
                    "but the edge declares no requantization"
                ),
                details={"src": edge.src, "dst": edge.dst,
                         "src_fmt": str(src.fmt), "dst_fmt": str(dst.fmt)},
            ))
    reachable = graph.reachable()
    for name in certified_names or []:
        checks += 1
        if name not in graph.ports:
            findings.append(Finding(
                code="QFMT002",
                check="qformat",
                message=(
                    f"orphan certification: StageBound {name!r} names no "
                    "datapath-graph node (the certifier proves a register "
                    "the design does not wire up)"
                ),
                details={"stage": name},
            ))
        elif name not in reachable:
            findings.append(Finding(
                code="QFMT002",
                check="qformat",
                message=(
                    f"orphan certification: StageBound {name!r} is not "
                    "reachable from any input port"
                ),
                details={"stage": name},
            ))
    for port in graph.ports.values():
        if port.kind == "input" or port.name in reachable:
            continue
        findings.append(Finding(
            code="QFMT004",
            check="qformat",
            severity="warning",
            message=(
                f"dangling node {port.name!r}: no input port reaches it"
            ),
            details={"port": port.name},
        ))
    return checks, findings


def check_qformat(
    point: Optional[OverflowPoint] = None,
    graph: Optional[DatapathGraph] = None,
    extra_certified: tuple[str, ...] = (),
) -> tuple[int, list[Finding]]:
    """Run the QFMT engine at one operating point.

    Args:
        point: Operating point (default: the paper point).
        graph: Pre-built (possibly seeded-bug-mutated) graph override.
        extra_certified: Phantom StageBound names appended to the real
            certifier output (the ``orphan-bound`` seeded bug).
    """
    point = point or OverflowPoint()
    if graph is None:
        graph = build_datapath_graph(point)
    stages, _ = certify_overflow(point)
    names = [stage.name for stage in stages] + list(extra_certified)
    return check_graph(graph, certified_names=names)
