"""Content-hash incremental cache for ``repro check``.

Each analysis is split into *units* with honest dependency sets:

* per-file units (one DET lint per simulation module) depend on that
  file alone;
* whole-program units (overflow/qformat at a point, schedule lints,
  the REP parity and PRC coverage scans) depend on every source file
  they may read, plus the configuration point.

A unit's cache key is the SHA-256 of its name, an engine-version
stamp, its parameter payload and the ``(path, content-hash)`` list of
its dependencies — so touching one file invalidates exactly the units
that could see it, and a warm ``repro check --changed`` run reduces to
hashing the tree and replaying stored findings (sub-second).  Seeded
bug runs never consult or populate the cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from .findings import Finding

#: Bump when any engine's semantics change, to invalidate old caches.
ENGINE_VERSION = "statcheck-v2.0"

CACHE_FORMAT_VERSION = 1

#: Default cache location (repo-local, git-ignored).
DEFAULT_CACHE_NAME = ".repro-check-cache.json"


def file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@dataclass(frozen=True)
class UnitResult:
    """What one analysis unit produced (what the cache stores)."""

    checks: int
    findings: tuple[Finding, ...]

    def as_dict(self) -> dict[str, Any]:
        return {
            "checks": self.checks,
            "findings": [f.as_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "UnitResult":
        return cls(
            checks=int(payload["checks"]),
            findings=tuple(
                _finding_from_dict(raw) for raw in payload["findings"]
            ),
        )


def _finding_from_dict(payload: dict[str, Any]) -> Finding:
    return Finding(
        code=payload["code"],
        message=payload["message"],
        severity=payload.get("severity", "error"),
        file=payload.get("file"),
        line=payload.get("line"),
        check=payload.get("check", ""),
        details=dict(payload.get("details", {})),
    )


@dataclass(frozen=True)
class AnalysisUnit:
    """One cacheable slice of the whole check.

    Attributes:
        name: Stable identifier (``det:repro/serving/simulator.py``,
            ``qformat@paper``, ...).
        deps: Files whose *content* the unit's result depends on.
        params: Extra key material (the operating point, rule set).
        run: Produces ``(checks_run, findings)`` when there is no hit.
    """

    name: str
    deps: tuple[Path, ...]
    run: Callable[[], tuple[int, Sequence[Finding]]]
    params: str = ""

    def key(self, hashes: dict[Path, str]) -> str:
        material = {
            "unit": self.name,
            "engine": ENGINE_VERSION,
            "params": self.params,
            "deps": [
                (path.as_posix(), hashes[path]) for path in self.deps
            ],
        }
        blob = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


@dataclass
class CheckCache:
    """The on-disk key -> :class:`UnitResult` store."""

    entries: dict[str, UnitResult] = field(default_factory=dict)
    path: Optional[Path] = None
    hits: int = 0
    misses: int = 0

    @classmethod
    def load(cls, path: str | Path) -> "CheckCache":
        """Load a cache file; corrupt or mismatched caches start empty."""
        path = Path(path)
        cache = cls(path=path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return cache
        if (not isinstance(payload, dict)
                or payload.get("format") != CACHE_FORMAT_VERSION
                or payload.get("engine") != ENGINE_VERSION):
            return cache
        for key, raw in payload.get("entries", {}).items():
            try:
                cache.entries[key] = UnitResult.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue
        return cache

    def save(self, path: Optional[str | Path] = None) -> None:
        target = Path(path) if path is not None else self.path
        if target is None:
            return
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "engine": ENGINE_VERSION,
            "entries": {
                key: result.as_dict()
                for key, result in self.entries.items()
            },
        }
        target.write_text(json.dumps(payload, indent=1) + "\n")

    def run_units(
        self, units: Sequence[AnalysisUnit]
    ) -> dict[str, UnitResult]:
        """Run every unit, replaying cached results where keys match.

        File hashes are computed once per distinct dependency across
        all units, so a fully-warm run costs one hash pass over the
        tree plus dictionary lookups.
        """
        hashes: dict[Path, str] = {}
        for unit in units:
            for dep in unit.deps:
                if dep not in hashes:
                    hashes[dep] = file_sha(dep)
        results: dict[str, UnitResult] = {}
        for unit in units:
            key = unit.key(hashes)
            cached = self.entries.get(key)
            if cached is not None:
                self.hits += 1
                results[unit.name] = cached
                continue
            self.misses += 1
            checks, findings = unit.run()
            result = UnitResult(checks=checks, findings=tuple(findings))
            self.entries[key] = result
            results[unit.name] = result
        return results


def run_units_uncached(
    units: Sequence[AnalysisUnit],
) -> dict[str, UnitResult]:
    """The cold path: run every unit directly."""
    results: dict[str, UnitResult] = {}
    for unit in units:
        checks, findings = unit.run()
        results[unit.name] = UnitResult(
            checks=checks, findings=tuple(findings)
        )
    return results
