"""PRC — whole-program pricing- and telemetry-coverage analysis.

REP002 checks pairwise parity between :data:`UNIT_PRICING` and the
``CycleBreakdown`` dataclass.  This engine generalizes it to the whole
call graph: it scans *every* scheduler in the package — dense
(:mod:`repro.core.scheduler`), fused/decode (:mod:`repro.decode`),
compressed (:mod:`repro.compress`), plus the memsys/ABFT paths — and
proves three coverage properties end to end:

* **every cycle-producing site is priced** — each
  ``timeline.module_event(name, unit, ...)`` /
  ``TimelineEvent(..., unit=...)`` booking names a unit
  :data:`~repro.statcheck.ast_lints.UNIT_PRICING` maps to
  ``CycleBreakdown`` fields (``PRC001``);
* **every emitted metric is registered** — each
  ``registry.counter/gauge/histogram/series("repro_*", ...)`` literal
  appears in :data:`repro.telemetry.instrument.METRIC_FAMILIES`, the
  single canonical family registry (``PRC002``); registered families
  nothing emits are flagged stale (``PRC003``, warning); emission
  sites whose name cannot be resolved statically are flagged
  (``PRC004``, warning) unless the enclosing function carries
  recoverable ``repro_*`` literals (the gauge-table idiom);
* **every cycle field maps to a metric family** — each
  ``CycleBreakdown`` field must appear in
  :data:`repro.telemetry.instrument.CYCLE_FIELD_FAMILIES` and map to a
  registered family (``PRC005``), closing the loop from scheduler
  booking through cycle accounting to telemetry.

``extra_sources`` lets the seeded-bug self-proof inject a synthetic
module (an unpriced ``dma2`` booking, an unregistered
``repro_phantom_*`` counter) without touching the real tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .ast_lints import AGGREGATE_FIELDS, UNIT_PRICING
from .findings import Finding

PRC_CODES = ("PRC001", "PRC002", "PRC003", "PRC004", "PRC005")

#: Methods of :class:`repro.telemetry.registry.MetricsRegistry` that
#: create/emit an instrument; the first argument is the family name.
EMISSION_METHODS = ("counter", "gauge", "histogram", "series")

_METRIC_NAME_RE = re.compile(r"^repro_[a-z0-9_]+$")
_RECEIVER_RE = re.compile(r"registry", re.IGNORECASE)


@dataclass(frozen=True)
class BookingSite:
    """One cycle-producing timeline booking found in the source."""

    file: str
    line: int
    unit: Optional[str]     # None when not statically resolvable
    name: Optional[str]


@dataclass(frozen=True)
class EmissionSite:
    """One registry instrument creation/emission call."""

    file: str
    line: int
    metric: Optional[str]   # None when not statically resolvable
    method: str
    recovered: tuple[str, ...] = ()   # literals salvaged from the scope


@dataclass
class PricingInventory:
    """Everything the PRC scanner saw, before any judgement."""

    bookings: list[BookingSite] = field(default_factory=list)
    emissions: list[EmissionSite] = field(default_factory=list)
    files_scanned: int = 0

    def emitted_families(self) -> set[str]:
        names: set[str] = set()
        for site in self.emissions:
            if site.metric is not None:
                names.add(site.metric)
            names.update(site.recovered)
        return names


def _terminal_name(node: ast.expr) -> str:
    """The dotted identifier chain of a receiver (else '').

    ``registry`` -> ``"registry"``; ``self._registry`` ->
    ``"self._registry"``; anything non-name-shaped -> ``""``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _str_const(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_arg(call: ast.Call, index: int, keyword: str) -> Optional[ast.expr]:
    if len(call.args) > index:
        return call.args[index]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _scope_literals(scope: ast.AST) -> tuple[str, ...]:
    """All ``repro_*`` string constants in a function body.

    The gauge-table idiom (``for name, help, value in gauges: ...``)
    emits through a variable; the family names are still right there as
    literals in the same scope, so coverage recovers them instead of
    flagging a false PRC004.
    """
    names = []
    for node in ast.walk(scope):
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _METRIC_NAME_RE.match(node.value)):
            names.append(node.value)
    return tuple(sorted(set(names)))


class _PricingVisitor(ast.NodeVisitor):
    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.bookings: list[BookingSite] = []
        self.emissions: list[EmissionSite] = []
        self._scopes: list[ast.AST] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(node)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scopes.append(node)
        self.generic_visit(node)
        self._scopes.pop()

    def _forwards_param(self, unit_arg: ast.expr) -> bool:
        """True when the unit is the enclosing function's own ``unit``
        parameter — a forwarding wrapper like ``Timeline.module_event``;
        the wrapper's *callers* are the booking sites to judge."""
        if not (isinstance(unit_arg, ast.Name) and self._scopes):
            return False
        scope = self._scopes[-1]
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        params = scope.args.posonlyargs + scope.args.args + scope.args.kwonlyargs
        return any(arg.arg == unit_arg.id for arg in params)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "module_event":
                self.bookings.append(BookingSite(
                    file=self.rel_path, line=node.lineno,
                    unit=_str_const(_call_arg(node, 1, "unit")),
                    name=_str_const(_call_arg(node, 0, "name")),
                ))
            elif (func.attr in EMISSION_METHODS
                    and _RECEIVER_RE.search(_terminal_name(func.value))):
                metric = _str_const(_call_arg(node, 0, "name"))
                recovered: tuple[str, ...] = ()
                if metric is None and self._scopes:
                    recovered = _scope_literals(self._scopes[-1])
                self.emissions.append(EmissionSite(
                    file=self.rel_path, line=node.lineno,
                    metric=metric, method=func.attr, recovered=recovered,
                ))
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if name == "TimelineEvent":
            unit_arg = _call_arg(node, 1, "unit")
            if unit_arg is not None and not self._forwards_param(unit_arg):
                self.bookings.append(BookingSite(
                    file=self.rel_path, line=node.lineno,
                    unit=_str_const(unit_arg),
                    name=_str_const(_call_arg(node, 0, "name")),
                ))
        self.generic_visit(node)


def scan_pricing(
    root: Optional[Path] = None,
    extra_sources: Optional[dict[str, str]] = None,
) -> PricingInventory:
    """Scan the package (plus ``extra_sources``) for pricing sites.

    Args:
        root: Directory containing the ``repro`` package (default:
            the installed package's parent).
        extra_sources: ``{rel_path: source}`` synthetic modules scanned
            after the real tree (seeded-bug hook).
    """
    if root is None:
        root = Path(__file__).resolve().parents[2]
    package = Path(root) / "repro"
    inventory = PricingInventory()
    sources: list[tuple[str, str]] = []
    for path in sorted(package.rglob("*.py")) if package.is_dir() else []:
        if "statcheck" in path.parts:
            continue   # the analyzers' own fixtures are not the design
        try:
            sources.append(
                (path.relative_to(root).as_posix(), path.read_text())
            )
        except OSError:
            continue
    sources.extend((extra_sources or {}).items())
    for rel_path, source in sources:
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError:
            continue
        visitor = _PricingVisitor(rel_path)
        visitor.visit(tree)
        inventory.bookings.extend(visitor.bookings)
        inventory.emissions.extend(visitor.emissions)
        inventory.files_scanned += 1
    return inventory


def _registered_families() -> tuple[tuple[str, ...], dict[str, str]]:
    from ..telemetry.instrument import CYCLE_FIELD_FAMILIES, METRIC_FAMILIES

    return tuple(METRIC_FAMILIES), dict(CYCLE_FIELD_FAMILIES)


def _breakdown_field_names(root: Path) -> set[str]:
    from .ast_lints import _breakdown_fields

    path = root / "repro" / "core" / "cycle_model.py"
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return set()
    return _breakdown_fields(tree)


def check_pricing(
    root: Optional[Path] = None,
    extra_sources: Optional[dict[str, str]] = None,
    codes: Iterable[str] = PRC_CODES,
) -> tuple[int, list[Finding]]:
    """Run the coverage checks; returns ``(checks_run, findings)``."""
    if root is None:
        root = Path(__file__).resolve().parents[2]
    root = Path(root)
    codes = set(codes)
    inventory = scan_pricing(root, extra_sources=extra_sources)
    families, field_families = _registered_families()
    registered = set(families)
    findings: list[Finding] = []
    checks = 0

    # PRC001 — every booking site names a priced unit.
    for site in inventory.bookings:
        checks += 1
        if site.unit is None:
            if "PRC004" in codes:
                findings.append(Finding(
                    code="PRC004",
                    check="pricing",
                    severity="warning",
                    file=site.file,
                    line=site.line,
                    message=(
                        "timeline booking's unit is not a string literal; "
                        "pricing coverage cannot be proven statically"
                    ),
                ))
            continue
        if "PRC001" in codes and site.unit not in UNIT_PRICING:
            findings.append(Finding(
                code="PRC001",
                check="pricing",
                file=site.file,
                line=site.line,
                message=(
                    f"unpriced cycle site: unit {site.unit!r} "
                    f"(event {site.name!r}) has no UNIT_PRICING mapping "
                    "to a CycleBreakdown field"
                ),
                details={"unit": site.unit, "event": site.name},
            ))

    # PRC002/PRC004 — every emitted metric is a registered family.
    for site in inventory.emissions:
        checks += 1
        if site.metric is None:
            if not site.recovered and "PRC004" in codes:
                findings.append(Finding(
                    code="PRC004",
                    check="pricing",
                    severity="warning",
                    file=site.file,
                    line=site.line,
                    message=(
                        f"registry.{site.method} name is not statically "
                        "resolvable and no repro_* literals exist in the "
                        "enclosing scope"
                    ),
                ))
            candidates = site.recovered
        else:
            candidates = (site.metric,)
        if "PRC002" not in codes:
            continue
        for name in candidates:
            if name not in registered:
                findings.append(Finding(
                    code="PRC002",
                    check="pricing",
                    file=site.file,
                    line=site.line,
                    message=(
                        f"unregistered metric family {name!r}: add it to "
                        "telemetry.instrument.METRIC_FAMILIES (the "
                        "canonical schema) or rename the emission"
                    ),
                    details={"metric": name},
                ))

    # PRC003 — registered families nothing emits are stale.
    emitted = inventory.emitted_families()
    if "PRC003" in codes:
        for name in families:
            checks += 1
            if name not in emitted:
                findings.append(Finding(
                    code="PRC003",
                    check="pricing",
                    severity="warning",
                    message=(
                        f"stale metric family {name!r}: registered in "
                        "METRIC_FAMILIES but no emission site references it"
                    ),
                    details={"metric": name},
                ))

    # PRC005 — every CycleBreakdown field maps to a registered family.
    if "PRC005" in codes:
        for field_name in sorted(_breakdown_field_names(root)):
            checks += 1
            family = field_families.get(field_name)
            if family is None:
                findings.append(Finding(
                    code="PRC005",
                    check="pricing",
                    message=(
                        f"CycleBreakdown field {field_name!r} maps to no "
                        "metric family (add it to "
                        "telemetry.instrument.CYCLE_FIELD_FAMILIES)"
                    ),
                    details={"field": field_name},
                ))
            elif family not in registered:
                findings.append(Finding(
                    code="PRC005",
                    check="pricing",
                    message=(
                        f"CycleBreakdown field {field_name!r} maps to "
                        f"{family!r}, which METRIC_FAMILIES does not "
                        "register"
                    ),
                    details={"field": field_name, "metric": family},
                ))
        # And the reverse direction: every priced unit's fields exist.
        known_fields = _breakdown_field_names(root)
        for unit, pricing in UNIT_PRICING.items():
            checks += 1
            missing = [f for f in pricing if f not in known_fields]
            if missing:
                findings.append(Finding(
                    code="PRC005",
                    check="pricing",
                    message=(
                        f"UNIT_PRICING[{unit!r}] names CycleBreakdown "
                        f"fields that do not exist: {missing}"
                    ),
                    details={"unit": unit, "missing": missing},
                ))
    return checks, findings
