"""Static overflow certifier for the fixed-point datapath.

Walks the accelerator's integer datapath — the SA MAC chains, the
log-sum-exp softmax (EXP / row-sum / LN), and the Eq. (9) LayerNorm
statistics pipeline — propagating worst-case code ranges with
:class:`~repro.statcheck.interval.Interval` arithmetic for one
``(s, h, d_model, d_ff, QFormat)`` point.  Every register/bus with a
declared width becomes a :class:`StageBound`; a stage whose certified
range does not fit its declared width yields an ``OVF001``
:class:`~repro.statcheck.findings.Finding` carrying the exact bound and
the breaking configuration (largest chain depth / sequence length that
still fits).

The ranges are *sound over-approximations*: if the stage inputs lie in
their intervals, the hardware value provably lies in the certified
interval (the hypothesis suite in ``tests/statcheck`` exercises this).
The unit formats are pulled from the real datapath objects
(:class:`~repro.fixedpoint.exp_unit.ExpUnit`,
:class:`~repro.fixedpoint.ln_unit.LnUnit`,
:class:`~repro.fixedpoint.layernorm_datapath.FixedPointLayerNorm`), so
the certifier cannot drift from the code it certifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from ..config import AcceleratorConfig, ModelConfig
from ..errors import ConfigError
from ..fixedpoint.exp_unit import ExpUnit
from ..fixedpoint.layernorm_datapath import FixedPointLayerNorm
from ..fixedpoint.ln_unit import LnUnit
from ..fixedpoint.ops import LN2_TERMS, LOG2E_TERMS
from ..fixedpoint.types import LAYERNORM_Q, SOFTMAX_Q, QFormat
from .findings import Finding
from .interval import Interval


@dataclass(frozen=True)
class StageBound:
    """Certified worst-case range of one datapath register or bus.

    Attributes:
        name: Dotted stage path (e.g. ``"sa.acc.ffn_w2"``).
        interval: Certified closed range of the integer codes.
        declared_bits: Signed word width the design declares.
        required_bits: Smallest signed width that holds the interval.
        description: What the stage physically is.
    """

    name: str
    interval: Interval
    declared_bits: int
    required_bits: int
    description: str = ""

    @property
    def headroom_bits(self) -> int:
        """Spare bits between declaration and worst case (< 0 = overflow)."""
        return self.declared_bits - self.required_bits

    @property
    def ok(self) -> bool:
        return self.headroom_bits >= 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lo": self.interval.lo,
            "hi": self.interval.hi,
            "declared_bits": self.declared_bits,
            "required_bits": self.required_bits,
            "headroom_bits": self.headroom_bits,
            "ok": self.ok,
            "description": self.description,
        }


@dataclass(frozen=True)
class OverflowPoint:
    """One configuration point the certifier proves (or refutes).

    Attributes:
        name: Label used in reports (``"paper"`` for the default point).
        s: Sequence length / SA row count.
        h: Attention head count.
        d_model: Model width (MAC depth of the projection passes).
        d_ff: FFN inner width (MAC depth of the W2 passes).
        act_bits: Activation word width feeding the SA.
        weight_bits: Weight word width feeding the SA.
        sa_acc_bits: Declared PE accumulator width.
        softmax_fmt: Q-format of the shifted softmax logits.
        exp_out_frac_bits: Fractional width of the EXP unit output.
        softmax_max_row: Row length the softmax sum register is sized
            for (``HardwareSoftmax.ln_unit_sum_int_bits`` default).
        layernorm_fmt: Q-format of the LayerNorm input codes.
        layernorm_sq_bits: Declared width of the per-element ``G^2``
            bus after requantization.
        layernorm_sum_bits: Declared width of the ``sum G`` register.
        layernorm_sumsq_bits: Declared width of the ``sum G^2`` register.
        fused_max_seq: Largest prefill length the fused online-softmax
            running-sum register is certified for
            (:func:`repro.decode.schedule_fused_mha` tiles arbitrary
            ``s``; the accumulator must absorb the whole row).
        fused_sum_int_bits: Integer bits (incl. sign) of the fused
            running-sum register's Q-format.
        compress_block_size: Circulant block size the row-generator is
            certified for (:mod:`repro.compress` weight passes).
        compress_n / compress_m: N:M group shape the index-decode path
            is certified for.
        compress_counter_bits: Declared width of the compress control
            registers (rotation-offset counter, group counter, index
            row-offset register).
    """

    name: str = "paper"
    s: int = 64
    h: int = 8
    d_model: int = 512
    d_ff: int = 2048
    act_bits: int = 8
    weight_bits: int = 8
    sa_acc_bits: int = 32
    softmax_fmt: QFormat = SOFTMAX_Q
    exp_out_frac_bits: int = 15
    softmax_max_row: int = 512
    layernorm_fmt: QFormat = LAYERNORM_Q
    layernorm_sq_bits: int = 36
    layernorm_sum_bits: int = 40
    layernorm_sumsq_bits: int = 48
    fused_max_seq: int = 4096
    fused_sum_int_bits: int = 14
    compress_block_size: int = 8
    compress_n: int = 2
    compress_m: int = 4
    compress_counter_bits: int = 16

    def __post_init__(self) -> None:
        for field_name in ("s", "h", "d_model", "d_ff", "fused_max_seq",
                           "compress_block_size", "compress_m"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")
        if self.fused_sum_int_bits < 1:
            raise ConfigError("fused_sum_int_bits must include a sign bit")
        if not 0 < self.compress_n <= self.compress_m:
            raise ConfigError("compress_n must satisfy 0 < n <= m")
        if self.compress_counter_bits < 2:
            raise ConfigError("compress_counter_bits must be at least 2")
        if self.d_model % self.h != 0:
            raise ConfigError("d_model must be divisible by h")
        for field_name in ("act_bits", "weight_bits", "sa_acc_bits"):
            if getattr(self, field_name) < 2:
                raise ConfigError(f"{field_name} must be at least 2 bits")

    @property
    def head_dim(self) -> int:
        """Per-head dimension (the QK^T MAC depth)."""
        return self.d_model // self.h

    @classmethod
    def from_configs(
        cls,
        model: ModelConfig,
        acc: AcceleratorConfig,
        name: Optional[str] = None,
    ) -> OverflowPoint:
        """Build the point matching a (model, accelerator) pair."""
        return cls(
            name=name or model.name,
            s=acc.seq_len,
            h=model.num_heads,
            d_model=model.d_model,
            d_ff=model.d_ff,
            act_bits=acc.act_bits,
            weight_bits=acc.weight_bits,
            sa_acc_bits=acc.acc_bits,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "s": self.s,
            "h": self.h,
            "d_model": self.d_model,
            "d_ff": self.d_ff,
            "act_bits": self.act_bits,
            "weight_bits": self.weight_bits,
            "sa_acc_bits": self.sa_acc_bits,
            "softmax_fmt": str(self.softmax_fmt),
            "layernorm_fmt": str(self.layernorm_fmt),
        }


def paper_point(**overrides: Any) -> OverflowPoint:
    """The paper's operating point: Transformer-base on the 64x64 SA."""
    return OverflowPoint(**overrides) if overrides else OverflowPoint()


# ----------------------------------------------------------------------
# Individual certification passes
# ----------------------------------------------------------------------
def _max_fitting_depth(per_term: Interval, bits: int) -> int:
    """Largest MAC-chain depth whose accumulator still fits ``bits``."""
    limit_hi = (1 << (bits - 1)) - 1
    limit_lo = -(1 << (bits - 1))
    depth_hi = limit_hi // per_term.hi if per_term.hi > 0 else None
    depth_lo = limit_lo // per_term.lo if per_term.lo < 0 else None
    candidates = [d for d in (depth_hi, depth_lo) if d is not None]
    return min(candidates) if candidates else 1 << 62


def certify_sa_accumulators(
    point: OverflowPoint,
) -> tuple[list[StageBound], list[Finding]]:
    """Certify the PE accumulator across every GEMM pass kind.

    Pass inventory mirrors :mod:`repro.core.scheduler`: the Q/K/V/G
    projections reduce over ``d_model``, ``Q K^T`` over the head
    dimension, ``P V`` over ``s``, and the FFN W1/W2 passes over
    ``d_model`` / ``d_ff``.
    """
    act = Interval.signed_width(point.act_bits)
    wgt = Interval.signed_width(point.weight_bits)
    product = act * wgt
    stages = [StageBound(
        name="sa.mac.product",
        interval=product,
        declared_bits=point.act_bits + point.weight_bits,
        required_bits=product.required_signed_bits,
        description=(
            f"single INT{point.act_bits}xINT{point.weight_bits} product"
        ),
    )]
    findings: list[Finding] = []
    chains = {
        "proj": point.d_model,    # Q W_Q / K W_K / V W_V / P W_G
        "qkt": point.head_dim,    # Q_i K_i^T
        "pv": point.s,            # softmax x Temp2
        "ffn_w1": point.d_model,  # X W_1
        "ffn_w2": point.d_ff,     # P W_2 (deepest chain)
    }
    for kind, depth in chains.items():
        acc = product.accumulate(depth)
        stage = StageBound(
            name=f"sa.acc.{kind}",
            interval=acc,
            declared_bits=point.sa_acc_bits,
            required_bits=acc.required_signed_bits,
            description=f"{depth}-deep MAC chain accumulator",
        )
        stages.append(stage)
        if not stage.ok:
            max_depth = _max_fitting_depth(product, point.sa_acc_bits)
            findings.append(Finding(
                code="OVF001",
                check="overflow",
                message=(
                    f"SA accumulator overflows on the {kind} pass: "
                    f"{depth}-deep chain reaches {acc}, needing "
                    f"{stage.required_bits} bits but only "
                    f"{point.sa_acc_bits} are declared "
                    f"(max depth that fits: {max_depth})"
                ),
                details={
                    "stage": stage.name,
                    "bound": [acc.lo, acc.hi],
                    "declared_bits": point.sa_acc_bits,
                    "required_bits": stage.required_bits,
                    "breaking_config": {
                        "chain_depth": depth,
                        "max_fitting_depth": max_depth,
                    },
                },
            ))
    return stages, findings


def min_sa_acc_bits(point: OverflowPoint) -> int:
    """Smallest accumulator width the point certifies (27 at paper point)."""
    stages, _ = certify_sa_accumulators(point)
    return max(
        s.required_bits for s in stages if s.name.startswith("sa.acc.")
    )


def _exp_output_interval(exp: ExpUnit) -> Interval:
    """Certified EXP-unit output range (codes in ``exp.out_fmt``).

    The input is non-positive (post max-subtraction), so the mantissa
    ``1 + F`` lies in ``[2**f_out, 2**f_out + F_max]`` and the
    ``2**I`` barrel shift only moves it toward zero.
    """
    frac_bits = exp.in_fmt.frac_bits
    out_frac = exp.out_frac_bits
    one = 1 << out_frac
    frac_max = (1 << frac_bits) - 1
    if out_frac >= frac_bits:
        mantissa_hi = one + (frac_max << (out_frac - frac_bits))
    else:
        mantissa_hi = one + (frac_max >> (frac_bits - out_frac))
    # shift in [0, 63]: hi at shift 0, lo at full flush (0).
    return Interval(0, mantissa_hi)


def certify_softmax(
    point: OverflowPoint,
) -> tuple[list[StageBound], list[Finding]]:
    """Certify the log-sum-exp softmax datapath (Fig. 6).

    Stages: the ``x * log2(e)`` shift-add product inside the EXP unit,
    the EXP output against its declared Q-format, the row-sum register
    against the LN unit's input format (sized for
    ``softmax_max_row``), and the LN unit's ``log2``/output codes.
    """
    exp = ExpUnit(
        in_fmt=point.softmax_fmt, out_frac_bits=point.exp_out_frac_bits
    )
    sum_int_bits = int(math.ceil(math.log2(point.softmax_max_row))) + 2
    ln = LnUnit(in_fmt=QFormat(
        int_bits=sum_int_bits, frac_bits=point.exp_out_frac_bits,
    ))
    stages: list[StageBound] = []
    findings: list[Finding] = []

    # x is non-positive after the running-max subtraction (Eq. 5).
    x = Interval(point.softmax_fmt.min_code, 0)
    u = x.shift_add(LOG2E_TERMS)
    stages.append(StageBound(
        name="softmax.exp.log2e_product",
        interval=u,
        declared_bits=point.softmax_fmt.total_bits + 1,
        required_bits=u.required_signed_bits,
        description="x * log2(e) shift-add inside the EXP unit",
    ))

    exp_out = _exp_output_interval(exp)
    stages.append(StageBound(
        name="softmax.exp.out",
        interval=exp_out,
        declared_bits=exp.out_fmt.total_bits,
        required_bits=exp_out.required_signed_bits,
        description=f"EXP unit output codes ({exp.out_fmt})",
    ))
    if not exp_out.fits_qformat(exp.out_fmt):
        findings.append(Finding(
            code="OVF001",
            check="overflow",
            message=(
                f"EXP unit output {exp_out} exceeds its declared "
                f"{exp.out_fmt} range"
            ),
            details={"stage": "softmax.exp.out",
                     "bound": [exp_out.lo, exp_out.hi]},
        ))

    # Row sum: s EXP outputs accumulate into the LN unit's input register.
    row_sum = exp_out.accumulate(point.s)
    row_sum = Interval(max(row_sum.lo, 1), max(row_sum.hi, 1))
    sum_stage = StageBound(
        name="softmax.row_sum",
        interval=row_sum,
        declared_bits=ln.in_fmt.total_bits,
        required_bits=row_sum.required_signed_bits,
        description=(
            f"row-sum register feeding the LN unit ({ln.in_fmt}, "
            f"sized for rows <= {point.softmax_max_row})"
        ),
    )
    stages.append(sum_stage)
    if not row_sum.fits_qformat(ln.in_fmt):
        max_s = ln.in_fmt.max_code // exp_out.hi
        findings.append(Finding(
            code="OVF001",
            check="overflow",
            message=(
                f"softmax row-sum register overflows at s={point.s}: "
                f"worst case {row_sum} exceeds {ln.in_fmt} "
                f"(max s that fits: {max_s})"
            ),
            details={
                "stage": "softmax.row_sum",
                "bound": [row_sum.lo, row_sum.hi],
                "declared_bits": ln.in_fmt.total_bits,
                "required_bits": sum_stage.required_bits,
                "breaking_config": {"s": point.s, "max_fitting_s": max_s},
            },
        ))

    # LN unit: log2 codes from the leading-one detector + mantissa.
    out_frac = ln.out_fmt.frac_bits
    k = Interval(0, ln.in_fmt.total_bits - 1)
    log2_codes = (
        (k - Interval.point(ln.in_fmt.frac_bits)).shl(out_frac)
        + Interval(0, (1 << out_frac) - 1)
    )
    stages.append(StageBound(
        name="softmax.ln.log2_codes",
        interval=log2_codes,
        declared_bits=ln.out_fmt.total_bits + 2,
        required_bits=log2_codes.required_signed_bits,
        description="LN unit log2(v) codes before the ln(2) constant",
    ))
    ln_out = log2_codes.shift_add(LN2_TERMS)
    ln_stage = StageBound(
        name="softmax.ln.out",
        interval=ln_out,
        declared_bits=ln.out_fmt.total_bits,
        required_bits=ln_out.required_signed_bits,
        description=f"LN unit output codes ({ln.out_fmt})",
    )
    stages.append(ln_stage)
    if not ln_out.fits_qformat(ln.out_fmt):
        findings.append(Finding(
            code="OVF001",
            check="overflow",
            message=(
                f"LN unit output {ln_out} exceeds its declared "
                f"{ln.out_fmt} range"
            ),
            details={"stage": "softmax.ln.out",
                     "bound": [ln_out.lo, ln_out.hi],
                     "required_bits": ln_stage.required_bits},
        ))
    return stages, findings


def certify_fused_softmax(
    point: OverflowPoint,
) -> tuple[list[StageBound], list[Finding]]:
    """Certify the fused online-softmax accumulators of ``repro.decode``.

    The fused prefill schedule
    (:func:`repro.decode.schedule_fused_mha`) streams a row of up to
    ``fused_max_seq`` logits through three running registers instead of
    materializing the score matrix:

    * the **running max** ``m`` — a compare/select over codes already in
      ``softmax_fmt``, so its range is exactly the input format's;
    * the **rescale factor** ``exp(m_old - m_new)`` — the argument is
      non-positive by construction (the max is monotone), so the EXP
      output stays in ``[0, 1 + eps]`` of ``out_fmt``;
    * the **running sum** ``l`` — up to ``fused_max_seq`` EXP outputs
      accumulate into a ``Q(fused_sum_int_bits, exp_out_frac_bits)``
      register (each rescale multiplies by a factor <= 1, so the
      no-rescale straight sum is the sound worst case).

    A running sum that does not fit yields OVF001 with the exact
    breaking ``s`` (largest row the register provably absorbs).
    """
    exp = ExpUnit(
        in_fmt=point.softmax_fmt, out_frac_bits=point.exp_out_frac_bits
    )
    stages: list[StageBound] = []
    findings: list[Finding] = []

    running_max = Interval.from_qformat(point.softmax_fmt)
    stages.append(StageBound(
        name="fused.softmax.running_max",
        interval=running_max,
        declared_bits=point.softmax_fmt.total_bits,
        required_bits=running_max.required_signed_bits,
        description=(
            f"online-softmax running-max register ({point.softmax_fmt}; "
            "compare/select — no arithmetic growth)"
        ),
    ))

    exp_out = _exp_output_interval(exp)
    stages.append(StageBound(
        name="fused.softmax.rescale",
        interval=exp_out,
        declared_bits=exp.out_fmt.total_bits,
        required_bits=exp_out.required_signed_bits,
        description=(
            f"exp(m_old - m_new) rescale factor ({exp.out_fmt}; "
            "argument non-positive, value <= 1)"
        ),
    ))

    sum_fmt = QFormat(
        int_bits=point.fused_sum_int_bits,
        frac_bits=point.exp_out_frac_bits,
    )
    running_sum = exp_out.accumulate(point.fused_max_seq)
    sum_stage = StageBound(
        name="fused.softmax.running_sum",
        interval=running_sum,
        declared_bits=sum_fmt.total_bits,
        required_bits=running_sum.required_signed_bits,
        description=(
            f"online-softmax running-sum register ({sum_fmt}, certified "
            f"to s <= {point.fused_max_seq})"
        ),
    )
    stages.append(sum_stage)
    if not running_sum.fits_qformat(sum_fmt):
        max_s = sum_fmt.max_code // exp_out.hi
        findings.append(Finding(
            code="OVF001",
            check="overflow",
            message=(
                f"fused online-softmax running sum overflows at "
                f"s={point.fused_max_seq}: worst case {running_sum} "
                f"exceeds {sum_fmt} (max s that fits: {max_s})"
            ),
            details={
                "stage": "fused.softmax.running_sum",
                "bound": [running_sum.lo, running_sum.hi],
                "declared_bits": sum_fmt.total_bits,
                "required_bits": sum_stage.required_bits,
                "breaking_config": {
                    "s": point.fused_max_seq,
                    "max_fitting_s": max_s,
                },
            },
        ))
    return stages, findings


def certify_compress(
    point: OverflowPoint,
) -> tuple[list[StageBound], list[Finding]]:
    """Certify the compressed-weight-pass datapath additions.

    The :mod:`repro.compress` weight passes add two pieces of hardware
    next to the SA, both certified here:

    * the **circulant row generator** — a rotation-offset counter
      cycling ``0..b-1`` while the seed rows are re-issued, leaving the
      MAC chain at its full dense depth (``compress.circulant.acc``
      proves the dense accumulator bound still applies unchanged);
    * the **N:M index decode** — a group counter walking ``k/m`` row
      groups and, per kept value, a stored row-offset in ``[0, m-1]``;
      the pruned chain reduces to ``k*n/m`` terms, so the
      ``compress.nm.acc`` bound demonstrates the sparse pass's extra
      accumulator headroom vs dense.

    Control registers are unsigned counters held in
    ``compress_counter_bits``-wide registers; an overflowing group
    counter (deepest walk: the W2 pass, ``d_ff/m`` groups) yields
    OVF001 with the largest ``d_ff`` that fits.
    """
    act = Interval.signed_width(point.act_bits)
    wgt = Interval.signed_width(point.weight_bits)
    product = act * wgt
    b = point.compress_block_size
    n, m = point.compress_n, point.compress_m
    stages: list[StageBound] = []
    findings: list[Finding] = []

    rotation = Interval(0, b - 1)
    stages.append(StageBound(
        name="compress.circulant.rotation_counter",
        interval=rotation,
        declared_bits=point.compress_counter_bits,
        required_bits=rotation.required_signed_bits,
        description=(
            f"row-generator rotation offset over one {b}x{b} "
            "circulant block"
        ),
    ))

    circ_acc = product.accumulate(point.d_ff)
    stages.append(StageBound(
        name="compress.circulant.acc",
        interval=circ_acc,
        declared_bits=point.sa_acc_bits,
        required_bits=circ_acc.required_signed_bits,
        description=(
            f"circulant W2 MAC chain ({point.d_ff} deep — row "
            "regeneration keeps the dense depth)"
        ),
    ))

    index_field = Interval(0, m - 1)
    stages.append(StageBound(
        name="compress.nm.index_field",
        interval=index_field,
        declared_bits=point.compress_counter_bits,
        required_bits=index_field.required_signed_bits,
        description=(
            f"index-decode row offset within one {n}:{m} group"
        ),
    ))

    deepest_groups = max(point.d_model, point.d_ff) // m
    group_counter = Interval(0, max(0, deepest_groups - 1))
    group_stage = StageBound(
        name="compress.nm.group_counter",
        interval=group_counter,
        declared_bits=point.compress_counter_bits,
        required_bits=group_counter.required_signed_bits,
        description=(
            f"group counter over the deepest pruned walk "
            f"({deepest_groups} groups of {m})"
        ),
    )
    stages.append(group_stage)
    if not group_stage.ok:
        max_groups = (1 << (point.compress_counter_bits - 1)) - 1
        findings.append(Finding(
            code="OVF001",
            check="overflow",
            message=(
                f"compress group counter overflows: {deepest_groups} "
                f"groups need {group_stage.required_bits} bits but only "
                f"{point.compress_counter_bits} are declared "
                f"(max groups that fit: {max_groups})"
            ),
            details={
                "stage": group_stage.name,
                "bound": [group_counter.lo, group_counter.hi],
                "declared_bits": point.compress_counter_bits,
                "required_bits": group_stage.required_bits,
                "breaking_config": {
                    "groups": deepest_groups,
                    "max_fitting_groups": max_groups,
                },
            },
        ))

    nm_depth = max(1, point.d_ff * n // m)
    nm_acc = product.accumulate(nm_depth)
    nm_stage = StageBound(
        name="compress.nm.acc",
        interval=nm_acc,
        declared_bits=point.sa_acc_bits,
        required_bits=nm_acc.required_signed_bits,
        description=(
            f"{n}:{m}-pruned W2 MAC chain ({nm_depth} deep — sparse "
            "headroom vs dense)"
        ),
    )
    stages.append(nm_stage)
    if not nm_stage.ok:
        max_depth = _max_fitting_depth(product, point.sa_acc_bits)
        findings.append(Finding(
            code="OVF001",
            check="overflow",
            message=(
                f"SA accumulator overflows on the {n}:{m}-pruned W2 "
                f"pass: {nm_depth}-deep chain reaches {nm_acc}, "
                f"needing {nm_stage.required_bits} bits but only "
                f"{point.sa_acc_bits} are declared "
                f"(max depth that fits: {max_depth})"
            ),
            details={
                "stage": nm_stage.name,
                "bound": [nm_acc.lo, nm_acc.hi],
                "declared_bits": point.sa_acc_bits,
                "required_bits": nm_stage.required_bits,
                "breaking_config": {
                    "chain_depth": nm_depth,
                    "max_fitting_depth": max_depth,
                },
            },
        ))
    return stages, findings


def certify_layernorm(
    point: OverflowPoint,
) -> tuple[list[StageBound], list[Finding]]:
    """Certify the Eq. (9) LayerNorm statistics pipeline (Fig. 8).

    Stages: the ``sum G`` and ``sum G^2`` register banks, the
    requantized squares bus, the mean buses, the variance, and the
    isqrt LUT input ``var + eps`` against the LUT's declared format
    (the stage whose under-declaration this certifier originally
    caught — see ``FixedPointLayerNorm.__post_init__``).
    """
    datapath = FixedPointLayerNorm(
        d_model=point.d_model, in_fmt=point.layernorm_fmt
    )
    fmt = point.layernorm_fmt
    g = Interval.from_qformat(fmt)
    stages: list[StageBound] = []
    findings: list[Finding] = []

    def check(
        stage: StageBound, breaking: Optional[dict[str, Any]] = None
    ) -> None:
        stages.append(stage)
        if not stage.ok:
            details: dict[str, Any] = {
                "stage": stage.name,
                "bound": [stage.interval.lo, stage.interval.hi],
                "declared_bits": stage.declared_bits,
                "required_bits": stage.required_bits,
            }
            if breaking:
                details["breaking_config"] = breaking
            findings.append(Finding(
                code="OVF001",
                check="overflow",
                message=(
                    f"{stage.description} overflows: worst case "
                    f"{stage.interval} needs {stage.required_bits} bits "
                    f"but {stage.declared_bits} are declared"
                ),
                details=details,
            ))

    total = g.accumulate(point.d_model)
    check(StageBound(
        name="layernorm.sum",
        interval=total,
        declared_bits=point.layernorm_sum_bits,
        required_bits=total.required_signed_bits,
        description=f"sum-G register bank over d_model={point.d_model}",
    ), {"d_model": point.d_model,
        "max_fitting_d_model": _max_fitting_depth(
            g, point.layernorm_sum_bits)})

    sq = (g * g).rounding_shr(fmt.frac_bits)
    check(StageBound(
        name="layernorm.sq",
        interval=sq,
        declared_bits=point.layernorm_sq_bits,
        required_bits=sq.required_signed_bits,
        description="requantized G^2 bus",
    ))
    sumsq = sq.accumulate(point.d_model)
    check(StageBound(
        name="layernorm.sumsq",
        interval=sumsq,
        declared_bits=point.layernorm_sumsq_bits,
        required_bits=sumsq.required_signed_bits,
        description=f"sum-G^2 register bank over d_model={point.d_model}",
    ), {"d_model": point.d_model,
        "max_fitting_d_model": _max_fitting_depth(
            sq, point.layernorm_sumsq_bits)})

    def mean_of(acc: Interval) -> Interval:
        if point.d_model & (point.d_model - 1) == 0:
            return acc.rounding_shr(point.d_model.bit_length() - 1)
        half = point.d_model // 2
        return Interval(
            (acc.lo + half) // point.d_model,
            (acc.hi + half) // point.d_model,
        )

    mean = mean_of(total)
    check(StageBound(
        name="layernorm.mean",
        interval=mean,
        declared_bits=fmt.total_bits,
        required_bits=mean.required_signed_bits,
        description=f"E[G] bus ({fmt})",
    ))
    mean_sq_stat = mean_of(sumsq)                       # E[G^2]
    mean_squared = (mean * mean).rounding_shr(fmt.frac_bits)  # E[G]^2
    var = (mean_sq_stat - mean_squared).nonneg()        # Eq. (9)
    eps_codes = max(1, round(datapath.eps_value / fmt.scale))
    isqrt_in = var + Interval.point(eps_codes)
    isqrt_in = Interval(max(isqrt_in.lo, 1), max(isqrt_in.hi, 1))
    isqrt_fmt = datapath.isqrt_unit.in_fmt
    stage = StageBound(
        name="layernorm.isqrt_in",
        interval=isqrt_in,
        declared_bits=isqrt_fmt.total_bits,
        required_bits=isqrt_in.required_signed_bits,
        description=f"isqrt LUT input var+eps ({isqrt_fmt})",
    )
    stages.append(stage)
    if not isqrt_in.fits_qformat(isqrt_fmt):
        findings.append(Finding(
            code="OVF001",
            check="overflow",
            message=(
                f"isqrt LUT input bus under-declared: var+eps reaches "
                f"{isqrt_in} but {isqrt_fmt} tops out at "
                f"{isqrt_fmt.max_code}"
            ),
            details={
                "stage": "layernorm.isqrt_in",
                "bound": [isqrt_in.lo, isqrt_in.hi],
                "declared_bits": isqrt_fmt.total_bits,
                "required_bits": stage.required_bits,
            },
        ))

    centered = g - mean
    check(StageBound(
        name="layernorm.centered",
        interval=centered,
        declared_bits=fmt.total_bits + 1,
        required_bits=centered.required_signed_bits,
        description="G - E[G] subtractor output",
    ))
    return stages, findings


def certify_overflow(
    point: OverflowPoint,
) -> tuple[list[StageBound], list[Finding]]:
    """Run every overflow pass; returns (stage bounds, findings)."""
    stages: list[StageBound] = []
    findings: list[Finding] = []
    for pass_fn in (
        certify_sa_accumulators,
        certify_softmax,
        certify_fused_softmax,
        certify_compress,
        certify_layernorm,
    ):
        pass_stages, pass_findings = pass_fn(point)
        stages.extend(pass_stages)
        findings.extend(pass_findings)
    return stages, findings
