"""Algorithm-based fault tolerance (ABFT) for the s x 64 tile geometry.

Huang & Abraham's checksum scheme specialized to the paper's
output-stationary pass: the activation tile ``A (s x k)`` gains a
checksum row (its column sums) and each 64-wide weight block
``B (k x n)`` gains a checksum column (its row sums), so one augmented
pass computes::

    [ A ]           [           |      ]      [  C     | C r_B ]
    [---] @ [ B | B 1 ]   =    [  A B  | A B 1 ]  =  [--------+-------]
    [1^T A]                     [1^T AB | ...  ]      [ 1^T C  |  ...  ]

On drain, every body column must sum to its checksum-row entry and
every body row to its checksum-column entry.  Integer arithmetic makes
the check exact: any single corrupted body element fires one row and
one column syndrome, which *locate* the element, and the syndrome value
*corrects* it.  The guard structures are one extra PE row and column
(the paper's array becomes ``(s+1) x 65``); the comparator tail and the
drain the check exposes are priced into the schedule by
``AcceleratorConfig.abft_protected`` / ``abft_check_cycles``
(see :mod:`repro.core.scheduler` and :mod:`repro.core.cycle_model`).

Coverage caveat (asserted by the tests): detection is guaranteed only
while no accumulator saturates — at the paper's operating point
(INT8 operands, k <= 4096, 32-bit accumulators) the checksum row's
worst case ``s * 127 * 127 * k`` can exceed 2^31 for s = 64, k > 4096,
so :meth:`ChecksumGemm.run` refuses shapes where the guard could clip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import AcceleratorConfig, ModelConfig
from ..core.cycle_model import ffn_cycle_breakdown, mha_cycle_breakdown
from ..core.systolic_array import SystolicArray
from ..errors import ReliabilityError


@dataclass(frozen=True)
class ABFTPassResult:
    """Outcome of one checksum-protected pass.

    Attributes:
        product: The body product, corrected if a single-element error
            was located (else as drained).
        detected: Any syndrome fired.
        corrected: A single body element was located and repaired (or
            the error lay in a guard structure, leaving the body clean).
        row_syndromes: Per-column mismatch of the checksum row (n,).
        col_syndromes: Per-row mismatch of the checksum column (s,).
        fault_location: ``(row, col)`` of the corrected body element,
            ``None`` if nothing fired or the error was in a guard cell.
        compute_cycles: SA compute cycles of the augmented pass.
    """

    product: np.ndarray
    detected: bool
    corrected: bool
    row_syndromes: np.ndarray
    col_syndromes: np.ndarray
    fault_location: Optional[tuple[int, int]]
    compute_cycles: int


class ChecksumGemm:
    """Checksum-augmented GEMM over an ``(s+1) x (cols+1)`` guard array.

    Attributes:
        rows / cols: Body geometry (the unprotected pass shape).
        sa: The underlying :class:`~repro.core.SystolicArray`, one row
            and one column larger than the body.  Faults are injected
            here — guard cells are legal fault sites too.
    """

    def __init__(self, rows: int, cols: int = 64, acc_bits: int = 32) -> None:
        if rows <= 0 or cols <= 0:
            raise ReliabilityError("ABFT geometry must be positive")
        self.rows = rows
        self.cols = cols
        self.acc_bits = acc_bits
        self.sa = SystolicArray(rows + 1, cols + 1, acc_bits=acc_bits)

    def _check_headroom(self, a: np.ndarray, b: np.ndarray) -> None:
        """Refuse shapes where a healthy checksum could saturate."""
        k = a.shape[1]
        bound = (
            int(np.abs(a).max(initial=0)) * int(np.abs(b).max(initial=0))
            * k * (max(a.shape[0], b.shape[1]) + 1)
        )
        if bound >= 1 << (self.acc_bits - 1):
            raise ReliabilityError(
                "checksum accumulators could saturate for this shape; "
                "ABFT detection would not be guaranteed"
            )

    def run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        stream_a: Optional[np.ndarray] = None,
        stream_b: Optional[np.ndarray] = None,
    ) -> ABFTPassResult:
        """One protected pass ``A (rows x k) @ B (k x n)``, ``n <= cols``.

        ``a`` / ``b`` are the operands *at checksum-generation time*
        (tile load); ``stream_a`` / ``stream_b``, when given, are the
        possibly-corrupted words actually streamed into the array —
        modelling a BRAM upset during residence, after the checksums
        were computed.  Defaults stream the clean operands.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ReliabilityError(
                f"bad GEMM shapes {a.shape} @ {b.shape}"
            )
        if a.shape[0] != self.rows or b.shape[1] > self.cols:
            raise ReliabilityError(
                f"GEMM {a.shape} @ {b.shape} does not fit the "
                f"{self.rows} x {self.cols} ABFT body"
            )
        self._check_headroom(a, b)
        body_a = a if stream_a is None else np.asarray(stream_a, np.int64)
        body_b = b if stream_b is None else np.asarray(stream_b, np.int64)
        if body_a.shape != a.shape or body_b.shape != b.shape:
            raise ReliabilityError("streamed operand shape mismatch")
        a_aug = np.vstack([body_a, a.sum(axis=0, keepdims=True)])
        b_aug = np.hstack([body_b, b.sum(axis=1, keepdims=True)])
        result = self.sa.run_pass(a_aug, b_aug)
        n = b.shape[1]
        body = result.product[: self.rows, :n].copy()
        checksum_row = result.product[self.rows, :n]
        checksum_col = result.product[: self.rows, n]
        row_syndromes = checksum_row - body.sum(axis=0)
        col_syndromes = checksum_col - body.sum(axis=1)
        row_hits = np.flatnonzero(row_syndromes)
        col_hits = np.flatnonzero(col_syndromes)
        detected = bool(row_hits.size or col_hits.size)
        corrected = False
        location: Optional[tuple[int, int]] = None
        if detected:
            if row_hits.size == 1 and col_hits.size == 1:
                # One row and one column syndrome: a single body element
                # at their intersection, off by the (equal) syndromes.
                i, j = int(col_hits[0]), int(row_hits[0])
                if row_syndromes[j] == col_syndromes[i]:
                    body[i, j] += row_syndromes[j]
                    corrected = True
                    location = (i, j)
            elif (row_hits.size + col_hits.size) == 1:
                # Exactly one syndrome in one family: the error sits in
                # that guard cell itself; the body is intact.  Multiple
                # hits in a single family (e.g. a corrupted operand word
                # fanning out along a row or column) are detected but
                # not correctable.
                corrected = True
        return ABFTPassResult(
            product=body,
            detected=detected,
            corrected=corrected,
            row_syndromes=row_syndromes,
            col_syndromes=col_syndromes,
            fault_location=location,
            compute_cycles=result.compute_cycles,
        )


@dataclass(frozen=True)
class ABFTOverhead:
    """Schedule-level cost of turning ABFT on at one operating point.

    Attributes:
        baseline_cycles / protected_cycles: MHA+FFN ResBlock totals
            without / with protection.
        overhead_cycles: Their difference.
        overhead_fraction: ``overhead_cycles / baseline_cycles``.
    """

    baseline_cycles: int
    protected_cycles: int

    @property
    def overhead_cycles(self) -> int:
        return self.protected_cycles - self.baseline_cycles

    @property
    def overhead_fraction(self) -> float:
        return self.overhead_cycles / self.baseline_cycles


def abft_cycle_overhead(
    model: ModelConfig, acc: AcceleratorConfig
) -> ABFTOverhead:
    """Price ABFT at an operating point via the analytic cycle model.

    Compares one full ResBlock pair (MHA + FFN) with
    ``abft_protected`` off and on; the scheduler property tests
    guarantee the event timeline matches these totals exactly.
    """
    off = acc.with_updates(abft_protected=False)
    on = acc.with_updates(abft_protected=True)
    baseline = (mha_cycle_breakdown(model, off).total_cycles
                + ffn_cycle_breakdown(model, off).total_cycles)
    protected = (mha_cycle_breakdown(model, on).total_cycles
                 + ffn_cycle_breakdown(model, on).total_cycles)
    return ABFTOverhead(
        baseline_cycles=baseline, protected_cycles=protected
    )
