"""Fault-injection campaign runner.

Sweeps fault site x mode x rate over many seeded trials and reports,
per cell of the sweep, how often faults were **detected**, **corrected**
and how often they caused **silent corruption**, along with the output
error magnitude against the golden (fault-free) result.  SA-datapath
and memory trials run through :class:`~repro.reliability.ChecksumGemm`
when ABFT is on; EXP/iSQRT trials run through the fixed-point units'
``fault_hook`` and are *outside* ABFT's GEMM scope — the campaign
reports them as uncovered rather than pretending otherwise.

Determinism: one :class:`~repro.reliability.FaultInjector` generator
drives operands, rate draws, and fault placement, so a fixed
``CampaignSpec.seed`` replays an identical campaign (pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.systolic_array import SystolicArray
from ..errors import ReliabilityError
from ..fixedpoint import ExpUnit, InverseSqrtLUT
from .abft import ChecksumGemm
from .faults import FaultInjector, FaultSpec

#: Opt this module into the statcheck determinism lints (DET001-004):
#: a campaign must replay bit-identically from CampaignSpec.seed.
__simulation__ = True

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry

#: Modes each site can physically exhibit.
SITE_MODES: dict[str, tuple[str, ...]] = {
    "sa_accumulator": ("bit_flip", "multi_bit_flip"),
    "sa_multiplier": ("stuck_at",),
    "weight_memory": ("bit_flip", "multi_bit_flip", "stuck_at"),
    "data_memory": ("bit_flip", "multi_bit_flip", "stuck_at"),
    "bias_memory": ("bit_flip",),
    "exp_unit": ("bit_flip", "multi_bit_flip"),
    "isqrt_lut": ("bit_flip", "multi_bit_flip"),
}

DEFAULT_SITES = tuple(SITE_MODES)


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign = sites x modes x rates x trials.

    Attributes:
        seq_len: Body rows of the GEMM tile (the SA's ``s``).
        depth: GEMM inner dimension ``k``.
        cols: Body columns (64 in the paper's geometry).
        trials: Trials per (site, mode, rate) cell.
        rates: Per-pass fault probabilities to sweep.
        sites: Fault sites to sweep (subset of :data:`SITE_MODES`).
        abft: Protect GEMM trials with checksums.
        seed: Master seed; fixes the whole campaign.
    """

    seq_len: int = 64
    depth: int = 64
    cols: int = 64
    trials: int = 32
    rates: tuple[float, ...] = (1.0,)
    sites: tuple[str, ...] = DEFAULT_SITES
    abft: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.seq_len <= 0 or self.depth <= 0 or self.cols <= 0:
            raise ReliabilityError("campaign geometry must be positive")
        if self.trials <= 0:
            raise ReliabilityError("trials must be positive")
        for site in self.sites:
            if site not in SITE_MODES:
                raise ReliabilityError(f"unknown fault site {site!r}")
        for rate in self.rates:
            if not 0.0 <= rate <= 1.0:
                raise ReliabilityError(f"rate {rate} outside [0, 1]")


@dataclass(frozen=True)
class TrialOutcome:
    """One injection trial.

    Attributes:
        site / mode / rate: The sweep cell.
        injected: The rate draw actually fired a fault this trial.
        detected: A checker (ABFT syndrome) flagged the fault.
        corrected: The output was repaired to the golden value.
        silent: The output differs from golden and nothing flagged it.
        max_abs_error: Output error magnitude vs. the golden result
            (integer LSBs for GEMM sites, dequantized units for
            EXP/iSQRT, bias units for the bias site).
    """

    site: str
    mode: str
    rate: float
    injected: bool
    detected: bool
    corrected: bool
    silent: bool
    max_abs_error: float


@dataclass(frozen=True)
class CampaignResult:
    """All trial outcomes plus aggregate views."""

    spec: CampaignSpec
    outcomes: tuple[TrialOutcome, ...] = field(default_factory=tuple)

    def _cell(self, **match) -> list[TrialOutcome]:
        return [
            o for o in self.outcomes
            if all(getattr(o, k) == v for k, v in match.items())
        ]

    def detection_rate(self, **match) -> float:
        """Detected fraction of *injected* trials matching ``match``."""
        hit = [o for o in self._cell(**match) if o.injected]
        if not hit:
            return 0.0
        return sum(o.detected for o in hit) / len(hit)

    def correction_rate(self, **match) -> float:
        hit = [o for o in self._cell(**match) if o.injected]
        if not hit:
            return 0.0
        return sum(o.corrected for o in hit) / len(hit)

    def silent_rate(self, **match) -> float:
        hit = [o for o in self._cell(**match) if o.injected]
        if not hit:
            return 0.0
        return sum(o.silent for o in hit) / len(hit)

    def summary_rows(self) -> list[tuple]:
        """(site, mode, rate, injected, detect%, correct%, silent%,
        max_err) per sweep cell, for the CLI table."""
        rows = []
        seen = []
        for o in self.outcomes:
            key = (o.site, o.mode, o.rate)
            if key not in seen:
                seen.append(key)
        for site, mode, rate in seen:
            cell = self._cell(site=site, mode=mode, rate=rate)
            injected = [o for o in cell if o.injected]
            rows.append((
                site, mode, rate, len(injected),
                self.detection_rate(site=site, mode=mode, rate=rate),
                self.correction_rate(site=site, mode=mode, rate=rate),
                self.silent_rate(site=site, mode=mode, rate=rate),
                max((o.max_abs_error for o in cell), default=0.0),
            ))
        return rows


def _gemm_trial(
    spec: CampaignSpec,
    site: str,
    mode: str,
    injector: FaultInjector,
    inject: bool,
) -> tuple[bool, bool, bool, float]:
    """One SA / memory trial; returns (detected, corrected, silent, err)."""
    rng: np.random.Generator = injector.rng   # seeded by CampaignSpec.seed
    a = rng.integers(-127, 128, size=(spec.seq_len, spec.depth))
    b = rng.integers(-127, 128, size=(spec.depth, spec.cols))
    golden = a @ b
    fault_spec = FaultSpec(site=site, mode=mode)
    stream_a = stream_b = None
    if spec.abft:
        gemm = ChecksumGemm(spec.seq_len, spec.cols)
        if site in ("sa_accumulator", "sa_multiplier"):
            if inject:
                injector.inject_sa(gemm.sa, fault_spec)
        elif inject:
            if site == "weight_memory":
                stream_b, _ = injector.corrupt_operand(b, fault_spec)
            else:
                stream_a, _ = injector.corrupt_operand(a, fault_spec)
        result = gemm.run(a, b, stream_a=stream_a, stream_b=stream_b)
        error = float(np.max(np.abs(result.product - golden)))
        detected = result.detected
        corrected = result.corrected and error == 0.0
        silent = error > 0.0 and not detected
        return detected, corrected, silent, error
    sa = SystolicArray(spec.seq_len, spec.cols)
    if inject:
        if site in ("sa_accumulator", "sa_multiplier"):
            injector.inject_sa(sa, fault_spec)
        elif site == "weight_memory":
            b, _ = injector.corrupt_operand(b, fault_spec)
        else:
            a, _ = injector.corrupt_operand(a, fault_spec)
    product = sa.run_pass(a, b).product
    error = float(np.max(np.abs(product - golden)))
    return False, False, error > 0.0, error


def _unit_trial(
    spec: CampaignSpec,
    site: str,
    mode: str,
    injector: FaultInjector,
    inject: bool,
) -> tuple[bool, bool, bool, float]:
    """One EXP / iSQRT trial (outside ABFT's GEMM scope)."""
    rng: np.random.Generator = injector.rng   # seeded by CampaignSpec.seed
    fault_spec = FaultSpec(site=site, mode=mode)
    if site == "exp_unit":
        healthy = ExpUnit()
        x = rng.uniform(-6.0, 0.0, size=spec.cols)
        golden = healthy.evaluate(x)
        if inject:
            hook, _ = injector.unit_hook(
                fault_spec, healthy.out_fmt.total_bits
            )
            unit = ExpUnit(fault_hook=hook)
        else:
            unit = healthy
        faulty = unit.evaluate(x)
    else:
        healthy = InverseSqrtLUT()
        x = rng.uniform(0.05, 100.0, size=spec.cols)
        golden = healthy.evaluate(x)
        if inject:
            hook, _ = injector.unit_hook(
                fault_spec, healthy.out_fmt.total_bits
            )
            unit = InverseSqrtLUT(fault_hook=hook)
        else:
            unit = healthy
        faulty = unit.evaluate(x)
    error = float(np.max(np.abs(faulty - golden)))
    return False, False, error > 0.0, error


def _bias_trial(
    spec: CampaignSpec, injector: FaultInjector, inject: bool
) -> tuple[bool, bool, bool, float]:
    rng: np.random.Generator = injector.rng   # seeded by CampaignSpec.seed
    bias = rng.normal(size=spec.cols)
    if not inject:
        return False, False, False, 0.0
    corrupted, _ = injector.corrupt_bias(
        bias, FaultSpec(site="bias_memory")
    )
    error = float(np.max(np.abs(corrupted - bias)))
    return False, False, error > 0.0, error


def run_campaign(
    spec: CampaignSpec, registry: Optional["MetricsRegistry"] = None
) -> CampaignResult:
    """Execute the full site x mode x rate sweep.

    With a ``registry`` the finished campaign's per-cell outcome counts
    (trials / injected / detections / corrections / silent) are folded
    in through :func:`repro.telemetry.instrument.record_campaign`.
    """
    injector = FaultInjector(spec.seed)
    rng: np.random.Generator = injector.rng   # seeded by CampaignSpec.seed
    outcomes: list[TrialOutcome] = []
    for site in spec.sites:
        for mode in SITE_MODES[site]:
            for rate in spec.rates:
                for _ in range(spec.trials):
                    inject = bool(rng.random() < rate)
                    if site in ("exp_unit", "isqrt_lut"):
                        out = _unit_trial(spec, site, mode, injector, inject)
                    elif site == "bias_memory":
                        out = _bias_trial(spec, injector, inject)
                    else:
                        out = _gemm_trial(spec, site, mode, injector, inject)
                    detected, corrected, silent, error = out
                    outcomes.append(TrialOutcome(
                        site=site, mode=mode, rate=rate, injected=inject,
                        detected=detected, corrected=corrected,
                        silent=silent, max_abs_error=error,
                    ))
    result = CampaignResult(spec=spec, outcomes=tuple(outcomes))
    if registry is not None:
        from ..telemetry.instrument import record_campaign

        record_campaign(result, registry)
    return result


@dataclass(frozen=True)
class ResBlockImpact:
    """End-to-end fault impact on one quantized MHA ResBlock.

    Attributes:
        max_abs_error / mean_abs_error: Output error of the faulty run
            against the golden quantized accelerator output.
        rows_affected: Output rows that moved (LayerNorm mixes within a
            row, so pre-norm corruption stays row-local).
    """

    max_abs_error: float
    mean_abs_error: float
    rows_affected: int


def resblock_fault_impact(
    seed: int = 0, fault_mode: str = "stuck_zero", seq_len: int = 12
) -> ResBlockImpact:
    """Golden-vs-faulty comparison through a full quantized MHA ResBlock.

    Builds a small random Transformer, calibrates its quantized twin,
    runs one MHA ResBlock on the cycle-accurate array healthy and with
    a single faulty PE, and measures the output divergence — the
    "output-error magnitude against the golden quantized model" view of
    a fault, complementing the GEMM-tile campaign statistics.
    """
    from ..config import AcceleratorConfig, ModelConfig
    from ..core import TransformerAccelerator
    from ..quant import QuantizedTransformer
    from ..transformer import Transformer

    rng = np.random.default_rng(seed)
    model_cfg = ModelConfig(
        "fault-impact", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=max(16, seq_len), dropout=0.0,
    )
    model = Transformer(
        model_cfg, src_vocab_size=30, tgt_vocab_size=30, rng=rng
    ).eval()
    quant = QuantizedTransformer(model)
    src = rng.integers(1, 30, size=(2, seq_len))
    tgt = rng.integers(1, 30, size=(2, seq_len))
    quant.calibrate([(src, tgt, np.array([seq_len, seq_len]))])
    hw = TransformerAccelerator(
        model_cfg, AcceleratorConfig(seq_len=seq_len),
        exact_nonlinear=True, cycle_accurate_sa=True,
    )
    hw.load_mha(quant.enc_mha[0])
    x = rng.normal(size=(seq_len, model_cfg.d_model))
    golden = hw.run_mha(x).output
    row = int(rng.integers(0, min(seq_len, hw.sa.rows)))
    col = int(rng.integers(0, hw.sa.cols))
    hw.sa.inject_fault(row, col, fault_mode)
    faulty = hw.run_mha(x).output
    diff = np.abs(faulty - golden)
    return ResBlockImpact(
        max_abs_error=float(diff.max()),
        mean_abs_error=float(diff.mean()),
        rows_affected=int(np.sum(diff.max(axis=1) > 0)),
    )
