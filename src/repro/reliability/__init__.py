"""Fault injection, ABFT checksum protection, and campaign tooling.

The dependability layer over the accelerator model: seeded fault
models for every hardware site (:mod:`~repro.reliability.faults`),
checksum-augmented GEMM with locate-and-correct semantics for the
s x 64 tile geometry (:mod:`~repro.reliability.abft`), and a campaign
runner sweeping site x mode x rate
(:mod:`~repro.reliability.campaign`).  The schedule-level cost of
protection is priced by ``AcceleratorConfig.abft_protected`` through
the scheduler and analytic cycle model; the serving simulator consumes
the same knobs for retry-on-detected-fault behavior.
"""

from .abft import (
    ABFTOverhead,
    ABFTPassResult,
    ChecksumGemm,
    abft_cycle_overhead,
)
from .campaign import (
    DEFAULT_SITES,
    SITE_MODES,
    CampaignResult,
    CampaignSpec,
    ResBlockImpact,
    TrialOutcome,
    resblock_fault_impact,
    run_campaign,
)
from .faults import (
    FAULT_MODES,
    FAULT_SITES,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)

__all__ = [
    "ABFTOverhead",
    "ABFTPassResult",
    "CampaignResult",
    "CampaignSpec",
    "ChecksumGemm",
    "DEFAULT_SITES",
    "FAULT_MODES",
    "FAULT_SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "ResBlockImpact",
    "SITE_MODES",
    "TrialOutcome",
    "abft_cycle_overhead",
    "resblock_fault_impact",
    "run_campaign",
]
