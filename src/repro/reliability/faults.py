"""Seeded, deterministic fault models for the accelerator.

A fault is described by a :class:`FaultSpec` (*where* it can strike and
*how*) and realized as a :class:`FaultEvent` (the concrete coordinates,
bits, and stuck polarity drawn from a seeded generator).  The
:class:`FaultInjector` owns the generator, so a campaign replayed with
the same seed injects byte-for-byte identical faults — the property the
campaign determinism tests pin down.

Fault sites (ISSUE terminology → hardware structure):

* ``sa_accumulator`` — a PE accumulator register in the systolic array
  (:meth:`~repro.core.SystolicArray.inject_fault`).
* ``sa_multiplier`` — a PE multiplier output stuck at zero / max.
* ``exp_unit`` — the piecewise-linear EXP unit's output register
  (:attr:`~repro.fixedpoint.ExpUnit.fault_hook`).
* ``isqrt_lut`` — the LayerNorm inverse-sqrt LUT output
  (:attr:`~repro.fixedpoint.InverseSqrtLUT.fault_hook`).
* ``weight_memory`` / ``data_memory`` — a BRAM word upset
  (:meth:`~repro.core.WeightMemory.flip_tile_bit` /
  :meth:`~repro.core.MemoryBank.flip_stored_bit`).
* ``bias_memory`` — a bias-word upset (value poke, biases are stored
  dequantized).

Fault modes:

* ``bit_flip`` — one inverted bit (single-event upset).
* ``multi_bit_flip`` — ``num_bits`` upsets from one strike (spatially
  adjacent cells, as in a multi-cell upset).
* ``stuck_at`` — a persistent defect; for SA sites the multiplier
  output sticks at zero or the maximum product (polarity drawn from the
  seeded generator).

Transient faults self-clear after one pass; persistent faults stay
until explicitly cleared.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..core.pe import flip_bit
from ..errors import ReliabilityError

#: Opt this module into the statcheck determinism lints (DET001-004):
#: fault placement must replay bit-identically from the injector seed.
__simulation__ = True

FAULT_SITES = (
    "sa_accumulator",
    "sa_multiplier",
    "exp_unit",
    "isqrt_lut",
    "weight_memory",
    "data_memory",
    "bias_memory",
)

FAULT_MODES = ("bit_flip", "multi_bit_flip", "stuck_at")


@dataclass(frozen=True)
class FaultSpec:
    """What kind of fault to draw.

    Attributes:
        site: One of :data:`FAULT_SITES`.
        mode: One of :data:`FAULT_MODES`.
        num_bits: Upset count for ``multi_bit_flip`` (ignored otherwise).
        persistent: Persistent faults survive across passes; transient
            ones self-clear after a single pass.
    """

    site: str
    mode: str = "bit_flip"
    num_bits: int = 2
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ReliabilityError(f"unknown fault site {self.site!r}")
        if self.mode not in FAULT_MODES:
            raise ReliabilityError(f"unknown fault mode {self.mode!r}")
        if self.num_bits < 1:
            raise ReliabilityError("num_bits must be at least 1")


@dataclass(frozen=True)
class FaultEvent:
    """A concrete realized fault.

    Attributes:
        spec: The spec the event was drawn from.
        coords: Per-upset coordinates — ``(row, col)`` for SA sites,
            ``(flat_index,)`` for unit/memory sites.
        bits: Per-upset bit index (parallel to ``coords``).
        stuck_mode: ``"stuck_zero"`` / ``"stuck_max"`` for ``stuck_at``
            SA faults, else ``""``.
    """

    spec: FaultSpec
    coords: tuple[tuple, ...]
    bits: tuple[int, ...]
    stuck_mode: str = ""


def _draw_distinct_cells(
    rng: np.random.Generator, rows: int, cols: int, count: int
) -> tuple[tuple, ...]:
    """Draw ``count`` distinct PE coordinates."""
    count = min(count, rows * cols)
    flat = rng.choice(rows * cols, size=count, replace=False)
    return tuple((int(f) // cols, int(f) % cols) for f in np.atleast_1d(flat))


class FaultInjector:
    """Seeded source of fault events with per-site appliers.

    One injector = one deterministic fault stream: every draw consumes
    entropy from the same :class:`numpy.random.Generator`, so a fixed
    seed reproduces an entire campaign exactly.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Systolic-array sites
    # ------------------------------------------------------------------
    def inject_sa(self, sa, spec: FaultSpec) -> FaultEvent:
        """Draw a fault for ``sa`` (a :class:`~repro.core.SystolicArray`)
        and inject it.  Returns the realized event."""
        if spec.site not in ("sa_accumulator", "sa_multiplier"):
            raise ReliabilityError(f"{spec.site!r} is not an SA site")
        upsets = spec.num_bits if spec.mode == "multi_bit_flip" else 1
        coords = _draw_distinct_cells(self.rng, sa.rows, sa.cols, upsets)
        transient = not spec.persistent
        if spec.mode == "stuck_at" or spec.site == "sa_multiplier":
            stuck = "stuck_zero" if self.rng.random() < 0.5 else "stuck_max"
            for row, col in coords:
                sa.inject_fault(row, col, stuck, transient=transient)
            return FaultEvent(spec, coords, (0,) * len(coords), stuck)
        bits = tuple(
            int(b) for b in self.rng.integers(0, sa.acc_bits, size=len(coords))
        )
        for (row, col), bit in zip(coords, bits):
            sa.inject_fault(
                row, col, "bit_flip", bit=bit, transient=transient
            )
        return FaultEvent(spec, coords, bits)

    # ------------------------------------------------------------------
    # Fixed-point unit sites (EXP / iSQRT fault hooks)
    # ------------------------------------------------------------------
    def unit_hook(
        self, spec: FaultSpec, word_bits: int
    ) -> tuple[Callable[[np.ndarray], np.ndarray], list]:
        """Build a ``fault_hook`` for an EXP/iSQRT unit.

        The hook upsets one (or ``num_bits``) random output element(s)
        per call; the coordinates are drawn lazily because the hook does
        not know the output shape until invoked.  Returns
        ``(hook, events)`` where ``events`` fills with one
        :class:`FaultEvent` per invocation.
        """
        if spec.site not in ("exp_unit", "isqrt_lut"):
            raise ReliabilityError(f"{spec.site!r} is not a unit site")
        if spec.mode == "stuck_at":
            raise ReliabilityError(
                "stuck_at is modelled for SA/memory sites only"
            )
        upsets = spec.num_bits if spec.mode == "multi_bit_flip" else 1
        events: list = []
        rng: np.random.Generator = self.rng   # seeded in __init__

        def hook(codes: np.ndarray) -> np.ndarray:
            out = np.array(codes, dtype=np.int64)
            flat = out.reshape(-1)
            count = min(upsets, flat.size)
            idx = rng.choice(flat.size, size=count, replace=False)
            bits = rng.integers(0, word_bits, size=count)
            for i, bit in zip(np.atleast_1d(idx), np.atleast_1d(bits)):
                flat[i] = flip_bit(int(flat[i]), int(bit), word_bits)
            events.append(FaultEvent(
                spec,
                tuple((int(i),) for i in np.atleast_1d(idx)),
                tuple(int(b) for b in np.atleast_1d(bits)),
            ))
            return out

        return hook, events

    # ------------------------------------------------------------------
    # Memory sites
    # ------------------------------------------------------------------
    def corrupt_operand(
        self, operand: np.ndarray, spec: FaultSpec, word_bits: int = 8
    ) -> tuple[np.ndarray, FaultEvent]:
        """Upset bits of an in-memory operand tile (weight or data word).

        Models an SEU striking a BRAM word while the tile is resident —
        i.e. *after* any load-time checksum was computed, which is the
        window ABFT covers.  Returns ``(corrupted_copy, event)``.
        """
        if spec.site not in ("weight_memory", "data_memory"):
            raise ReliabilityError(f"{spec.site!r} is not an operand site")
        out = np.array(operand, dtype=np.int64)
        flat = out.reshape(-1)
        upsets = spec.num_bits if spec.mode == "multi_bit_flip" else 1
        upsets = min(upsets, flat.size)
        idx = self.rng.choice(flat.size, size=upsets, replace=False)
        if spec.mode == "stuck_at":
            stuck = "stuck_zero" if self.rng.random() < 0.5 else "stuck_max"
            value = 0 if stuck == "stuck_zero" else (1 << (word_bits - 1)) - 1
            for i in np.atleast_1d(idx):
                flat[i] = value
            event = FaultEvent(
                spec,
                tuple((int(i),) for i in np.atleast_1d(idx)),
                (0,) * upsets,
                stuck,
            )
            return out, event
        bits = self.rng.integers(0, word_bits, size=upsets)
        for i, bit in zip(np.atleast_1d(idx), np.atleast_1d(bits)):
            flat[i] = flip_bit(int(flat[i]), int(bit), word_bits)
        event = FaultEvent(
            spec,
            tuple((int(i),) for i in np.atleast_1d(idx)),
            tuple(int(b) for b in np.atleast_1d(bits)),
        )
        return out, event

    def corrupt_bias(
        self, bias: np.ndarray, spec: FaultSpec
    ) -> tuple[np.ndarray, FaultEvent]:
        """Upset one bias element (biases are stored dequantized, so the
        upset flips a bit of the element's rounded 32-bit fixed-point
        image at 16 fractional bits)."""
        if spec.site != "bias_memory":
            raise ReliabilityError(f"{spec.site!r} is not the bias site")
        out = np.array(bias, dtype=np.float64)
        flat = out.reshape(-1)
        idx = int(self.rng.integers(0, flat.size))
        bit = int(self.rng.integers(0, 32))
        code = int(np.round(flat[idx] * (1 << 16)))
        code = int(np.clip(code, -(1 << 31), (1 << 31) - 1))
        flat[idx] = flip_bit(code, bit, 32) / (1 << 16)
        event = FaultEvent(spec, ((idx,),), (bit,))
        return out, event
