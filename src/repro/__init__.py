"""repro — reproduction of Lu et al., "Hardware Accelerator for Multi-Head
Attention and Position-Wise Feed-Forward in the Transformer" (SOCC 2020).

Subpackages:

* :mod:`repro.core` — the accelerator: systolic array, softmax/LayerNorm
  modules, scheduler, partitioning, resource/power/cycle models.
* :mod:`repro.transformer` — from-scratch numpy Transformer with autograd
  (the golden model).
* :mod:`repro.quant` — INT8 post-training quantization (Section V-A).
* :mod:`repro.nmt` — synthetic translation task + BLEU (IWSLT stand-in).
* :mod:`repro.gpu_model` — V100 kernel-level latency baseline (Table III).
* :mod:`repro.analysis` — Eq. (3) sweeps and report rendering.
* :mod:`repro.serving` — discrete-event inference-serving simulator with
  dynamic batching over the cycle-accurate accelerator models.
* :mod:`repro.decode` — fused long-sequence attention, KV-cache pricing
  and mixed prefill/decode serving.

Quick start::

    from repro import config, core

    model_cfg = config.transformer_base()
    acc_cfg = config.paper_accelerator()
    print(core.schedule_mha(model_cfg, acc_cfg).total_cycles)
"""

from . import analysis, config, core, decode, errors, fixedpoint
from . import gpu_model, io, memsys, nmt, quant, serving, transformer
from .config import (
    AcceleratorConfig,
    DecodeConfig,
    MemoryConfig,
    ModelConfig,
    ServingConfig,
    bert_base,
    bert_large,
    paper_accelerator,
    preset,
    transformer_base,
    transformer_big,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "DecodeConfig",
    "MemoryConfig",
    "ModelConfig",
    "ReproError",
    "ServingConfig",
    "analysis",
    "bert_base",
    "bert_large",
    "config",
    "core",
    "decode",
    "errors",
    "fixedpoint",
    "gpu_model",
    "io",
    "memsys",
    "nmt",
    "paper_accelerator",
    "preset",
    "quant",
    "serving",
    "transformer",
    "transformer_base",
    "transformer_big",
]
