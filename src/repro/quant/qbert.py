"""INT8 quantization of encoder-only (BERT-style) models.

Reuses the same :class:`~repro.quant.qmodel.QuantMHAResBlock` /
:class:`~repro.quant.qmodel.QuantFFNResBlock` integer datapath as the
seq2seq pipeline — by Section II-B's own argument, BERT's layers *are*
those two ResBlocks — and exposes ``enc_mha`` / ``enc_ffn`` with the same
interface, so :class:`~repro.core.model_runner.AcceleratedStack`'s
encoder path accepts a quantized BERT unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

import numpy as np

from ..errors import QuantizationError
from ..transformer.bert import EncoderOnlyClassifier
from ..transformer.masks import padding_mask
from .calibration import Calibrator
from .qmodel import QuantFFNResBlock, QuantMHAResBlock, SOFTMAX_FP32


class QuantizedEncoderOnly:
    """INT8 inference wrapper for an :class:`EncoderOnlyClassifier`.

    The pooler and classification head stay FP (they are outside the
    accelerator's scope, like the seq2seq generator).
    """

    def __init__(
        self,
        model: EncoderOnlyClassifier,
        softmax_mode: str = SOFTMAX_FP32,
    ) -> None:
        model.eval()
        self._model = model
        self.config = model.config
        self.calibrator = Calibrator()
        self._calibrating = False
        self.enc_mha = []
        self.enc_ffn = []
        for i, layer in enumerate(model.encoder.layers):
            self.enc_mha.append(QuantMHAResBlock(
                layer.self_attn, self.calibrator, f"enc{i}.self",
                softmax_mode,
            ))
            self.enc_ffn.append(QuantFFNResBlock(
                layer.ffn, self.calibrator, f"enc{i}.ffn",
            ))

    # ------------------------------------------------------------------
    @property
    def softmax_mode(self) -> str:
        return self.enc_mha[0].softmax_mode

    @softmax_mode.setter
    def softmax_mode(self, mode: str) -> None:
        for block in self.enc_mha:
            if mode not in ("fp32", "hardware"):
                raise QuantizationError(f"unknown softmax mode {mode!r}")
            block.softmax_mode = mode

    # ------------------------------------------------------------------
    def _embed(self, token_ids: np.ndarray) -> np.ndarray:
        model = self._model
        return model.positional(model.embed(np.asarray(token_ids))).numpy()

    # AcceleratedStack compatibility: it calls quant._embed_src.
    _embed_src = _embed

    def encode(
        self,
        token_ids: np.ndarray,
        lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Integer-datapath encoder; returns ``(batch, s, d_model)``."""
        token_ids = np.asarray(token_ids)
        mask = None
        if lengths is not None:
            mask = padding_mask(np.asarray(lengths), token_ids.shape[1])
        x = self._embed(token_ids)
        for mha, ffn in zip(self.enc_mha, self.enc_ffn):
            if self._calibrating:
                x = mha.forward_calibrate(x, x, mask)
                x = ffn.forward_calibrate(x)
            else:
                x = mha.forward_int8(x, x, mask)
                x = ffn.forward_int8(x)
        return x

    def forward(
        self,
        token_ids: np.ndarray,
        lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Class logits ``(batch, num_classes)``."""
        from ..transformer.tensor import Tensor

        states = self.encode(token_ids, lengths)
        cls_state = Tensor(states[:, 0, :])
        pooled = self._model.pooler(cls_state).tanh()
        return self._model.classifier(pooled).numpy()

    def predict(
        self,
        token_ids: np.ndarray,
        lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.forward(token_ids, lengths).argmax(axis=-1)

    # ------------------------------------------------------------------
    def calibrate(
        self,
        batches: Iterable[tuple[np.ndarray, Optional[np.ndarray]]],
    ) -> None:
        """FP passes over ``(token_ids, lengths)`` batches, then freeze."""
        self._calibrating = True
        try:
            count = 0
            for token_ids, lengths in batches:
                self.forward(token_ids, lengths)
                count += 1
            if count == 0:
                raise QuantizationError("calibrate() received no batches")
        finally:
            self._calibrating = False
        self.calibrator.freeze()
