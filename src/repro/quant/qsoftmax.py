"""Quantized scaled masked-softmax using the hardware EXP/LN units.

This is the paper's *second* quantization step (Section V-A): after the
INT8 model is built, the softmax itself is replaced by the log-sum-exp
formulation evaluated with the piecewise-linear EXP and LN units of
Wang et al. [13] — the exact arithmetic of the accelerator's Softmax
module (Fig. 6), including the ``>> 3`` scaling for ``sqrt(d_k) = 8``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import QuantizationError
from ..fixedpoint import ExpUnit, LnUnit, QFormat, SOFTMAX_Q


@dataclass
class HardwareSoftmax:
    """Bit-approximate model of the accelerator's softmax function.

    Evaluates Eq. (4)/(5): ``y = exp(x - x_max - ln(sum exp(x - x_max)))``
    on the scaled logits ``x = D / scale_divisor`` with the multiplier-free
    EXP/LN units; masked entries produce exactly 0.

    Attributes:
        scale_divisor: ``sqrt(d_k)``; must be a power of two so the
            hardware can realize it as a right shift (8 -> ``>> 3``).
        in_fmt: Fixed-point format of the shifted logits.
    """

    scale_divisor: float = 8.0
    in_fmt: QFormat = SOFTMAX_Q
    exp_unit: ExpUnit = field(default=None)  # type: ignore[assignment]
    ln_unit: LnUnit = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        log2 = np.log2(self.scale_divisor)
        if log2 != int(log2):
            raise QuantizationError(
                f"scale_divisor {self.scale_divisor} is not a power of two; "
                "the hardware implements it as a right shift"
            )
        if self.exp_unit is None:
            self.exp_unit = ExpUnit(in_fmt=self.in_fmt)
        if self.ln_unit is None:
            sum_fmt = QFormat(
                int_bits=self.ln_unit_sum_int_bits(),
                frac_bits=self.exp_unit.out_frac_bits,
            )
            self.ln_unit = LnUnit(in_fmt=sum_fmt)

    def ln_unit_sum_int_bits(self, max_row: int = 512) -> int:
        """Integer bits needed by the row-sum register (sum <= row length)."""
        return int(np.ceil(np.log2(max_row))) + 2

    @property
    def shift_bits(self) -> int:
        """The right-shift amount implementing ``/ scale_divisor``."""
        return int(np.log2(self.scale_divisor))

    def __call__(
        self, logits: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Approximate scaled masked-softmax over the last axis.

        Args:
            logits: Raw ``Q K^T`` values (pre-scaling), any leading shape.
            mask: Optional boolean array broadcastable to ``logits``;
                True marks an illegal connection (output forced to 0).

        Returns:
            Row-stochastic array (approximately; the PWL approximation
            perturbs each row sum by a few percent, exactly as the RTL
            does).
        """
        x = np.asarray(logits, dtype=np.float64) / self.scale_divisor
        if mask is not None:
            mask = np.broadcast_to(np.asarray(mask, dtype=bool), x.shape)
        # Stage 1 (Fig. 6): running row maximum over legal entries.
        if mask is not None:
            legal = np.where(mask, -np.inf, x)
        else:
            legal = x
        row_max = legal.max(axis=-1, keepdims=True)
        row_max = np.where(np.isfinite(row_max), row_max, 0.0)

        # Stage 2: EXP of the (non-positive) differences, in fixed point.
        diff = np.minimum(legal - row_max, 0.0)
        diff = np.where(np.isfinite(diff), diff, self.in_fmt.min_value)
        diff_codes = self.in_fmt.quantize(diff)
        exp_codes = self.exp_unit(diff_codes)
        if mask is not None:
            exp_codes = np.where(mask, 0, exp_codes)

        # Stage 3: row sum (integer accumulate, as the SUM stage does).
        sums = exp_codes.sum(axis=-1, keepdims=True)
        sums = np.maximum(sums, 1)

        # Stage 4: LN of the sum, then one more EXP of (diff - ln_sum).
        ln_codes = self.ln_unit(sums)
        ln_fp = self.ln_unit.out_fmt.dequantize(ln_codes)
        final_in = self.in_fmt.quantize(
            np.minimum(diff - ln_fp, 0.0)
        )
        y_codes = self.exp_unit(final_in)
        y = self.exp_unit.out_fmt.dequantize(y_codes)
        if mask is not None:
            y = np.where(mask, 0.0, y)
        return y

    def max_row_sum_error(self, rows: int = 64, cols: int = 64,
                          seed: int = 0) -> float:
        """Worst |row_sum - 1| over random logits (a fidelity metric)."""
        rng = np.random.default_rng(seed)
        logits = rng.normal(0.0, 8.0, size=(rows, cols))
        y = self(logits)
        return float(np.abs(y.sum(axis=-1) - 1.0).max())
