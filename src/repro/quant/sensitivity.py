"""Per-tap quantization sensitivity analysis.

Section V-A quantizes *everything* at once.  A natural follow-up question
for anyone deploying the accelerator: which activation tap actually costs
accuracy?  :func:`tap_sensitivity` answers it by quantizing one tap group
at a time (weights stay INT8 throughout, as the datapath requires) and
measuring the output perturbation against the FP32 model — identifying
the taps that would deserve wider formats if the INT8 budget ever proved
insufficient.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from ..transformer.model import Transformer
from .qmodel import QuantizedTransformer

#: Tap groups, by suffix, in the order the datapath touches them.
TAP_GROUPS = (
    "in_q", "in_kv", "q_act", "k_act", "v_act", "context", "in", "hidden",
)


@dataclass(frozen=True)
class SensitivityResult:
    """Output perturbation caused by one tap group's quantization.

    Attributes:
        tap_group: The suffix identifying the group (e.g. ``"hidden"``).
        rms_error: RMS logit error vs FP32 over the probe batch.
        max_error: Worst absolute logit error.
        relative_rms: ``rms_error`` normalized by the FP32 logit RMS.
    """

    tap_group: str
    rms_error: float
    max_error: float
    relative_rms: float


def _forward_with_selected_taps(
    quant: QuantizedTransformer,
    enabled_groups: Sequence[str],
    src: np.ndarray,
    tgt: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Run INT8 inference with only some activation taps quantized.

    Implemented by monkey-patching each block's calibrated params lookup:
    taps outside ``enabled_groups`` get an effectively-infinite-resolution
    QuantParams (scale small enough that quantization is a no-op at the
    probe's dynamic range).
    """
    from .quantizer import QuantParams

    cal = quant.calibrator
    original = cal.params

    def patched(tap: str) -> QuantParams:
        params = original(tap)
        group = tap.rsplit(".", 1)[-1]
        if group in enabled_groups:
            return params
        # 24-bit grid at the same range: quantization error negligible.
        return QuantParams(scale=params.scale / 65536.0, bits=24)

    cal.params = patched
    try:
        return quant.forward(src, tgt, lengths).numpy()
    finally:
        cal.params = original


def tap_sensitivity(
    model: Transformer,
    quant: QuantizedTransformer,
    src: np.ndarray,
    tgt: np.ndarray,
    lengths: np.ndarray,
    groups: Sequence[str] = TAP_GROUPS,
) -> list[SensitivityResult]:
    """Quantize one tap group at a time; measure logit perturbation."""
    if not quant.calibrator.frozen:
        raise QuantizationError("calibrate the quantized model first")
    model.eval()
    fp_logits = model(src, tgt, src_lengths=lengths).numpy()
    fp_rms = float(np.sqrt(np.mean(fp_logits ** 2)))
    results = []
    for group in groups:
        got = _forward_with_selected_taps(quant, [group], src, tgt, lengths)
        err = got - fp_logits
        rms = float(np.sqrt(np.mean(err ** 2)))
        results.append(SensitivityResult(
            tap_group=group,
            rms_error=rms,
            max_error=float(np.abs(err).max()),
            relative_rms=rms / fp_rms if fp_rms else 0.0,
        ))
    return results


def rank_by_sensitivity(
    results: Sequence[SensitivityResult],
) -> list[tuple[str, float]]:
    """``(tap_group, relative_rms)`` pairs, most sensitive first."""
    if not results:
        raise QuantizationError("no sensitivity results")
    ranked = sorted(results, key=lambda r: r.relative_rms, reverse=True)
    return [(r.tap_group, r.relative_rms) for r in ranked]


def compression_tolerance(
    model: Transformer,
    spec,
    src: np.ndarray,
    tgt: np.ndarray,
    lengths: np.ndarray,
    blocks: Sequence[str] | None = None,
) -> list[SensitivityResult]:
    """Compress one ResBlock at a time; measure logit perturbation.

    The compression twin of :func:`tap_sensitivity`: each ResBlock's
    weights are projected onto ``spec``'s structured family
    (:func:`repro.compress.apply.compress_model`) while every other
    block stays dense, and the FP32 logit perturbation is measured over
    the probe batch.  Results reuse :class:`SensitivityResult` with the
    ResBlock label in ``tap_group``, so :func:`rank_by_sensitivity`
    ranks them unchanged — most compression-*intolerant* first.
    """
    from ..compress.apply import (
        compress_model,
        resblock_weight_keys,
        restore_weights,
        snapshot_weights,
    )

    model.eval()
    fp_logits = model(src, tgt, src_lengths=lengths).numpy()
    fp_rms = float(np.sqrt(np.mean(fp_logits ** 2)))
    all_blocks = list(resblock_weight_keys(model))
    chosen = all_blocks if blocks is None else list(blocks)
    unknown = [b for b in chosen if b not in all_blocks]
    if unknown:
        raise QuantizationError(f"unknown ResBlocks: {unknown}")
    snapshot = snapshot_weights(model)
    results = []
    try:
        for block in chosen:
            compress_model(model, spec, blocks=[block])
            got = model(src, tgt, src_lengths=lengths).numpy()
            restore_weights(model, snapshot)
            err = got - fp_logits
            rms = float(np.sqrt(np.mean(err ** 2)))
            results.append(SensitivityResult(
                tap_group=block,
                rms_error=rms,
                max_error=float(np.abs(err).max()),
                relative_rms=rms / fp_rms if fp_rms else 0.0,
            ))
    finally:
        restore_weights(model, snapshot)
    return results


def surviving_blocks(
    results: Sequence[SensitivityResult],
    max_relative_rms: float = 0.1,
) -> list[str]:
    """ResBlocks whose perturbation stays under the tolerance threshold.

    The blocks that "survive" the compression scheme — candidates for
    compressing in deployment while the intolerant blocks stay dense.
    """
    if not results:
        raise QuantizationError("no tolerance results")
    return [
        r.tap_group for r in results if r.relative_rms <= max_relative_rms
    ]


def full_vs_sum_of_parts(
    model: Transformer,
    quant: QuantizedTransformer,
    src: np.ndarray,
    tgt: np.ndarray,
    lengths: np.ndarray,
) -> dict[str, float]:
    """Compare all-taps-quantized error to the per-tap errors' RSS.

    If tap errors were independent, the full error would be close to the
    root-sum-square of the individual ones; a large excess indicates
    error interaction between stages.
    """
    results = tap_sensitivity(model, quant, src, tgt, lengths)
    fp_logits = model(src, tgt, src_lengths=lengths).numpy()
    full = quant.forward(src, tgt, lengths).numpy() - fp_logits
    full_rms = float(np.sqrt(np.mean(full ** 2)))
    rss = float(np.sqrt(sum(r.rms_error ** 2 for r in results)))
    return {
        "full_rms": full_rms,
        "per_tap_rss": rss,
        "interaction_ratio": full_rms / rss if rss else float("inf"),
    }
