"""Symmetric INT8 quantization primitives (paper Section V-A, ref. [2]).

The paper follows Bhandare et al.: replace FP32 with INT8 for all weight
and activation matrices of the two ResBlocks.  We implement symmetric
per-tensor quantization — ``code = clamp(round(x / scale))`` with
``scale = amax / 127`` — because that is what the integer datapath of the
accelerator computes natively: an INT8xINT8 GEMM accumulated in INT32 then
rescaled by ``scale_x * scale_w``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import QuantizationError


def symmetric_scale(amax: float, bits: int = 8) -> float:
    """Scale mapping ``[-amax, amax]`` onto the signed ``bits``-bit grid."""
    if amax < 0:
        raise QuantizationError("amax must be non-negative")
    if bits < 2:
        raise QuantizationError("need at least 2 bits for signed codes")
    qmax = (1 << (bits - 1)) - 1
    if amax == 0.0:
        # Degenerate all-zero tensor; any positive scale works.
        return 1.0 / qmax
    return amax / qmax


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor symmetric quantization parameters.

    Attributes:
        scale: Real value of one integer step.
        bits: Signed word width (8 for the paper's INT8 datapath).
    """

    scale: float
    bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise QuantizationError("scale must be positive")
        if self.bits < 2:
            raise QuantizationError("bits must be >= 2")

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def qmin(self) -> int:
        return -(1 << (self.bits - 1))

    @classmethod
    def from_amax(cls, amax: float, bits: int = 8) -> QuantParams:
        """Build parameters covering ``[-amax, amax]``."""
        return cls(scale=symmetric_scale(amax, bits), bits=bits)

    @classmethod
    def from_tensor(cls, tensor: np.ndarray, bits: int = 8) -> QuantParams:
        """Build parameters from a tensor's absolute maximum."""
        return cls.from_amax(float(np.abs(tensor).max(initial=0.0)), bits)

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Real values -> integer codes (round-half-away, saturate)."""
        arr = np.asarray(tensor, dtype=np.float64) / self.scale
        codes = np.where(arr >= 0, np.floor(arr + 0.5), np.ceil(arr - 0.5))
        return np.clip(codes, self.qmin, self.qmax).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def fake_quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Round-trip through the integer grid (quantize then dequantize)."""
        return self.dequantize(self.quantize(tensor))


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer-code tensor together with its quantization parameters."""

    codes: np.ndarray
    params: QuantParams

    @classmethod
    def quantize(cls, tensor: np.ndarray, bits: int = 8) -> QuantizedTensor:
        params = QuantParams.from_tensor(tensor, bits)
        return cls(codes=params.quantize(tensor), params=params)

    def dequantize(self) -> np.ndarray:
        return self.params.dequantize(self.codes)

    @property
    def shape(self):
        return self.codes.shape


def int_gemm(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    x_params: QuantParams,
    w_params: QuantParams,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Integer GEMM with INT32-style accumulation, dequantized to FP.

    This is exactly the arithmetic the systolic array performs:
    ``y = (x_q @ w_q) * (s_x * s_w) + bias``.  Codes are held in int64 (a
    64-wide accumulator never overflows for the sizes involved; the RTL
    uses 32 bits, which the tests show is already overflow-free for
    d_ff <= 4096 at INT8).
    """
    x_codes = np.asarray(x_codes, dtype=np.int64)
    w_codes = np.asarray(w_codes, dtype=np.int64)
    if x_codes.shape[-1] != w_codes.shape[0]:
        raise QuantizationError(
            f"GEMM inner dims mismatch: {x_codes.shape} @ {w_codes.shape}"
        )
    acc = x_codes @ w_codes
    out = acc.astype(np.float64) * (x_params.scale * w_params.scale)
    if bias is not None:
        out = out + bias
    return out


def quantization_error(tensor: np.ndarray, bits: int = 8) -> float:
    """RMS error introduced by symmetric quantization of ``tensor``."""
    qt = QuantizedTensor.quantize(np.asarray(tensor), bits)
    return float(np.sqrt(np.mean((qt.dequantize() - tensor) ** 2)))
