"""Activation-range calibration for post-training quantization.

Static symmetric quantization needs one ``amax`` per activation tap.  The
:class:`Calibrator` is a tiny observer registry: quantized blocks call
:meth:`observe` while the model runs calibration batches in FP mode, and
:meth:`params` afterwards freezes each tap's :class:`QuantParams`.
"""

from __future__ import annotations


import numpy as np

from ..errors import QuantizationError
from .quantizer import QuantParams


class Calibrator:
    """Records per-tap absolute maxima over calibration batches.

    Taps are addressed by dotted string names (e.g.
    ``"encoder.layer0.self_attn.q_act"``); the same calibrator instance is
    shared by every quantized block of a model.
    """

    def __init__(self, bits: int = 8) -> None:
        self.bits = bits
        self._amax: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._frozen = False

    @property
    def frozen(self) -> bool:
        return self._frozen

    def observe(self, tap: str, tensor: np.ndarray) -> None:
        """Record the absolute maximum of ``tensor`` for ``tap``."""
        if self._frozen:
            raise QuantizationError(
                f"calibrator is frozen; cannot observe tap {tap!r}"
            )
        amax = float(np.abs(np.asarray(tensor)).max(initial=0.0))
        self._amax[tap] = max(self._amax.get(tap, 0.0), amax)
        self._counts[tap] = self._counts.get(tap, 0) + 1

    def freeze(self) -> None:
        """Stop collection; :meth:`params` becomes available."""
        if not self._amax:
            raise QuantizationError("cannot freeze an empty calibrator")
        self._frozen = True

    def params(self, tap: str) -> QuantParams:
        """Quantization parameters for a calibrated tap."""
        if not self._frozen:
            raise QuantizationError("freeze() the calibrator before params()")
        if tap not in self._amax:
            raise QuantizationError(f"tap {tap!r} was never observed")
        return QuantParams.from_amax(self._amax[tap], self.bits)

    def amax(self, tap: str) -> float:
        if tap not in self._amax:
            raise QuantizationError(f"tap {tap!r} was never observed")
        return self._amax[tap]

    def taps(self) -> list[str]:
        """All observed tap names, sorted."""
        return sorted(self._amax)

    def observation_count(self, tap: str) -> int:
        return self._counts.get(tap, 0)

    def summary(self) -> dict[str, float]:
        """Copy of the tap -> amax table (for reports/tests)."""
        return dict(self._amax)
