"""INT8 post-training quantization (paper Section V-A).

Two-step pipeline matching the paper: (1) quantize all ResBlock weight and
activation matrices to INT8 with FP32 softmax; (2) additionally replace the
softmax by the hardware EXP/LN-unit approximation.
"""

from .calibration import Calibrator
from .qbert import QuantizedEncoderOnly
from .qmodel import (
    QuantFFNResBlock,
    QuantMHAResBlock,
    QuantizedTransformer,
    SOFTMAX_FP32,
    SOFTMAX_HARDWARE,
)
from .qsoftmax import HardwareSoftmax
from .quantizer import (
    QuantParams,
    QuantizedTensor,
    int_gemm,
    quantization_error,
    symmetric_scale,
)
from .sensitivity import (
    SensitivityResult,
    compression_tolerance,
    full_vs_sum_of_parts,
    rank_by_sensitivity,
    surviving_blocks,
    tap_sensitivity,
)

__all__ = [
    "Calibrator",
    "HardwareSoftmax",
    "QuantFFNResBlock",
    "QuantMHAResBlock",
    "QuantParams",
    "QuantizedEncoderOnly",
    "QuantizedTensor",
    "QuantizedTransformer",
    "SOFTMAX_FP32",
    "SOFTMAX_HARDWARE",
    "SensitivityResult",
    "compression_tolerance",
    "full_vs_sum_of_parts",
    "int_gemm",
    "quantization_error",
    "rank_by_sensitivity",
    "surviving_blocks",
    "symmetric_scale",
    "tap_sensitivity",
]
