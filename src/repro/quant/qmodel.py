"""INT8 quantized Transformer (paper Section V-A).

:class:`QuantizedTransformer` wraps a *trained* FP32 :class:`Transformer`
and replaces the arithmetic of every MHA/FFN ResBlock with the integer
datapath of the accelerator:

* weights of the six Linear layers per encoder/decoder layer are quantized
  once to symmetric INT8;
* activations are quantized at the taps where the hardware stores them
  (ResBlock input, Q/K/V projections, softmax probabilities, attention
  context, FFN hidden) with scales frozen by a calibration pass;
* every GEMM runs as an integer matmul with wide accumulation followed by
  a single rescale — bit-equivalent to the systolic array;
* the softmax runs either in FP32 (the paper's quantization step one) or
  through the hardware EXP/LN units (step two) via
  :class:`~repro.quant.qsoftmax.HardwareSoftmax`.

Embeddings, positional encoding, LayerNorm, residual adds and the output
generator stay FP (the paper quantizes "the matrices in Fig. 3", i.e. the
ResBlocks; LayerNorm internals are implemented separately by the
LayerNorm module model in :mod:`repro.core`).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..errors import QuantizationError
from ..transformer.attention import MHAResBlock
from ..transformer.ffn import FFNResBlock
from ..transformer.functional import layer_norm, relu, scaled_masked_softmax
from ..transformer.model import Transformer
from ..transformer.tensor import Tensor
from .calibration import Calibrator
from .qsoftmax import HardwareSoftmax
from .quantizer import QuantParams, QuantizedTensor, int_gemm

#: Softmax execution modes.
SOFTMAX_FP32 = "fp32"
SOFTMAX_HARDWARE = "hardware"


class QuantMHAResBlock:
    """Integer-datapath version of one MHA ResBlock."""

    def __init__(
        self,
        fp_block: MHAResBlock,
        calibrator: Calibrator,
        tap_prefix: str,
        softmax_mode: str = SOFTMAX_FP32,
        bits: int = 8,
    ) -> None:
        self._fp = fp_block
        self._cal = calibrator
        self._prefix = tap_prefix
        self.softmax_mode = softmax_mode
        mha = fp_block.mha
        self.num_heads = mha.num_heads
        self.d_k = mha.d_k
        self.d_model = mha.d_model
        self.weights: dict[str, QuantizedTensor] = {
            "q": QuantizedTensor.quantize(mha.q_proj.weight.data, bits),
            "k": QuantizedTensor.quantize(mha.k_proj.weight.data, bits),
            "v": QuantizedTensor.quantize(mha.v_proj.weight.data, bits),
            "g": QuantizedTensor.quantize(mha.out_proj.weight.data, bits),
        }
        self.biases = {
            "q": mha.q_proj.bias.data,
            "k": mha.k_proj.bias.data,
            "v": mha.v_proj.bias.data,
            "g": mha.out_proj.bias.data,
        }
        self._hw_softmax = HardwareSoftmax(scale_divisor=float(self.d_k) ** 0.5)
        #: Softmax probabilities lie in [0, 1]; their scale is fixed.
        self._prob_params = QuantParams.from_amax(1.0, bits)

    def _tap(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.d_k).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, d_k = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * d_k)

    def forward_calibrate(
        self,
        q_in: np.ndarray,
        kv_in: np.ndarray,
        mask: Optional[np.ndarray],
    ) -> np.ndarray:
        """FP forward that records activation ranges at every tap."""
        mha, cal = self._fp.mha, self._cal
        cal.observe(self._tap("in_q"), q_in)
        cal.observe(self._tap("in_kv"), kv_in)
        q = q_in @ mha.q_proj.weight.data + mha.q_proj.bias.data
        k = kv_in @ mha.k_proj.weight.data + mha.k_proj.bias.data
        v = kv_in @ mha.v_proj.weight.data + mha.v_proj.bias.data
        cal.observe(self._tap("q_act"), q)
        cal.observe(self._tap("k_act"), k)
        cal.observe(self._tap("v_act"), v)
        qh, kh, vh = map(self._split_heads, (q, k, v))
        logits = qh @ np.swapaxes(kh, -1, -2)
        head_mask = _expand_mask(mask, logits.shape)
        probs = scaled_masked_softmax(
            logits, head_mask, scale_divisor=float(self.d_k) ** 0.5
        )
        context = self._merge_heads(probs @ vh)
        cal.observe(self._tap("context"), context)
        out = context @ mha.out_proj.weight.data + mha.out_proj.bias.data
        g = q_in + out
        return layer_norm(
            g, self._fp.norm.gamma.data, self._fp.norm.beta.data,
            eps=self._fp.norm.eps,
        )

    def forward_int8(
        self,
        q_in: np.ndarray,
        kv_in: np.ndarray,
        mask: Optional[np.ndarray],
    ) -> np.ndarray:
        """Integer-datapath forward using frozen calibration scales."""
        cal = self._cal
        pq = cal.params(self._tap("in_q"))
        pkv = cal.params(self._tap("in_kv"))
        q = int_gemm(pq.quantize(q_in), self.weights["q"].codes,
                     pq, self.weights["q"].params, self.biases["q"])
        k = int_gemm(pkv.quantize(kv_in), self.weights["k"].codes,
                     pkv, self.weights["k"].params, self.biases["k"])
        v = int_gemm(pkv.quantize(kv_in), self.weights["v"].codes,
                     pkv, self.weights["v"].params, self.biases["v"])
        p_qa = cal.params(self._tap("q_act"))
        p_ka = cal.params(self._tap("k_act"))
        p_va = cal.params(self._tap("v_act"))
        qh = self._split_heads(p_qa.fake_quantize(q))
        kh = self._split_heads(p_ka.fake_quantize(k))
        vh = self._split_heads(p_va.fake_quantize(v))
        logits = qh @ np.swapaxes(kh, -1, -2)
        head_mask = _expand_mask(mask, logits.shape)
        if self.softmax_mode == SOFTMAX_HARDWARE:
            probs = self._hw_softmax(logits, head_mask)
        elif self.softmax_mode == SOFTMAX_FP32:
            probs = scaled_masked_softmax(
                logits, head_mask, scale_divisor=float(self.d_k) ** 0.5
            )
        else:
            raise QuantizationError(
                f"unknown softmax mode {self.softmax_mode!r}"
            )
        probs = self._prob_params.fake_quantize(probs)
        context = self._merge_heads(probs @ vh)
        p_ctx = cal.params(self._tap("context"))
        out = int_gemm(
            p_ctx.quantize(context), self.weights["g"].codes,
            p_ctx, self.weights["g"].params, self.biases["g"],
        )
        g = q_in + out
        return layer_norm(
            g, self._fp.norm.gamma.data, self._fp.norm.beta.data,
            eps=self._fp.norm.eps,
        )


class QuantFFNResBlock:
    """Integer-datapath version of one FFN ResBlock."""

    def __init__(
        self,
        fp_block: FFNResBlock,
        calibrator: Calibrator,
        tap_prefix: str,
        bits: int = 8,
    ) -> None:
        self._fp = fp_block
        self._cal = calibrator
        self._prefix = tap_prefix
        ffn = fp_block.ffn
        self.w1 = QuantizedTensor.quantize(ffn.linear1.weight.data, bits)
        self.w2 = QuantizedTensor.quantize(ffn.linear2.weight.data, bits)
        self.b1 = ffn.linear1.bias.data
        self.b2 = ffn.linear2.bias.data

    def _tap(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def forward_calibrate(self, x: np.ndarray) -> np.ndarray:
        ffn, cal = self._fp.ffn, self._cal
        cal.observe(self._tap("in"), x)
        hidden = relu(x @ ffn.linear1.weight.data + ffn.linear1.bias.data)
        cal.observe(self._tap("hidden"), hidden)
        out = hidden @ ffn.linear2.weight.data + ffn.linear2.bias.data
        return layer_norm(
            x + out, self._fp.norm.gamma.data, self._fp.norm.beta.data,
            eps=self._fp.norm.eps,
        )

    def forward_int8(self, x: np.ndarray) -> np.ndarray:
        cal = self._cal
        p_in = cal.params(self._tap("in"))
        hidden = relu(
            int_gemm(p_in.quantize(x), self.w1.codes, p_in, self.w1.params,
                     self.b1)
        )
        p_hidden = cal.params(self._tap("hidden"))
        out = int_gemm(
            p_hidden.quantize(hidden), self.w2.codes, p_hidden,
            self.w2.params, self.b2,
        )
        return layer_norm(
            x + out, self._fp.norm.gamma.data, self._fp.norm.beta.data,
            eps=self._fp.norm.eps,
        )


def _expand_mask(
    mask: Optional[np.ndarray], logits_shape: tuple[int, ...]
) -> Optional[np.ndarray]:
    """Broadcast a (batch, s_q, s_v) mask over the head axis."""
    if mask is None:
        return None
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim == len(logits_shape) - 1:
        mask = mask[:, None, :, :]
    return np.broadcast_to(mask, logits_shape)


class QuantizedTransformer:
    """INT8 inference model wrapping a trained FP32 :class:`Transformer`.

    Usage::

        qt = QuantizedTransformer(model)
        qt.calibrate(batches)          # FP pass recording ranges
        qt.softmax_mode = "hardware"   # optional: the paper's step two
        logits = qt.forward(src, tgt)  # integer-datapath inference

    Implements the ``encode/decode/generator/build_masks`` protocol, so the
    greedy/beam decoders accept it interchangeably with the FP model.
    """

    def __init__(
        self, model: Transformer, softmax_mode: str = SOFTMAX_FP32,
        bits: int = 8,
    ) -> None:
        self._model = model
        self.config: ModelConfig = model.config
        self.calibrator = Calibrator(bits=bits)
        self.bits = bits
        self._softmax_mode = softmax_mode
        self._calibrating = False
        self.enc_mha = []
        self.enc_ffn = []
        for i, layer in enumerate(model.encoder.layers):
            self.enc_mha.append(QuantMHAResBlock(
                layer.self_attn, self.calibrator, f"enc{i}.self",
                softmax_mode, bits,
            ))
            self.enc_ffn.append(QuantFFNResBlock(
                layer.ffn, self.calibrator, f"enc{i}.ffn", bits,
            ))
        self.dec_self = []
        self.dec_cross = []
        self.dec_ffn = []
        for i, layer in enumerate(model.decoder.layers):
            self.dec_self.append(QuantMHAResBlock(
                layer.self_attn, self.calibrator, f"dec{i}.self",
                softmax_mode, bits,
            ))
            self.dec_cross.append(QuantMHAResBlock(
                layer.cross_attn, self.calibrator, f"dec{i}.cross",
                softmax_mode, bits,
            ))
            self.dec_ffn.append(QuantFFNResBlock(
                layer.ffn, self.calibrator, f"dec{i}.ffn", bits,
            ))

    # ------------------------------------------------------------------
    @property
    def softmax_mode(self) -> str:
        return self._softmax_mode

    @softmax_mode.setter
    def softmax_mode(self, mode: str) -> None:
        if mode not in (SOFTMAX_FP32, SOFTMAX_HARDWARE):
            raise QuantizationError(f"unknown softmax mode {mode!r}")
        self._softmax_mode = mode
        for block in self.enc_mha + self.dec_self + self.dec_cross:
            block.softmax_mode = mode

    # ------------------------------------------------------------------
    def build_masks(self, *args, **kwargs):
        return self._model.build_masks(*args, **kwargs)

    def generator(self, states: Tensor) -> Tensor:
        return self._model.generator(states)

    def _embed_src(self, src_ids: np.ndarray) -> np.ndarray:
        self._model.eval()
        return self._model.positional(self._model.src_embed(src_ids)).numpy()

    def _embed_tgt(self, tgt_ids: np.ndarray) -> np.ndarray:
        self._model.eval()
        return self._model.positional(self._model.tgt_embed(tgt_ids)).numpy()

    def encode(
        self, src_ids: np.ndarray, src_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        x = self._embed_src(np.asarray(src_ids))
        for mha, ffn in zip(self.enc_mha, self.enc_ffn):
            if self._calibrating:
                x = mha.forward_calibrate(x, x, src_mask)
                x = ffn.forward_calibrate(x)
            else:
                x = mha.forward_int8(x, x, src_mask)
                x = ffn.forward_int8(x)
        return Tensor(x)

    def decode(
        self,
        tgt_ids: np.ndarray,
        memory: Tensor,
        self_mask: Optional[np.ndarray] = None,
        cross_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        y = self._embed_tgt(np.asarray(tgt_ids))
        mem = memory.numpy() if isinstance(memory, Tensor) else memory
        blocks = zip(self.dec_self, self.dec_cross, self.dec_ffn)
        for self_blk, cross_blk, ffn_blk in blocks:
            if self._calibrating:
                y = self_blk.forward_calibrate(y, y, self_mask)
                y = cross_blk.forward_calibrate(y, mem, cross_mask)
                y = ffn_blk.forward_calibrate(y)
            else:
                y = self_blk.forward_int8(y, y, self_mask)
                y = cross_blk.forward_int8(y, mem, cross_mask)
                y = ffn_blk.forward_int8(y)
        return Tensor(y)

    def forward(
        self,
        src_ids: np.ndarray,
        tgt_ids: np.ndarray,
        src_lengths: Optional[np.ndarray] = None,
    ) -> Tensor:
        src_ids = np.asarray(src_ids)
        tgt_ids = np.asarray(tgt_ids)
        if src_lengths is None:
            src_lengths = np.full(src_ids.shape[0], src_ids.shape[1])
        enc_mask, dec_self, cross = self._model.build_masks(
            np.asarray(src_lengths), tgt_ids.shape[1], src_ids.shape[1]
        )
        memory = self.encode(src_ids, enc_mask)
        states = self.decode(tgt_ids, memory, dec_self, cross)
        return self.generator(states)

    # ------------------------------------------------------------------
    def calibrate(self, batches: Iterable[tuple[np.ndarray, np.ndarray, np.ndarray]]) -> None:
        """Run FP forward passes over ``(src, tgt, src_lengths)`` batches,
        recording every activation range, then freeze the calibrator."""
        self._calibrating = True
        try:
            count = 0
            for src_ids, tgt_ids, src_lengths in batches:
                self.forward(src_ids, tgt_ids, src_lengths)
                count += 1
            if count == 0:
                raise QuantizationError("calibrate() received no batches")
        finally:
            self._calibrating = False
        self.calibrator.freeze()

    def weight_memory_bytes(self) -> int:
        """Total INT8 weight bytes across all quantized ResBlocks."""
        total = 0
        for block in self.enc_mha + self.dec_self + self.dec_cross:
            total += sum(w.codes.size for w in block.weights.values())
        for block in self.enc_ffn + self.dec_ffn:
            total += block.w1.codes.size + block.w2.codes.size
        return total
