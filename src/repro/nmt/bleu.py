"""Corpus BLEU (Papineni et al., 2002).

Standard BLEU-4 with modified n-gram precision, geometric mean, and the
brevity penalty — the metric the paper's Section V-A reports (23.88 FP32,
23.48 INT8, 23.57 INT8 + approximate softmax on IWSLT tst2014).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from ..errors import ShapeError


def _ngrams(tokens: Sequence, order: int) -> Counter:
    return Counter(
        tuple(tokens[i:i + order]) for i in range(len(tokens) - order + 1)
    )


def sentence_stats(
    hypothesis: Sequence, reference: Sequence, max_order: int = 4
) -> tuple[list[int], list[int], int, int]:
    """Clipped match / total counts per order, plus lengths."""
    matches = []
    totals = []
    for order in range(1, max_order + 1):
        hyp_ngrams = _ngrams(hypothesis, order)
        ref_ngrams = _ngrams(reference, order)
        overlap = sum(
            min(count, ref_ngrams[gram]) for gram, count in hyp_ngrams.items()
        )
        matches.append(overlap)
        totals.append(max(len(hypothesis) - order + 1, 0))
    return matches, totals, len(hypothesis), len(reference)


def corpus_bleu(
    hypotheses: Sequence[Sequence],
    references: Sequence[Sequence],
    max_order: int = 4,
    smooth: bool = False,
) -> float:
    """Corpus-level BLEU score in [0, 100].

    Args:
        hypotheses: Decoded token sequences.
        references: One reference per hypothesis.
        max_order: Highest n-gram order (4 = BLEU-4).
        smooth: Add-one smoothing on higher-order precisions (useful for
            very short synthetic corpora; off by default to match
            conventional BLEU).
    """
    if len(hypotheses) != len(references):
        raise ShapeError(
            f"{len(hypotheses)} hypotheses vs {len(references)} references"
        )
    if not hypotheses:
        raise ShapeError("BLEU of an empty corpus is undefined")
    matches = np.zeros(max_order)
    totals = np.zeros(max_order)
    hyp_len = 0
    ref_len = 0
    for hyp, ref in zip(hypotheses, references):
        m, t, hl, rl = sentence_stats(hyp, ref, max_order)
        matches += m
        totals += t
        hyp_len += hl
        ref_len += rl
    if hyp_len == 0:
        return 0.0

    precisions = np.zeros(max_order)
    for i in range(max_order):
        if smooth and i > 0:
            precisions[i] = (matches[i] + 1.0) / (totals[i] + 1.0)
        elif totals[i] > 0:
            precisions[i] = matches[i] / totals[i]
        else:
            precisions[i] = 0.0
    if np.any(precisions == 0.0):
        return 0.0
    log_mean = np.mean(np.log(precisions))
    brevity = 1.0 if hyp_len > ref_len else np.exp(1.0 - ref_len / hyp_len)
    return float(100.0 * brevity * np.exp(log_mean))


def sentence_bleu(
    hypothesis: Sequence, reference: Sequence, max_order: int = 4
) -> float:
    """Single-sentence BLEU with add-one smoothing (diagnostic use)."""
    return corpus_bleu([hypothesis], [reference], max_order, smooth=True)
