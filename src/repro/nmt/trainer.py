"""Training and evaluation loops for the synthetic translation task.

Produces the trained FP32 checkpoint the quantization study (paper
Section V-A) starts from; :func:`evaluate_bleu` scores any model that
implements the ``encode/decode/generator/build_masks`` protocol (the FP
model and the quantized model alike), mirroring the paper's BLEU protocol.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..errors import TrainingError
from ..transformer import Adam, NoamSchedule, Transformer, cross_entropy
from ..transformer.decoding import greedy_decode
from .bleu import corpus_bleu
from .corpus import SentencePair, SyntheticTranslationTask
from .dataset import encode_pairs, iter_batches


@dataclass
class TrainingLog:
    """Loss / learning-rate trace of a training run."""

    losses: list[float] = field(default_factory=list)
    rates: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise TrainingError("no training steps were recorded")
        return self.losses[-1]


def train_model(
    model: Transformer,
    task: SyntheticTranslationTask,
    train_pairs: Sequence[SentencePair],
    epochs: int = 10,
    batch_size: int = 32,
    warmup: int = 200,
    lr_factor: float = 1.0,
    grad_clip: float = 5.0,
    seed: int = 0,
    label_smoothing: float = 0.0,
    log_every: int = 0,
) -> TrainingLog:
    """Teacher-forced training with Adam + Noam warmup.

    Returns the loss trace; the model is updated in place.
    """
    if epochs <= 0:
        raise TrainingError("epochs must be positive")
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), grad_clip=grad_clip)
    schedule = NoamSchedule(model.config.d_model, warmup=warmup,
                            factor=lr_factor)
    log = TrainingLog()
    model.train()
    step = 0
    for _ in range(epochs):
        batches = iter_batches(
            train_pairs, task.src_vocab, task.tgt_vocab, batch_size, rng
        )
        for batch in batches:
            rate = schedule.step(optimizer)
            logits = model(
                batch.src, batch.tgt_in,
                src_lengths=batch.src_lengths,
                tgt_lengths=batch.tgt_lengths,
            )
            loss = cross_entropy(
                logits, batch.tgt_out,
                ignore_index=task.tgt_vocab.pad_id,
                label_smoothing=label_smoothing,
            )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            log.losses.append(loss.item())
            log.rates.append(rate)
            step += 1
            if log_every and step % log_every == 0:
                print(f"step {step}: loss {loss.item():.4f} lr {rate:.5f}")
    model.eval()
    if not np.isfinite(log.final_loss):
        raise TrainingError("training diverged (non-finite loss)")
    return log


def evaluate_bleu(
    model,
    task: SyntheticTranslationTask,
    pairs: Sequence[SentencePair],
    max_len: Optional[int] = None,
    batch_size: int = 32,
) -> float:
    """Greedy-decode ``pairs`` and return corpus BLEU against references.

    ``model`` may be the FP32 Transformer or a QuantizedTransformer.
    """
    if not pairs:
        raise TrainingError("evaluate_bleu needs at least one pair")
    if max_len is None:
        max_len = task.max_len + 4
    hypotheses: list[list[str]] = []
    references: list[list[str]] = []
    for start in range(0, len(pairs), batch_size):
        chunk = list(pairs[start:start + batch_size])
        batch = encode_pairs(chunk, task.src_vocab, task.tgt_vocab)
        results = greedy_decode(
            model, batch.src, batch.src_lengths,
            bos_id=task.tgt_vocab.bos_id, eos_id=task.tgt_vocab.eos_id,
            max_len=max_len,
        )
        for pair, result in zip(chunk, results):
            hypotheses.append(task.tgt_vocab.decode(result.tokens))
            references.append(list(pair.target))
    return corpus_bleu(hypotheses, references)


def exact_match_rate(
    model,
    task: SyntheticTranslationTask,
    pairs: Sequence[SentencePair],
    batch_size: int = 32,
) -> float:
    """Fraction of sentences decoded exactly right (a stricter metric)."""
    if not pairs:
        raise TrainingError("exact_match_rate needs at least one pair")
    correct = 0
    for start in range(0, len(pairs), batch_size):
        chunk = list(pairs[start:start + batch_size])
        batch = encode_pairs(chunk, task.src_vocab, task.tgt_vocab)
        results = greedy_decode(
            model, batch.src, batch.src_lengths,
            bos_id=task.tgt_vocab.bos_id, eos_id=task.tgt_vocab.eos_id,
            max_len=task.max_len + 4,
        )
        for pair, result in zip(chunk, results):
            if task.tgt_vocab.decode(result.tokens) == list(pair.target):
                correct += 1
    return correct / len(pairs)


def default_nmt_config(max_seq_len: int = 24) -> ModelConfig:
    """The small config used for the quantization study's trained model.

    d_model = 64 (one 64-wide head, matching the accelerator's head size),
    two encoder and two decoder layers — small enough to train in numpy in
    about a minute, large enough to master the synthetic task.
    """
    return ModelConfig(
        "nmt-small", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=2, num_decoder_layers=2,
        max_seq_len=max_seq_len, dropout=0.0,
    )
