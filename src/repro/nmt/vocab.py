"""Vocabulary with the four standard special tokens.

The synthetic corpus uses word-level tokens; :class:`Vocab` maps between
surface strings and integer ids, reserving PAD=0, BOS=1, EOS=2, UNK=3 as
most NMT toolchains do.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import ShapeError

PAD_TOKEN = "<pad>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
UNK_TOKEN = "<unk>"
SPECIAL_TOKENS = (PAD_TOKEN, BOS_TOKEN, EOS_TOKEN, UNK_TOKEN)


class Vocab:
    """Bidirectional token/string mapping with reserved specials."""

    def __init__(self, words: Iterable[str]) -> None:
        self._itos: list[str] = list(SPECIAL_TOKENS)
        seen = set(self._itos)
        for word in words:
            if word in seen:
                raise ShapeError(f"duplicate vocabulary word {word!r}")
            seen.add(word)
            self._itos.append(word)
        self._stoi: dict[str, int] = {w: i for i, w in enumerate(self._itos)}

    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, word: str) -> bool:
        return word in self._stoi

    @property
    def pad_id(self) -> int:
        return self._stoi[PAD_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._stoi[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._stoi[EOS_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._stoi[UNK_TOKEN]

    def encode(self, words: Sequence[str]) -> list[int]:
        """Word sequence -> id sequence (unknowns map to UNK)."""
        return [self._stoi.get(w, self.unk_id) for w in words]

    def decode(self, ids: Sequence[int], strip_special: bool = True) -> list[str]:
        """Id sequence -> word sequence."""
        words = []
        for token_id in ids:
            if not 0 <= token_id < len(self._itos):
                raise ShapeError(f"token id {token_id} out of range")
            word = self._itos[token_id]
            if strip_special and word in SPECIAL_TOKENS:
                continue
            words.append(word)
        return words

    def word(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._itos):
            raise ShapeError(f"token id {token_id} out of range")
        return self._itos[token_id]

    def id(self, word: str) -> int:
        if word not in self._stoi:
            raise ShapeError(f"unknown word {word!r}")
        return self._stoi[word]
