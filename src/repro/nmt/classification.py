"""Synthetic sequence-classification task (GLUE stand-in).

Section II-B motivates the accelerator with BERT-family models and the
GLUE benchmark, neither of which is available offline.  This module
provides the classification analogue of the synthetic translation task:
sequences over a small lexicon whose label depends on *global* sequence
structure, so an encoder-only model must actually attend:

* the lexicon is split into three groups (A/B/C);
* the base label is the majority group in the sentence;
* an override rule: if the marker word ``"flip"`` appears anywhere, the
  majority and minority groups swap — making a purely local/bag-of-words
  shortcut insufficient whenever the marker is present.

Position 0 of every encoded example carries a [CLS] token, matching
:class:`~repro.transformer.bert.EncoderOnlyClassifier`'s convention.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .vocab import Vocab

#: The label-flipping marker word.
FLIP_WORD = "flip"

#: The [CLS] token prepended to every example.
CLS_WORD = "[cls]"

NUM_GROUPS = 3


@dataclass(frozen=True)
class LabeledSentence:
    """One classification example."""

    tokens: tuple[str, ...]
    label: int


class SyntheticClassificationTask:
    """Majority-group classification with a global flip rule.

    Attributes:
        vocab: Shared vocabulary (content words + marker + [CLS]).
        num_classes: Always 3 (one per token group).
    """

    def __init__(self, words_per_group: int = 6, min_len: int = 5,
                 max_len: int = 12, flip_prob: float = 0.3) -> None:
        if words_per_group < 2:
            raise ShapeError("need at least two words per group")
        if not 2 <= min_len <= max_len:
            raise ShapeError("require 2 <= min_len <= max_len")
        self.words_per_group = words_per_group
        self.min_len = min_len
        self.max_len = max_len
        self.flip_prob = flip_prob
        words = [CLS_WORD, FLIP_WORD]
        for group in range(NUM_GROUPS):
            words.extend(
                f"g{group}w{i}" for i in range(words_per_group)
            )
        self.vocab = Vocab(words)

    @property
    def num_classes(self) -> int:
        return NUM_GROUPS

    # ------------------------------------------------------------------
    def label_of(self, tokens: Sequence[str]) -> int:
        """Ground-truth label of a token sequence (excluding [CLS])."""
        counts = np.zeros(NUM_GROUPS, dtype=np.int64)
        flipped = False
        for word in tokens:
            if word == FLIP_WORD:
                flipped = True
            elif word.startswith("g") and "w" in word:
                counts[int(word[1])] += 1
            elif word == CLS_WORD:
                continue
            else:
                raise ShapeError(f"unknown word {word!r}")
        if counts.sum() == 0:
            raise ShapeError("sentence has no content words")
        majority = int(counts.argmax())
        if flipped:
            return int(counts.argmin())
        return majority

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> LabeledSentence:
        """Draw one example with an unambiguous majority."""
        while True:
            length = int(rng.integers(self.min_len, self.max_len + 1))
            tokens: list[str] = []
            for _ in range(length):
                if rng.random() < self.flip_prob / length:
                    tokens.append(FLIP_WORD)
                else:
                    group = int(rng.integers(NUM_GROUPS))
                    word = int(rng.integers(self.words_per_group))
                    tokens.append(f"g{group}w{word}")
            content = [t for t in tokens if t != FLIP_WORD]
            if not content:
                continue
            counts = np.bincount(
                [int(t[1]) for t in content], minlength=NUM_GROUPS
            )
            ranked = np.sort(counts)
            if ranked[-1] == ranked[-2] or ranked[0] == ranked[1]:
                continue  # ambiguous majority or minority; resample
            return LabeledSentence(
                tokens=tuple(tokens), label=self.label_of(tokens)
            )

    def make_dataset(self, size: int, seed: int = 0) -> list[LabeledSentence]:
        if size <= 0:
            raise ShapeError("dataset size must be positive")
        rng = np.random.default_rng(seed)
        return [self.sample(rng) for _ in range(size)]

    # ------------------------------------------------------------------
    def encode_batch(
        self, examples: Sequence[LabeledSentence]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(token_ids, lengths, labels)`` with [CLS] at position 0."""
        if not examples:
            raise ShapeError("cannot encode an empty batch")
        rows = [
            self.vocab.encode([CLS_WORD] + list(ex.tokens))
            for ex in examples
        ]
        width = max(len(r) for r in rows)
        ids = np.full((len(rows), width), self.vocab.pad_id, dtype=np.int64)
        for i, row in enumerate(rows):
            ids[i, :len(row)] = row
        lengths = np.array([len(r) for r in rows], dtype=np.int64)
        labels = np.array([ex.label for ex in examples], dtype=np.int64)
        return ids, lengths, labels


def train_classifier(
    model,
    task: SyntheticClassificationTask,
    examples: Sequence[LabeledSentence],
    epochs: int = 8,
    batch_size: int = 32,
    lr: float = 3e-3,
    seed: int = 0,
) -> list[float]:
    """Train an :class:`EncoderOnlyClassifier`; returns the loss trace."""
    from ..transformer.optim import Adam, cross_entropy

    if epochs <= 0:
        raise ShapeError("epochs must be positive")
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr, grad_clip=5.0)
    losses: list[float] = []
    model.train()
    order = np.arange(len(examples))
    for _ in range(epochs):
        rng.shuffle(order)
        for start in range(0, len(examples), batch_size):
            chunk = [examples[i] for i in order[start:start + batch_size]]
            ids, lengths, labels = task.encode_batch(chunk)
            logits = model(ids, lengths)
            loss = cross_entropy(
                logits.reshape(len(chunk), 1, task.num_classes),
                labels[:, None],
            )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
    model.eval()
    return losses


def accuracy(
    model, task: SyntheticClassificationTask,
    examples: Sequence[LabeledSentence], batch_size: int = 64,
) -> float:
    """Classification accuracy of ``model`` on ``examples``."""
    if not examples:
        raise ShapeError("accuracy over an empty set is undefined")
    correct = 0
    for start in range(0, len(examples), batch_size):
        chunk = list(examples[start:start + batch_size])
        ids, lengths, labels = task.encode_batch(chunk)
        predictions = model.predict(ids, lengths)
        correct += int((predictions == labels).sum())
    return correct / len(examples)
