"""Synthetic NMT task: the offline stand-in for the paper's IWSLT'16 study."""

from .bleu import corpus_bleu, sentence_bleu, sentence_stats
from .classification import (
    CLS_WORD,
    FLIP_WORD,
    LabeledSentence,
    SyntheticClassificationTask,
    accuracy,
    train_classifier,
)
from .corpus import MARKER_WORD, SentencePair, SyntheticTranslationTask
from .dataset import Batch, encode_pairs, iter_batches
from .trainer import (
    TrainingLog,
    default_nmt_config,
    evaluate_bleu,
    exact_match_rate,
    train_model,
)
from .vocab import (
    BOS_TOKEN,
    EOS_TOKEN,
    PAD_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocab,
)

__all__ = [
    "BOS_TOKEN",
    "Batch",
    "CLS_WORD",
    "EOS_TOKEN",
    "FLIP_WORD",
    "LabeledSentence",
    "MARKER_WORD",
    "PAD_TOKEN",
    "SPECIAL_TOKENS",
    "SentencePair",
    "SyntheticClassificationTask",
    "SyntheticTranslationTask",
    "TrainingLog",
    "UNK_TOKEN",
    "Vocab",
    "accuracy",
    "corpus_bleu",
    "default_nmt_config",
    "encode_pairs",
    "evaluate_bleu",
    "exact_match_rate",
    "iter_batches",
    "sentence_bleu",
    "sentence_stats",
    "train_classifier",
    "train_model",
]
