"""Batching utilities: id encoding, padding, and epoch iteration."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .corpus import SentencePair
from .vocab import Vocab


@dataclass(frozen=True)
class Batch:
    """One padded training batch.

    Attributes:
        src: ``(batch, s_src)`` source ids (padded with PAD).
        tgt_in: ``(batch, s_tgt)`` decoder input (BOS + target).
        tgt_out: ``(batch, s_tgt)`` decoder labels (target + EOS).
        src_lengths: Valid source lengths.
        tgt_lengths: Valid decoder lengths (target length + 1).
    """

    src: np.ndarray
    tgt_in: np.ndarray
    tgt_out: np.ndarray
    src_lengths: np.ndarray
    tgt_lengths: np.ndarray

    @property
    def size(self) -> int:
        return self.src.shape[0]


def _pad(rows: list[list[int]], pad_id: int) -> np.ndarray:
    width = max(len(r) for r in rows)
    out = np.full((len(rows), width), pad_id, dtype=np.int64)
    for i, row in enumerate(rows):
        out[i, :len(row)] = row
    return out


def encode_pairs(
    pairs: Sequence[SentencePair], src_vocab: Vocab, tgt_vocab: Vocab
) -> Batch:
    """Encode and pad a list of sentence pairs into one batch."""
    if not pairs:
        raise ShapeError("cannot encode an empty pair list")
    src_rows = [src_vocab.encode(p.source) for p in pairs]
    tgt_rows = [tgt_vocab.encode(p.target) for p in pairs]
    tgt_in_rows = [[tgt_vocab.bos_id] + row for row in tgt_rows]
    tgt_out_rows = [row + [tgt_vocab.eos_id] for row in tgt_rows]
    return Batch(
        src=_pad(src_rows, src_vocab.pad_id),
        tgt_in=_pad(tgt_in_rows, tgt_vocab.pad_id),
        tgt_out=_pad(tgt_out_rows, tgt_vocab.pad_id),
        src_lengths=np.array([len(r) for r in src_rows], dtype=np.int64),
        tgt_lengths=np.array([len(r) + 1 for r in tgt_rows], dtype=np.int64),
    )


def iter_batches(
    pairs: Sequence[SentencePair],
    src_vocab: Vocab,
    tgt_vocab: Vocab,
    batch_size: int,
    rng: np.random.Generator = None,
) -> Iterator[Batch]:
    """Yield shuffled (if ``rng``) fixed-size batches over one epoch."""
    if batch_size <= 0:
        raise ShapeError("batch_size must be positive")
    order = np.arange(len(pairs))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(pairs), batch_size):
        chunk = [pairs[i] for i in order[start:start + batch_size]]
        yield encode_pairs(chunk, src_vocab, tgt_vocab)
