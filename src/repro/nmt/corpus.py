"""Synthetic deterministic translation corpus.

**Substitution note (DESIGN.md).**  The paper's quantization study uses a
Transformer trained on the IWSLT'16 German-English corpus, which is not
available offline.  We substitute a synthetic "language pair" whose
translation function is deterministic but requires genuinely transformer-ish
skills to learn:

* a token-level cipher (lexical translation),
* whole-sentence reversal (long-range reordering, exercising attention),
* a context-sensitive mutation: any word immediately *following* the marker
  word ``"doppel"`` in the source translates to its alternate form
  (local-context disambiguation).

The substitution preserves what matters for Section V-A: BLEU is measured
on real model outputs, and the INT8 / approximate-softmax error paths flow
through exactly the matrices the accelerator computes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .vocab import Vocab

#: The context marker that mutates the following word's translation.
MARKER_WORD = "doppel"


def _source_words(num_words: int) -> list[str]:
    return [f"s{i:02d}" for i in range(num_words)] + [MARKER_WORD]


def _target_words(num_words: int) -> list[str]:
    base = [f"t{i:02d}" for i in range(num_words)]
    alt = [f"t{i:02d}x" for i in range(num_words)]
    return base + alt + ["dop"]


@dataclass(frozen=True)
class SentencePair:
    """One parallel sentence (token strings, no specials)."""

    source: tuple[str, ...]
    target: tuple[str, ...]


class SyntheticTranslationTask:
    """Deterministic cipher+reverse "language pair" with its vocabularies.

    Attributes:
        src_vocab / tgt_vocab: :class:`Vocab` instances for each side.
        num_words: Size of the content lexicon (excluding the marker).
    """

    def __init__(self, num_words: int = 32, min_len: int = 4,
                 max_len: int = 12, marker_prob: float = 0.15) -> None:
        if num_words < 4:
            raise ShapeError("need at least 4 content words")
        if not 2 <= min_len <= max_len:
            raise ShapeError("require 2 <= min_len <= max_len")
        self.num_words = num_words
        self.min_len = min_len
        self.max_len = max_len
        self.marker_prob = marker_prob
        self.src_vocab = Vocab(_source_words(num_words))
        self.tgt_vocab = Vocab(_target_words(num_words))

    # ------------------------------------------------------------------
    # The ground-truth translation function
    # ------------------------------------------------------------------
    def translate(self, source: Sequence[str]) -> list[str]:
        """Apply the deterministic translation rules to a source sentence."""
        out: list[str] = []
        previous_was_marker = False
        for word in source:
            if word == MARKER_WORD:
                out.append("dop")
                previous_was_marker = True
                continue
            if not word.startswith("s"):
                raise ShapeError(f"unknown source word {word!r}")
            index = int(word[1:])
            if not 0 <= index < self.num_words:
                raise ShapeError(f"source word {word!r} out of lexicon")
            form = f"t{index:02d}x" if previous_was_marker else f"t{index:02d}"
            out.append(form)
            previous_was_marker = False
        out.reverse()
        return out

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_source(self, rng: np.random.Generator) -> list[str]:
        """Draw a random source sentence."""
        length = int(rng.integers(self.min_len, self.max_len + 1))
        words: list[str] = []
        for _ in range(length):
            if words and words[-1] != MARKER_WORD and \
                    rng.random() < self.marker_prob:
                words.append(MARKER_WORD)
            else:
                words.append(f"s{int(rng.integers(self.num_words)):02d}")
        # A trailing marker would be vacuous; replace it.
        if words[-1] == MARKER_WORD:
            words[-1] = f"s{int(rng.integers(self.num_words)):02d}"
        return words

    def sample_pair(self, rng: np.random.Generator) -> SentencePair:
        source = self.sample_source(rng)
        return SentencePair(tuple(source), tuple(self.translate(source)))

    def make_corpus(self, size: int, seed: int = 0) -> list[SentencePair]:
        """Generate ``size`` parallel sentences deterministically."""
        if size <= 0:
            raise ShapeError("corpus size must be positive")
        rng = np.random.default_rng(seed)
        return [self.sample_pair(rng) for _ in range(size)]

    def splits(
        self, train: int = 2000, valid: int = 200, test: int = 200,
        seed: int = 0,
    ) -> tuple[list[SentencePair], list[SentencePair], list[SentencePair]]:
        """Disjoint train/valid/test splits from one stream."""
        full = self.make_corpus(train + valid + test, seed=seed)
        return (
            full[:train],
            full[train:train + valid],
            full[train + valid:],
        )
