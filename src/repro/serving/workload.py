"""Request-arrival workload generators for the serving simulator.

Two sources of traffic:

* :func:`poisson_workload` — memoryless arrivals at a configured mean
  rate with sequence lengths drawn from the configured distribution,
  fully determined by ``ServingConfig.seed``;
* :func:`trace_workload` — replay of an explicit ``(arrival_us,
  seq_len)`` trace, for feeding measured traffic or hand-built
  adversarial patterns through the exact same pipeline.

Times are microseconds from run start (matching the Chrome-trace axis);
lengths are valid tokens per request, bounded by the SA's row count.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..config import ServingConfig
from ..errors import ServingError


@dataclass(frozen=True)
class Request:
    """One inference request.

    Attributes:
        req_id: Dense id in arrival order.
        arrival_us: Arrival time in microseconds from run start.
        seq_len: Valid tokens; the accelerator zero-pads the rest of its
            ``s`` SA rows.
    """

    req_id: int
    arrival_us: float
    seq_len: int


def sample_lengths(
    rng: np.random.Generator, n: int, serving: ServingConfig
) -> np.ndarray:
    """Draw ``n`` sequence lengths from the configured distribution."""
    if serving.length_dist == "fixed":
        return np.full(n, serving.max_len, dtype=np.int64)
    return rng.integers(serving.min_len, serving.max_len + 1, size=n)


def poisson_workload(serving: ServingConfig) -> list[Request]:
    """Generate a seeded Poisson arrival process.

    Interarrival gaps are exponential with mean ``1e6 /
    arrival_rate_rps`` microseconds; the same generator then draws the
    lengths, so one seed pins the entire workload.
    """
    rng = np.random.default_rng(serving.seed)
    n = serving.num_requests
    gaps = rng.exponential(1e6 / serving.arrival_rate_rps, size=n)
    arrivals = np.cumsum(gaps)
    lengths = sample_lengths(rng, n, serving)
    return [
        Request(req_id=i, arrival_us=float(arrivals[i]),
                seq_len=int(lengths[i]))
        for i in range(n)
    ]


def trace_workload(entries: Sequence[tuple[float, int]]) -> list[Request]:
    """Build a workload from explicit ``(arrival_us, seq_len)`` pairs.

    Entries must be time-sorted with non-negative times and positive
    lengths; ids are assigned in order.
    """
    if not entries:
        raise ServingError("trace workload needs at least one entry")
    requests = []
    prev = 0.0
    for i, (arrival_us, seq_len) in enumerate(entries):
        arrival_us = float(arrival_us)
        seq_len = int(seq_len)
        if arrival_us < prev:
            raise ServingError(
                f"trace entry {i} arrives at {arrival_us} before its "
                f"predecessor at {prev}"
            )
        if seq_len <= 0:
            raise ServingError(f"trace entry {i} has seq_len {seq_len}")
        requests.append(Request(i, arrival_us, seq_len))
        prev = arrival_us
    return requests


def validate_workload(
    requests: Sequence[Request], max_seq_len: int
) -> None:
    """Check every request fits the accelerator's SA rows."""
    for request in requests:
        if request.seq_len > max_seq_len:
            raise ServingError(
                f"request {request.req_id} has seq_len {request.seq_len} "
                f"> SA rows {max_seq_len}"
            )
