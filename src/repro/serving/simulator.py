"""Discrete-event serving simulation over the cycle-accurate models.

:func:`simulate_serving` drives a seeded request workload through the
admission queue, the dynamic batcher and the worker pool, advancing a
single event heap (arrivals, device-free times, batching deadlines) and
charging every batch the cycle costs of the Algorithm 1 schedules plus
weight-reload accounting.  The run is exactly reproducible from its
:class:`~repro.config.ServingConfig` and emits:

* a :class:`~repro.serving.metrics.ServingMetrics` summary
  (p50/p95/p99 latency, throughput, SA utilization, rejection rate,
  fault/failure counters);
* per-request :class:`RequestRecord` outcomes;
* Chrome trace spans/counters through the :mod:`repro.core.trace`
  pathway (queue waits, per-device batch runs, queue-depth counter,
  fault retries and device failures on a ``faults`` track).

Fault-aware serving (``ServingConfig.batch_fault_rate`` /
``device_failure_rate``): every batch run draws from an independent
seeded fault stream.  With ``abft_protected`` accelerators a faulted
batch is detected at drain and re-dispatched up to ``max_retries``
times (then *failed*); without ABFT the fault completes silently and
the requests are marked *corrupted*.  Devices fail-stop; a replicated
pool degrades replica by replica, a layer-sharded pipeline dies with
its first lost stage, and requests stranded on a dead pool fail.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..config import AcceleratorConfig, ModelConfig, ServingConfig
from ..core.trace import TraceSpan, counter_events, write_span_trace
from ..errors import ServingError
from ..obs.spans import AttemptSpan, request_trace
from .admission import AdmissionQueue
from .batching import Batch, BatchCostModel, DynamicBatcher
from .devices import WorkerPool
from .metrics import ServingMetrics, compute_metrics
from .workload import Request, poisson_workload, validate_workload

if TYPE_CHECKING:
    from ..obs.spans import TraceCollector
    from ..telemetry.registry import MetricsRegistry

_ARRIVAL, _DEVICE_FREE, _WAKEUP = 0, 1, 2


def attempt_boundary(acc: AcceleratorConfig, outcome) -> Optional[float]:
    """Where compute ends and the exposed reload stall begins.

    Only attributable for single-span (replicated) dispatches whose
    span args carry the run/reload cycle split; layer-sharded
    pipelines interleave stages and return ``None``.
    """
    if len(outcome.spans) != 1:
        return None
    args = outcome.spans[0].args
    cycles = args.get("cycles")
    reload_cycles = args.get("reload_cycles")
    if cycles is None or reload_cycles is None:
        return None
    return outcome.start_us + acc.cycles_to_us(cycles - reload_cycles)


@dataclass
class RequestRecord:
    """Final outcome of one request.

    ``status`` is ``"completed"``, ``"rejected"`` (queue full on
    arrival), ``"expired"`` (timed out while queued) or ``"failed"``
    (the batch kept faulting past the retry budget, or the request was
    stranded when the worker pool died).  A completed request whose
    batch took an *undetected* fault additionally carries
    ``corrupted=True`` — the silent-corruption outcome ABFT exists to
    prevent.
    """

    request: Request
    status: str
    batch_id: Optional[int] = None
    dispatched_us: Optional[float] = None
    completed_us: Optional[float] = None
    corrupted: bool = False
    # Generation extras (left at defaults by the prefill-only
    # simulator; repro.decode's mixed runs fill them in).
    decode_tokens: int = 0
    first_token_us: Optional[float] = None

    @property
    def latency_us(self) -> Optional[float]:
        if self.completed_us is None:
            return None
        return self.completed_us - self.request.arrival_us

    @property
    def ttft_us(self) -> Optional[float]:
        """Time to first token (prefill completion), when generating."""
        if self.first_token_us is None:
            return None
        return self.first_token_us - self.request.arrival_us


@dataclass
class ServingResult:
    """Everything one simulated run produced."""

    serving: ServingConfig
    metrics: ServingMetrics
    records: list[RequestRecord]
    batches: list[Batch]
    spans: list[TraceSpan] = field(default_factory=list)
    depth_samples: list[tuple] = field(default_factory=list)
    util_samples: list[tuple] = field(default_factory=list)
    cache_samples: list[tuple] = field(default_factory=list)

    def write_trace(self, path: str) -> int:
        """Write the run's spans + counter tracks as Chrome JSON.

        Counter tracks: ``queue_depth`` plus, when batches ran,
        ``sa_utilization`` (per-batch useful-MAC share) and
        ``weight_cache_hit_rate`` (cumulative).  Batch samples land at
        completion times, which retries can push past the next
        dispatch, so each track is sorted before export
        (:func:`counter_events` rejects out-of-order samples).
        """
        counters = []
        for name, samples in (
            ("queue_depth", self.depth_samples),
            ("sa_utilization", self.util_samples),
            ("weight_cache_hit_rate", self.cache_samples),
        ):
            if samples:
                counters.extend(counter_events(
                    name, sorted(samples, key=lambda s: s[0])
                ))
        return write_span_trace(
            self.spans, path, counters=counters,
            other_data={
                "completed": self.metrics.completed,
                "throughput_rps": self.metrics.throughput_rps,
                "makespan_us": self.metrics.makespan_us,
            },
        )


def simulate_serving(
    model: ModelConfig,
    acc: AcceleratorConfig,
    serving: Optional[ServingConfig] = None,
    workload: Optional[Sequence[Request]] = None,
    registry: Optional["MetricsRegistry"] = None,
    tracer: Optional["TraceCollector"] = None,
) -> ServingResult:
    """Simulate serving ``workload`` (default: seeded Poisson traffic).

    Args:
        model / acc: The model and accelerator under test; every batch
            costs one full-model run of the cycle-level schedules.
        serving: Queue/batching/pool parameters (default
            :class:`ServingConfig`).
        workload: Explicit request list; overrides the generated one.
        registry: Optional metrics registry; the run's serving series
            (request outcomes, latency histogram, queue-depth samples,
            cache lookups) are recorded into it for export.
        tracer: Optional :class:`~repro.obs.spans.TraceCollector`;
            every request gets one causal span tree (queue wait,
            device wait, compute, memsys stall, retries, terminal
            markers) whose hops sum exactly to its latency.  Strictly
            passive — outputs are bit-identical with or without it.
    """
    serving = ServingConfig() if serving is None else serving
    if serving.max_len > acc.seq_len and workload is None:
        raise ServingError(
            f"serving max_len {serving.max_len} exceeds the SA's "
            f"{acc.seq_len} rows"
        )
    requests = (
        list(workload) if workload is not None
        else poisson_workload(serving)
    )
    validate_workload(requests, acc.seq_len)

    cost = BatchCostModel(
        model, acc, double_buffered_weights=serving.double_buffered_weights,
        compression=serving.compression,
    )
    queue = AdmissionQueue(serving.queue_capacity, serving.queue_timeout_us)
    batcher = DynamicBatcher(
        acc.seq_len, serving.max_batch_requests, serving.max_wait_us
    )
    pool = WorkerPool(
        serving.num_devices, serving.placement, cost, acc,
        mem=serving.memory,
    )

    records: dict[int, RequestRecord] = {}
    batches: list[Batch] = []
    spans: list[TraceSpan] = []
    latencies: list[float] = []
    util_samples: list[tuple] = []
    cache_samples: list[tuple] = []
    # Independent deterministic fault stream: re-running with the same
    # ServingConfig injects the same batch faults and device failures.
    fault_rng = np.random.default_rng([serving.seed, 0x5EED])
    retried = 0

    def maybe_fail_device(outcome) -> None:
        """Draw a fail-stop for the run that just finished."""
        if serving.device_failure_rate <= 0.0:
            return
        if fault_rng.random() < serving.device_failure_rate:
            victims = outcome.device_ids
            victim = victims[
                int(fault_rng.integers(0, len(victims)))
            ]
            pool.fail_device(victim, outcome.completion_us)
            spans.append(TraceSpan(
                name=f"device{victim}.failure",
                track="faults",
                start_us=outcome.completion_us, duration_us=0.0,
                args={"event": "device_failure", "device": victim},
            ))

    seq = itertools.count()
    heap = []
    for request in requests:
        heapq.heappush(
            heap, (request.arrival_us, _ARRIVAL, next(seq), request)
        )
    remaining_arrivals = len(requests)

    def attempt(dispatched_us: float, outcome) -> AttemptSpan:
        """Trace view of one dispatch attempt (tracer-only path)."""
        return AttemptSpan(
            dispatched_us, outcome.start_us, outcome.completion_us,
            attempt_boundary(acc, outcome),
            attrs={"devices": ",".join(map(str, outcome.device_ids))},
        )

    def attempt_dispatch(now_us: float) -> None:
        nonlocal retried
        while len(queue):
            if not pool.pool_alive:
                # Degraded to dead: strand everything still queued.
                for request in queue.pop_front(len(queue), now_us):
                    records[request.req_id].status = "failed"
                    if tracer is not None:
                        tracer.add(request_trace(
                            req_id=request.req_id, status="failed",
                            arrival_us=request.arrival_us, end_us=now_us,
                            attrs={"reason": "pool_dead"},
                        ))
                return
            if not pool.can_accept(now_us):
                free_at = pool.next_free_us()
                heapq.heappush(
                    heap, (free_at, _DEVICE_FREE, next(seq), None)
                )
                return
            batch = batcher.try_form(
                queue, now_us, force=(remaining_arrivals == 0)
            )
            if batch is None:
                deadline = min(
                    batcher.next_deadline_us(queue), queue.next_expiry_us()
                )
                if deadline != float("inf"):
                    heapq.heappush(
                        heap,
                        (max(deadline, now_us), _WAKEUP, next(seq), None),
                    )
                return
            outcome = pool.dispatch(batch, now_us)
            batches.append(batch)
            spans.extend(outcome.spans)
            attempts_log = [attempt(now_us, outcome)] \
                if tracer is not None else []
            maybe_fail_device(outcome)
            # Per-batch fault events: with ABFT the checksum syndrome
            # flags the run at drain and the batch is re-dispatched
            # (paying full cycles again) up to max_retries times;
            # without ABFT the fault sails through silently.
            faulted = (
                serving.batch_fault_rate > 0.0
                and fault_rng.random() < serving.batch_fault_rate
            )
            attempts = 0
            while (faulted and acc.abft_protected
                   and attempts < serving.max_retries
                   and pool.pool_alive):
                attempts += 1
                retried += 1
                retry_at = outcome.completion_us
                spans.append(TraceSpan(
                    name=f"batch{batch.batch_id}.retry{attempts}",
                    track="faults",
                    start_us=retry_at, duration_us=0.0,
                    args={"event": "abft_retry", "attempt": attempts},
                ))
                outcome = pool.dispatch(batch, retry_at)
                spans.extend(outcome.spans)
                if tracer is not None:
                    attempts_log.append(attempt(retry_at, outcome))
                maybe_fail_device(outcome)
                faulted = fault_rng.random() < serving.batch_fault_rate
            # Counter-track samples at the batch's final completion:
            # the batch's useful-MAC share (occupancy-discounted) and
            # the pool's cumulative weight-cache hit rate.
            util_samples.append((
                outcome.completion_us,
                (cost.ideal_cycles / cost.run_cycles)
                * (batch.total_tokens / acc.seq_len),
            ))
            lookups = pool.weight_cache_hits + pool.weight_cache_misses
            if lookups:
                cache_samples.append((
                    outcome.completion_us,
                    pool.weight_cache_hits / lookups,
                ))
            detected_unrecovered = faulted and acc.abft_protected
            for request in batch.requests:
                record = records[request.req_id]
                record.batch_id = batch.batch_id
                record.dispatched_us = now_us
                if detected_unrecovered:
                    record.status = "failed"
                    if tracer is not None:
                        tracer.add(request_trace(
                            req_id=request.req_id, status="failed",
                            arrival_us=request.arrival_us,
                            dispatched_us=now_us,
                            attempts=tuple(attempts_log),
                            attrs={"batch": batch.batch_id,
                                   "reason": "retries_exhausted"},
                        ))
                    continue
                record.status = "completed"
                record.completed_us = outcome.completion_us
                record.corrupted = faulted
                latencies.append(record.latency_us)
                if tracer is not None:
                    tracer.add(request_trace(
                        req_id=request.req_id, status="completed",
                        arrival_us=request.arrival_us,
                        dispatched_us=now_us,
                        attempts=tuple(attempts_log),
                        attrs={"batch": batch.batch_id,
                               "corrupted": faulted},
                    ))
                wait = now_us - request.arrival_us
                if wait > 0:
                    spans.append(TraceSpan(
                        name=f"req{request.req_id}.wait",
                        track="queue",
                        start_us=request.arrival_us, duration_us=wait,
                        args={"seq_len": request.seq_len,
                              "batch": batch.batch_id},
                    ))

    while heap:
        now_us, kind, _, payload = heapq.heappop(heap)
        if kind == _ARRIVAL:
            remaining_arrivals -= 1
            record = RequestRecord(payload, "rejected")
            records[payload.req_id] = record
            if queue.offer(payload, now_us):
                record.status = "queued"
                if serving.queue_timeout_us != float("inf"):
                    heapq.heappush(
                        heap,
                        (payload.arrival_us + serving.queue_timeout_us,
                         _WAKEUP, next(seq), None),
                    )
            elif tracer is not None:
                tracer.add(request_trace(
                    req_id=payload.req_id, status="rejected",
                    arrival_us=payload.arrival_us,
                ))
        for request in queue.expire(now_us):
            records[request.req_id].status = "expired"
            if tracer is not None:
                tracer.add(request_trace(
                    req_id=request.req_id, status="expired",
                    arrival_us=request.arrival_us,
                    end_us=request.arrival_us + serving.queue_timeout_us,
                ))
        attempt_dispatch(now_us)

    if any(r.status == "queued" for r in records.values()):
        raise ServingError("simulation ended with requests still queued")
    failed = sum(r.status == "failed" for r in records.values())
    corrupted = sum(
        r.corrupted for r in records.values() if r.status == "completed"
    )

    first_arrival = requests[0].arrival_us if requests else 0.0
    last_completion = max(
        (r.completed_us for r in records.values()
         if r.completed_us is not None),
        default=first_arrival,
    )
    makespan_us = last_completion - first_arrival
    if serving.placement != "replicate":
        run_cycles = cost.compute_cycles
    elif pool.mem is None:
        run_cycles = cost.run_cycles
    else:
        # Miss-driven reloads vary per run (warm caches shrink them);
        # charge the mean exposed reload for the utilization ratio.
        dispatches = sum(d.batches_run for d in pool.devices)
        run_cycles = cost.compute_cycles + (
            pool.reload_stall_cycles // dispatches if dispatches else 0
        )
    metrics = compute_metrics(
        latencies_us=latencies,
        batch_sizes=[b.num_requests for b in batches],
        batch_tokens=[b.total_tokens for b in batches],
        seq_len=acc.seq_len,
        offered=queue.offered,
        rejected=queue.rejected_full,
        expired=queue.expired,
        makespan_us=makespan_us,
        device_busy_fraction=pool.busy_fraction(makespan_us),
        ideal_cycles_per_run=cost.ideal_cycles,
        run_cycles=run_cycles,
        num_devices=pool.num_devices,
        depth_samples=queue.depth_samples,
        failed=failed,
        retried=retried,
        corrupted=corrupted,
        device_failures=pool.device_failures,
        weight_cache_hits=pool.weight_cache_hits,
        weight_cache_misses=pool.weight_cache_misses,
        reload_stall_cycles=pool.reload_stall_cycles,
        registry=registry,
    )
    ordered = [records[r.req_id] for r in requests]
    return ServingResult(
        serving=serving,
        metrics=metrics,
        records=ordered,
        batches=batches,
        spans=spans,
        depth_samples=list(queue.depth_samples),
        util_samples=util_samples,
        cache_samples=cache_samples,
    )
