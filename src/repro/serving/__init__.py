"""Inference-serving simulation above the single-ResBlock accelerator.

The paper evaluates one request at batch 1; this package builds the
system layer a deployed accelerator needs, as a discrete-event
simulation whose per-batch costs come from the cycle-accurate models:

* :mod:`~repro.serving.workload` — Poisson / trace-driven arrivals;
* :mod:`~repro.serving.admission` — bounded queue with timeouts;
* :mod:`~repro.serving.batching` — packing variable-length requests
  into the SA's ``s x 64`` geometry with a max-batch/max-wait policy;
* :mod:`~repro.serving.devices` — replicated or layer-sharded pools;
* :mod:`~repro.serving.metrics` — latency percentiles, throughput,
  utilization, rejection accounting;
* :mod:`~repro.serving.simulator` — the :func:`simulate_serving` driver
  (also behind ``python -m repro serve-sim``).
"""

from .admission import AdmissionQueue
from .batching import Batch, BatchCostModel, DynamicBatcher
from .devices import Device, DispatchOutcome, WorkerPool
from .metrics import ServingMetrics, compute_metrics, percentile
from .simulator import RequestRecord, ServingResult, simulate_serving
from .workload import (
    Request,
    poisson_workload,
    sample_lengths,
    trace_workload,
    validate_workload,
)

__all__ = [
    "AdmissionQueue",
    "Batch",
    "BatchCostModel",
    "Device",
    "DispatchOutcome",
    "DynamicBatcher",
    "Request",
    "RequestRecord",
    "ServingMetrics",
    "ServingResult",
    "WorkerPool",
    "compute_metrics",
    "percentile",
    "poisson_workload",
    "sample_lengths",
    "simulate_serving",
    "trace_workload",
    "validate_workload",
]
