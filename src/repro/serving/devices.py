"""Multi-accelerator worker pool (replicated or layer-sharded).

Two placements over ``N`` simulated devices:

* ``"replicate"`` — every device holds the full model and serves whole
  batches independently; each run pays the per-block weight-reload
  cycles of :func:`~repro.core.model_runner.model_reload_cycles`
  (the on-chip weight memory only holds one layer, exactly as in
  :class:`~repro.core.model_runner.AcceleratedStack`);
* ``"layer_shard"`` — the layer stack is split into ``N`` contiguous
  pipeline stages, one per device, with weights resident (no reloads);
  a batch flows through the stages and a new batch may enter stage 0
  as soon as it drains, so throughput is set by the slowest stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..config import AcceleratorConfig
from ..errors import ServingError
from ..core.trace import TraceSpan
from .batching import Batch, BatchCostModel


@dataclass
class Device:
    """One simulated accelerator's availability and usage counters."""

    device_id: int
    free_at_us: float = 0.0
    busy_us: float = 0.0
    batches_run: int = 0
    tokens_served: int = 0

    def occupy(self, start_us: float, duration_us: float) -> None:
        if start_us < self.free_at_us:
            raise ServingError(
                f"device {self.device_id} double-booked at {start_us}"
            )
        self.free_at_us = start_us + duration_us
        self.busy_us += duration_us


@dataclass
class DispatchOutcome:
    """Completion time and trace spans of one dispatched batch."""

    batch: Batch
    start_us: float
    completion_us: float
    spans: List[TraceSpan] = field(default_factory=list)


class WorkerPool:
    """Schedules batches onto the simulated devices."""

    def __init__(
        self,
        num_devices: int,
        placement: str,
        cost_model: BatchCostModel,
        acc: AcceleratorConfig,
    ) -> None:
        if num_devices <= 0:
            raise ServingError("num_devices must be positive")
        if placement not in ("replicate", "layer_shard"):
            raise ServingError(f"unknown placement {placement!r}")
        if (placement == "layer_shard"
                and num_devices > len(cost_model.layer_units)):
            raise ServingError(
                f"cannot shard {len(cost_model.layer_units)} layers "
                f"across {num_devices} devices"
            )
        self.placement = placement
        self.cost = cost_model
        self.acc = acc
        self.devices = [Device(i) for i in range(num_devices)]
        if placement == "layer_shard":
            self._stage_us = [
                acc.cycles_to_us(c)
                for c in cost_model.stage_cycles(num_devices)
            ]

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def next_free_us(self) -> float:
        """Earliest time the pool can accept another batch."""
        if self.placement == "replicate":
            return min(d.free_at_us for d in self.devices)
        return self.devices[0].free_at_us

    def can_accept(self, now_us: float) -> bool:
        return self.next_free_us() <= now_us

    def dispatch(self, batch: Batch, now_us: float) -> DispatchOutcome:
        """Run ``batch`` starting no earlier than ``now_us``."""
        args = {
            "batch": batch.batch_id,
            "requests": batch.num_requests,
            "tokens": batch.total_tokens,
            "occupancy": round(batch.occupancy(self.acc.seq_len), 4),
        }
        if self.placement == "replicate":
            device = min(self.devices, key=lambda d: (d.free_at_us, d.device_id))
            start = max(now_us, device.free_at_us)
            duration = self.acc.cycles_to_us(self.cost.run_cycles)
            device.occupy(start, duration)
            device.batches_run += 1
            device.tokens_served += batch.total_tokens
            span = TraceSpan(
                name=f"batch{batch.batch_id}",
                track=f"device{device.device_id}",
                start_us=start, duration_us=duration,
                args={**args, "cycles": self.cost.run_cycles,
                      "reload_cycles": self.cost.reload_cycles},
            )
            return DispatchOutcome(batch, start, start + duration, [span])
        # layer_shard: stage i runs on device i after stage i-1 drains.
        spans = []
        ready = now_us
        start0 = None
        for device, stage_us in zip(self.devices, self._stage_us):
            start = max(ready, device.free_at_us)
            device.occupy(start, stage_us)
            device.batches_run += 1
            device.tokens_served += batch.total_tokens
            spans.append(TraceSpan(
                name=f"batch{batch.batch_id}.stage{device.device_id}",
                track=f"device{device.device_id}",
                start_us=start, duration_us=stage_us,
                args=args,
            ))
            if start0 is None:
                start0 = start
            ready = start + stage_us
        return DispatchOutcome(batch, start0, ready, spans)

    def busy_fraction(self, makespan_us: float) -> float:
        """Pool-wide fraction of device-time spent running batches."""
        if makespan_us <= 0:
            return 0.0
        busy = sum(d.busy_us for d in self.devices)
        return busy / (self.num_devices * makespan_us)
