"""Multi-accelerator worker pool (replicated or layer-sharded).

Two placements over ``N`` simulated devices:

* ``"replicate"`` — every device holds the full model and serves whole
  batches independently; each run pays the per-block weight-reload
  cycles of :func:`~repro.core.model_runner.model_reload_cycles`
  (the on-chip weight memory only holds one layer, exactly as in
  :class:`~repro.core.model_runner.AcceleratedStack`).  With a
  :class:`~repro.config.MemoryConfig` the flat reload constant is
  replaced by miss-driven traffic: each device keeps an LRU
  :class:`~repro.memsys.WeightCache` of ResBlock weight sets across
  batches, misses fetch over the shared DRAM channels (replicas
  contend), and double-buffered prefetch hides a block's fetch behind
  the previous block's compute;
* ``"layer_shard"`` — the layer stack is split into ``N`` contiguous
  pipeline stages, one per device, with weights resident (no reloads);
  a batch flows through the stages and a new batch may enter stage 0
  as soon as it drains, so throughput is set by the slowest stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import AcceleratorConfig, MemoryConfig
from ..core.trace import TraceSpan
from ..errors import ServingError
from ..memsys.bandwidth import contenders_per_channel
from ..memsys.cache import WeightCache, default_weight_cache_bytes
from .batching import Batch, BatchCostModel


@dataclass
class Device:
    """One simulated accelerator's availability and usage counters.

    ``activated_us`` / ``draining`` / ``retired_us`` exist for the
    cluster autoscaler (:mod:`repro.cluster`): a device added mid-run
    records when it joined, a draining device finishes its in-flight
    batch but accepts no new ones, and a retired device records when
    its drain completed.  Plain serving runs never touch them.
    """

    device_id: int
    free_at_us: float = 0.0
    busy_us: float = 0.0
    batches_run: int = 0
    tokens_served: int = 0
    alive: bool = True
    failed_at_us: Optional[float] = None
    activated_us: float = 0.0
    draining: bool = False
    retired_us: Optional[float] = None

    def occupy(self, start_us: float, duration_us: float) -> None:
        if not self.alive:
            raise ServingError(
                f"device {self.device_id} dispatched after failing"
            )
        if self.draining:
            raise ServingError(
                f"device {self.device_id} dispatched while draining"
            )
        if start_us < self.free_at_us:
            raise ServingError(
                f"device {self.device_id} double-booked at {start_us}"
            )
        self.free_at_us = start_us + duration_us
        self.busy_us += duration_us

    def fail(self, at_us: float) -> None:
        """Fail-stop: the device completes nothing after ``at_us``."""
        self.alive = False
        self.failed_at_us = at_us


@dataclass
class DispatchOutcome:
    """Completion time and trace spans of one dispatched batch."""

    batch: Batch
    start_us: float
    completion_us: float
    spans: list[TraceSpan] = field(default_factory=list)
    device_ids: list[int] = field(default_factory=list)


class WorkerPool:
    """Schedules batches onto the simulated devices."""

    def __init__(
        self,
        num_devices: int,
        placement: str,
        cost_model: BatchCostModel,
        acc: AcceleratorConfig,
        mem: Optional[MemoryConfig] = None,
        track_prefix: str = "",
    ) -> None:
        if num_devices <= 0:
            raise ServingError("num_devices must be positive")
        if placement not in ("replicate", "layer_shard"):
            raise ServingError(f"unknown placement {placement!r}")
        if (placement == "layer_shard"
                and num_devices > len(cost_model.layer_units)):
            raise ServingError(
                f"cannot shard {len(cost_model.layer_units)} layers "
                f"across {num_devices} devices"
            )
        self.placement = placement
        self.cost = cost_model
        self.acc = acc
        self.track_prefix = track_prefix
        self.devices = [Device(i) for i in range(num_devices)]
        if placement == "layer_shard":
            self._stage_us = [
                acc.cycles_to_us(c)
                for c in cost_model.stage_cycles(num_devices)
            ]
        # Memory system (replicate only: layer_shard keeps weights
        # resident).  Replicas contend for the shared DRAM channels and
        # each keeps its own LRU weight cache across batches.
        self.mem = mem if placement == "replicate" else None
        self.weight_cache_hits = 0
        self.weight_cache_misses = 0
        self.reload_stall_cycles = 0
        self._caches: Optional[list[WeightCache]] = None
        self._contenders = 1
        if self.mem is not None:
            self._contenders = contenders_per_channel(
                num_devices, self.mem.shared_channels
            )
            if self.mem.enable_weight_cache:
                capacity = (
                    int(self.mem.weight_cache_kib * 1024)
                    if self.mem.weight_cache_kib is not None
                    else default_weight_cache_bytes(cost_model.model, acc)
                )
                self._caches = [
                    WeightCache(capacity) for _ in range(num_devices)
                ]

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def alive_devices(self) -> list[Device]:
        return [d for d in self.devices if d.alive]

    @property
    def active_devices(self) -> list[Device]:
        """Devices that may take new batches: alive and not draining."""
        return [d for d in self.devices if d.alive and not d.draining]

    @property
    def device_failures(self) -> int:
        return sum(not d.alive for d in self.devices)

    @property
    def pool_alive(self) -> bool:
        """Whether the pool can still serve batches at all.

        A replicated pool degrades replica by replica and dies only when
        every device has failed (or is draining); a layer-sharded
        pipeline dies with its first failed stage (that stage's resident
        weights are gone).
        """
        if self.placement == "replicate":
            return bool(self.active_devices)
        return all(d.alive for d in self.devices)

    def add_device(self, now_us: float) -> Device:
        """Grow a ``"replicate"`` pool by one replica (autoscale-up).

        The new device joins idle at ``now_us``; with a memory system
        it starts with a cold weight cache, so its first runs pay the
        full miss-driven fetch traffic — exactly what a freshly
        provisioned accelerator would.
        """
        if self.placement != "replicate":
            raise ServingError("only replicate pools can add devices")
        device = Device(
            len(self.devices), free_at_us=now_us, activated_us=now_us
        )
        self.devices.append(device)
        if self._caches is not None:
            self._caches.append(WeightCache(self._caches[0].capacity_bytes))
        self._recount_contenders()
        return device

    def drain_device(self, device_id: int, now_us: float) -> Device:
        """Begin a graceful drain of one replica (autoscale-down).

        The device stops accepting new batches immediately; an
        in-flight batch runs to completion (``free_at_us`` stands), and
        the device retires when it goes idle — so draining never drops
        admitted work.
        """
        if self.placement != "replicate":
            raise ServingError("only replicate pools can drain devices")
        if not 0 <= device_id < self.num_devices:
            raise ServingError(f"no device {device_id} in the pool")
        device = self.devices[device_id]
        if not device.alive or device.draining:
            raise ServingError(
                f"device {device_id} is already draining or dead"
            )
        device.draining = True
        device.retired_us = max(now_us, device.free_at_us)
        self._recount_contenders()
        return device

    def _recount_contenders(self) -> None:
        """Re-derive DRAM-channel contention from the active replicas."""
        if self.mem is not None:
            self._contenders = contenders_per_channel(
                max(1, len(self.active_devices)), self.mem.shared_channels
            )

    def fail_device(self, device_id: int, at_us: float) -> None:
        """Fail-stop ``device_id`` at ``at_us`` (no effect if dead)."""
        if not 0 <= device_id < self.num_devices:
            raise ServingError(f"no device {device_id} in the pool")
        device = self.devices[device_id]
        if device.alive:
            device.fail(at_us)

    def next_free_us(self) -> float:
        """Earliest time the pool can accept another batch."""
        if not self.pool_alive:
            return float("inf")
        if self.placement == "replicate":
            return min(d.free_at_us for d in self.active_devices)
        return self.devices[0].free_at_us

    def can_accept(self, now_us: float) -> bool:
        return self.next_free_us() <= now_us

    def dispatch(self, batch: Batch, now_us: float) -> DispatchOutcome:
        """Run ``batch`` starting no earlier than ``now_us``."""
        args = {
            "batch": batch.batch_id,
            "requests": batch.num_requests,
            "tokens": batch.total_tokens,
            "occupancy": round(batch.occupancy(self.acc.seq_len), 4),
        }
        if not self.pool_alive:
            raise ServingError("dispatch to a dead pool")
        if self.placement == "replicate":
            device = min(
                self.active_devices,
                key=lambda d: (d.free_at_us, d.device_id),
            )
            start = max(now_us, device.free_at_us)
            if self.mem is None:
                run_cycles = self.cost.run_cycles
                reload_cycles = self.cost.reload_cycles
                cache_args = {}
            else:
                reload_cycles, hits, misses = self._memsys_reload_cycles(
                    device.device_id
                )
                run_cycles = self.cost.compute_cycles + reload_cycles
                cache_args = {"cache_hits": hits, "cache_misses": misses}
            duration = self.acc.cycles_to_us(run_cycles)
            device.occupy(start, duration)
            device.batches_run += 1
            device.tokens_served += batch.total_tokens
            span = TraceSpan(
                name=f"batch{batch.batch_id}",
                track=f"{self.track_prefix}device{device.device_id}",
                start_us=start, duration_us=duration,
                args={**args, "cycles": run_cycles,
                      "reload_cycles": reload_cycles, **cache_args},
            )
            return DispatchOutcome(
                batch, start, start + duration, [span],
                device_ids=[device.device_id],
            )
        # layer_shard: stage i runs on device i after stage i-1 drains.
        spans = []
        ready = now_us
        start0 = None
        for device, stage_us in zip(self.devices, self._stage_us):
            start = max(ready, device.free_at_us)
            device.occupy(start, stage_us)
            device.batches_run += 1
            device.tokens_served += batch.total_tokens
            spans.append(TraceSpan(
                name=f"batch{batch.batch_id}.stage{device.device_id}",
                track=f"{self.track_prefix}device{device.device_id}",
                start_us=start, duration_us=stage_us,
                args=args,
            ))
            if start0 is None:
                start0 = start
            ready = start + stage_us
        return DispatchOutcome(
            batch, start0, ready, spans,
            device_ids=[d.device_id for d in self.devices],
        )

    def _memsys_reload_cycles(self, device_id: int) -> tuple[int, int, int]:
        """Exposed weight-fetch cycles of one run on ``device_id``.

        Walks the ResBlocks in execution order: each block's weights
        are either warm in the device's cache (hit, no traffic) or
        fetched over the shared channel (miss).  With double-buffered
        prefetch a block's fetch overlaps the *previous* block's
        compute and only the excess is exposed; without it every fetch
        serializes in full.  Returns ``(exposed_cycles, hits, misses)``
        and folds them into the pool counters.
        """
        mem = self.mem
        cache = self._caches[device_id] if self._caches is not None else None
        exposed = 0
        prev_compute = 0
        hits = 0
        misses = 0
        for name, compute_cycles, weight_bytes in self.cost.block_units:
            if cache is not None and cache.access(name, weight_bytes):
                hits += 1
                fetch = 0
            else:
                misses += 1
                fetch = mem.transfer_cycles(
                    weight_bytes, self.acc.clock_mhz, self._contenders
                )
            if mem.double_buffered_prefetch:
                exposed += max(0, fetch - prev_compute)
            else:
                exposed += fetch
            prev_compute = compute_cycles
        self.weight_cache_hits += hits
        self.weight_cache_misses += misses
        self.reload_stall_cycles += exposed
        return exposed, hits, misses

    @property
    def weight_cache_hit_rate(self) -> float:
        total = self.weight_cache_hits + self.weight_cache_misses
        return self.weight_cache_hits / total if total else 0.0

    def busy_fraction(self, makespan_us: float) -> float:
        """Pool-wide fraction of device-time spent running batches."""
        if makespan_us <= 0:
            return 0.0
        busy = sum(d.busy_us for d in self.devices)
        return busy / (self.num_devices * makespan_us)

    def device_time_us(self, end_us: float) -> float:
        """Total device-time provisioned up to ``end_us``.

        Counts each device from its activation to its retirement (or
        ``end_us`` while it is still provisioned) — the denominator a
        pool with autoscaled membership needs for its busy fraction.
        """
        total = 0.0
        for device in self.devices:
            stop = device.retired_us if device.retired_us is not None else end_us
            total += max(0.0, stop - device.activated_us)
        return total
