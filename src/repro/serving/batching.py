"""Dynamic batching into the systolic array's ``s x 64`` geometry.

The accelerator always processes its full ``s`` SA rows — shorter
sequences are zero padded (Section III), so a batch-1 run over a
20-token request wastes ``s - 20`` rows of every pass.  The batcher
exploits exactly that: several variable-length requests are packed into
the ``s`` rows of *one* run (each with its own attention mask, which
changes nothing about the cycle count), so the run's fixed cost is
amortized and the padding waste becomes real, accounted throughput.

The cost of a run comes straight from the cycle-accurate models:
:func:`~repro.core.scheduler.schedule_mha` / ``schedule_ffn`` per
ResBlock — including the Eq. (3) irregular ``Q K^T`` handling and the
softmax/LayerNorm tails — plus the weight-reload accounting of
:mod:`repro.core.model_runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import AcceleratorConfig, CompressionSpec, ModelConfig
from ..core.model_runner import model_reload_cycles
from ..core.scheduler import schedule_ffn, schedule_mha
from ..errors import ServingError
from .admission import AdmissionQueue
from .workload import Request


@dataclass(frozen=True)
class Batch:
    """One packed SA run's worth of requests.

    Attributes:
        batch_id: Dense id in dispatch order.
        requests: The packed requests, oldest first.
        formed_us: Time the batch was cut.
    """

    batch_id: int
    requests: tuple[Request, ...]
    formed_us: float

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def total_tokens(self) -> int:
        return sum(r.seq_len for r in self.requests)

    def occupancy(self, seq_len: int) -> float:
        """Fraction of the SA's ``seq_len`` rows holding real tokens."""
        return self.total_tokens / seq_len

    def padding_rows(self, seq_len: int) -> int:
        return seq_len - self.total_tokens


class BatchCostModel:
    """Cycle cost of one batch run, shared by every batch.

    Because the SA always runs its full ``s`` rows, the cost of a run is
    independent of how many requests it carries — which is precisely why
    packing pays.  The model pre-computes:

    * per-ResBlock schedule totals (``schedule_mha`` / ``schedule_ffn``);
    * full-model compute cycles (encoder + decoder stacks);
    * exposed weight-reload cycles per run (``"replicate"`` placement
      reloads every block from off-array memory; ``"layer_shard"`` keeps
      weights resident);
    * the ideal-MAC cycle count used for utilization accounting.

    With a ``compression`` spec the per-ResBlock totals come from the
    compressed schedules (:mod:`repro.compress.schedule`) and the
    ResBlock weight sets shrink to their compressed footprint, so the
    reload/cache traffic and throughput both feel the compression.
    """

    def __init__(
        self,
        model: ModelConfig,
        acc: AcceleratorConfig,
        double_buffered_weights: bool = False,
        compression: Optional[CompressionSpec] = None,
    ) -> None:
        self.model = model
        self.acc = acc
        self.compression = compression
        if compression is not None and not compression.is_dense:
            # Lazy import: serving stays importable without pulling the
            # compress subsystem into every dense run.
            from ..compress.schedule import (
                schedule_compressed_ffn,
                schedule_compressed_mha,
            )

            mha = schedule_compressed_mha(model, acc, compression)
            ffn = schedule_compressed_ffn(model, acc, compression)
        else:
            mha = schedule_mha(model, acc)
            ffn = schedule_ffn(model, acc)
        self.mha_cycles = mha.total_cycles
        self.ffn_cycles = ffn.total_cycles
        self.mha_ideal = mha.ideal_sa_cycles
        self.ffn_ideal = ffn.ideal_sa_cycles
        self.reload_cycles = model_reload_cycles(
            model,
            double_buffered=double_buffered_weights,
            mha_compute_cycles=self.mha_cycles,
            ffn_compute_cycles=self.ffn_cycles,
        )

    @property
    def layer_units(self) -> list[tuple[str, int, int]]:
        """Per-layer ``(name, compute_cycles, ideal_cycles)`` entries."""
        enc = ("enc", self.mha_cycles + self.ffn_cycles,
               self.mha_ideal + self.ffn_ideal)
        dec = ("dec", 2 * self.mha_cycles + self.ffn_cycles,
               2 * self.mha_ideal + self.ffn_ideal)
        return ([enc] * self.model.num_encoder_layers
                + [dec] * self.model.num_decoder_layers)

    @property
    def block_units(self) -> list[tuple[str, int, int]]:
        """Per-ResBlock ``(name, compute_cycles, weight_bytes)`` entries.

        The execution-order unit the memory system works at: each
        ResBlock's weight set is one cache entry and one off-chip fetch
        (MHA blocks carry the four ``d_model x d_model`` projections,
        FFN blocks ``W1`` + ``W2``).
        """
        wb = self.acc.weight_bits
        d = self.model.d_model
        if self.compression is not None and not self.compression.is_dense:
            from ..compress.footprint import (
                ffn_weight_bytes,
                mha_weight_bytes,
            )

            mha_bytes = mha_weight_bytes(self.model, self.acc,
                                         self.compression)
            ffn_bytes = ffn_weight_bytes(self.model, self.acc,
                                         self.compression)
        else:
            mha_bytes = 4 * d * d * wb // 8
            ffn_bytes = 2 * d * self.model.d_ff * wb // 8
        blocks: list[tuple[str, int, int]] = []
        for i in range(self.model.num_encoder_layers):
            blocks.append((f"enc{i}.mha", self.mha_cycles, mha_bytes))
            blocks.append((f"enc{i}.ffn", self.ffn_cycles, ffn_bytes))
        for i in range(self.model.num_decoder_layers):
            blocks.append((f"dec{i}.self", self.mha_cycles, mha_bytes))
            blocks.append((f"dec{i}.cross", self.mha_cycles, mha_bytes))
            blocks.append((f"dec{i}.ffn", self.ffn_cycles, ffn_bytes))
        return blocks

    @property
    def compute_cycles(self) -> int:
        """Pure compute cycles of one full-model run."""
        return sum(cycles for _, cycles, _ in self.layer_units)

    @property
    def ideal_cycles(self) -> int:
        """100%-utilization MAC cycles of one full-model run."""
        return sum(ideal for _, _, ideal in self.layer_units)

    @property
    def run_cycles(self) -> int:
        """Compute + exposed reload cycles (``"replicate"`` placement)."""
        return self.compute_cycles + self.reload_cycles

    def run_us(self, include_reload: bool = True) -> float:
        cycles = self.run_cycles if include_reload else self.compute_cycles
        return self.acc.cycles_to_us(cycles)

    @property
    def _generation_layers(self) -> int:
        # Generation runs decoder-only-style through one stack (BERT
        # presets generate through their encoder layers).
        return (self.model.num_decoder_layers
                or self.model.num_encoder_layers)

    def prefill_cycles(self, prompt_len: int) -> int:
        """Full-model prefill at ``prompt_len`` via the fused schedule.

        Prompts longer than the SA's rows run as the row-tiled fused
        attention of :mod:`repro.decode` instead of being rejected by
        the fixed-geometry batcher.
        """
        from ..decode import prefill_layer_cycles

        return self._generation_layers * prefill_layer_cycles(
            self.model, self.acc, prompt_len
        )

    def decode_step_cycles(self, context_len: int) -> int:
        """Full-model single-token decode step at ``context_len``."""
        from ..decode import decode_step_breakdown

        layer = (
            decode_step_breakdown(
                self.model, self.acc, context_len
            ).total_cycles
            + self.ffn_cycles
        )
        return self._generation_layers * layer

    def stage_cycles(self, num_stages: int) -> list[int]:
        """Split the layer sequence into ``num_stages`` pipeline stages.

        Contiguous layers are distributed as evenly as the layer count
        allows; weights stay resident per stage, so no reload cycles are
        charged.  Stages beyond the layer count get zero work.
        """
        if num_stages <= 0:
            raise ServingError("num_stages must be positive")
        units = self.layer_units
        per, extra = divmod(len(units), num_stages)
        stages = []
        index = 0
        for stage in range(num_stages):
            count = per + (1 if stage < extra else 0)
            stages.append(
                sum(c for _, c, _ in units[index:index + count])
            )
            index += count
        return stages


class DynamicBatcher:
    """FIFO packer with max-batch / max-wait cut-off policy.

    A batch is cut when any of these holds:

    * ``max_requests`` head requests are packed (count-full);
    * the next waiter no longer fits the remaining SA rows
      (geometry-full);
    * the oldest waiter has waited at least ``max_wait_us``;
    * the caller forces a flush (end of workload).

    Otherwise the batcher holds the queue for more arrivals, trading a
    little latency for occupancy — the classic dynamic-batching deal.
    ``max_requests=1`` reproduces the paper's batch-1 operating point.
    """

    def __init__(
        self, seq_len: int, max_requests: int, max_wait_us: float
    ) -> None:
        if seq_len <= 0:
            raise ServingError("seq_len must be positive")
        if max_requests <= 0:
            raise ServingError("max_requests must be positive")
        if max_wait_us < 0:
            raise ServingError("max_wait_us must be non-negative")
        self.seq_len = seq_len
        self.max_requests = max_requests
        self.max_wait_us = max_wait_us
        self._next_batch_id = 0

    def _packable(self, queue: AdmissionQueue) -> int:
        """How many head requests fit the SA rows and the count cap."""
        count = 0
        tokens = 0
        while count < min(self.max_requests, len(queue)):
            next_len = queue.peek(count).seq_len
            if tokens + next_len > self.seq_len:
                break
            tokens += next_len
            count += 1
        return count

    def try_form(
        self,
        queue: AdmissionQueue,
        now_us: float,
        force: bool = False,
    ) -> Optional[Batch]:
        """Cut and return a batch if the policy says so, else ``None``."""
        if not len(queue):
            return None
        count = self._packable(queue)
        if count == 0:
            raise ServingError(
                f"head request {queue.peek(0).req_id} ({queue.peek(0).seq_len} "
                f"tokens) exceeds the SA's {self.seq_len} rows"
            )
        count_full = count == self.max_requests
        geometry_full = count < len(queue) and not count_full
        # Compare against the exact float the simulator schedules its
        # wakeup at (arrival + max_wait); re-deriving the wait as
        # now - arrival can round below max_wait and livelock the loop.
        waited_out = now_us >= self.next_deadline_us(queue)
        if not (count_full or geometry_full or waited_out or force):
            return None
        requests = tuple(queue.pop_front(count, now_us))
        batch = Batch(self._next_batch_id, requests, now_us)
        self._next_batch_id += 1
        return batch

    def next_deadline_us(self, queue: AdmissionQueue) -> float:
        """When the oldest waiter's max-wait cut-off fires (inf if empty)."""
        if not len(queue):
            return float("inf")
        return queue.peek(0).arrival_us + self.max_wait_us
