"""Serving metrics: latency percentiles, throughput, utilization.

Percentiles use the deterministic nearest-rank definition (the smallest
value with at least ``p%`` of the sample at or below it), so the
reported p50/p95/p99 are always actual observed latencies and runs are
exactly reproducible.

Since the telemetry refactor the aggregation is registry-backed:
:func:`compute_metrics` records the raw run into
:class:`~repro.telemetry.registry.MetricsRegistry` instruments
(:func:`record_serving`) and derives the :class:`ServingMetrics`
summary back out of them (:func:`metrics_from_registry`), so the same
numbers the summary reports are exportable as Prometheus text / JSON /
Chrome counter tracks.  The public API is unchanged.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ServingError
from ..telemetry.registry import MetricsRegistry


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (``pct`` in (0, 100])."""
    if not values:
        raise ServingError("percentile of an empty sample")
    if not 0 < pct <= 100:
        raise ServingError(f"percentile {pct} outside (0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def mean_queue_depth(samples: Sequence[tuple[float, int]]) -> float:
    """Time-weighted mean depth from ``(time, depth)`` change samples."""
    if len(samples) < 2:
        return float(samples[0][1]) if samples else 0.0
    area = 0.0
    for (t0, d0), (t1, _) in zip(samples, samples[1:]):
        area += d0 * (t1 - t0)
    horizon = samples[-1][0] - samples[0][0]
    return area / horizon if horizon > 0 else float(samples[0][1])


@dataclass(frozen=True)
class ServingMetrics:
    """Summary of one simulated serving run.

    Attributes:
        offered / completed / rejected / expired: Request counts.
        failed: Requests whose batch kept faulting past the retry
            budget, or that were stranded when the pool died.
        retried: Batch re-runs triggered by ABFT-detected faults.
        corrupted: Completed requests whose batch took an undetected
            fault (silent corruption; only possible without ABFT).
        device_failures: Devices that fail-stopped during the run.
        rejection_rate: ``(rejected + expired) / offered``.
        latency percentiles / mean: Arrival-to-completion, us (only
            completed requests; NaN when nothing completed).
        throughput_rps: Completed requests per second of makespan.
        tokens_per_s: Valid tokens served per second of makespan.
        makespan_us: First arrival to last completion.
        num_batches / mean_batch_size: Dispatch accounting.
        occupancy: Valid tokens / (batches x SA rows) — 1 minus the
            padding waste the ``s x 64`` geometry forces.
        device_busy_fraction: Busy device-time / total device-time.
        sa_utilization: Useful-MAC utilization of the whole pool:
            ideal MAC cycles, scaled by row occupancy, over all
            PE-cycles in the makespan.
        mean_queue_depth / max_queue_depth: Admission-queue pressure.
        weight_cache_hits / weight_cache_misses: ResBlock weight-set
            lookups across all devices (zero unless a
            :class:`~repro.config.MemoryConfig` is configured).
        weight_cache_hit_rate: ``hits / (hits + misses)``.
        reload_stall_cycles: Total exposed weight-fetch cycles the
            memory system charged across all batch runs.
    """

    offered: int
    completed: int
    rejected: int
    expired: int
    rejection_rate: float
    latency_p50_us: float
    latency_p95_us: float
    latency_p99_us: float
    latency_mean_us: float
    throughput_rps: float
    tokens_per_s: float
    makespan_us: float
    num_batches: int
    mean_batch_size: float
    occupancy: float
    device_busy_fraction: float
    sa_utilization: float
    mean_queue_depth: float
    max_queue_depth: int
    failed: int = 0
    retried: int = 0
    corrupted: int = 0
    device_failures: int = 0
    weight_cache_hits: int = 0
    weight_cache_misses: int = 0
    weight_cache_hit_rate: float = 0.0
    reload_stall_cycles: int = 0
    extra: dict = field(default_factory=dict)

    def as_rows(self) -> list[list[str]]:
        """Two-column rows for :func:`repro.analysis.render_table`."""
        return [
            ["offered", str(self.offered)],
            ["completed", str(self.completed)],
            ["rejected (full)", str(self.rejected)],
            ["expired (timeout)", str(self.expired)],
            ["failed (fault)", str(self.failed)],
            ["retried (fault)", str(self.retried)],
            ["corrupted (silent)", str(self.corrupted)],
            ["device failures", str(self.device_failures)],
            ["rejection rate", f"{self.rejection_rate:.1%}"],
            ["p50 latency", f"{self.latency_p50_us:.1f} us"],
            ["p95 latency", f"{self.latency_p95_us:.1f} us"],
            ["p99 latency", f"{self.latency_p99_us:.1f} us"],
            ["throughput", f"{self.throughput_rps:.1f} req/s"],
            ["token throughput", f"{self.tokens_per_s:,.0f} tok/s"],
            ["batches", str(self.num_batches)],
            ["mean batch size", f"{self.mean_batch_size:.2f}"],
            ["SA row occupancy", f"{self.occupancy:.1%}"],
            ["device busy", f"{self.device_busy_fraction:.1%}"],
            ["SA utilization", f"{self.sa_utilization:.1%}"],
            ["mean queue depth", f"{self.mean_queue_depth:.2f}"],
            ["max queue depth", str(self.max_queue_depth)],
            ["weight-cache hits", str(self.weight_cache_hits)],
            ["weight-cache misses", str(self.weight_cache_misses)],
            ["weight-cache hit rate", f"{self.weight_cache_hit_rate:.1%}"],
            ["reload stall cycles", f"{self.reload_stall_cycles:,}"],
        ]


def record_serving(
    registry: MetricsRegistry,
    *,
    latencies_us: Sequence[float],
    batch_sizes: Sequence[int],
    batch_tokens: Sequence[int],
    offered: int,
    rejected: int,
    expired: int,
    depth_samples: Sequence[tuple[float, int]] = (),
    failed: int = 0,
    retried: int = 0,
    corrupted: int = 0,
    device_failures: int = 0,
    weight_cache_hits: int = 0,
    weight_cache_misses: int = 0,
    reload_stall_cycles: int = 0,
) -> None:
    """Record one serving run's raw outcomes into ``registry``.

    Defines the serving metric schema in one place; call once per run
    (counters accumulate across calls, which is what a registry shared
    by several runs wants, but :func:`metrics_from_registry` then
    summarizes the union).
    """
    registry.counter(
        "repro_serving_requests_offered_total",
        "Requests that arrived at the admission queue",
    ).inc(offered)
    outcomes = registry.counter(
        "repro_serving_requests_total",
        "Requests by final outcome",
    )
    completed = len(latencies_us)
    for outcome, count in (
        ("completed", completed), ("rejected", rejected),
        ("expired", expired), ("failed", failed),
    ):
        if count:
            outcomes.inc(count, outcome=outcome)
    registry.counter(
        "repro_serving_retries_total",
        "Batch re-runs triggered by ABFT-detected faults",
    ).inc(retried)
    registry.counter(
        "repro_serving_corrupted_total",
        "Completed requests whose batch took a silent fault",
    ).inc(corrupted)
    registry.counter(
        "repro_serving_device_failures_total",
        "Devices that fail-stopped during the run",
    ).inc(device_failures)
    registry.counter(
        "repro_serving_batches_total", "Batches dispatched",
    ).inc(len(batch_sizes))
    registry.counter(
        "repro_serving_batch_requests_total",
        "Requests summed over dispatched batches",
    ).inc(sum(batch_sizes))
    registry.counter(
        "repro_serving_batch_tokens_total",
        "Valid tokens summed over dispatched batches",
    ).inc(sum(batch_tokens))
    cache = registry.counter(
        "repro_serving_weight_cache_lookups_total",
        "ResBlock weight-set lookups by outcome",
    )
    if weight_cache_hits:
        cache.inc(weight_cache_hits, outcome="hit")
    if weight_cache_misses:
        cache.inc(weight_cache_misses, outcome="miss")
    registry.counter(
        "repro_serving_reload_stall_cycles_total",
        "Exposed weight-fetch cycles charged across batch runs",
    ).inc(reload_stall_cycles)
    latency = registry.histogram(
        "repro_serving_latency_us",
        "Arrival-to-completion latency of completed requests (us)",
    )
    for value in latencies_us:
        latency.observe(value)
    depth = registry.series(
        "repro_serving_queue_depth",
        "Admission-queue depth at each change",
    )
    for ts_us, value in depth_samples:
        depth.sample(ts_us, value)


def metrics_from_registry(
    registry: MetricsRegistry,
    *,
    seq_len: int,
    makespan_us: float,
    device_busy_fraction: float,
    ideal_cycles_per_run: int,
    run_cycles: int,
) -> ServingMetrics:
    """Summarize the serving instruments of ``registry``.

    The run-level ratios that need simulation context (makespan, busy
    fraction, cycle counts) come in as arguments and are published back
    as gauges, so a registry export carries the full summary.
    """
    counter = registry.counter
    offered = int(counter("repro_serving_requests_offered_total").value())
    outcomes = counter("repro_serving_requests_total")
    completed = int(outcomes.value(outcome="completed"))
    rejected = int(outcomes.value(outcome="rejected"))
    expired = int(outcomes.value(outcome="expired"))
    failed = int(outcomes.value(outcome="failed"))
    latency = registry.histogram("repro_serving_latency_us")
    nan = float("nan")
    have = latency.count() > 0
    seconds = makespan_us / 1e6
    num_batches = int(counter("repro_serving_batches_total").value())
    total_requests = counter("repro_serving_batch_requests_total").value()
    total_tokens = counter("repro_serving_batch_tokens_total").value()
    occupancy = (
        total_tokens / (num_batches * seq_len) if num_batches else 0.0
    )
    # Useful-MAC share: each run streams ideal_cycles_per_run MACs at
    # full s; occupancy discounts the rows that were padding.
    sa_util = 0.0
    if makespan_us > 0 and run_cycles > 0:
        busy_share = device_busy_fraction
        sa_util = busy_share * (ideal_cycles_per_run / run_cycles) * occupancy
    cache = counter("repro_serving_weight_cache_lookups_total")
    hits = int(cache.value(outcome="hit"))
    misses = int(cache.value(outcome="miss"))
    depth_samples = registry.series("repro_serving_queue_depth").samples()
    gauges = (
        ("repro_serving_makespan_us", "Run makespan (us)", makespan_us),
        ("repro_serving_device_busy_fraction",
         "Busy device-time / total device-time", device_busy_fraction),
        ("repro_serving_sa_utilization",
         "Pool-wide useful-MAC utilization", sa_util),
        ("repro_serving_occupancy",
         "Valid tokens / (batches x SA rows)", occupancy),
    )
    for name, help_text, value in gauges:
        registry.gauge(name, help_text).set(value)
    return ServingMetrics(
        offered=offered,
        completed=completed,
        rejected=rejected,
        expired=expired,
        rejection_rate=(rejected + expired) / offered if offered else 0.0,
        latency_p50_us=latency.percentile(50) if have else nan,
        latency_p95_us=latency.percentile(95) if have else nan,
        latency_p99_us=latency.percentile(99) if have else nan,
        latency_mean_us=latency.mean() if have else nan,
        throughput_rps=completed / seconds if seconds > 0 else 0.0,
        tokens_per_s=total_tokens / seconds if seconds > 0 else 0.0,
        makespan_us=makespan_us,
        num_batches=num_batches,
        mean_batch_size=(
            total_requests / num_batches if num_batches else 0.0
        ),
        occupancy=occupancy,
        device_busy_fraction=device_busy_fraction,
        sa_utilization=sa_util,
        mean_queue_depth=mean_queue_depth(depth_samples),
        max_queue_depth=int(max(
            (d for _, d in depth_samples), default=0
        )),
        failed=failed,
        retried=int(counter("repro_serving_retries_total").value()),
        corrupted=int(counter("repro_serving_corrupted_total").value()),
        device_failures=int(
            counter("repro_serving_device_failures_total").value()
        ),
        weight_cache_hits=hits,
        weight_cache_misses=misses,
        weight_cache_hit_rate=(
            hits / (hits + misses) if (hits + misses) else 0.0
        ),
        reload_stall_cycles=int(
            counter("repro_serving_reload_stall_cycles_total").value()
        ),
    )


def compute_metrics(
    latencies_us: Sequence[float],
    batch_sizes: Sequence[int],
    batch_tokens: Sequence[int],
    seq_len: int,
    offered: int,
    rejected: int,
    expired: int,
    makespan_us: float,
    device_busy_fraction: float,
    ideal_cycles_per_run: int,
    run_cycles: int,
    num_devices: int,
    depth_samples: Sequence[tuple[float, int]],
    failed: int = 0,
    retried: int = 0,
    corrupted: int = 0,
    device_failures: int = 0,
    weight_cache_hits: int = 0,
    weight_cache_misses: int = 0,
    reload_stall_cycles: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> ServingMetrics:
    """Fold raw simulation records into a :class:`ServingMetrics`.

    Registry-backed: the records go through :func:`record_serving` into
    ``registry`` (a private one when the caller passes none) and the
    summary is read back with :func:`metrics_from_registry` — so a
    caller-supplied registry ends the run holding every serving series
    ready for export.
    """
    registry = MetricsRegistry() if registry is None else registry
    record_serving(
        registry,
        latencies_us=latencies_us,
        batch_sizes=batch_sizes,
        batch_tokens=batch_tokens,
        offered=offered,
        rejected=rejected,
        expired=expired,
        depth_samples=depth_samples,
        failed=failed,
        retried=retried,
        corrupted=corrupted,
        device_failures=device_failures,
        weight_cache_hits=weight_cache_hits,
        weight_cache_misses=weight_cache_misses,
        reload_stall_cycles=reload_stall_cycles,
    )
    return metrics_from_registry(
        registry,
        seq_len=seq_len,
        makespan_us=makespan_us,
        device_busy_fraction=device_busy_fraction,
        ideal_cycles_per_run=ideal_cycles_per_run,
        run_cycles=run_cycles,
    )
