"""Bounded admission queue with timeouts and rejection accounting.

The queue is strictly FIFO, so with one shared timeout the oldest
request always expires first and both admission and expiry are O(1)
deque operations.  Every mutation records a ``(time, depth)`` sample,
which the metrics layer turns into mean/max depth and the trace exporter
into a Chrome counter track.
"""

from __future__ import annotations

from collections import deque

from ..errors import ServingError
from .workload import Request


class AdmissionQueue:
    """FIFO queue bounding how much traffic may wait for a device.

    Args:
        capacity: Maximum simultaneous waiters; offers beyond it are
            rejected (counted in ``rejected_full``).
        timeout_us: Maximum wait before a queued request is dropped
            (counted in ``expired``); ``inf`` disables expiry.
    """

    def __init__(self, capacity: int, timeout_us: float = float("inf")):
        if capacity <= 0:
            raise ServingError("queue capacity must be positive")
        if timeout_us <= 0:
            raise ServingError("queue timeout must be positive")
        self.capacity = capacity
        self.timeout_us = timeout_us
        self._items: deque[Request] = deque()
        self.offered = 0
        self.rejected_full = 0
        self.expired = 0
        self.depth_samples: list[tuple[float, int]] = [(0.0, 0)]

    def __len__(self) -> int:
        return len(self._items)

    def _sample(self, now_us: float) -> None:
        self.depth_samples.append((now_us, len(self._items)))

    def offer(self, request: Request, now_us: float) -> bool:
        """Admit ``request`` if there is room; returns acceptance."""
        self.offered += 1
        if len(self._items) >= self.capacity:
            self.rejected_full += 1
            return False
        self._items.append(request)
        self._sample(now_us)
        return True

    def expire(self, now_us: float) -> list[Request]:
        """Drop (and return) every request that has waited too long.

        The comparison uses ``arrival + timeout`` — the same float the
        simulator schedules expiry wakeups at — so a wakeup landing
        exactly on the deadline always expires its request.
        """
        dropped = []
        while (self._items
               and now_us >= self._items[0].arrival_us + self.timeout_us):
            dropped.append(self._items.popleft())
        if dropped:
            self.expired += len(dropped)
            self._sample(now_us)
        return dropped

    def peek(self, index: int) -> Request:
        """The ``index``-th oldest waiter (0 = head)."""
        return self._items[index]

    def pop_front(self, count: int, now_us: float) -> list[Request]:
        """Remove and return the ``count`` oldest waiters."""
        if count > len(self._items):
            raise ServingError(
                f"cannot pop {count} of {len(self._items)} waiters"
            )
        popped = [self._items.popleft() for _ in range(count)]
        self._sample(now_us)
        return popped

    def oldest_wait_us(self, now_us: float) -> float:
        """How long the head request has waited (0 when empty)."""
        if not self._items:
            return 0.0
        return now_us - self._items[0].arrival_us

    def next_expiry_us(self) -> float:
        """Absolute time the head request would time out (inf if none)."""
        if not self._items or self.timeout_us == float("inf"):
            return float("inf")
        return self._items[0].arrival_us + self.timeout_us
