"""GPU latency baseline (the paper's Table III comparison point)."""

from .comparison import SpeedupCell, best_and_worst, speedup_landscape
from .kernels import (
    Kernel,
    ffn_resblock_kernels,
    mha_resblock_kernels,
    total_bytes,
    total_flops,
)
from .v100 import (
    GpuSpec,
    ffn_latency_us,
    mha_latency_us,
    v100_batch1,
    v100_batched,
)

__all__ = [
    "GpuSpec",
    "Kernel",
    "SpeedupCell",
    "best_and_worst",
    "speedup_landscape",
    "ffn_latency_us",
    "ffn_resblock_kernels",
    "mha_latency_us",
    "mha_resblock_kernels",
    "total_bytes",
    "total_flops",
    "v100_batch1",
    "v100_batched",
]
