"""Systematic FPGA-vs-GPU speedup landscape.

Table III gives two cells (Transformer-base, s = 64).  This module builds
the whole landscape: speedups for every Table I architecture across
sequence lengths, under the paper's eager measurement protocol — showing
where the accelerator's advantage concentrates (small s, many-kernel MHA)
and how it erodes as tensors grow.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..config import AcceleratorConfig, ModelConfig
from ..core.scheduler import schedule_ffn, schedule_mha
from ..errors import ConfigError
from .v100 import GpuSpec, ffn_latency_us, mha_latency_us, v100_batch1


@dataclass(frozen=True)
class SpeedupCell:
    """One (model, s) point of the landscape."""

    model_name: str
    seq_len: int
    fpga_mha_us: float
    fpga_ffn_us: float
    gpu_mha_us: float
    gpu_ffn_us: float

    @property
    def mha_speedup(self) -> float:
        return self.gpu_mha_us / self.fpga_mha_us

    @property
    def ffn_speedup(self) -> float:
        return self.gpu_ffn_us / self.fpga_ffn_us

    @property
    def layer_speedup(self) -> float:
        return ((self.gpu_mha_us + self.gpu_ffn_us)
                / (self.fpga_mha_us + self.fpga_ffn_us))


def speedup_landscape(
    models: Sequence[ModelConfig],
    seq_lens: Sequence[int] = (16, 32, 64, 128),
    spec: GpuSpec = None,
    base: AcceleratorConfig = None,
) -> list[SpeedupCell]:
    """Evaluate the speedup grid; SA rows track the sequence length."""
    if not models or not seq_lens:
        raise ConfigError("need at least one model and one seq_len")
    spec = v100_batch1() if spec is None else spec
    base = AcceleratorConfig() if base is None else base
    cells = []
    for model in models:
        for s in seq_lens:
            acc = base.with_updates(seq_len=s)
            fpga_mha = schedule_mha(model, acc).latency_us(acc.clock_mhz)
            fpga_ffn = schedule_ffn(model, acc).latency_us(acc.clock_mhz)
            cells.append(SpeedupCell(
                model_name=model.name,
                seq_len=s,
                fpga_mha_us=fpga_mha,
                fpga_ffn_us=fpga_ffn,
                gpu_mha_us=mha_latency_us(model, s, spec),
                gpu_ffn_us=ffn_latency_us(model, s, spec),
            ))
    return cells


def best_and_worst(cells: Sequence[SpeedupCell]) -> dict[str, SpeedupCell]:
    """The landscape's extremes by whole-layer speedup."""
    if not cells:
        raise ConfigError("no cells")
    ordered = sorted(cells, key=lambda c: c.layer_speedup)
    return {"worst": ordered[0], "best": ordered[-1]}
