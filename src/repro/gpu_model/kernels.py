"""Kernel decompositions of the two ResBlocks on a GPU (Table III baseline).

**Substitution note (DESIGN.md).**  The paper measures a PyTorch
implementation (jadore801120/attention-is-all-you-need-pytorch) of the
Transformer base model on an NVIDIA V100 at batch 1, s = 64.  With no GPU
available offline, we model that measurement at the granularity the
framework actually executes: a sequence of CUDA kernels, each costing a
fixed framework/launch overhead plus its roofline (compute- or
memory-bound) time.  At batch 1 and s = 64 the tensors are tiny, so both
ResBlocks are overwhelmingly overhead-bound — which is exactly why the
paper's GPU *MHA* latency (1557.8 us) exceeds its *FFN* latency (713.4 us)
despite the FFN having ~2x the FLOPs: the MHA decomposes into ~2.3x more
kernels.  This inversion is the key shape the model must (and does)
reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from ..errors import ShapeError

#: Bytes per element of the GPU implementation (FP32).
FP32_BYTES = 4


@dataclass(frozen=True)
class Kernel:
    """One GPU kernel launch.

    Attributes:
        name: Operation label (mirrors the PyTorch op).
        flops: Floating-point operations performed.
        bytes_moved: DRAM traffic in bytes (reads + writes, cold cache).
    """

    name: str
    flops: int
    bytes_moved: int

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ShapeError(f"kernel {self.name}: negative cost")


def _gemm_kernel(name: str, m: int, k: int, n: int) -> Kernel:
    flops = 2 * m * k * n
    bytes_moved = FP32_BYTES * (m * k + k * n + m * n)
    return Kernel(name, flops, bytes_moved)


def _elementwise_kernel(name: str, elements: int, reads: int = 1) -> Kernel:
    return Kernel(name, elements, FP32_BYTES * elements * (reads + 1))


def mha_resblock_kernels(model: ModelConfig, s: int) -> list[Kernel]:
    """Kernel sequence of one MHA ResBlock in the reference PyTorch code.

    Projections, head reshapes/transposes, batched ``Q K^T``, scale, mask,
    softmax, dropout, batched ``A V``, transpose + contiguous, output
    linear, dropout, residual add, LayerNorm — 16 launches.
    """
    if s <= 0:
        raise ShapeError("sequence length must be positive")
    d = model.d_model
    h = model.num_heads
    d_k = model.head_dim
    sd = s * d
    attn = h * s * s
    return [
        _gemm_kernel("q_proj", s, d, d),
        _gemm_kernel("k_proj", s, d, d),
        _gemm_kernel("v_proj", s, d, d),
        _elementwise_kernel("split_heads_q", sd),
        _elementwise_kernel("split_heads_k", sd),
        _elementwise_kernel("split_heads_v", sd),
        _gemm_kernel("bmm_qk", h * s, d_k, s),
        _elementwise_kernel("scale", attn),
        _elementwise_kernel("mask_fill", attn),
        Kernel("softmax", 5 * attn, FP32_BYTES * attn * 3),
        _elementwise_kernel("attn_dropout", attn),
        _gemm_kernel("bmm_av", h * s, s, d_k),
        _elementwise_kernel("merge_heads", sd, reads=1),
        _gemm_kernel("out_proj", s, d, d),
        _elementwise_kernel("residual_dropout_add", sd, reads=2),
        Kernel("layer_norm", 8 * sd, FP32_BYTES * sd * 3),
    ]


def ffn_resblock_kernels(model: ModelConfig, s: int) -> list[Kernel]:
    """Kernel sequence of one FFN ResBlock: 7 launches."""
    if s <= 0:
        raise ShapeError("sequence length must be positive")
    d = model.d_model
    d_ff = model.d_ff
    sd = s * d
    return [
        _gemm_kernel("linear1", s, d, d_ff),
        _elementwise_kernel("relu", s * d_ff),
        _gemm_kernel("linear2", s, d_ff, d),
        _elementwise_kernel("dropout", sd),
        _elementwise_kernel("residual_add", sd, reads=2),
        Kernel("layer_norm", 8 * sd, FP32_BYTES * sd * 3),
        _elementwise_kernel("output_copy", sd),
    ]


def total_flops(kernels: list[Kernel]) -> int:
    return sum(k.flops for k in kernels)


def total_bytes(kernels: list[Kernel]) -> int:
    return sum(k.bytes_moved for k in kernels)
