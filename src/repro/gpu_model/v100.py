"""V100 latency model: per-kernel overhead + roofline.

Each kernel costs ``overhead + max(flops/peak, bytes/bandwidth)``.  Peak
throughput and memory bandwidth are the V100's public specifications; the
per-kernel overhead (CUDA launch + PyTorch eager dispatch + Python, with
the synchronization the measurement protocol forces at batch 1) is the one
fitted constant, chosen once so the modelled FFN ResBlock matches the
paper's 713.4 us, then *held fixed* for every other prediction — making
the MHA latency, the speedup split, and all batch/length sweeps genuine
predictions of the model rather than fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from ..errors import ConfigError
from .kernels import Kernel, ffn_resblock_kernels, mha_resblock_kernels


@dataclass(frozen=True)
class GpuSpec:
    """GPU hardware + framework parameters.

    Attributes:
        name: Device name.
        peak_flops: Sustained FP32 FLOP/s for large GEMMs.
        memory_bandwidth: HBM bandwidth in bytes/s.
        kernel_overhead_s: Fixed per-kernel cost (launch + dispatch +
            measurement synchronization), seconds.
        gemm_efficiency: Fraction of peak a small GEMM actually reaches.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    kernel_overhead_s: float
    gemm_efficiency: float = 0.7

    def __post_init__(self) -> None:
        if min(self.peak_flops, self.memory_bandwidth,
               self.kernel_overhead_s) <= 0:
            raise ConfigError("GPU spec values must be positive")
        if not 0 < self.gemm_efficiency <= 1:
            raise ConfigError("gemm_efficiency must lie in (0, 1]")

    def kernel_latency_s(self, kernel: Kernel) -> float:
        """Latency of one kernel: overhead + roofline."""
        compute = kernel.flops / (self.peak_flops * self.gemm_efficiency)
        memory = kernel.bytes_moved / self.memory_bandwidth
        return self.kernel_overhead_s + max(compute, memory)

    def sequence_latency_us(self, kernels: list[Kernel]) -> float:
        """Latency of a serial kernel sequence in microseconds."""
        return sum(self.kernel_latency_s(k) for k in kernels) * 1e6


def v100_batch1() -> GpuSpec:
    """The Table III measurement setup: V100, PyTorch eager, batch 1.

    15.7 TFLOP/s FP32 peak, 900 GB/s HBM2.  The 96.5 us per-kernel
    overhead is fitted to the paper's FFN latency (see module docstring);
    it is dominated by the framework/synchronization cost of the
    measurement loop, not the bare CUDA launch (~5 us).
    """
    return GpuSpec(
        name="V100-PyTorch-batch1",
        peak_flops=15.7e12,
        memory_bandwidth=900e9,
        kernel_overhead_s=96.5e-6,
    )


def v100_batched() -> GpuSpec:
    """A steady-state server setup (CUDA graphs / large batch amortization).

    Used by the batch-sweep ablation to show where the GPU overtakes the
    accelerator: per-kernel overhead drops to the bare launch cost.
    """
    return GpuSpec(
        name="V100-batched",
        peak_flops=15.7e12,
        memory_bandwidth=900e9,
        kernel_overhead_s=5e-6,
        gemm_efficiency=0.85,
    )


def mha_latency_us(model: ModelConfig, s: int, spec: GpuSpec,
                   batch: int = 1) -> float:
    """GPU latency of one MHA ResBlock (batch rows share each kernel)."""
    kernels = mha_resblock_kernels(model, s)
    if batch > 1:
        kernels = [
            Kernel(k.name, k.flops * batch, k.bytes_moved * batch)
            for k in kernels
        ]
    return spec.sequence_latency_us(kernels)


def ffn_latency_us(model: ModelConfig, s: int, spec: GpuSpec,
                   batch: int = 1) -> float:
    """GPU latency of one FFN ResBlock."""
    kernels = ffn_resblock_kernels(model, s)
    if batch > 1:
        kernels = [
            Kernel(k.name, k.flops * batch, k.bytes_moved * batch)
            for k in kernels
        ]
    return spec.sequence_latency_us(kernels)
