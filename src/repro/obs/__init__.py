"""End-to-end observability: causal request traces + SLO burn alerts.

``repro.obs`` gives the simulators the per-request half of the story
the profiler gives per-cycle: every request's wall time exactly
partitioned across its hops (:mod:`~repro.obs.spans`), tail-based
sampling that keeps every interesting trace (:mod:`~repro.obs.sampling`),
a streaming multi-window SLO burn-rate monitor with an opt-in
autoscaler hook (:mod:`~repro.obs.slo`), OTLP-JSON export plus
histogram exemplars (:mod:`~repro.obs.export`) and the text/JSON
reports behind ``repro trace`` / ``repro slo-report``
(:mod:`~repro.obs.report`).
"""

from .export import (
    attach_latency_exemplars,
    span_id_hex,
    trace_id_hex,
    traces_to_otlp,
    write_otlp,
)
from .report import (
    hop_rollup,
    render_slo_report,
    render_trace_report,
    render_waterfall,
    slo_report_data,
    slowest_traces,
    waterfall_rows,
)
from .sampling import SamplingPolicy, TraceSampler
from .slo import BurnRateAlert, BurnRateMonitor, BurnRateWindow, SloPolicy
from .spans import (
    AttemptSpan,
    RequestTrace,
    Span,
    TraceCollector,
    request_trace,
    stream_trace,
)

__all__ = [
    "AttemptSpan",
    "BurnRateAlert",
    "BurnRateMonitor",
    "BurnRateWindow",
    "RequestTrace",
    "SamplingPolicy",
    "SloPolicy",
    "Span",
    "TraceCollector",
    "TraceSampler",
    "attach_latency_exemplars",
    "hop_rollup",
    "render_slo_report",
    "render_trace_report",
    "render_waterfall",
    "request_trace",
    "slo_report_data",
    "slowest_traces",
    "span_id_hex",
    "stream_trace",
    "trace_id_hex",
    "traces_to_otlp",
    "waterfall_rows",
    "write_otlp",
]
