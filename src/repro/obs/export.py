"""OTLP-JSON trace export and histogram exemplar attachment.

:func:`traces_to_otlp` renders a set of :class:`~repro.obs.spans.RequestTrace`
trees into the OTLP/JSON resource-span shape (``resourceSpans`` →
``scopeSpans`` → ``spans`` with hex trace/span ids and nanosecond Unix
timestamps), so the artifact is loadable by any OpenTelemetry-aware
viewer.  Ids are derived from ``(req_id, span index, seed)`` through a
splitmix64-style pure-integer mix — deterministic across processes,
no RNG, no ``hash()``.

:func:`attach_latency_exemplars` wires retained traces into a latency
histogram in the metrics registry: each completed trace's end-to-end
latency lands an exemplar (its trace id) in the bucket the latency
falls in, so a p99 bucket links straight to the offending traces.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional, Sequence

from .spans import RequestTrace, Span

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a high-quality deterministic bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def trace_id_hex(req_id: int, seed: int = 0) -> str:
    """Deterministic 128-bit trace id (32 hex chars) for a request."""
    hi = _mix64(req_id * 2 + 1 + seed * 0x1000)
    lo = _mix64(req_id * 2 + 2 + seed * 0x1000)
    return f"{hi:016x}{lo:016x}"


def span_id_hex(req_id: int, index: int, seed: int = 0) -> str:
    """Deterministic 64-bit span id (16 hex chars); index is pre-order."""
    return f"{_mix64((req_id << 20) + index + 1 + seed * 0x2000):016x}"


def _attr_value(value: object) -> dict:
    # bool before int: bool is an int subclass.
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(attrs: dict) -> list[dict]:
    return [
        {"key": key, "value": _attr_value(attrs[key])}
        for key in sorted(attrs)
    ]


def _nanos(us: float) -> str:
    return str(int(round(us * 1000.0)))


def _otlp_span(trace: RequestTrace, span: Span, index: int,
               parent_index: Optional[int], seed: int) -> dict:
    out = {
        "traceId": trace_id_hex(trace.req_id, seed),
        "spanId": span_id_hex(trace.req_id, index, seed),
        "name": span.name,
        "kind": 1,  # SPAN_KIND_INTERNAL
        "startTimeUnixNano": _nanos(span.start_us),
        "endTimeUnixNano": _nanos(span.end_us),
        "attributes": _attributes({"repro.kind": span.kind, **span.attrs}),
        "status": {
            "code": 1 if trace.status == "completed" else 2,  # OK / ERROR
        },
    }
    if parent_index is not None:
        out["parentSpanId"] = span_id_hex(trace.req_id, parent_index, seed)
    return out


def _walk_with_parent(
    span: Span,
) -> list[tuple[Span, Optional[int], int]]:
    """Pre-order ``(span, parent_index, index)`` enumeration."""
    order: list[tuple[Span, Optional[int], int]] = []

    def visit(node: Span, parent_idx: Optional[int]) -> None:
        my_idx = len(order)
        order.append((node, parent_idx, my_idx))
        for child in node.children:
            visit(child, my_idx)

    visit(span, None)
    return order


def traces_to_otlp(
    traces: Sequence[RequestTrace],
    service_name: str = "repro-sim",
    seed: int = 0,
) -> dict:
    """Render traces as one OTLP-JSON export payload."""
    spans = []
    for trace in traces:
        root_attrs = {
            "repro.req_id": trace.req_id,
            "repro.status": trace.status,
            "repro.sampled": trace.sampled,
            **({"repro.tenant": trace.tenant} if trace.tenant else {}),
            **{f"repro.{k}": v for k, v in trace.attrs.items()},
        }
        for span, parent_idx, idx in _walk_with_parent(trace.root):
            rendered = _otlp_span(trace, span, idx, parent_idx, seed)
            if parent_idx is None:
                rendered["attributes"] = _attributes(
                    {"repro.kind": span.kind, **root_attrs}
                )
            spans.append(rendered)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _attributes(
                        {"service.name": service_name}
                    ),
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs", "version": "1"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def write_otlp(
    traces: Sequence[RequestTrace],
    path: str,
    service_name: str = "repro-sim",
    seed: int = 0,
) -> int:
    """Write the OTLP-JSON payload to ``path``; returns the span count."""
    payload = traces_to_otlp(traces, service_name=service_name, seed=seed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return len(payload["resourceSpans"][0]["scopeSpans"][0]["spans"])


def attach_latency_exemplars(
    registry: "MetricsRegistry",
    traces: Sequence[RequestTrace],
    family: str,
    seed: int = 0,
    label: Optional[str] = None,
) -> int:
    """Attach trace-id exemplars to a latency histogram.

    Every *retained* completed trace contributes its end-to-end latency
    and trace id to ``family``'s matching bucket.  With ``label`` set,
    exemplars are filed under that label keyed by the trace's tenant
    (matching how the cluster simulator labels its latency series).
    Returns the number of exemplars attached (0 when the family was
    never emitted).
    """
    if family not in registry:
        return 0
    hist = registry.get(family)
    attached = 0
    for trace in traces:
        if trace.status != "completed" or not trace.sampled:
            continue
        labels = {}
        if label is not None and trace.tenant is not None:
            labels[label] = trace.tenant
        hist.attach_exemplar(
            trace.latency_us, trace_id_hex(trace.req_id, seed), **labels
        )
        attached += 1
    return attached
