"""Tail-based trace sampling.

The sampler decides *after* a request finishes whether its full span
tree is worth keeping — the standard tail-based policy: every
interesting outcome (SLO violation, ABFT retry, shed / rejection /
expiry / failure) is retained at 100%, and a seeded head-sample keeps
a deterministic fraction of the boring completions so the healthy
baseline stays visible.

Determinism: the head-sample uses a pure-integer multiplicative hash
of ``(req_id, seed)`` — no RNG state, no ``hash()`` randomization — so
the same workload keeps the same traces on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ObsError
from .spans import RequestTrace


@dataclass(frozen=True)
class SamplingPolicy:
    """Tail-based retention policy.

    Attributes:
        head_rate: Fraction of *uninteresting* completed traces kept by
            the deterministic head-sample, in ``[0, 1]``.
        seed: Mixes into the head-sample hash so different runs can
            keep different healthy exemplars.
    """

    head_rate: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.head_rate <= 1.0:
            raise ObsError(
                f"head_rate must lie in [0, 1], got {self.head_rate}"
            )


class TraceSampler:
    """Applies a :class:`SamplingPolicy` to finished traces."""

    def __init__(self, policy: SamplingPolicy | None = None):
        self.policy = SamplingPolicy() if policy is None else policy

    def keep(self, trace: RequestTrace) -> bool:
        """True when the full tree should be retained."""
        if trace.status != "completed":
            return True
        if trace.attrs.get("retries", 0) > 0:
            return True
        if trace.attrs.get("slo_violated", False):
            return True
        if trace.attrs.get("corrupted", False):
            return True
        return self._head_sample(trace.req_id)

    def _head_sample(self, req_id: int) -> bool:
        # Knuth-style multiplicative hash over (req_id, seed) mapped to
        # [0, 1); purely arithmetic so it is stable across processes.
        # The seed multiplier must be large relative to 2**32 so that
        # adjacent seeds select visibly different exemplar sets.
        mixed = (
            req_id * 2654435761 + self.policy.seed * 2246822519 + 12345
        )
        return (mixed % 2**32) / 2**32 < self.policy.head_rate
