"""Streaming per-tenant SLO burn-rate monitoring.

Multi-window burn-rate alerting in the Google-SRE style, scaled to sim
time: the *burn rate* over a window is the observed bad-event fraction
divided by the error budget (``1 - objective``).  An alert fires for a
tenant only when **both** a long window (smoothing, evidence) and a
short window (recency, fast reset) exceed their thresholds, and
resolves once the short window clears — the classic hysteresis that
keeps a transient blip from paging while catching sustained burns in
seconds of sim time rather than after the SLO is already blown.

The monitor is strictly passive with respect to the simulators: it
observes terminal request events (attained / violated / shed /
rejected / expired) in non-decreasing event-time order, updates
per-tenant sliding windows, appends to a burn-rate timeline, emits
``repro_obs_*`` series into an optional registry, and records alert
intervals.  It never draws randomness or touches simulator state, so
monitored runs stay bit-identical to plain ones.

The :meth:`BurnRateMonitor.max_short_burn` accessor is the opt-in
autoscaler hook: :class:`repro.cluster.autoscaler.Autoscaler` can
consume the worst current short-window burn as an up-signal alongside
queue depth (``AutoscalerConfig.scale_up_burn_rate``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.trace import TraceSpan
from ..errors import ObsError

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class BurnRateWindow:
    """One evaluation window: a lookback span and a firing threshold."""

    window_us: float
    threshold: float

    def __post_init__(self) -> None:
        if self.window_us <= 0:
            raise ObsError(
                f"window_us must be positive, got {self.window_us}"
            )
        if self.threshold <= 0:
            raise ObsError(
                f"threshold must be positive, got {self.threshold}"
            )


@dataclass(frozen=True)
class SloPolicy:
    """Objective + multi-window burn thresholds (sim-time scaled).

    Defaults: a 95% per-tenant objective, a 300 ms long window firing
    at 3x budget burn and a 60 ms short window firing at 6x — the
    5%/1h + 2%/6h page-tier shape compressed to simulation scale.
    """

    objective: float = 0.95
    long: BurnRateWindow = field(
        default_factory=lambda: BurnRateWindow(300_000.0, 3.0)
    )
    short: BurnRateWindow = field(
        default_factory=lambda: BurnRateWindow(60_000.0, 6.0)
    )
    min_events: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ObsError(
                f"objective must lie in (0, 1), got {self.objective}"
            )
        if self.short.window_us > self.long.window_us:
            raise ObsError(
                "short window must not exceed the long window"
            )
        if self.min_events < 1:
            raise ObsError(
                f"min_events must be >= 1, got {self.min_events}"
            )

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction ``1 - objective``."""
        return 1.0 - self.objective


@dataclass
class BurnRateAlert:
    """One fired alert interval for a tenant."""

    tenant: str
    fired_us: float
    burn_long: float
    burn_short: float
    resolved_us: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_us is None


class BurnRateMonitor:
    """Streaming multi-window burn-rate evaluator over request events."""

    def __init__(self, policy: Optional[SloPolicy] = None,
                 registry: Optional["MetricsRegistry"] = None):
        self.policy = SloPolicy() if policy is None else policy
        self.registry = registry
        # tenant -> deque[(ts_us, good: bool)] bounded by the long window
        self._events: dict[str, deque] = {}
        self._active: dict[str, BurnRateAlert] = {}
        self.alerts: list[BurnRateAlert] = []
        # tenant -> [(ts_us, burn_long, burn_short)] timeline
        self.timeline: dict[str, list] = {}
        self._last_ts: float = float("-inf")

    # -- event intake --------------------------------------------------

    def observe(self, ts_us: float, tenant: str, good: bool) -> None:
        """Record one terminal request event at ``ts_us``.

        Events must arrive in non-decreasing time order (the cluster
        simulator pops them off a single heap, which guarantees it).
        """
        if ts_us < self._last_ts:
            raise ObsError(
                f"events must be time-ordered: {ts_us} after "
                f"{self._last_ts}"
            )
        self._last_ts = ts_us
        window = self._events.setdefault(tenant, deque())
        window.append((ts_us, good))
        self._evict(window, ts_us)
        burn_long, n_long = self._burn(window, ts_us,
                                       self.policy.long.window_us)
        burn_short, _ = self._burn(window, ts_us,
                                   self.policy.short.window_us)
        self.timeline.setdefault(tenant, []).append(
            (ts_us, burn_long, burn_short)
        )
        if self.registry is not None:
            # Two spelled-out sites (not one f-string family) so the
            # statcheck pricing graph can match both literals.
            if good:
                self.registry.counter(
                    "repro_obs_slo_good_total",
                    "SLO-good terminal request events per tenant",
                ).inc(tenant=tenant)
            else:
                self.registry.counter(
                    "repro_obs_slo_bad_total",
                    "SLO-bad terminal request events per tenant",
                ).inc(tenant=tenant)
            series = self.registry.series(
                "repro_obs_burn_rate",
                "Windowed SLO burn rate (bad fraction / error budget)",
            )
            series.sample(ts_us, burn_long, tenant=tenant, window="long")
            series.sample(ts_us, burn_short, tenant=tenant, window="short")
        self._update_alert(ts_us, tenant, burn_long, burn_short, n_long)

    def _evict(self, window: deque, now_us: float) -> None:
        horizon = now_us - self.policy.long.window_us
        while window and window[0][0] < horizon:
            window.popleft()

    def _burn(self, window: deque, now_us: float,
              span_us: float) -> tuple[float, int]:
        horizon = now_us - span_us
        total = bad = 0
        for ts, good in window:
            if ts >= horizon:
                total += 1
                if not good:
                    bad += 1
        if total == 0:
            return 0.0, 0
        return (bad / total) / self.policy.budget, total

    # -- alert lifecycle ----------------------------------------------

    def _update_alert(self, ts_us: float, tenant: str,
                      burn_long: float, burn_short: float,
                      n_long: int) -> None:
        active = self._active.get(tenant)
        if active is None:
            if (n_long >= self.policy.min_events
                    and burn_long >= self.policy.long.threshold
                    and burn_short >= self.policy.short.threshold):
                alert = BurnRateAlert(tenant, ts_us, burn_long, burn_short)
                self._active[tenant] = alert
                self.alerts.append(alert)
                if self.registry is not None:
                    self.registry.counter(
                        "repro_obs_alerts_total",
                        "Burn-rate alert firings per tenant",
                    ).inc(tenant=tenant)
                    self.registry.gauge(
                        "repro_obs_alert_active",
                        "Whether a burn-rate alert is currently firing",
                    ).set(1.0, tenant=tenant)
        elif burn_short < self.policy.short.threshold:
            active.resolved_us = ts_us
            del self._active[tenant]
            if self.registry is not None:
                self.registry.gauge(
                    "repro_obs_alert_active",
                    "Whether a burn-rate alert is currently firing",
                ).set(0.0, tenant=tenant)

    # -- accessors (non-mutating) --------------------------------------

    def short_burn(self, now_us: float, tenant: str) -> float:
        """Current short-window burn for one tenant (0.0 when idle)."""
        window = self._events.get(tenant)
        if not window:
            return 0.0
        burn, _ = self._burn(window, now_us, self.policy.short.window_us)
        return burn

    def max_short_burn(self, now_us: float) -> float:
        """Worst short-window burn across tenants — the autoscaler hook."""
        worst = 0.0
        for tenant in self._events:
            worst = max(worst, self.short_burn(now_us, tenant))
        return worst

    def alert_spans(self) -> list[TraceSpan]:
        """Alert intervals as Chrome-trace spans on an ``slo_alerts`` track.

        Unresolved alerts extend to the last observed event time.
        Fetched explicitly by reports/CLI — never appended to simulator
        results, so instrumented runs stay bit-identical.
        """
        spans = []
        end_default = self._last_ts if self._last_ts > float("-inf") else 0.0
        for alert in self.alerts:
            end = alert.resolved_us if alert.resolved_us is not None \
                else max(end_default, alert.fired_us)
            spans.append(TraceSpan(
                name=f"{alert.tenant}.slo_burn",
                track="slo_alerts",
                start_us=alert.fired_us,
                duration_us=end - alert.fired_us,
                category="obs",
                args={
                    "tenant": alert.tenant,
                    "burn_long": alert.burn_long,
                    "burn_short": alert.burn_short,
                    "resolved": alert.resolved_us is not None,
                },
            ))
        return spans

    def summary(self) -> dict:
        """Per-tenant rollup: events, bad fraction, peaks, alert count."""
        out: dict[str, dict] = {}
        for tenant in sorted(self.timeline):
            points = self.timeline[tenant]
            alerts = [a for a in self.alerts if a.tenant == tenant]
            out[tenant] = {
                "events": len(points),
                "peak_burn_long": max(p[1] for p in points),
                "peak_burn_short": max(p[2] for p in points),
                "alerts_fired": len(alerts),
                "alerts_unresolved": sum(a.active for a in alerts),
            }
        return out
