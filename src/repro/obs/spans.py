"""Causal request traces: span trees that exactly partition wall time.

A :class:`RequestTrace` is the per-request analogue of the profiler's
cycle attribution: one root span covering the request's whole lifetime,
whose children split that interval into contiguous, non-overlapping
hops (queue wait, device wait, compute, memsys stall, retry, terminal
markers).  The partition is *exact* — children share their boundary
timestamps with each other and with the parent, so summing leaf
durations telescopes back to the end-to-end latency with no float
slack.  :meth:`Span.validate` enforces that structurally.

Builders:

* :func:`request_trace` — batch-serving requests (serving + cluster
  simulators): admission → queue wait → per-attempt device wait /
  compute / memsys stall → completion, with ``failed`` / ``expired`` /
  ``rejected`` / ``shed`` as zero-width terminal markers.
* :func:`stream_trace` — decode streams: the stream's execution
  intervals (prefill chunks, decode batches) with explicit ``wait``
  spans filling every gap.

:class:`TraceCollector` gathers traces during a run, applies a
tail-based :class:`~repro.obs.sampling.TraceSampler` (unsampled traces
keep only their root span) and counts retention into a metrics
registry (``repro_obs_traces_total`` / ``repro_obs_traces_retained_total``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from ..errors import ObsError

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry
    from .sampling import TraceSampler

#: Span kinds that terminate a request without useful work.
TERMINAL_KINDS = ("failed", "expired", "rejected", "shed", "timeout")


@dataclass
class Span:
    """One node in a trace tree.

    ``start_us``/``end_us`` are absolute sim timestamps.  When a span
    has children they must tile its interval exactly: the first child
    starts at ``start_us``, each child ends where the next begins, and
    the last child ends at ``end_us``.  Zero-width spans are legal and
    keep the contiguity chain intact (marker spans use this).
    """

    name: str
    kind: str
    start_us: float
    end_us: float
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def child(self, name: str, kind: str, start_us: float, end_us: float,
              **attrs) -> "Span":
        """Append and return a child span."""
        node = Span(name, kind, start_us, end_us, dict(attrs))
        self.children.append(node)
        return node

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal (self first)."""
        yield self
        for c in self.children:
            yield from c.walk()

    def leaves(self) -> list["Span"]:
        """The leaf spans, left to right — the exact partition."""
        if not self.children:
            return [self]
        out: list[Span] = []
        for c in self.children:
            out.extend(c.leaves())
        return out

    def validate(self) -> None:
        """Check interval sanity and the exact-partition invariant."""
        if self.end_us < self.start_us:
            raise ObsError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_us} < {self.start_us})"
            )
        if not self.children:
            return
        if self.children[0].start_us != self.start_us:
            raise ObsError(
                f"span {self.name!r}: first child "
                f"{self.children[0].name!r} starts at "
                f"{self.children[0].start_us}, parent at {self.start_us}"
            )
        for prev, nxt in zip(self.children, self.children[1:]):
            if prev.end_us != nxt.start_us:
                raise ObsError(
                    f"span {self.name!r}: child {prev.name!r} ends at "
                    f"{prev.end_us} but {nxt.name!r} starts at "
                    f"{nxt.start_us}"
                )
        if self.children[-1].end_us != self.end_us:
            raise ObsError(
                f"span {self.name!r}: last child "
                f"{self.children[-1].name!r} ends at "
                f"{self.children[-1].end_us}, parent at {self.end_us}"
            )
        for c in self.children:
            c.validate()


@dataclass
class RequestTrace:
    """The full causal trace of one request (or decode stream)."""

    req_id: int
    status: str
    root: Span
    tenant: Optional[str] = None
    attrs: dict = field(default_factory=dict)
    sampled: bool = True

    @property
    def latency_us(self) -> float:
        return self.root.duration_us

    def hops(self) -> list[Span]:
        """The leaf spans partitioning the request's wall time."""
        return self.root.leaves()

    def validate(self) -> None:
        self.root.validate()


@dataclass(frozen=True)
class AttemptSpan:
    """One dispatch attempt of a batch, as seen by a single request.

    ``dispatched_us`` is when the scheduler handed the batch to the
    pool; ``start_us``/``end_us`` bracket the device run.  When the
    dispatcher can split compute from memory stalls,
    ``compute_boundary_us`` marks where compute ends and the exposed
    memsys stall begins (``None`` for shapes where the split is not
    attributable, e.g. layer-sharded pipelines).
    """

    dispatched_us: float
    start_us: float
    end_us: float
    compute_boundary_us: Optional[float] = None
    attrs: dict = field(default_factory=dict)


def _add_attempt(parent: Span, idx: int, att: AttemptSpan) -> None:
    label = "run" if idx == 0 else f"retry{idx}"
    if att.start_us > att.dispatched_us:
        parent.child(
            f"{label}.device_wait", "device_wait",
            att.dispatched_us, att.start_us,
        )
    boundary = att.compute_boundary_us
    if boundary is not None:
        # Clamp into the run interval; float rounding in the cycle →
        # microsecond conversion may land a hair outside.
        boundary = min(max(boundary, att.start_us), att.end_us)
    if boundary is not None and att.start_us < boundary < att.end_us:
        parent.child(
            f"{label}.compute", "compute",
            att.start_us, boundary, **att.attrs,
        )
        parent.child(
            f"{label}.memsys_stall", "memsys_stall", boundary, att.end_us
        )
    else:
        parent.child(
            f"{label}.compute", "compute",
            att.start_us, att.end_us, **att.attrs,
        )


def request_trace(
    *,
    req_id: int,
    status: str,
    arrival_us: float,
    end_us: Optional[float] = None,
    dispatched_us: Optional[float] = None,
    attempts: tuple = (),
    tenant: Optional[str] = None,
    attrs: Optional[dict] = None,
) -> RequestTrace:
    """Build the span tree for one batch-serving request.

    * ``completed`` — queue wait up to ``dispatched_us``, then a
      ``service`` span holding each :class:`AttemptSpan` (device wait /
      compute / memsys stall, retries included).
    * ``failed`` with attempts — same shape plus a zero-width
      ``failed`` marker at the final attempt's end.
    * ``failed`` (stranded) / ``expired`` — queue wait up to ``end_us``
      plus a zero-width terminal marker.
    * ``rejected`` / ``shed`` — a zero-width root with a zero-width
      terminal marker (the request never held any wall time).
    """
    attrs = dict(attrs or {})
    attrs["retries"] = max(0, len(attempts) - 1)
    if status == "completed":
        if not attempts:
            raise ObsError(f"completed request {req_id} has no attempts")
        final_end = attempts[-1].end_us
        root = Span(f"req{req_id}", "request", arrival_us, final_end)
        _fill_service(root, req_id, arrival_us, dispatched_us, attempts,
                      final_end)
    elif status == "failed" and attempts:
        final_end = attempts[-1].end_us
        root = Span(f"req{req_id}", "request", arrival_us, final_end)
        _fill_service(root, req_id, arrival_us, dispatched_us, attempts,
                      final_end)
        root.child(f"req{req_id}.failed", "failed", final_end, final_end)
    elif status in ("failed", "expired"):
        if end_us is None:
            raise ObsError(
                f"{status} request {req_id} needs an explicit end_us"
            )
        root = Span(f"req{req_id}", "request", arrival_us, end_us)
        if end_us > arrival_us:
            root.child(
                f"req{req_id}.queue_wait", "queue_wait", arrival_us, end_us
            )
        kind = "expired" if status == "expired" else "failed"
        root.child(f"req{req_id}.{kind}", kind, end_us, end_us)
    elif status in ("rejected", "shed"):
        root = Span(f"req{req_id}", "request", arrival_us, arrival_us)
        root.child(f"req{req_id}.{status}", status, arrival_us, arrival_us)
    else:
        raise ObsError(f"unknown request status {status!r}")
    trace = RequestTrace(req_id, status, root, tenant=tenant, attrs=attrs)
    trace.validate()
    return trace


def _fill_service(root: Span, req_id: int, arrival_us: float,
                  dispatched_us: Optional[float],
                  attempts: tuple, final_end: float) -> None:
    if dispatched_us is None:
        dispatched_us = attempts[0].dispatched_us
    if dispatched_us > arrival_us:
        root.child(
            f"req{req_id}.queue_wait", "queue_wait",
            arrival_us, dispatched_us,
        )
    service = root.child(
        f"req{req_id}.service", "service", dispatched_us, final_end
    )
    for idx, att in enumerate(attempts):
        _add_attempt(service, idx, att)


def stream_trace(
    *,
    stream_id: int,
    status: str,
    arrival_us: float,
    intervals: tuple = (),
    attrs: Optional[dict] = None,
) -> RequestTrace:
    """Build the span tree for one decode stream.

    ``intervals`` is the stream's time-ordered execution segments as
    ``(label, kind, start_us, end_us, attrs)`` tuples; gaps between
    them (and before the first) become explicit ``wait`` spans so the
    tree still partitions arrival → completion exactly.
    """
    attrs = dict(attrs or {})
    if status == "rejected":
        root = Span(f"stream{stream_id}", "stream", arrival_us, arrival_us)
        root.child(
            f"stream{stream_id}.rejected", "rejected", arrival_us, arrival_us
        )
    elif status == "completed":
        if not intervals:
            raise ObsError(f"completed stream {stream_id} has no intervals")
        end_us = intervals[-1][3]
        root = Span(f"stream{stream_id}", "stream", arrival_us, end_us)
        cursor = arrival_us
        for label, kind, seg_start, seg_end, seg_attrs in intervals:
            if seg_start < cursor:
                raise ObsError(
                    f"stream {stream_id}: interval {label!r} starts at "
                    f"{seg_start} before cursor {cursor}"
                )
            if seg_start > cursor:
                root.child(
                    f"stream{stream_id}.wait", "wait", cursor, seg_start
                )
            root.child(label, kind, seg_start, seg_end, **(seg_attrs or {}))
            cursor = seg_end
    else:
        raise ObsError(f"unknown stream status {status!r}")
    trace = RequestTrace(stream_id, status, root, attrs=attrs)
    trace.validate()
    return trace


class TraceCollector:
    """Collects validated request traces during a simulation.

    Strictly passive: the simulators call :meth:`add` but the collector
    never feeds anything back, so instrumented runs stay bit-identical
    to plain ones.  With a sampler attached, traces the tail-based
    policy drops are reduced to their root span (the request id still
    appears exactly once, and a root-only tree trivially satisfies the
    partition invariant); without one every tree is kept whole.
    """

    def __init__(self, sampler: Optional["TraceSampler"] = None,
                 registry: Optional["MetricsRegistry"] = None):
        self.sampler = sampler
        self.registry = registry
        self._traces: dict[int, RequestTrace] = {}

    def add(self, trace: RequestTrace) -> None:
        if trace.req_id in self._traces:
            raise ObsError(
                f"duplicate trace for request {trace.req_id}"
            )
        trace.validate()
        keep = self.sampler.keep(trace) if self.sampler is not None else True
        if not keep:
            trace.sampled = False
            trace.root.children.clear()
        self._traces[trace.req_id] = trace
        if self.registry is not None:
            self.registry.counter(
                "repro_obs_traces_total",
                "Request traces observed by the collector",
            ).inc(status=trace.status)
            if keep:
                self.registry.counter(
                    "repro_obs_traces_retained_total",
                    "Request traces retained in full by tail-based "
                    "sampling",
                ).inc()

    def get(self, req_id: int) -> Optional[RequestTrace]:
        return self._traces.get(req_id)

    @property
    def traces(self) -> list[RequestTrace]:
        """All traces in request-id order."""
        return [self._traces[k] for k in sorted(self._traces)]

    def retained(self) -> list[RequestTrace]:
        """Only the fully-sampled traces, in request-id order."""
        return [t for t in self.traces if t.sampled]

    def __len__(self) -> int:
        return len(self._traces)
