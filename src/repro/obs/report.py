"""Trace and SLO reporting: waterfalls, rollups, burn-rate timelines.

Render helpers behind ``repro trace --requests ...`` and
``repro slo-report``: top-N slowest completions, a per-hop critical-path
rollup across retained traces, the per-hop waterfall of one request,
and the per-tenant burn-rate/alert summary of a
:class:`~repro.obs.slo.BurnRateMonitor`.  Everything is derived from
already-deterministic inputs, so same-seed runs render byte-identical
reports.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.report import render_table
from .slo import BurnRateMonitor
from .spans import RequestTrace, Span


def slowest_traces(
    traces: Sequence[RequestTrace], n: int
) -> list[RequestTrace]:
    """Top-``n`` completed traces by latency (ties broken by req id)."""
    completed = [t for t in traces if t.status == "completed"]
    completed.sort(key=lambda t: (-t.latency_us, t.req_id))
    return completed[:n]


def waterfall_rows(trace: RequestTrace) -> list[list[object]]:
    """One row per span, depth-indented, with offset/duration/share."""
    total = trace.latency_us
    rows: list[list[object]] = []

    def visit(span: Span, depth: int) -> None:
        share = (span.duration_us / total * 100.0) if total > 0 else 0.0
        rows.append([
            "  " * depth + span.name,
            span.kind,
            f"{span.start_us - trace.root.start_us:,.1f}",
            f"{span.duration_us:,.1f}",
            f"{share:.1f}%" if not span.children else "",
        ])
        for child in span.children:
            visit(child, depth + 1)

    visit(trace.root, 0)
    return rows


def render_waterfall(trace: RequestTrace) -> str:
    """The per-hop waterfall of one request, as a text table."""
    title = (
        f"req {trace.req_id} — {trace.status}, "
        f"{trace.latency_us:,.1f} us end-to-end"
        + (f", tenant {trace.tenant}" if trace.tenant else "")
    )
    return render_table(
        title,
        ["span", "kind", "offset_us", "duration_us", "share"],
        waterfall_rows(trace),
    )


def hop_rollup(traces: Sequence[RequestTrace]) -> dict[str, dict]:
    """Aggregate leaf-hop time by kind across completed traces.

    Root-only (tail-sampled-away) traces are skipped — their single
    leaf is the whole request, which would swamp the per-hop shares.
    The per-trace partition is exact, so the rollup's total equals the
    summed end-to-end latency of the retained traces — the fleet-level
    analogue of the profiler's cycle attribution.
    """
    out: dict[str, dict] = {}
    for trace in traces:
        if trace.status != "completed" or not trace.sampled:
            continue
        for leaf in trace.hops():
            entry = out.setdefault(
                leaf.kind, {"total_us": 0.0, "spans": 0, "max_us": 0.0}
            )
            entry["total_us"] += leaf.duration_us
            entry["spans"] += 1
            entry["max_us"] = max(entry["max_us"], leaf.duration_us)
    return out


def render_trace_report(
    traces: Sequence[RequestTrace], top: int
) -> str:
    """Top-N slowest table + critical-path rollup across all traces."""
    slowest = slowest_traces(traces, top)
    rows = []
    for trace in slowest:
        hops = trace.hops()
        worst = max(hops, key=lambda h: (h.duration_us, h.name))
        rows.append([
            trace.req_id,
            trace.tenant or "-",
            f"{trace.latency_us:,.1f}",
            trace.attrs.get("retries", 0),
            worst.kind,
            f"{worst.duration_us:,.1f}",
            "full" if trace.sampled else "root-only",
        ])
    sections = [render_table(
        f"top {len(slowest)} slowest requests "
        f"({len(traces)} traces collected)",
        ["req", "tenant", "latency_us", "retries", "critical_hop",
         "hop_us", "sampling"],
        rows,
    )]
    rollup = hop_rollup(traces)
    total = sum(e["total_us"] for e in rollup.values())
    roll_rows = [
        [kind, entry["spans"], f"{entry['total_us']:,.1f}",
         f"{entry['max_us']:,.1f}",
         f"{entry['total_us'] / total * 100.0:.1f}%" if total else "0.0%"]
        for kind, entry in sorted(
            rollup.items(), key=lambda kv: -kv[1]["total_us"]
        )
    ]
    sections.append(render_table(
        "hop rollup (fully-sampled completed traces; shares sum to "
        "100%)",
        ["hop", "spans", "total_us", "max_us", "share"],
        roll_rows,
    ))
    return "\n\n".join(sections)


def slo_report_data(monitor: BurnRateMonitor) -> dict:
    """JSON-ready slo-report payload: summary, timelines, alerts."""
    return {
        "policy": {
            "objective": monitor.policy.objective,
            "long_window_us": monitor.policy.long.window_us,
            "long_threshold": monitor.policy.long.threshold,
            "short_window_us": monitor.policy.short.window_us,
            "short_threshold": monitor.policy.short.threshold,
            "min_events": monitor.policy.min_events,
        },
        "tenants": monitor.summary(),
        "alerts": [
            {
                "tenant": a.tenant,
                "fired_us": a.fired_us,
                "resolved_us": a.resolved_us,
                "burn_long": a.burn_long,
                "burn_short": a.burn_short,
            }
            for a in monitor.alerts
        ],
        "timeline": {
            tenant: [
                {"ts_us": ts, "burn_long": bl, "burn_short": bs}
                for ts, bl, bs in points
            ]
            for tenant, points in sorted(monitor.timeline.items())
        },
    }


def render_slo_report(monitor: BurnRateMonitor) -> str:
    """Per-tenant burn-rate summary + alert log, as text tables."""
    policy = monitor.policy
    summary = monitor.summary()
    rows = [
        [tenant, entry["events"],
         f"{entry['peak_burn_long']:.2f}",
         f"{entry['peak_burn_short']:.2f}",
         entry["alerts_fired"], entry["alerts_unresolved"]]
        for tenant, entry in summary.items()
    ]
    sections = [render_table(
        f"SLO burn-rate report — objective {policy.objective:.0%}, "
        f"windows {policy.long.window_us / 1000.0:.0f} ms"
        f"@{policy.long.threshold:g}x + "
        f"{policy.short.window_us / 1000.0:.0f} ms"
        f"@{policy.short.threshold:g}x",
        ["tenant", "events", "peak_long", "peak_short", "alerts",
         "unresolved"],
        rows,
    )]
    if monitor.alerts:
        alert_rows = [
            [a.tenant, f"{a.fired_us:,.0f}",
             f"{a.resolved_us:,.0f}" if a.resolved_us is not None
             else "active",
             f"{a.burn_long:.2f}", f"{a.burn_short:.2f}"]
            for a in monitor.alerts
        ]
        sections.append(render_table(
            "alert firings",
            ["tenant", "fired_us", "resolved_us", "burn_long",
             "burn_short"],
            alert_rows,
        ))
    else:
        sections.append("no burn-rate alerts fired")
    return "\n\n".join(sections)
