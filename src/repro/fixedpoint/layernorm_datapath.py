"""Bit-level fixed-point LayerNorm datapath (Fig. 8, integer domain).

The :class:`~repro.core.layernorm_module.LayerNormModule` models the
module's schedule and uses the isqrt LUT but keeps statistics in float.
This class is the fully integer version — what the RTL registers actually
hold:

* inputs quantize to :data:`~repro.fixedpoint.types.LAYERNORM_Q` codes;
* ``sum G`` and ``sum G^2`` accumulate as integers (the two register
  banks of the step-two schedule);
* the ``1/d_model`` means are arithmetic shifts when ``d_model`` is a
  power of two (always true for Transformer-base/big; BERT-base's 768
  falls back to integer division, which the RTL would implement as a
  constant multiply);
* the variance is Eq. (9) evaluated on integer codes;
* ``x^(-0.5)`` is the LUT unit; the final scaling
  ``(G - E) * r * gamma + beta`` is the DSP multiply chain with explicit
  requantization between stages.

Worst-case deviation from the exact FP LayerNorm stays within ~1% of the
output range (tested), dominated by the isqrt LUT and the Q-format grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FixedPointError, ShapeError
from .isqrt import InverseSqrtLUT
from .ops import rounding_shift_right
from .types import LAYERNORM_Q, QFormat


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class FixedPointLayerNorm:
    """Integer-domain LayerNorm over the last axis.

    Attributes:
        d_model: Feature width (row length of G).
        in_fmt: Q-format of the input codes.
        affine_fmt: Q-format of the quantized gamma/beta parameters.
        out_fmt: Q-format of the output codes.
    """

    d_model: int
    in_fmt: QFormat = LAYERNORM_Q
    affine_fmt: QFormat = QFormat(int_bits=3, frac_bits=13)
    out_fmt: QFormat = QFormat(int_bits=6, frac_bits=10)
    eps_value: float = 1e-8
    _isqrt: InverseSqrtLUT = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.d_model <= 0:
            raise FixedPointError("d_model must be positive")
        # The isqrt unit consumes variance codes carrying the input's
        # fractional bits.  The variance of values bounded by 2**(i-1)
        # is bounded by 2**(2i-2), so the input bus needs 2*int_bits
        # integer bits to hold the worst case without truncation (the
        # statcheck overflow certifier proves this bound).
        self._isqrt = InverseSqrtLUT(
            in_fmt=QFormat(
                int_bits=max(self.in_fmt.int_bits * 2, 2),
                frac_bits=self.in_fmt.frac_bits,
            )
        )

    @property
    def isqrt_unit(self) -> InverseSqrtLUT:
        """The LUT unit (exposed for the static overflow certifier)."""
        return self._isqrt

    def ports(self) -> dict[str, QFormat]:
        """Q-formats of the datapath's ports (statcheck QFMT graph hook)."""
        return {
            "in": self.in_fmt,
            "affine": self.affine_fmt,
            "isqrt_in": self._isqrt.in_fmt,
            "out": self.out_fmt,
        }

    # ------------------------------------------------------------------
    def _mean_codes(self, sums: np.ndarray) -> np.ndarray:
        """``sum / d_model`` on integer codes."""
        if _is_power_of_two(self.d_model):
            shift = int(np.log2(self.d_model))
            return rounding_shift_right(sums, shift)
        # Constant-divide (the RTL would use a reciprocal multiply).
        return np.floor_divide(
            sums + self.d_model // 2, self.d_model
        )

    def statistics(self, codes: np.ndarray):
        """The register banks' final values: ``(mean, variance)`` codes.

        Mean codes are in ``in_fmt``; variance codes carry
        ``in_fmt.frac_bits`` fractional bits (one requantization after the
        squaring stage).
        """
        codes = np.asarray(codes, dtype=np.int64)
        sums = codes.sum(axis=-1)
        # Squares carry 2*frac bits; requantize back to frac bits before
        # accumulating the E[G^2] mean (matching a width-limited adder).
        sq = rounding_shift_right(codes * codes, self.in_fmt.frac_bits)
        sq_sums = sq.sum(axis=-1)
        mean = self._mean_codes(sums)
        mean_sq_stat = self._mean_codes(sq_sums)     # E[G^2]
        mean_squared = rounding_shift_right(
            mean * mean, self.in_fmt.frac_bits
        )                                            # E[G]^2
        var = np.maximum(mean_sq_stat - mean_squared, 0)   # Eq. (9)
        return mean, var

    # ------------------------------------------------------------------
    def __call__(
        self,
        g: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
    ) -> np.ndarray:
        """Normalize real-valued ``g`` through the integer datapath.

        Args:
            g: ``(..., d_model)`` input (quantized internally).
            gamma / beta: FP affine parameters (quantized internally).

        Returns:
            Real-valued output (dequantized ``out_fmt`` codes).
        """
        g = np.asarray(g, dtype=np.float64)
        if g.shape[-1] != self.d_model:
            raise ShapeError(
                f"expected width {self.d_model}, got {g.shape[-1]}"
            )
        gamma = np.asarray(gamma, dtype=np.float64)
        beta = np.asarray(beta, dtype=np.float64)
        if gamma.shape != (self.d_model,) or beta.shape != (self.d_model,):
            raise ShapeError("gamma/beta must be (d_model,)")

        codes = self.in_fmt.quantize(g)
        mean, var = self.statistics(codes)
        # eps in variance-code units; at least one LSB so the LUT input
        # stays strictly positive.
        eps_codes = max(
            1, int(round(self.eps_value / self.in_fmt.scale))
        )
        r_codes = self._isqrt(
            np.maximum(var + eps_codes, 1)
        )
        # centered: in_fmt codes; r: out-of-LUT codes.
        centered = codes - mean[..., None]
        # (centered * r): frac = in + lut; requantize to in_fmt frac.
        scaled = rounding_shift_right(
            centered * r_codes[..., None],
            self._isqrt.out_fmt.frac_bits,
        )
        gamma_codes = self.affine_fmt.quantize(gamma)
        beta_codes = self.affine_fmt.quantize(beta)
        # (scaled * gamma): frac = in + affine; requantize to out_fmt.
        shift = (self.in_fmt.frac_bits + self.affine_fmt.frac_bits
                 - self.out_fmt.frac_bits)
        if shift < 0:
            raise FixedPointError("out_fmt has too many fractional bits")
        affine = rounding_shift_right(scaled * gamma_codes, shift)
        beta_aligned = rounding_shift_right(
            np.asarray(beta_codes, dtype=np.int64)
            << self.in_fmt.frac_bits, shift,
        )
        out_codes = self.out_fmt.saturate(affine + beta_aligned)
        return self.out_fmt.dequantize(out_codes)

    # ------------------------------------------------------------------
    def max_error_vs_float(self, rows: int = 64, scale: float = 2.0,
                           seed: int = 0) -> float:
        """Worst absolute deviation from exact FP LayerNorm on random G."""
        from ..transformer.functional import layer_norm

        rng = np.random.default_rng(seed)
        g = rng.normal(0.0, scale, size=(rows, self.d_model))
        gamma = rng.uniform(0.5, 1.5, size=self.d_model)
        beta = rng.uniform(-0.5, 0.5, size=self.d_model)
        exact = layer_norm(g, gamma, beta, eps=self.eps_value)
        approx = self(g, gamma, beta)
        return float(np.abs(exact - approx).max())
