"""Lookup-table inverse-square-root unit for the LayerNorm module.

The paper implements the ``x**(-0.5)`` stage of layer normalization "with a
lookup table" (Section IV-B, Fig. 8).  This model normalizes the input into
a mantissa/exponent pair, indexes a 256-entry table of ``m**(-0.5)`` for
``m in [1, 2)``, and folds the exponent back in with shifts; odd exponents
use a second table bank pre-multiplied by ``1/sqrt(2)`` so no multiplier is
needed at runtime.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import FixedPointError
from .ops import leading_one_position
from .types import QFormat


def _build_tables(entries: int, out_frac_bits: int):
    """Precompute the even- and odd-exponent mantissa tables."""
    mantissas = 1.0 + np.arange(entries, dtype=np.float64) / entries
    even = np.round(mantissas ** -0.5 * (1 << out_frac_bits))
    odd = np.round(mantissas ** -0.5 / np.sqrt(2.0) * (1 << out_frac_bits))
    return even.astype(np.int64), odd.astype(np.int64)


@dataclass(frozen=True)
class InverseSqrtLUT:
    """LUT-based ``x**(-0.5)`` unit.

    Attributes:
        in_fmt: Format of the positive input codes (variance + epsilon).
        out_fmt: Format of the reciprocal-sqrt output codes.
        entries: Table depth per bank (two banks: even / odd exponent).
        fault_hook: Optional fault-injection hook applied to the raw
            table output codes before saturation (``repro.reliability``
            installs LUT-bit upsets here); ``None`` models a healthy
            unit.
    """

    in_fmt: QFormat = QFormat(int_bits=12, frac_bits=12)
    out_fmt: QFormat = QFormat(int_bits=8, frac_bits=14)
    entries: int = 256
    fault_hook: Optional[Callable[[np.ndarray], np.ndarray]] = field(
        default=None, compare=False, repr=False
    )
    _tables: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.entries < 2 or self.entries & (self.entries - 1):
            raise FixedPointError("LUT entries must be a power of two >= 2")
        object.__setattr__(
            self, "_tables", _build_tables(self.entries, self.out_fmt.frac_bits)
        )

    @property
    def index_bits(self) -> int:
        """Address width of each table bank."""
        return int(self.entries).bit_length() - 1

    @property
    def bram_bits(self) -> int:
        """Total table storage in bits (two banks)."""
        return 2 * self.entries * self.out_fmt.total_bits

    def __call__(self, codes: np.ndarray) -> np.ndarray:
        """Evaluate ``x**(-0.5)`` on strictly positive input codes."""
        arr = np.asarray(codes, dtype=np.int64)
        if np.any(arr <= 0):
            raise FixedPointError("InverseSqrtLUT input must be positive")
        k = leading_one_position(arr)
        # Mantissa index: the `index_bits` bits right below the leading one.
        shift = k - self.index_bits
        idx = np.where(
            shift >= 0,
            (arr >> np.maximum(shift, 0)),
            (arr << np.maximum(-shift, 0)),
        ) - self.entries
        idx = np.clip(idx, 0, self.entries - 1)
        # True exponent e of x = m * 2**e: e = k - frac_bits.
        exponent = k - self.in_fmt.frac_bits
        even_bank, odd_bank = self._tables
        base = np.where(exponent % 2 == 0, even_bank[idx], odd_bank[idx])
        # x**-0.5 = m**-0.5 * 2**(-e/2); for odd e the extra 1/sqrt(2) is
        # already folded into the odd bank, so shift by floor(e/2).
        half_exp = np.floor_divide(exponent, 2)
        result = np.where(
            half_exp >= 0,
            base >> np.minimum(np.maximum(half_exp, 0), 62),
            base << np.minimum(np.maximum(-half_exp, 0), 62),
        )
        if self.fault_hook is not None:
            result = np.asarray(self.fault_hook(result), dtype=np.int64)
        return self.out_fmt.saturate(result)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Convenience: real-valued in, real-valued out."""
        x = np.asarray(x, dtype=np.float64)
        if np.any(x <= 0):
            raise FixedPointError("InverseSqrtLUT input must be positive")
        codes = np.maximum(self.in_fmt.quantize(x), 1)
        return self.out_fmt.dequantize(self(codes))

    def max_relative_error(self, samples: int = 4096) -> float:
        """Measured worst-case relative error over the representable range."""
        xs = np.linspace(self.in_fmt.scale * 8, self.in_fmt.max_value, samples)
        approx = self.evaluate(xs)
        exact = xs ** -0.5
        return float(np.max(np.abs(approx - exact) / exact))
