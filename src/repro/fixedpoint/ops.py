"""Bit-accurate integer operations used throughout the datapath models.

These helpers mirror what simple hardware blocks do: saturating adds and
multiplies at a given width, arithmetic right shifts (the paper's ``>>3``
scaled-softmax stage), rounding shifts for requantization, and the shift-add
constant multiplications the EXP/LN units use instead of real multipliers.
All functions are vectorized over numpy int64 arrays.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Union

import numpy as np

from ..errors import FixedPointError
from .types import QFormat

IntArray = Union[int, np.ndarray]


def _as_int64(value: IntArray) -> np.ndarray:
    arr = np.asarray(value)
    if not np.issubdtype(arr.dtype, np.integer):
        raise FixedPointError(
            f"integer op received non-integer dtype {arr.dtype}"
        )
    return arr.astype(np.int64)


def sat_add(a: IntArray, b: IntArray, fmt: QFormat) -> np.ndarray:
    """Saturating addition at the width of ``fmt``."""
    return fmt.saturate(_as_int64(a) + _as_int64(b))


def sat_sub(a: IntArray, b: IntArray, fmt: QFormat) -> np.ndarray:
    """Saturating subtraction at the width of ``fmt``."""
    return fmt.saturate(_as_int64(a) - _as_int64(b))


def sat_mul(a: IntArray, b: IntArray, fmt: QFormat) -> np.ndarray:
    """Saturating multiplication at the width of ``fmt``."""
    return fmt.saturate(_as_int64(a) * _as_int64(b))


def arith_shift_right(value: IntArray, bits: int) -> np.ndarray:
    """Arithmetic (sign-extending, floor) right shift by ``bits``.

    This is the paper's scaling stage: dividing the attention logits by
    ``sqrt(d_k) = 8`` becomes ``>> 3`` (Fig. 6).
    """
    if bits < 0:
        raise FixedPointError("shift amount must be non-negative")
    return _as_int64(value) >> bits


def rounding_shift_right(value: IntArray, bits: int) -> np.ndarray:
    """Right shift with round-to-nearest (adds half an LSB before shifting).

    Used by requantization stages where plain truncation would introduce a
    systematic negative bias.
    """
    if bits < 0:
        raise FixedPointError("shift amount must be non-negative")
    if bits == 0:
        return _as_int64(value)
    arr = _as_int64(value)
    return (arr + (1 << (bits - 1))) >> bits


def shift_left(value: IntArray, bits: int) -> np.ndarray:
    """Left shift (no saturation; widen before calling if needed)."""
    if bits < 0:
        raise FixedPointError("shift amount must be non-negative")
    return _as_int64(value) << bits


def shift_add_multiply(
    value: IntArray, terms: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Multiply by a constant expressed as a sum of signed shifted copies.

    ``terms`` is a sequence of ``(sign, shift)`` pairs; the result is
    ``sum(sign * (value >> shift))`` evaluated with arithmetic shifts.  This
    is exactly the structure of the multiplier-free constant multipliers in
    the EXP/LN units (e.g. ``x * log2(e) ~= x + (x >> 1) - (x >> 4)``).

    Args:
        value: Integer codes to scale.
        terms: ``(sign, shift)`` pairs; sign must be +1 or -1, shift >= 0.
    """
    arr = _as_int64(value)
    if not terms:
        raise FixedPointError("shift_add_multiply needs at least one term")
    result = np.zeros_like(arr)
    for sign, shift in terms:
        if sign not in (1, -1):
            raise FixedPointError(f"term sign must be +1/-1, got {sign}")
        if shift < 0:
            raise FixedPointError("term shift must be non-negative")
        result = result + sign * (arr >> shift)
    return result


def shift_add_constant(terms: Sequence[tuple[int, int]]) -> float:
    """Real value of the constant realized by :func:`shift_add_multiply`."""
    return float(sum(sign * 2.0 ** -shift for sign, shift in terms))


#: x * log2(e): 1 + 1/2 - 1/16 = 1.4375 (log2(e) = 1.442695...).
LOG2E_TERMS: tuple[tuple[int, int], ...] = ((1, 0), (1, 1), (-1, 4))

#: x * ln(2): 1/2 + 1/8 + 1/16 = 0.6875 (ln 2 = 0.693147...).
LN2_TERMS: tuple[tuple[int, int], ...] = ((1, 1), (1, 3), (1, 4))


def leading_one_position(value: IntArray) -> np.ndarray:
    """Index of the most significant set bit of each positive value.

    Equivalent to ``floor(log2(value))``; the LN unit's leading-one
    detector.  Raises for non-positive inputs, which the hardware never
    produces (the softmax sum is always >= 1 in its Q-format).

    Implemented as a binary-search priority encoder on the integer codes
    (the same adder/shifter structure the RTL would synthesize), so the
    result is exact for every representable width — a float ``log2``
    would round wrongly for codes at and above ``2**53``.
    """
    arr = _as_int64(value)
    if np.any(arr <= 0):
        raise FixedPointError("leading_one_position requires positive inputs")
    pos = np.zeros_like(arr)
    rem = arr.copy()
    for step in (32, 16, 8, 4, 2, 1):
        high = rem >= (np.int64(1) << step)
        pos = np.where(high, pos + step, pos)
        rem = np.where(high, rem >> step, rem)
    return pos


def clz_width(value: IntArray, width: int) -> np.ndarray:
    """Count of leading zeros within a ``width``-bit word."""
    pos = leading_one_position(value)
    if np.any(pos >= width):
        raise FixedPointError("value does not fit in the stated width")
    return (width - 1) - pos
