"""Multiplier-free exponential unit (Wang et al., APCCAS 2018).

The softmax module never evaluates ``exp`` directly.  Following the paper's
reference [13], the unit computes ``exp(x)`` for ``x <= 0`` (inputs are
always shifted by the running maximum, Eq. 5) as::

    exp(x) = 2**(x * log2(e))          # base conversion
           = 2**I * 2**F               # split integer / fraction, F in [0,1)
    2**F  ~= 1 + F                     # piecewise-linear, no multiplier

The ``x * log2(e)`` product is realized with the shift-add constant
``1 + 1/2 - 1/16 = 1.4375`` and ``2**I`` is a plain arithmetic shift, so the
whole unit consists of adders and shifters only.  The worst-case relative
error of ``2**F ~= 1 + F`` is ``~6.1%`` (at F ~= 0.53), which Section V-A
shows costs essentially no BLEU.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import FixedPointError
from .ops import LOG2E_TERMS, shift_add_constant, shift_add_multiply
from .types import SOFTMAX_Q, QFormat


@dataclass(frozen=True)
class ExpUnit:
    """Hardware model of the piecewise-linear ``exp`` unit.

    Attributes:
        in_fmt: Fixed-point format of the (non-positive) input codes.
        out_frac_bits: Fractional bits of the output codes; outputs lie in
            ``(0, 1]`` so one integer bit suffices.
        fault_hook: Optional fault-injection hook applied to the output
            codes before saturation (``repro.reliability`` installs bit
            upsets here); ``None`` models a healthy unit.
    """

    in_fmt: QFormat = SOFTMAX_Q
    out_frac_bits: int = 15
    fault_hook: Optional[Callable[[np.ndarray], np.ndarray]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def out_fmt(self) -> QFormat:
        """Output format: Q2.out_frac_bits (values in (0, 1])."""
        return QFormat(int_bits=2, frac_bits=self.out_frac_bits)

    def ports(self) -> dict[str, QFormat]:
        """Q-formats of the unit's ports (statcheck QFMT graph hook)."""
        return {"in": self.in_fmt, "out": self.out_fmt}

    @property
    def log2e_constant(self) -> float:
        """The shift-add approximation of log2(e) actually implemented."""
        return shift_add_constant(LOG2E_TERMS)

    def __call__(self, codes: np.ndarray) -> np.ndarray:
        """Evaluate ``exp`` on input codes; returns output-format codes.

        Args:
            codes: Integer codes in ``in_fmt``; every value must be <= 0
                (the max-subtraction stage guarantees this in hardware).

        Returns:
            Integer codes in :attr:`out_fmt` approximating
            ``exp(in_fmt.dequantize(codes))``.
        """
        arr = np.asarray(codes, dtype=np.int64)
        if np.any(arr > 0):
            raise FixedPointError(
                "ExpUnit input must be non-positive (x - x_max)"
            )
        frac_bits = self.in_fmt.frac_bits
        # u = x * log2(e), still with `frac_bits` fractional bits.
        u = shift_add_multiply(arr, LOG2E_TERMS)
        # Split u = I + F with F in [0, 1): floor division / modulo on the
        # raw codes (arithmetic shift performs the floor on negatives).
        int_part = u >> frac_bits                     # I (<= 0)
        frac_codes = u & ((1 << frac_bits) - 1)       # F codes, in [0, 1)
        # 2**F ~= 1 + F, rescaled to the output fractional width.
        one = 1 << self.out_frac_bits
        if self.out_frac_bits >= frac_bits:
            mantissa = one + (frac_codes << (self.out_frac_bits - frac_bits))
        else:
            mantissa = one + (frac_codes >> (frac_bits - self.out_frac_bits))
        # 2**I is a right shift (I <= 0).  Shifts beyond the word width
        # flush to zero exactly like the hardware barrel shifter.
        shift = np.minimum(-int_part, 63).astype(np.int64)
        result = mantissa >> shift
        if self.fault_hook is not None:
            result = np.asarray(self.fault_hook(result), dtype=np.int64)
        return self.out_fmt.saturate(result)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Convenience: real-valued in, real-valued out.

        Quantizes ``x`` into :attr:`in_fmt`, runs the unit, and dequantizes.
        """
        x = np.asarray(x, dtype=np.float64)
        codes = self.in_fmt.quantize(np.minimum(x, 0.0))
        return self.out_fmt.dequantize(self(codes))

    def max_relative_error(self, samples: int = 4096, lo: float = -6.0) -> float:
        """Measured worst-case relative error over ``[lo, 0]``.

        Below roughly ``-ln(2**out_frac_bits)`` the exact value falls under
        one output LSB and the unit flushes to zero (as the hardware barrel
        shifter does), so relative error is only meaningful above that.
        """
        xs = np.linspace(lo, 0.0, samples)
        approx = self.evaluate(xs)
        exact = np.exp(xs)
        return float(np.max(np.abs(approx - exact) / exact))
