"""Multiplier-free natural-logarithm unit (Wang et al., APCCAS 2018).

The log-sum-exp softmax (Eq. 5) needs ``ln(sum_j exp(x_j - x_max))`` once
per row.  The LN unit computes it with a leading-one detector and shift-add
constant multiplication::

    v         = m * 2**k,  m in [1, 2)     # k from the leading-one detector
    log2(v)  ~= k + (m - 1)                # log2(1+f) ~= f, no multiplier
    ln(v)     = log2(v) * ln(2)            # shift-add: 1/2 + 1/8 + 1/16

Worst-case absolute error of ``log2(1+f) ~= f`` is ``~0.086`` bits, i.e.
``~0.06`` nats, on top of the ``0.8%`` error of the 0.6875 ln(2) constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FixedPointError
from .ops import (
    LN2_TERMS,
    leading_one_position,
    shift_add_constant,
    shift_add_multiply,
)
from .types import QFormat


@dataclass(frozen=True)
class LnUnit:
    """Hardware model of the leading-one-detector ``ln`` unit.

    Attributes:
        in_fmt: Format of the positive input codes (the softmax row sum).
        out_fmt: Format of the output codes (signed; ln can be negative
            when the input is < 1).
    """

    in_fmt: QFormat = QFormat(int_bits=10, frac_bits=15)
    out_fmt: QFormat = QFormat(int_bits=6, frac_bits=10)

    @property
    def ln2_constant(self) -> float:
        """The shift-add approximation of ln(2) actually implemented."""
        return shift_add_constant(LN2_TERMS)

    def ports(self) -> dict[str, QFormat]:
        """Q-formats of the unit's ports (statcheck QFMT graph hook)."""
        return {"in": self.in_fmt, "out": self.out_fmt}

    def __call__(self, codes: np.ndarray) -> np.ndarray:
        """Evaluate ``ln`` on positive input codes.

        Args:
            codes: Integer codes in ``in_fmt``; must be strictly positive
                (a softmax row sum always contains at least ``exp(0) = 1``).

        Returns:
            Integer codes in :attr:`out_fmt` approximating
            ``ln(in_fmt.dequantize(codes))``.
        """
        arr = np.asarray(codes, dtype=np.int64)
        if np.any(arr <= 0):
            raise FixedPointError("LnUnit input must be strictly positive")
        k = leading_one_position(arr)                 # MSB position of code
        # Mantissa fraction f = v / 2**k - 1, expressed with out frac bits.
        out_frac = self.out_fmt.frac_bits
        # f_codes = (arr - 2**k) scaled by 2**(out_frac - k).
        residual = arr - (np.int64(1) << k)
        shift = k - out_frac
        f_codes = np.where(
            shift >= 0,
            residual >> np.maximum(shift, 0),
            residual << np.maximum(-shift, 0),
        )
        # log2(v) ~= (k - in_frac_bits) + f, as out-format codes.
        log2_codes = ((k - self.in_fmt.frac_bits) << out_frac) + f_codes
        ln_codes = shift_add_multiply(log2_codes, LN2_TERMS)
        return self.out_fmt.saturate(ln_codes)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Convenience: real-valued in, real-valued out."""
        x = np.asarray(x, dtype=np.float64)
        if np.any(x <= 0):
            raise FixedPointError("LnUnit input must be strictly positive")
        codes = self.in_fmt.quantize(x)
        codes = np.maximum(codes, 1)  # quantization may floor tiny x to 0
        return self.out_fmt.dequantize(self(codes))

    def max_absolute_error(self, samples: int = 4096) -> float:
        """Measured worst-case absolute error over a representative range."""
        xs = np.linspace(self.in_fmt.scale * 4, self.in_fmt.max_value, samples)
        approx = self.evaluate(xs)
        exact = np.log(xs)
        return float(np.max(np.abs(approx - exact)))
