"""Fixed-point number formats.

The accelerator's datapath is integer/fixed-point throughout: INT8 weights
and activations, wider accumulators, and a handful of internal Q-formats in
the softmax and LayerNorm modules.  :class:`QFormat` describes a two's
complement fixed-point format ``Q(int_bits, frac_bits)`` and converts between
real values and their integer codes with explicit rounding and saturation —
the same behaviour the RTL would exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import FixedPointError

ArrayLike = Union[float, int, np.ndarray]


@dataclass(frozen=True)
class QFormat:
    """A signed two's complement fixed-point format.

    A ``QFormat(i, f)`` value has ``i`` integer bits (including sign) and
    ``f`` fractional bits, for a total word width of ``i + f`` bits.  Codes
    are stored as numpy int64 and represent ``code * 2**-f``.

    Attributes:
        int_bits: Integer bits including the sign bit (>= 1).
        frac_bits: Fractional bits (>= 0).
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 1:
            raise FixedPointError("int_bits must include a sign bit (>= 1)")
        if self.frac_bits < 0:
            raise FixedPointError("frac_bits must be non-negative")
        if self.total_bits > 62:
            raise FixedPointError("formats wider than 62 bits are unsupported")

    @property
    def total_bits(self) -> int:
        """Word width in bits."""
        return self.int_bits + self.frac_bits

    @property
    def scale(self) -> float:
        """Real value of one LSB (``2**-frac_bits``)."""
        return float(2.0 ** -self.frac_bits)

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_code(self) -> int:
        """Smallest (most negative) representable integer code."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_code * self.scale

    def quantize(self, value: ArrayLike) -> np.ndarray:
        """Convert real values to integer codes (round-to-nearest, saturate).

        Ties round away from zero, matching the behaviour of a hardware
        round-half-up stage on the magnitude.
        """
        arr = np.asarray(value, dtype=np.float64)
        codes = np.where(
            arr >= 0,
            np.floor(arr / self.scale + 0.5),
            np.ceil(arr / self.scale - 0.5),
        )
        codes = np.clip(codes, self.min_code, self.max_code)
        return codes.astype(np.int64)

    def dequantize(self, codes: ArrayLike) -> np.ndarray:
        """Convert integer codes back to real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def saturate(self, codes: ArrayLike) -> np.ndarray:
        """Clamp integer codes into this format's representable range."""
        arr = np.asarray(codes, dtype=np.int64)
        return np.clip(arr, self.min_code, self.max_code)

    def wraps(self, codes: ArrayLike) -> np.ndarray:
        """Two's complement wrap-around of codes into this format's range.

        Provided for modelling non-saturating hardware adders; the
        accelerator itself saturates everywhere.
        """
        arr = np.asarray(codes, dtype=np.int64)
        modulus = 1 << self.total_bits
        wrapped = np.mod(arr - self.min_code, modulus) + self.min_code
        return wrapped

    def representable(self, value: ArrayLike) -> np.ndarray:
        """Boolean mask of which real values fit without saturating."""
        arr = np.asarray(value, dtype=np.float64)
        return (arr <= self.max_value) & (arr >= self.min_value)

    def __str__(self) -> str:
        return f"Q{self.int_bits}.{self.frac_bits}"


#: INT8 storage format for weights and activations (pure integer grid).
INT8 = QFormat(int_bits=8, frac_bits=0)

#: 32-bit accumulator format used inside the systolic-array PEs.
ACC32 = QFormat(int_bits=32, frac_bits=0)

#: Internal format of the softmax module datapath (Q6.10): enough integer
#: range for shifted logits after the >>3 scaling, 10 fractional bits for
#: the piecewise-linear EXP/LN approximations.
SOFTMAX_Q = QFormat(int_bits=6, frac_bits=10)

#: Internal format of the LayerNorm statistics datapath (Q12.12).
LAYERNORM_Q = QFormat(int_bits=12, frac_bits=12)
