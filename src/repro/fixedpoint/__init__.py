"""Fixed-point arithmetic substrate for the accelerator datapath models.

Public API:

* :class:`QFormat` and the stock formats (:data:`INT8`, :data:`ACC32`,
  :data:`SOFTMAX_Q`, :data:`LAYERNORM_Q`).
* Saturating/shift primitives in :mod:`repro.fixedpoint.ops`.
* The multiplier-free :class:`ExpUnit` / :class:`LnUnit` (softmax module)
  and the :class:`InverseSqrtLUT` (LayerNorm module).
"""

from .exp_unit import ExpUnit
from .isqrt import InverseSqrtLUT
from .layernorm_datapath import FixedPointLayerNorm
from .ln_unit import LnUnit
from .ops import (
    LN2_TERMS,
    LOG2E_TERMS,
    arith_shift_right,
    clz_width,
    leading_one_position,
    rounding_shift_right,
    sat_add,
    sat_mul,
    sat_sub,
    shift_add_constant,
    shift_add_multiply,
    shift_left,
)
from .types import ACC32, INT8, LAYERNORM_Q, SOFTMAX_Q, QFormat

__all__ = [
    "ACC32",
    "ExpUnit",
    "FixedPointLayerNorm",
    "INT8",
    "InverseSqrtLUT",
    "LAYERNORM_Q",
    "LN2_TERMS",
    "LOG2E_TERMS",
    "LnUnit",
    "QFormat",
    "SOFTMAX_Q",
    "arith_shift_right",
    "clz_width",
    "leading_one_position",
    "rounding_shift_right",
    "sat_add",
    "sat_mul",
    "sat_sub",
    "shift_add_constant",
    "shift_add_multiply",
    "shift_left",
]
