"""Cluster metrics: per-tenant SLO attainment, per-pool accounting.

Registry-backed like :mod:`repro.serving.metrics`: the raw run is
recorded into ``repro_cluster_*`` instruments
(:func:`repro.telemetry.instrument.record_cluster` — the single place
the cluster schema is defined) and the summaries are derived back out,
so the numbers the report prints are exactly the series a Prometheus /
JSON / Chrome-trace export carries.

The headline number is **SLO attainment**: the fraction of a tenant's
*offered* requests that completed within the tenant's ``slo_us``.
Dividing by offered — not completed — means shed, rejected, expired and
late requests all count against the SLO, so the router cannot game the
metric by refusing work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..telemetry.instrument import record_cluster
from ..telemetry.registry import MetricsRegistry

#: Request outcomes a tenant's offered traffic resolves into.
OUTCOMES = ("completed", "shed", "rejected", "expired")


@dataclass(frozen=True)
class TenantSummary:
    """One tenant's outcome of a cluster run.

    Attributes:
        offered: Requests the tenant's workload generated.
        completed / shed / rejected / expired: Outcome counts (shed =
            refused by the SLO router's admission, rejected = pool
            queue full, expired = queue timeout).
        slo_attained: Completed requests that met the tenant's SLO.
        slo_attainment: ``slo_attained / offered`` (0 when nothing was
            offered).
        latency_p50_us / latency_p99_us / latency_mean_us: Latency of
            completed requests (all 0.0 when none completed — explicit
            empty-safe zeros, never NaN).
    """

    offered: int
    completed: int
    shed: int
    rejected: int
    expired: int
    slo_attained: int
    slo_attainment: float
    latency_p50_us: float
    latency_p99_us: float
    latency_mean_us: float


@dataclass(frozen=True)
class PoolSummary:
    """One pool's share of a cluster run.

    Attributes:
        routed: Requests the router sent to this pool.
        completed: Requests the pool completed.
        num_batches / mean_batch_size / occupancy: Batch accounting
            (occupancy = valid tokens / (batches x SA rows)).
        final_devices / peak_devices: Replica count at the end of the
            run and its maximum (autoscaling footprint).
        scale_ups / scale_downs: Autoscaler actions on this pool.
        busy_fraction: Busy device-time over *provisioned* device-time
            (each device counted from activation to retirement).
        weight_cache_hit_rate: ResBlock weight-cache hit rate (0 for
            pools without a memory system, including GPU pools).
        max_queue_depth: Peak admission-queue depth.
    """

    routed: int
    completed: int
    num_batches: int
    mean_batch_size: float
    occupancy: float
    final_devices: int
    peak_devices: int
    scale_ups: int
    scale_downs: int
    busy_fraction: float
    weight_cache_hit_rate: float
    max_queue_depth: int


@dataclass(frozen=True)
class ClusterMetrics:
    """Summary of one simulated cluster run.

    Attributes:
        offered / completed / shed / rejected / expired: Cluster-wide
            request counts (sums over tenants).
        slo_attained: Requests that completed within their tenant SLO.
        slo_attainment: ``slo_attained / offered`` — the headline.
        throughput_rps: Completed requests per second of makespan.
        makespan_us: First arrival to last completion.
        latency_p50_us / latency_p99_us / latency_mean_us: Latency over
            all completed requests (all 0.0 when none completed).
        router_policy: The policy the run used.
        autoscale_ups / autoscale_downs: Total autoscaler actions.
        tenants: Per-tenant :class:`TenantSummary`, insertion-ordered.
        pools: Per-pool :class:`PoolSummary`, insertion-ordered.
    """

    offered: int
    completed: int
    shed: int
    rejected: int
    expired: int
    slo_attained: int
    slo_attainment: float
    throughput_rps: float
    makespan_us: float
    latency_p50_us: float
    latency_p99_us: float
    latency_mean_us: float
    router_policy: str
    autoscale_ups: int
    autoscale_downs: int
    tenants: dict[str, TenantSummary] = field(default_factory=dict)
    pools: dict[str, PoolSummary] = field(default_factory=dict)

    def as_rows(self) -> list[list[str]]:
        """Two-column rows for :func:`repro.analysis.render_table`."""
        rows = [
            ["router policy", self.router_policy],
            ["offered", str(self.offered)],
            ["completed", str(self.completed)],
            ["shed (router)", str(self.shed)],
            ["rejected (full)", str(self.rejected)],
            ["expired (timeout)", str(self.expired)],
            ["SLO attainment", f"{self.slo_attainment:.1%}"],
            ["p50 latency",
             f"{self.latency_p50_us:.1f} us" if self.completed else "n/a"],
            ["p99 latency",
             f"{self.latency_p99_us:.1f} us" if self.completed else "n/a"],
            ["throughput", f"{self.throughput_rps:.1f} req/s"],
            ["makespan", f"{self.makespan_us / 1e3:.1f} ms"],
            ["scale-ups / downs",
             f"{self.autoscale_ups} / {self.autoscale_downs}"],
        ]
        for name, tenant in self.tenants.items():
            rows.append([
                f"tenant {name}",
                f"{tenant.slo_attainment:.1%} SLO, "
                f"{tenant.completed}/{tenant.offered} completed",
            ])
        for name, pool in self.pools.items():
            rows.append([
                f"pool {name}",
                f"{pool.completed} done, {pool.final_devices} dev "
                f"(peak {pool.peak_devices}), "
                f"busy {pool.busy_fraction:.0%}",
            ])
        return rows


def _percentile(ordered: list[float], pct: float) -> float:
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _latency_stats(latencies: list[float]) -> tuple[float, float, float]:
    """Empty-safe (p50, p99, mean): all 0.0 when nothing completed.

    Zero — not NaN — so windowed summaries for a tenant that admitted
    no requests survive ``json.dump(..., allow_nan=False)`` and
    comparisons in downstream gates.
    """
    if not latencies:
        return 0.0, 0.0, 0.0
    ordered = sorted(latencies)
    return (
        _percentile(ordered, 50),
        _percentile(ordered, 99),
        sum(ordered) / len(ordered),
    )


def compute_cluster_metrics(
    *,
    policy: str,
    tenant_offered: dict[str, int],
    tenant_outcomes: dict[str, dict[str, int]],
    tenant_slo_attained: dict[str, int],
    tenant_latencies_us: dict[str, list[float]],
    routing_decisions: dict[str, int],
    shed: int,
    autoscale_actions: list[tuple[float, str, str, str]],
    pool_completed: dict[str, int],
    pool_batches: dict[str, list[tuple[int, int]]],
    pool_cache: dict[str, tuple[int, int]],
    pool_depth_samples: dict[str, list[tuple[float, int]]],
    pool_device_samples: dict[str, list[tuple[float, int]]],
    pool_busy_fraction: dict[str, float],
    pool_final_devices: dict[str, int],
    seq_len: int,
    makespan_us: float,
    registry: Optional[MetricsRegistry] = None,
) -> ClusterMetrics:
    """Fold raw cluster records into a :class:`ClusterMetrics`.

    ``pool_batches`` maps pool -> ``(num_requests, total_tokens)`` per
    dispatched batch; ``pool_cache`` maps pool -> ``(hits, misses)``.
    Everything is recorded into ``registry`` (a private one when the
    caller passes none) through the schema in
    :func:`repro.telemetry.instrument.record_cluster`, then summarized.
    """
    registry = MetricsRegistry() if registry is None else registry
    record_cluster(
        registry,
        policy=policy,
        tenant_offered=tenant_offered,
        tenant_outcomes=tenant_outcomes,
        tenant_slo_attained=tenant_slo_attained,
        tenant_latencies_us=tenant_latencies_us,
        routing_decisions=routing_decisions,
        shed=shed,
        autoscale_actions=autoscale_actions,
        pool_batches={
            name: (
                len(batches),
                sum(r for r, _ in batches),
                sum(t for _, t in batches),
            )
            for name, batches in pool_batches.items()
        },
        pool_cache=pool_cache,
        pool_depth_samples=pool_depth_samples,
        pool_device_samples=pool_device_samples,
    )

    tenants: dict[str, TenantSummary] = {}
    for name, offered in tenant_offered.items():
        outcomes = tenant_outcomes[name]
        attained = tenant_slo_attained[name]
        p50, p99, mean = _latency_stats(tenant_latencies_us[name])
        tenants[name] = TenantSummary(
            offered=offered,
            completed=outcomes.get("completed", 0),
            shed=outcomes.get("shed", 0),
            rejected=outcomes.get("rejected", 0),
            expired=outcomes.get("expired", 0),
            slo_attained=attained,
            slo_attainment=attained / offered if offered else 0.0,
            latency_p50_us=p50,
            latency_p99_us=p99,
            latency_mean_us=mean,
        )
        registry.gauge(
            "repro_cluster_slo_attainment",
            "SLO-attained fraction of offered requests",
        ).set(tenants[name].slo_attainment, tenant=name)

    ups = {name: 0 for name in routing_decisions}
    downs = {name: 0 for name in routing_decisions}
    for _, pool_name, direction, _ in autoscale_actions:
        if direction == "up":
            ups[pool_name] += 1
        else:
            downs[pool_name] += 1

    pools: dict[str, PoolSummary] = {}
    for name, routed in routing_decisions.items():
        batches = pool_batches[name]
        num_batches = len(batches)
        total_requests = sum(r for r, _ in batches)
        total_tokens = sum(t for _, t in batches)
        hits, misses = pool_cache[name]
        device_counts = [d for _, d in pool_device_samples[name]]
        pools[name] = PoolSummary(
            routed=routed,
            completed=pool_completed[name],
            num_batches=num_batches,
            mean_batch_size=(
                total_requests / num_batches if num_batches else 0.0
            ),
            occupancy=(
                total_tokens / (num_batches * seq_len)
                if num_batches else 0.0
            ),
            final_devices=pool_final_devices[name],
            peak_devices=max(device_counts, default=0),
            scale_ups=ups[name],
            scale_downs=downs[name],
            busy_fraction=pool_busy_fraction[name],
            weight_cache_hit_rate=(
                hits / (hits + misses) if (hits + misses) else 0.0
            ),
            max_queue_depth=max(
                (d for _, d in pool_depth_samples[name]), default=0
            ),
        )
        registry.gauge(
            "repro_cluster_pool_busy_fraction",
            "Busy device-time over provisioned device-time",
        ).set(pools[name].busy_fraction, pool=name)

    offered = sum(tenant_offered.values())
    completed = sum(t.completed for t in tenants.values())
    attained = sum(t.slo_attained for t in tenants.values())
    all_latencies = [
        lat for lats in tenant_latencies_us.values() for lat in lats
    ]
    p50, p99, mean = _latency_stats(all_latencies)
    seconds = makespan_us / 1e6
    metrics = ClusterMetrics(
        offered=offered,
        completed=completed,
        shed=shed,
        rejected=sum(t.rejected for t in tenants.values()),
        expired=sum(t.expired for t in tenants.values()),
        slo_attained=attained,
        slo_attainment=attained / offered if offered else 0.0,
        throughput_rps=completed / seconds if seconds > 0 else 0.0,
        makespan_us=makespan_us,
        latency_p50_us=p50,
        latency_p99_us=p99,
        latency_mean_us=mean,
        router_policy=policy,
        autoscale_ups=sum(ups.values()),
        autoscale_downs=sum(downs.values()),
        tenants=tenants,
        pools=pools,
    )
    registry.gauge(
        "repro_cluster_slo_attainment",
        "SLO-attained fraction of offered requests",
    ).set(metrics.slo_attainment)
    registry.gauge(
        "repro_cluster_throughput_rps",
        "Completed requests per second of makespan",
    ).set(metrics.throughput_rps)
    registry.gauge(
        "repro_cluster_makespan_us", "Run makespan (us)",
    ).set(makespan_us)
    return metrics
