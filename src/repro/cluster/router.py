"""Cluster front door: pool selection and SLO-aware admission.

Four policies, in increasing awareness of the fleet's state:

* ``"round_robin"`` — rotate over alive pools, blind to load and
  heterogeneity (the baseline the A6 bench measures against);
* ``"least_queue"`` — fewest queued requests per active device, a
  load-only heuristic;
* ``"ewma"`` — lowest exponentially weighted moving average of
  completed-request latency; the EWMA is seeded from each pool's
  uncontended run time, so heterogeneity is visible before the first
  completion and slow pools only win while fast ones are backed up;
* ``"slo"`` — deadline-aware: route to the pool with the earliest
  predicted completion among those predicted to make the request's
  deadline, and *shed* requests that no pool can serve in time — but
  only when the requester's tenant is at or above its weighted fair
  share of recently admitted work.  Shedding a doomed request early is
  what protects the SLO of everyone behind it; the fairness guard
  stops a bursty tenant from riding that mechanism to starve others.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..config import ClusterConfig
from ..errors import ServingError
from .pools import PoolRuntime
from .workload import ClusterRequest


class Router:
    """Stateful pool selector for one cluster run."""

    def __init__(self, cluster: ClusterConfig, pools: list[PoolRuntime]):
        self.policy = cluster.router_policy
        self.pools = pools
        self._rr_next = 0
        self._fairness_window_us = cluster.fairness_window_us
        self._weights = {t.name: t.weight for t in cluster.tenants}
        self._total_weight = sum(self._weights.values())
        # Sliding window of (admit_time, tenant) used by the fairness
        # guard; per-tenant counts are kept incrementally.
        self._admitted: deque[tuple[float, str]] = deque()
        self._admitted_by_tenant = dict.fromkeys(self._weights, 0)
        self.shed = 0
        self.decisions: dict[str, int] = {p.name: 0 for p in pools}

    def _alive(self) -> list[PoolRuntime]:
        return [p for p in self.pools if p.workers.pool_alive]

    def _evict_window(self, now_us: float) -> None:
        horizon = now_us - self._fairness_window_us
        while self._admitted and self._admitted[0][0] < horizon:
            _, tenant = self._admitted.popleft()
            self._admitted_by_tenant[tenant] -= 1

    def _over_fair_share(self, tenant: str, now_us: float) -> bool:
        """Whether ``tenant`` holds at least its weighted share of the window."""
        self._evict_window(now_us)
        total = len(self._admitted)
        if total == 0:
            return False
        share = self._weights[tenant] / self._total_weight
        return self._admitted_by_tenant[tenant] >= share * total

    def route(
        self, request: ClusterRequest, now_us: float
    ) -> Optional[PoolRuntime]:
        """Pick the pool for ``request`` (``None`` = shed at the door).

        Only the ``"slo"`` policy ever sheds; the others always return
        a pool and let its admission queue do the bounding.
        """
        alive = self._alive()
        if not alive:
            raise ServingError("every pool in the cluster has failed")
        if self.policy == "round_robin":
            choice = alive[self._rr_next % len(alive)]
            self._rr_next += 1
        elif self.policy == "least_queue":
            choice = min(
                alive, key=lambda p: (p.depth_per_device(), p.name)
            )
        elif self.policy == "ewma":
            choice = min(alive, key=lambda p: (p.ewma_us, p.name))
        else:  # "slo"
            choice = self._route_slo(request, now_us, alive)
            if choice is None:
                self.shed += 1
                return None
        self.decisions[choice.name] += 1
        self._admitted.append((now_us, request.tenant))
        self._admitted_by_tenant[request.tenant] += 1
        return choice

    def _route_slo(
        self,
        request: ClusterRequest,
        now_us: float,
        alive: list[PoolRuntime],
    ) -> Optional[PoolRuntime]:
        predicted = [(p.predicted_completion_us(now_us), p.name, p)
                     for p in alive]
        feasible = [
            entry for entry in predicted if entry[0] <= request.deadline_us
        ]
        if feasible:
            return min(feasible)[2]
        # No pool is predicted to make the deadline.  Shed only tenants
        # at/above fair share; an under-share tenant still gets the
        # least-bad pool — its deadline may be missed, but its capacity
        # share is honored.
        if self._over_fair_share(request.tenant, now_us):
            return None
        return min(predicted)[2]
