"""Per-pool runtime state: queue + batcher + workers + cost model.

Each :class:`~repro.config.PoolConfig` becomes one :class:`PoolRuntime`
wrapping the existing serving primitives — an
:class:`~repro.serving.admission.AdmissionQueue`, a
:class:`~repro.serving.batching.DynamicBatcher` and a
:class:`~repro.serving.devices.WorkerPool` whose trace tracks are
prefixed with the pool name, so one Chrome trace renders every pool's
devices side by side.

Heterogeneity enters through the cost model:

* ``"fpga"`` pools price batches with the cycle-accurate
  :class:`~repro.serving.batching.BatchCostModel` (schedules + optional
  miss-driven weight traffic through a
  :class:`~repro.config.MemoryConfig`);
* ``"gpu"`` pools price batches with :class:`GpuBatchCostModel`, which
  duck-types the same interface on top of the ``repro.gpu_model``
  roofline kernels (V100 by default).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from ..config import AcceleratorConfig, ClusterConfig, ModelConfig, PoolConfig
from ..gpu_model.kernels import ffn_resblock_kernels, mha_resblock_kernels
from ..gpu_model.v100 import GpuSpec, v100_batched
from ..serving.admission import AdmissionQueue
from ..serving.batching import BatchCostModel, DynamicBatcher
from ..serving.devices import WorkerPool

#: Time base of GPU-pool "cycles": 1000 MHz -> one cycle is one
#: nanosecond, so roofline microsecond latencies convert losslessly.
GPU_TIME_BASE_MHZ = 1000.0


class GpuBatchCostModel:
    """Roofline batch cost in :class:`BatchCostModel`'s interface.

    The GPU runs the same packed ``s``-row batch the FPGA pools do (the
    batcher's geometry is the unit of work cluster-wide), priced as the
    serial kernel sequence of the full model: every encoder layer is
    one MHA + one FFN ResBlock, every decoder layer two MHA (self +
    cross) + one FFN.  Latencies come from
    :meth:`~repro.gpu_model.v100.GpuSpec.sequence_latency_us` and are
    expressed as nanosecond "cycles" (``acc.clock_mhz`` = 1000) so the
    :class:`~repro.serving.devices.WorkerPool` machinery needs no
    special-casing.  GPUs keep weights in HBM — the roofline already
    prices that traffic — so ``reload_cycles`` is zero.
    """

    def __init__(self, model: ModelConfig, spec: GpuSpec, seq_len: int) -> None:
        self.model = model
        self.spec = spec
        self.acc = AcceleratorConfig(
            seq_len=seq_len, clock_mhz=GPU_TIME_BASE_MHZ
        )
        mha_us = spec.sequence_latency_us(mha_resblock_kernels(model, seq_len))
        ffn_us = spec.sequence_latency_us(ffn_resblock_kernels(model, seq_len))
        self.mha_cycles = round(mha_us * GPU_TIME_BASE_MHZ)
        self.ffn_cycles = round(ffn_us * GPU_TIME_BASE_MHZ)
        self.reload_cycles = 0

    @property
    def layer_units(self) -> list[tuple[str, int, int]]:
        """Per-layer ``(name, compute_cycles, ideal_cycles)`` entries.

        The roofline has no padding waste of its own, so the "ideal"
        cycles equal the compute cycles — GPU pools report utilization
        1.0 and the cluster's utilization stories stay FPGA-side.
        """
        enc = ("enc", self.mha_cycles + self.ffn_cycles,
               self.mha_cycles + self.ffn_cycles)
        dec = ("dec", 2 * self.mha_cycles + self.ffn_cycles,
               2 * self.mha_cycles + self.ffn_cycles)
        return ([enc] * self.model.num_encoder_layers
                + [dec] * self.model.num_decoder_layers)

    @property
    def compute_cycles(self) -> int:
        return sum(cycles for _, cycles, _ in self.layer_units)

    @property
    def ideal_cycles(self) -> int:
        return self.compute_cycles

    @property
    def run_cycles(self) -> int:
        return self.compute_cycles

    def run_us(self, include_reload: bool = True) -> float:
        return self.acc.cycles_to_us(self.run_cycles)


def build_cost_model(
    pool: PoolConfig, model: ModelConfig, seq_len: int
) -> Union[BatchCostModel, GpuBatchCostModel]:
    """Instantiate the pool's cost model from its config."""
    if pool.kind == "gpu":
        base = v100_batched()
        spec = GpuSpec(
            name=base.name,
            peak_flops=base.peak_flops,
            memory_bandwidth=base.memory_bandwidth,
            kernel_overhead_s=pool.gpu_kernel_overhead_us * 1e-6,
            gemm_efficiency=base.gemm_efficiency,
        )
        return GpuBatchCostModel(model, spec, seq_len)
    acc = AcceleratorConfig(
        seq_len=seq_len,
        clock_mhz=pool.clock_mhz,
        abft_protected=pool.abft_protected,
    )
    return BatchCostModel(
        model, acc,
        double_buffered_weights=(
            pool.memory.double_buffered_prefetch
            if pool.memory is not None else False
        ),
        compression=pool.compression,
    )


class PoolRuntime:
    """One pool's live state inside the cluster event loop.

    Bundles the admission queue, the dynamic batcher, the worker pool
    and the router/autoscaler bookkeeping (latency EWMA, completed-
    latency window, busy-time snapshots, cooldown stamps) that the
    cluster-level policies read.
    """

    def __init__(
        self, config: PoolConfig, cluster: ClusterConfig, model: ModelConfig,
        seq_len: int,
    ) -> None:
        self.config = config
        self.name = config.name
        self.cost = build_cost_model(config, model, seq_len)
        self.workers = WorkerPool(
            config.num_devices, config.placement, self.cost, self.cost.acc,
            mem=config.memory if config.kind == "fpga" else None,
            track_prefix=f"{config.name}.",
        )
        self.queue = AdmissionQueue(
            cluster.queue_capacity, cluster.queue_timeout_us
        )
        self.batcher = DynamicBatcher(
            seq_len, cluster.max_batch_requests, cluster.max_wait_us
        )
        self.run_us = self.cost.run_us()
        # Router state: latency EWMA seeded with one uncontended run so
        # the first routing decisions already see the pool's speed.
        self.ewma_us = self.run_us
        # Autoscaler state.
        self.last_scale_up_us = float("-inf")
        self.last_scale_down_us = float("-inf")
        self.busy_us_snapshot = 0.0
        self.completions: deque[tuple[float, float]] = deque()
        # Accounting.
        self.routed = 0
        self.completed = 0
        self.batches = 0
        self.batch_log: list[tuple[int, int]] = []

    @property
    def active_device_count(self) -> int:
        return len(self.workers.active_devices)

    def depth_per_device(self) -> float:
        """Queued requests per active device (the scale-up signal)."""
        return len(self.queue) / max(1, self.active_device_count)

    def predicted_completion_us(self, now_us: float) -> float:
        """Estimated completion time of a request admitted at ``now_us``.

        Device availability, plus the backlog ahead of the request in
        full batches, plus the request's own run.  Deliberately ignores
        the batcher's max-wait hold (small against ``run_us``) — a
        cheap, honest-at-dispatch estimate, not an oracle.
        """
        wait_for_device = max(0.0, self.workers.next_free_us() - now_us)
        backlog_batches = len(self.queue) / self.batcher.max_requests
        return now_us + wait_for_device + (backlog_batches + 1.0) * self.run_us

    def decode_step_us(self, context_len: int) -> Optional[float]:
        """Per-token decode latency on this pool's hardware.

        Duck-typed through the cost model: FPGA pools price the step
        via :meth:`BatchCostModel.decode_step_cycles` (the
        ``repro.decode`` schedule); GPU pools have no decode-step
        cycle model yet and return ``None`` so routers can skip them
        for latency-bound generation traffic.
        """
        step = getattr(self.cost, "decode_step_cycles", None)
        if step is None:
            return None
        return self.cost.acc.cycles_to_us(step(context_len))

    def observe_completion(
        self, completion_us: float, latency_us: float, alpha: float
    ) -> None:
        """Fold one completed request into the EWMA and the p99 window.

        ``self.completed`` is advanced by the simulator (batch-wise),
        not here, so the counter and the EWMA cannot drift apart.
        """
        self.ewma_us += alpha * (latency_us - self.ewma_us)
        self.completions.append((completion_us, latency_us))

    def windowed_p99_us(self, now_us: float, window_us: float) -> float:
        """Nearest-rank p99 of latencies completed in the last window."""
        while self.completions and self.completions[0][0] < now_us - window_us:
            self.completions.popleft()
        if not self.completions:
            return 0.0
        ordered = sorted(lat for _, lat in self.completions)
        rank = max(1, int(0.99 * len(ordered) + 0.9999999))
        return ordered[min(rank, len(ordered)) - 1]

    def interval_busy_fraction(self, interval_us: float) -> float:
        """Busy fraction since the last snapshot; advances the snapshot.

        Busy time is credited at dispatch for the whole run, so a pool
        mid-batch looks busy — which is exactly the conservatism the
        scale-down signal wants.
        """
        busy = sum(d.busy_us for d in self.workers.devices)
        delta = busy - self.busy_us_snapshot
        self.busy_us_snapshot = busy
        capacity = max(1, self.active_device_count) * interval_us
        return min(1.0, delta / capacity) if capacity > 0 else 0.0
