"""Fleet-scale serving over heterogeneous accelerator pools.

The cluster layer scales :mod:`repro.serving` from one pool to a
datacenter slice: N heterogeneous pools (paper-FPGA or roofline-GPU
devices, each with its own memory system and weight caches) behind an
SLO-aware router, a threshold autoscaler driven by live telemetry
signals, and a multi-tenant workload of diurnal / Poisson / MMPP
arrival streams.  One :class:`~repro.config.ClusterConfig` pins a run
bit-for-bit; results export through the shared telemetry registry and
Chrome-trace pathway.
"""

from .autoscaler import Autoscaler, ScaleAction
from .metrics import ClusterMetrics, PoolSummary, TenantSummary
from .pools import GpuBatchCostModel, PoolRuntime, build_cost_model
from .router import Router
from .scenario import pinned_cluster, pinned_pools, pinned_tenants
from .simulator import (
    DEFAULT_SEQ_LEN,
    ClusterRecord,
    ClusterResult,
    simulate_cluster,
)
from .workload import (
    ClusterRequest,
    cluster_workload,
    tenant_workload,
    validate_cluster_workload,
)

__all__ = [
    "DEFAULT_SEQ_LEN",
    "Autoscaler",
    "ClusterMetrics",
    "ClusterRecord",
    "ClusterRequest",
    "ClusterResult",
    "GpuBatchCostModel",
    "PoolRuntime",
    "PoolSummary",
    "Router",
    "ScaleAction",
    "TenantSummary",
    "build_cost_model",
    "cluster_workload",
    "pinned_cluster",
    "pinned_pools",
    "pinned_tenants",
    "simulate_cluster",
    "tenant_workload",
    "validate_cluster_workload",
]
