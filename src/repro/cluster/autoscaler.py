"""Threshold autoscaler over the cluster's replicate pools.

Every ``interval_us`` the scaler reads each pool's signals and moves
one replica at a time:

* **scale up** when queued requests per active device exceed
  ``scale_up_queue_depth``, or (optionally) when the windowed p99
  latency exceeds ``scale_up_p99_us``, or (optionally, with a
  :class:`~repro.obs.slo.BurnRateMonitor` attached through
  :meth:`Autoscaler.attach_burn_source`) when the worst short-window
  SLO burn rate exceeds ``scale_up_burn_rate`` — all leading
  indicators of an SLO breach;
* **scale down** when the busy fraction over the last interval fell
  below ``scale_down_busy`` *and* the queue is empty — trailing
  evidence of overprovisioning.

Per-pool, per-direction cooldowns damp flapping, and the pool's
``[min_devices, max_devices]`` bounds are never crossed.  Scale-down
drains gracefully through
:meth:`~repro.serving.devices.WorkerPool.drain_device`: the replica
finishes its in-flight batch and only then retires, so admitted work
is never dropped.  Layer-sharded pools are static (the pipeline shape
cannot change at runtime) and are skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AutoscalerConfig
from .pools import PoolRuntime


@dataclass(frozen=True)
class ScaleAction:
    """One autoscaler decision, kept for metrics and the trace.

    Attributes:
        at_us: Evaluation time the action fired.
        pool: Pool the action applied to.
        direction: ``"up"`` (device added) or ``"down"`` (drain begun).
        device_id: The added or draining device.
        reason: The signal that tripped (``"queue_depth"``, ``"p99"``,
            ``"slo_burn"`` or ``"idle"``).
    """

    at_us: float
    pool: str
    direction: str
    device_id: int
    reason: str


class Autoscaler:
    """Evaluates the threshold policy against the live pools."""

    def __init__(self, config: AutoscalerConfig, pools: list[PoolRuntime]):
        self.config = config
        self.pools = pools
        self.actions: list[ScaleAction] = []
        self._burn_source = None

    def attach_burn_source(self, source) -> None:
        """Opt into the SLO burn-rate up-signal.

        ``source(now_us)`` must return the worst current short-window
        burn rate across tenants (typically
        :meth:`repro.obs.slo.BurnRateMonitor.max_short_burn`); it fires
        the ``"slo_burn"`` scale-up reason when it exceeds
        ``config.scale_up_burn_rate``.
        """
        self._burn_source = source

    def evaluate(self, now_us: float) -> list[ScaleAction]:
        """Run one scaler tick; mutates pools, returns the actions taken."""
        if not self.config.enabled:
            return []
        fired: list[ScaleAction] = []
        for pool in self.pools:
            if pool.config.placement != "replicate":
                continue
            if not pool.workers.pool_alive:
                continue
            action = self._evaluate_pool(pool, now_us)
            if action is not None:
                fired.append(action)
        self.actions.extend(fired)
        return fired

    def _evaluate_pool(self, pool, now_us):
        cfg = self.config
        reason = self._up_reason(pool, now_us)
        if (reason is not None
                and pool.active_device_count < pool.config.max_devices
                and now_us - pool.last_scale_up_us >= cfg.cooldown_up_us):
            device = pool.workers.add_device(now_us)
            pool.last_scale_up_us = now_us
            return ScaleAction(now_us, pool.name, "up", device.device_id,
                               reason)
        busy = pool.interval_busy_fraction(cfg.interval_us)
        if (busy < cfg.scale_down_busy
                and len(pool.queue) == 0
                and pool.active_device_count > pool.config.min_devices
                and now_us - pool.last_scale_down_us >= cfg.cooldown_down_us):
            victim = self._drain_victim(pool)
            if victim is not None:
                pool.workers.drain_device(victim, now_us)
                pool.last_scale_down_us = now_us
                return ScaleAction(now_us, pool.name, "down", victim, "idle")
        return None

    def _up_reason(self, pool: PoolRuntime, now_us: float):
        cfg = self.config
        if pool.depth_per_device() > cfg.scale_up_queue_depth:
            return "queue_depth"
        if (cfg.scale_up_p99_us is not None
                and pool.windowed_p99_us(now_us, cfg.p99_window_us)
                > cfg.scale_up_p99_us):
            return "p99"
        if (cfg.scale_up_burn_rate is not None
                and self._burn_source is not None
                and self._burn_source(now_us) > cfg.scale_up_burn_rate):
            return "slo_burn"
        return None

    @staticmethod
    def _drain_victim(pool: PoolRuntime):
        """Pick the active device that frees soonest (least drain waste)."""
        active = pool.workers.active_devices
        if not active:
            return None
        return min(active, key=lambda d: (d.free_at_us, d.device_id)).device_id
