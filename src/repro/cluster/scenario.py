"""The pinned heterogeneous multi-tenant scenario the A6 bench runs.

Three pools spanning the repo's device models:

* ``fpga-a`` — two paper accelerators behind DDR4-2400 (compute-bound:
  the prefetcher hides nearly all weight traffic);
* ``fpga-b`` — one paper accelerator behind LPDDR4-2133 (memory-bound:
  the FFN's weight streams outrun the link, so every batch carries
  exposed stall cycles — the slow pool a load-blind router keeps
  feeding);
* ``gpu-0`` — one batched-V100 roofline device, roughly 3x faster per
  batch than an FPGA pool at Transformer-base.

Three tenants exercising all three arrival processes:

* ``interactive`` — diurnal sinusoid, tight SLO, highest weight: the
  latency-sensitive product traffic;
* ``batch`` — steady Poisson, loose SLO, low weight: offline work that
  should soak leftover capacity;
* ``bursty`` — MMPP calm/burst traffic with a mid SLO: the tenant that
  periodically slams the cluster and makes admission + autoscaling
  earn their keep.

The default request counts keep the pinned bench run in seconds of
wall-clock; scale ``num_requests`` up for longer studies.
"""

from __future__ import annotations

from ..config import AutoscalerConfig, ClusterConfig, PoolConfig, TenantConfig
from ..memsys.bandwidth import ddr4_2400, lpddr4_2133


def pinned_pools() -> tuple[PoolConfig, ...]:
    """The scenario's heterogeneous pool set."""
    return (
        PoolConfig(
            name="fpga-a", kind="fpga", num_devices=2,
            min_devices=1, max_devices=4, memory=ddr4_2400(),
        ),
        PoolConfig(
            name="fpga-b", kind="fpga", num_devices=1,
            min_devices=1, max_devices=2, memory=lpddr4_2133(),
        ),
        PoolConfig(
            name="gpu-0", kind="gpu", num_devices=1,
            min_devices=1, max_devices=2,
        ),
    )


def pinned_tenants(requests_per_tenant: int = 400) -> tuple[TenantConfig, ...]:
    """The scenario's three traffic contracts."""
    return (
        TenantConfig(
            name="interactive", arrival="diurnal", rate_rps=220.0,
            num_requests=requests_per_tenant, min_len=8, max_len=32,
            slo_us=20_000.0, weight=3.0,
            diurnal_period_us=2_000_000.0, diurnal_amplitude=0.7,
            seed=1,
        ),
        TenantConfig(
            name="batch", arrival="poisson", rate_rps=120.0,
            num_requests=requests_per_tenant, min_len=16, max_len=64,
            slo_us=200_000.0, weight=1.0, seed=2,
        ),
        TenantConfig(
            name="bursty", arrival="mmpp", rate_rps=160.0,
            num_requests=requests_per_tenant, min_len=8, max_len=48,
            slo_us=40_000.0, weight=2.0,
            burst_multiplier=6.0, burst_fraction=0.2,
            burst_mean_us=120_000.0, seed=3,
        ),
    )


def pinned_cluster(
    requests_per_tenant: int = 400,
    router_policy: str = "slo",
    autoscale: bool = True,
    seed: int = 0,
) -> ClusterConfig:
    """The pinned scenario, parameterized just enough for the bench.

    With ``autoscale=False`` every pool is frozen at ``max_devices``
    (and ``num_devices`` raised to match), so policy comparisons run at
    an equal device-count budget: the static baseline gets the whole
    budget up front, the autoscaled run has to *earn* it.
    """
    pools = pinned_pools()
    if not autoscale:
        pools = tuple(
            p.with_updates(num_devices=p.max_devices) for p in pools
        )
    return ClusterConfig(
        pools=pools,
        tenants=pinned_tenants(requests_per_tenant),
        router_policy=router_policy,
        autoscaler=AutoscalerConfig(
            enabled=autoscale,
            interval_us=25_000.0,
            scale_up_queue_depth=2.0,
            scale_up_p99_us=None,
            scale_down_busy=0.2,
            cooldown_up_us=50_000.0,
            cooldown_down_us=150_000.0,
        ),
        queue_capacity=48,
        queue_timeout_us=120_000.0,
        max_batch_requests=4,
        max_wait_us=800.0,
        seed=seed,
    )


def bursty_obs_cluster(
    requests_per_tenant: int = 300,
    seed: int = 0,
) -> ClusterConfig:
    """One bursty tenant on one undersized pool, scaled by SLO burn only.

    The observability scenario behind ``repro slo-report --scenario
    bursty``: the pool starts at a single device and the autoscaler's
    queue-depth/p99 signals are disabled (the depth threshold is set
    unreachably high), so the *only* way the cluster grows is the
    burn-rate hook — a :class:`~repro.obs.slo.BurnRateMonitor` passed
    to :func:`~repro.cluster.simulator.simulate_cluster` feeding
    ``scale_up_burn_rate``.  The MMPP bursts against a tight SLO drive
    the short-window burn over threshold, alerts fire, and the
    alert-driven scale-up is visible in the actions log as
    ``reason="slo_burn"``.
    """
    return ClusterConfig(
        pools=(
            PoolConfig(
                name="fpga-a", kind="fpga", num_devices=1,
                min_devices=1, max_devices=4, memory=ddr4_2400(),
            ),
        ),
        tenants=(
            TenantConfig(
                name="bursty", arrival="mmpp", rate_rps=260.0,
                num_requests=requests_per_tenant, min_len=8, max_len=48,
                slo_us=15_000.0, weight=1.0,
                burst_multiplier=6.0, burst_fraction=0.25,
                burst_mean_us=120_000.0, seed=3,
            ),
        ),
        router_policy="least_queue",
        autoscaler=AutoscalerConfig(
            enabled=True,
            interval_us=25_000.0,
            scale_up_queue_depth=10_000.0,  # unreachable: burn-only
            scale_up_p99_us=None,
            scale_down_busy=0.0,            # never drains
            cooldown_up_us=50_000.0,
            cooldown_down_us=150_000.0,
            scale_up_burn_rate=1.0,
        ),
        queue_capacity=64,
        queue_timeout_us=120_000.0,
        max_batch_requests=4,
        max_wait_us=800.0,
        seed=seed,
    )
