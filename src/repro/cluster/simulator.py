"""Discrete-event cluster simulation: router + pools + autoscaler.

:func:`simulate_cluster` drives a merged multi-tenant workload through
the SLO-aware router into N heterogeneous pools — each one an existing
:mod:`repro.serving` admission queue + dynamic batcher + worker pool —
while a threshold autoscaler grows and drains replicate pools from the
live telemetry signals.  One event heap orders everything:

* ``ARRIVAL`` — a request reaches the router, which picks a pool (or
  sheds under the ``"slo"`` policy) and the pool's queue admits or
  rejects it;
* ``COMPLETION`` — a dispatched batch finishes; latencies, SLO
  attainment and the router's per-pool EWMA update *here*, so routing
  only ever sees information from the past;
* ``POOL_FREE`` / ``WAKEUP`` — per-pool dispatch retries and batching
  / expiry deadlines, exactly as in the single-pool simulator;
* ``SCALER`` — periodic autoscaler ticks.

The run is exactly reproducible from its
:class:`~repro.config.ClusterConfig`; the result carries per-tenant and
per-pool summaries, every ``repro_cluster_*`` series, and one Chrome
trace with per-pool device tracks, queue-wait spans, router/autoscaler
marker tracks and per-pool counter tracks.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..config import ClusterConfig, ModelConfig
from ..core.trace import TraceSpan, counter_events, write_span_trace
from ..errors import ServingError
from ..obs.spans import AttemptSpan, request_trace
from ..serving.simulator import attempt_boundary
from .autoscaler import Autoscaler, ScaleAction
from .metrics import OUTCOMES, ClusterMetrics, compute_cluster_metrics
from .pools import PoolRuntime
from .router import Router
from .workload import ClusterRequest, cluster_workload, validate_cluster_workload

if TYPE_CHECKING:
    from ..obs.slo import BurnRateMonitor
    from ..obs.spans import TraceCollector
    from ..telemetry.registry import MetricsRegistry

_COMPLETION, _ARRIVAL, _POOL_FREE, _WAKEUP, _SCALER = 0, 1, 2, 3, 4

#: Default SA row count / max sequence length for cluster runs.
DEFAULT_SEQ_LEN = 64


@dataclass
class ClusterRecord:
    """Final outcome of one request in a cluster run.

    ``status`` is ``"completed"``, ``"shed"`` (refused by the SLO
    router), ``"rejected"`` (pool queue full) or ``"expired"`` (pool
    queue timeout).  ``attained`` is True only for completions within
    the request's tenant SLO.
    """

    request: ClusterRequest
    status: str
    pool: Optional[str] = None
    dispatched_us: Optional[float] = None
    completed_us: Optional[float] = None
    attained: bool = False

    @property
    def latency_us(self) -> Optional[float]:
        if self.completed_us is None:
            return None
        return self.completed_us - self.request.arrival_us


@dataclass
class ClusterResult:
    """Everything one simulated cluster run produced."""

    cluster: ClusterConfig
    metrics: ClusterMetrics
    records: list[ClusterRecord]
    actions: list[ScaleAction]
    spans: list[TraceSpan] = field(default_factory=list)
    depth_samples: dict[str, list[tuple]] = field(default_factory=dict)
    device_samples: dict[str, list[tuple]] = field(default_factory=dict)

    def write_trace(
        self,
        path: str,
        extra_spans: Optional[list[TraceSpan]] = None,
    ) -> int:
        """Write one Chrome trace covering the whole cluster.

        Per-pool device tracks come from the worker pools' prefixed
        spans; each pool additionally gets ``<pool>.queue_depth`` and
        ``<pool>.devices`` counter tracks, so the autoscaler's replica
        ramps render next to the queues that triggered them.
        ``extra_spans`` appends caller-supplied tracks — e.g. a
        :class:`~repro.obs.slo.BurnRateMonitor`'s ``slo_alerts`` row.
        """
        spans = self.spans + list(extra_spans or ())
        counters = []
        for pool_name, samples in self.depth_samples.items():
            if samples:
                counters.extend(counter_events(
                    f"{pool_name}.queue_depth",
                    sorted(samples, key=lambda s: s[0]),
                ))
        for pool_name, samples in self.device_samples.items():
            if samples:
                counters.extend(counter_events(
                    f"{pool_name}.devices",
                    sorted(samples, key=lambda s: s[0]),
                ))
        return write_span_trace(
            spans, path, counters=counters,
            other_data={
                "router_policy": self.metrics.router_policy,
                "slo_attainment": self.metrics.slo_attainment,
                "throughput_rps": self.metrics.throughput_rps,
                "makespan_us": self.metrics.makespan_us,
            },
        )


def simulate_cluster(
    model: ModelConfig,
    cluster: ClusterConfig,
    workload: Optional[Sequence[ClusterRequest]] = None,
    registry: Optional["MetricsRegistry"] = None,
    seq_len: int = DEFAULT_SEQ_LEN,
    tracer: Optional["TraceCollector"] = None,
    monitor: Optional["BurnRateMonitor"] = None,
) -> ClusterResult:
    """Simulate one cluster run (default workload: the config's tenants).

    Args:
        model: The transformer every pool serves.
        cluster: Pools, tenants, router policy and autoscaler settings.
        workload: Explicit request list; overrides the generated one.
        registry: Optional metrics registry; the run's
            ``repro_cluster_*`` series are recorded into it for export.
        seq_len: SA row count / max sequence length of every pool.
        tracer: Optional :class:`~repro.obs.spans.TraceCollector`; every
            request gets one causal span tree whose hops sum exactly to
            its latency.  Strictly passive.
        monitor: Optional :class:`~repro.obs.slo.BurnRateMonitor` fed
            every terminal request event in time order.  Passive unless
            ``cluster.autoscaler.scale_up_burn_rate`` is set, in which
            case the autoscaler consumes the monitor's worst
            short-window burn as an additional up-signal (the explicit
            alert→autoscaler opt-in).
    """
    requests = (
        list(workload) if workload is not None
        else cluster_workload(cluster)
    )
    validate_cluster_workload(requests, seq_len)
    known_tenants = {t.name for t in cluster.tenants}
    for request in requests:
        if request.tenant not in known_tenants:
            raise ServingError(
                f"request {request.req_id} belongs to unknown tenant "
                f"{request.tenant!r}"
            )

    pools = [
        PoolRuntime(pool_cfg, cluster, model, seq_len)
        for pool_cfg in cluster.pools
    ]
    by_name = {p.name: p for p in pools}
    router = Router(cluster, pools)
    scaler = Autoscaler(cluster.autoscaler, pools)
    if monitor is not None and cluster.autoscaler.scale_up_burn_rate is not None:
        scaler.attach_burn_source(monitor.max_short_burn)

    records: dict[int, ClusterRecord] = {}
    spans: list[TraceSpan] = []
    device_samples: dict[str, list[tuple]] = {
        p.name: [(0.0, p.active_device_count)] for p in pools
    }
    in_flight = 0
    remaining_arrivals = len(requests)

    seq = itertools.count()
    heap: list = []
    for request in requests:
        heapq.heappush(
            heap, (request.arrival_us, _ARRIVAL, next(seq), request)
        )
    if cluster.autoscaler.enabled:
        heapq.heappush(
            heap, (cluster.autoscaler.interval_us, _SCALER, next(seq), None)
        )

    def attempt_dispatch(pool: PoolRuntime, now_us: float) -> None:
        nonlocal in_flight
        while len(pool.queue):
            if not pool.workers.can_accept(now_us):
                heapq.heappush(
                    heap,
                    (pool.workers.next_free_us(), _POOL_FREE, next(seq),
                     pool),
                )
                return
            batch = pool.batcher.try_form(
                pool.queue, now_us, force=(remaining_arrivals == 0)
            )
            if batch is None:
                deadline = min(
                    pool.batcher.next_deadline_us(pool.queue),
                    pool.queue.next_expiry_us(),
                )
                if deadline != float("inf"):
                    heapq.heappush(
                        heap,
                        (max(deadline, now_us), _WAKEUP, next(seq), pool),
                    )
                return
            outcome = pool.workers.dispatch(batch, now_us)
            pool.batches += 1
            pool.batch_log.append((batch.num_requests, batch.total_tokens))
            in_flight += batch.num_requests
            spans.extend(outcome.spans)
            for request in batch.requests:
                record = records[request.req_id]
                record.dispatched_us = now_us
                wait = now_us - request.arrival_us
                if wait > 0:
                    spans.append(TraceSpan(
                        name=f"req{request.req_id}.wait",
                        track=f"{pool.name}.queue",
                        start_us=request.arrival_us, duration_us=wait,
                        args={"tenant": request.tenant,
                              "seq_len": request.seq_len,
                              "batch": batch.batch_id},
                    ))
            heapq.heappush(
                heap,
                (outcome.completion_us, _COMPLETION, next(seq),
                 (pool, batch, outcome)),
            )

    def expire_queue(pool: PoolRuntime, now_us: float) -> None:
        for request in pool.queue.expire(now_us):
            records[request.req_id].status = "expired"
            if tracer is not None:
                tracer.add(request_trace(
                    req_id=request.req_id, status="expired",
                    arrival_us=request.arrival_us,
                    end_us=request.arrival_us + cluster.queue_timeout_us,
                    tenant=request.tenant,
                    attrs={"pool": pool.name},
                ))
            if monitor is not None:
                monitor.observe(now_us, request.tenant, False)

    def run_scaler(now_us: float) -> None:
        for action in scaler.evaluate(now_us):
            pool = by_name[action.pool]
            device_samples[pool.name].append(
                (now_us, pool.active_device_count)
            )
            spans.append(TraceSpan(
                name=(f"{action.pool}.scale_{action.direction}"
                      f".device{action.device_id}"),
                track="autoscaler",
                start_us=now_us, duration_us=0.0,
                args={"pool": action.pool, "direction": action.direction,
                      "reason": action.reason,
                      "device": action.device_id},
            ))
            if action.direction == "up":
                attempt_dispatch(pool, now_us)
        if remaining_arrivals > 0 or in_flight > 0 or any(
            len(p.queue) for p in pools
        ):
            heapq.heappush(
                heap,
                (now_us + cluster.autoscaler.interval_us, _SCALER,
                 next(seq), None),
            )

    while heap:
        now_us, kind, _, payload = heapq.heappop(heap)
        if kind == _COMPLETION:
            pool, batch, outcome = payload
            in_flight -= batch.num_requests
            pool.completed += batch.num_requests
            for request in batch.requests:
                record = records[request.req_id]
                record.status = "completed"
                record.completed_us = outcome.completion_us
                record.attained = (
                    outcome.completion_us <= request.deadline_us
                )
                pool.observe_completion(
                    outcome.completion_us, record.latency_us,
                    cluster.ewma_alpha,
                )
                if tracer is not None:
                    tracer.add(request_trace(
                        req_id=request.req_id, status="completed",
                        arrival_us=request.arrival_us,
                        dispatched_us=record.dispatched_us,
                        attempts=(AttemptSpan(
                            record.dispatched_us, outcome.start_us,
                            outcome.completion_us,
                            attempt_boundary(pool.workers.acc, outcome),
                            attrs={"devices": ",".join(
                                map(str, outcome.device_ids)
                            )},
                        ),),
                        tenant=request.tenant,
                        attrs={
                            "pool": pool.name,
                            "batch": batch.batch_id,
                            "deadline_us": request.deadline_us,
                            "attained": record.attained,
                            "slo_violated": not record.attained,
                        },
                    ))
                if monitor is not None:
                    monitor.observe(
                        outcome.completion_us, request.tenant,
                        record.attained,
                    )
            attempt_dispatch(pool, now_us)
            continue
        if kind == _ARRIVAL:
            remaining_arrivals -= 1
            record = ClusterRecord(payload, "shed")
            records[payload.req_id] = record
            pool = router.route(payload, now_us)
            if pool is None:
                spans.append(TraceSpan(
                    name=f"req{payload.req_id}.shed",
                    track="router",
                    start_us=now_us, duration_us=0.0,
                    args={"tenant": payload.tenant,
                          "deadline_us": payload.deadline_us},
                ))
                if tracer is not None:
                    tracer.add(request_trace(
                        req_id=payload.req_id, status="shed",
                        arrival_us=payload.arrival_us,
                        tenant=payload.tenant,
                    ))
                if monitor is not None:
                    monitor.observe(now_us, payload.tenant, False)
                if remaining_arrivals == 0:
                    for p in pools:
                        attempt_dispatch(p, now_us)
                continue
            record.pool = pool.name
            pool.routed += 1
            if not pool.queue.offer(payload, now_us):
                record.status = "rejected"
                if tracer is not None:
                    tracer.add(request_trace(
                        req_id=payload.req_id, status="rejected",
                        arrival_us=payload.arrival_us,
                        tenant=payload.tenant,
                        attrs={"pool": pool.name},
                    ))
                if monitor is not None:
                    monitor.observe(now_us, payload.tenant, False)
            else:
                record.status = "queued"
                if cluster.queue_timeout_us != float("inf"):
                    heapq.heappush(
                        heap,
                        (payload.arrival_us + cluster.queue_timeout_us,
                         _WAKEUP, next(seq), pool),
                    )
            expire_queue(pool, now_us)
            attempt_dispatch(pool, now_us)
            # The last arrival force-flushes every pool's partial batch.
            if remaining_arrivals == 0:
                for p in pools:
                    if p is not pool:
                        attempt_dispatch(p, now_us)
            continue
        if kind == _SCALER:
            run_scaler(now_us)
            continue
        # _POOL_FREE / _WAKEUP carry the pool they concern.
        pool = payload
        expire_queue(pool, now_us)
        attempt_dispatch(pool, now_us)

    if any(r.status == "queued" for r in records.values()):
        raise ServingError("cluster run ended with requests still queued")

    first_arrival = requests[0].arrival_us if requests else 0.0
    last_completion = max(
        (r.completed_us for r in records.values()
         if r.completed_us is not None),
        default=first_arrival,
    )
    makespan_us = last_completion - first_arrival

    tenant_names = [t.name for t in cluster.tenants]
    tenant_offered = dict.fromkeys(tenant_names, 0)
    tenant_outcomes = {
        name: dict.fromkeys(OUTCOMES, 0) for name in tenant_names
    }
    tenant_attained = dict.fromkeys(tenant_names, 0)
    tenant_latencies: dict[str, list[float]] = {
        name: [] for name in tenant_names
    }
    for request in requests:
        record = records[request.req_id]
        tenant_offered[request.tenant] += 1
        tenant_outcomes[request.tenant][record.status] += 1
        if record.attained:
            tenant_attained[request.tenant] += 1
        if record.latency_us is not None:
            tenant_latencies[request.tenant].append(record.latency_us)

    metrics = compute_cluster_metrics(
        policy=cluster.router_policy,
        tenant_offered=tenant_offered,
        tenant_outcomes=tenant_outcomes,
        tenant_slo_attained=tenant_attained,
        tenant_latencies_us=tenant_latencies,
        routing_decisions=dict(router.decisions),
        shed=router.shed,
        autoscale_actions=[
            (a.at_us, a.pool, a.direction, a.reason) for a in scaler.actions
        ],
        pool_completed={p.name: p.completed for p in pools},
        pool_batches={p.name: list(p.batch_log) for p in pools},
        pool_cache={
            p.name: (p.workers.weight_cache_hits,
                     p.workers.weight_cache_misses)
            for p in pools
        },
        pool_depth_samples={
            p.name: list(p.queue.depth_samples) for p in pools
        },
        pool_device_samples=device_samples,
        pool_busy_fraction={
            p.name: (
                sum(d.busy_us for d in p.workers.devices)
                / p.workers.device_time_us(last_completion)
                if p.workers.device_time_us(last_completion) > 0 else 0.0
            )
            for p in pools
        },
        pool_final_devices={p.name: p.active_device_count for p in pools},
        seq_len=seq_len,
        makespan_us=makespan_us,
        registry=registry,
    )
    ordered = [records[r.req_id] for r in requests]
    return ClusterResult(
        cluster=cluster,
        metrics=metrics,
        records=ordered,
        actions=list(scaler.actions),
        spans=spans,
        depth_samples={
            p.name: list(p.queue.depth_samples) for p in pools
        },
        device_samples=device_samples,
    )
