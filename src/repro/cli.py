"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``schedule`` — Algorithm 1 cycle counts / latency for a model preset.
* ``resources`` — the Table II analytic estimate.
* ``power`` — the Section V-B power split.
* ``tables`` — every paper comparison at once (the EXPERIMENTS.md view).
* ``trace`` — write a Chrome trace JSON of a ResBlock schedule.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import deviation_row, render_table
from .config import AcceleratorConfig, preset
from .core import (
    PAPER_FFN_CYCLES,
    PAPER_FFN_SPEEDUP,
    PAPER_GPU_FFN_LATENCY_US,
    PAPER_GPU_MHA_LATENCY_US,
    PAPER_MHA_CYCLES,
    PAPER_MHA_SPEEDUP,
    PAPER_TABLE2,
    estimate_power,
    estimate_top,
    schedule_ffn,
    schedule_mha,
)
from .core.trace import write_trace
from .gpu_model import ffn_latency_us, mha_latency_us, v100_batch1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOCC 2020 Transformer-accelerator reproduction tools",
    )
    parser.add_argument(
        "--model", default="transformer-base",
        help="Table I preset (default: transformer-base)",
    )
    parser.add_argument(
        "--seq-len", type=int, default=64,
        help="systolic-array rows / max sequence length (default: 64)",
    )
    parser.add_argument(
        "--clock-mhz", type=float, default=200.0,
        help="target clock (default: 200)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    schedule = sub.add_parser("schedule", help="cycle counts and latency")
    schedule.add_argument(
        "--gantt", action="store_true",
        help="also draw ASCII Gantt charts of both ResBlock timelines",
    )
    sub.add_parser("resources", help="Table II resource estimate")
    sub.add_parser("power", help="power split")
    sub.add_parser("tables", help="all paper comparisons")
    sub.add_parser("selftest", help="run the numerical-contract checks")
    trace = sub.add_parser("trace", help="write a Chrome trace JSON")
    trace.add_argument("--block", choices=("mha", "ffn"), default="mha")
    trace.add_argument("--out", required=True, help="output .json path")
    return parser


def _configs(args):
    model = preset(args.model)
    acc = AcceleratorConfig(seq_len=args.seq_len, clock_mhz=args.clock_mhz)
    return model, acc


def _cmd_schedule(args) -> None:
    model, acc = _configs(args)
    results = (("MHA", schedule_mha(model, acc)),
               ("FFN", schedule_ffn(model, acc)))
    rows = []
    for name, result in results:
        rows.append([
            name, result.total_cycles,
            f"{result.latency_us(acc.clock_mhz):.1f}",
            f"{result.sa_utilization:.1%}",
        ])
    print(render_table(
        f"{model.name} @ s={acc.seq_len}, {acc.clock_mhz:.0f} MHz",
        ["block", "cycles", "latency us", "SA util"], rows,
    ))
    if getattr(args, "gantt", False):
        from .core.gantt import render_gantt

        for _, result in results:
            print()
            print(render_gantt(result))


def _cmd_resources(args) -> None:
    model, acc = _configs(args)
    estimates = estimate_top(model, acc)
    rows = []
    for key in ("top", "sa", "softmax", "layernorm", "weight_memory"):
        e = estimates[key].as_dict()
        rows.append([key, int(e["lut"]), int(e["registers"]),
                     round(e["bram"], 1), int(e["dsp"])])
    print(render_table(
        f"resource estimate — {model.name}, s={acc.seq_len}",
        ["module", "LUT", "registers", "BRAM", "DSP"], rows,
    ))


def _cmd_power(args) -> None:
    model, acc = _configs(args)
    p = estimate_power(model, acc).as_dict()
    print(render_table(
        f"power estimate — {model.name} @ {acc.clock_mhz:.0f} MHz (W)",
        ["total", "dynamic", "static", "SA", "memory", "clock"],
        [[f"{p['total_w']:.1f}", f"{p['dynamic_w']:.1f}",
          f"{p['static_w']:.1f}", f"{p['sa_w']:.1f}",
          f"{p['memory_w']:.1f}", f"{p['clock_w']:.1f}"]],
    ))


def _cmd_tables(args) -> None:
    model, acc = _configs(args)
    mha = schedule_mha(model, acc)
    ffn = schedule_ffn(model, acc)
    is_paper_point = (
        model.name == "Transformer-base" and acc.seq_len == 64
    )
    if is_paper_point:
        print(render_table(
            "cycle counts vs paper",
            ["block", "measured", "paper", "deviation"],
            [deviation_row("MHA", mha.total_cycles, PAPER_MHA_CYCLES),
             deviation_row("FFN", ffn.total_cycles, PAPER_FFN_CYCLES)],
        ))
        print()
        spec = v100_batch1()
        gpu_mha = mha_latency_us(model, acc.seq_len, spec)
        gpu_ffn = ffn_latency_us(model, acc.seq_len, spec)
        fpga_mha = mha.latency_us(acc.clock_mhz)
        fpga_ffn = ffn.latency_us(acc.clock_mhz)
        print(render_table(
            "Table III vs paper",
            ["block", "speed-up", "paper"],
            [["MHA", f"{gpu_mha / fpga_mha:.1f}x", f"{PAPER_MHA_SPEEDUP}x"],
             ["FFN", f"{gpu_ffn / fpga_ffn:.1f}x", f"{PAPER_FFN_SPEEDUP}x"]],
        ))
        print()
        estimates = estimate_top(model, acc)
        rows = []
        for key in ("top", "sa", "softmax", "layernorm", "weight_memory"):
            ours = estimates[key].as_dict()
            paper = PAPER_TABLE2[key]
            rows.append([
                key, f"{int(ours['lut']):,} / {paper['lut']:,}",
                f"{ours['bram']:.1f} / {paper['bram']}",
                f"{int(ours['dsp'])} / {paper['dsp']}",
            ])
        print(render_table(
            "Table II vs paper (ours / paper)",
            ["module", "LUT", "BRAM", "DSP"], rows,
        ))
    else:
        _cmd_schedule(args)
        _cmd_resources(args)
        _cmd_power(args)


def _cmd_selftest(args) -> None:
    from .core.verification import run_selftest, selftest_passed

    results = run_selftest()
    rows = [[r.name, "PASS" if r.passed else "FAIL", r.detail]
            for r in results]
    print(render_table("numerical-contract self-test",
                       ["check", "status", "detail"], rows))
    if not selftest_passed(results):
        raise RuntimeError("self-test failed")


def _cmd_trace(args) -> None:
    model, acc = _configs(args)
    result = (schedule_mha if args.block == "mha" else schedule_ffn)(
        model, acc
    )
    count = write_trace(result, args.out, acc.clock_mhz)
    print(f"wrote {count} events ({result.total_cycles:,} cycles) to "
          f"{args.out}")


_COMMANDS = {
    "schedule": _cmd_schedule,
    "resources": _cmd_resources,
    "power": _cmd_power,
    "selftest": _cmd_selftest,
    "tables": _cmd_tables,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        _COMMANDS[args.command](args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
