"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``schedule`` — Algorithm 1 cycle counts / latency for a model preset.
* ``resources`` — the Table II analytic estimate.
* ``power`` — the Section V-B power split.
* ``tables`` — every paper comparison at once (the EXPERIMENTS.md view).
* ``trace`` — write a Chrome trace JSON of a ResBlock schedule.
* ``memsys`` — off-chip bandwidth sweep: per-link stall shares,
  utilization and the compute/memory-bound crossover bandwidth.
* ``serve-sim`` — discrete-event serving simulation with dynamic
  batching over the accelerator's cycle models (optionally with an
  off-chip memory system: ``--bandwidth-gbps`` / ``--memory-preset``,
  ``--weight-cache-kib``, ``--no-weight-cache``).
* ``cluster-sim`` — fleet-scale serving over the pinned heterogeneous
  scenario (2 FPGA pools + 1 GPU pool, 3 tenants): SLO-aware routing
  (``--policy``), threshold autoscaling (``--no-autoscale`` to freeze
  the budget), seeded end to end (``--seed``), with Chrome-trace and
  JSON-report outputs and an equal-budget round-robin comparison
  (``--compare-round-robin``).
* ``decode-sim`` — mixed prefill/decode serving over the fused
  attention and KV-cache models: autoregressive streams arrive, prefill
  (fused row-tiled schedule), then generate tokens step by step while
  new prefills compete for the device (``--policy decode_priority`` or
  ``prefill_chunk``), with KV residency priced through the memory
  system (``--kv-capacity-kib``, ``--memory-preset``).
* ``fault-campaign`` — sweep fault site x mode over seeded injection
  trials, report ABFT detection/correction/silent-corruption rates and
  the protection's cycle overhead.
* ``profile`` — cycle-attribution profiler: per-unit self-time/stall
  tables over the instrumented schedules (totals match the closed-form
  cycle model exactly), with collapsed-stack / JSON / Prometheus
  outputs; ``--compression`` profiles the compressed weight passes and
  splits the cycles the sparsity skipped from the index/row-generator
  overhead it paid.
* ``compress`` — block-circulant / N:M structured-sparsity sweep:
  compression ratio x cycle savings x memsys stall share per spec,
  optionally with the BLEU proxy on the synthetic NMT task
  (``--bleu``) and simulated serving throughput (``--serving``).
* ``bench-diff`` — perf-regression gate: compare ``BENCH_*.json``
  headlines against ``benchmarks/baseline.json`` tolerance bands;
  nonzero exit on any regression.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .analysis import deviation_row, render_table
from .config import AcceleratorConfig, preset
from .core import (
    PAPER_FFN_CYCLES,
    PAPER_FFN_SPEEDUP,
    PAPER_MHA_CYCLES,
    PAPER_MHA_SPEEDUP,
    PAPER_TABLE2,
    estimate_power,
    estimate_top,
    schedule_ffn,
    schedule_mha,
)
from .core.trace import write_trace
from .gpu_model import ffn_latency_us, mha_latency_us, v100_batch1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOCC 2020 Transformer-accelerator reproduction tools",
    )
    parser.add_argument(
        "--model", default="transformer-base",
        help="Table I preset (default: transformer-base)",
    )
    parser.add_argument(
        "--seq-len", type=int, default=64,
        help="systolic-array rows / max sequence length (default: 64)",
    )
    parser.add_argument(
        "--clock-mhz", type=float, default=200.0,
        help="target clock (default: 200)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    schedule = sub.add_parser("schedule", help="cycle counts and latency")
    schedule.add_argument(
        "--gantt", action="store_true",
        help="also draw ASCII Gantt charts of both ResBlock timelines",
    )
    sub.add_parser("resources", help="Table II resource estimate")
    sub.add_parser("power", help="power split")
    sub.add_parser("tables", help="all paper comparisons")
    sub.add_parser("selftest", help="run the numerical-contract checks")
    check = sub.add_parser(
        "check",
        help="static checks: overflow certifier, schedule linter, AST/"
             "determinism lints, Q-format dataflow, pricing coverage",
        description=(
            "Run the statcheck gate: overflow certification, schedule "
            "lints, REP/DET source lints, the Q-format dataflow graph "
            "and pricing/telemetry coverage.  Exit codes: 0 = no "
            "error-severity findings (warnings never fail the gate); "
            "1 = at least one unsuppressed error finding; 2 = usage "
            "error (bad flags, malformed baseline file)."
        ),
    )
    check.add_argument(
        "--point", default="paper", metavar="NAME",
        help="configuration point to certify: 'paper' or a Table I "
             "preset name (default: paper)",
    )
    check.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="also write the findings/certified-bounds JSON artifact",
    )
    check.add_argument(
        "--sarif", dest="sarif_path", metavar="PATH",
        help="also write a SARIF 2.1.0 artifact (code-scanning upload)",
    )
    check.add_argument(
        "--baseline", dest="baseline_path", metavar="FILE",
        help="reviewed suppression file; matched findings are reported "
             "but do not fail the gate, stale entries warn (BAS001)",
    )
    check.add_argument(
        "--changed", action="store_true",
        help="incremental mode: replay cached results for source-"
             "scanning passes whose inputs are content-identical "
             "(cache file: --cache-file)",
    )
    check.add_argument(
        "--cache-file", default=".repro-check-cache.json", metavar="PATH",
        help="incremental cache location (default: "
             ".repro-check-cache.json; only used with --changed)",
    )
    check.add_argument(
        "--sa-acc-bits", type=int, default=None,
        help="override the declared SA accumulator width",
    )
    check.add_argument(
        "--seed-bug",
        choices=("sa-acc-width", "double-book", "unseeded-rng",
                 "set-order", "orphan-bound", "port-width",
                 "unpriced-cycle", "unregistered-metric"),
        help="deliberately break the run (gate self-proof; never "
             "touches the cache)",
    )
    check.add_argument(
        "--skip", action="append", default=[],
        choices=("overflow", "schedule", "ast", "det", "qformat",
                 "pricing"),
        help="skip one pass (repeatable)",
    )
    trace = sub.add_parser(
        "trace",
        help="write a Chrome trace JSON for one ResBlock schedule, or "
             "(with --requests) report causal request traces from a "
             "simulated serving/cluster/decode run",
    )
    trace.add_argument("--block", choices=("mha", "ffn"), default="mha")
    trace.add_argument(
        "--out", help="output .json path (required in block mode)"
    )
    trace.add_argument(
        "--requests", choices=("serving", "cluster", "decode"),
        default=None,
        help="trace a simulated run instead of one ResBlock schedule",
    )
    trace.add_argument(
        "--top", type=int, default=10,
        help="slowest requests to list in the report (default: 10)",
    )
    trace.add_argument(
        "--req-id", type=int, default=None,
        help="print the per-hop waterfall of one request id instead of "
             "the top-N summary",
    )
    trace.add_argument(
        "--otlp-out", metavar="PATH",
        help="also export the collected traces as OTLP-JSON",
    )
    trace.add_argument(
        "--requests-per-tenant", type=int, default=120,
        help="requests (serving), requests per tenant (cluster) or "
             "streams (decode) to simulate (default: 120)",
    )
    trace.add_argument(
        "--head-rate", type=float, default=0.05,
        help="head-sampling rate for unremarkable completed requests; "
             "SLO-violating/retried/shed traces are always kept in "
             "full (default: 0.05)",
    )
    trace.add_argument(
        "--seed", type=int, default=0,
        help="workload + sampling seed (default: 0)",
    )
    slo = sub.add_parser(
        "slo-report",
        help="per-tenant multi-window SLO burn-rate report over a "
             "simulated cluster run (timeline, violations, alert "
             "firings)",
    )
    slo.add_argument(
        "--scenario", choices=("pinned", "bursty"), default="pinned",
        help="cluster scenario: the pinned 3-pool/3-tenant mix, or the "
             "single-pool bursty tenant whose only scale-up signal is "
             "the burn-rate hook (default: pinned)",
    )
    slo.add_argument(
        "--requests-per-tenant", type=int, default=120,
        help="requests each tenant contributes (default: 120)",
    )
    slo.add_argument(
        "--objective", type=float, default=None,
        help="SLO objective to monitor against, e.g. 0.95 "
             "(default: the SloPolicy default)",
    )
    slo.add_argument(
        "--seed", type=int, default=0,
        help="cluster master RNG seed (default: 0)",
    )
    slo.add_argument(
        "--trace-out", metavar="PATH",
        help="optional Chrome trace with the slo_alerts track overlaid "
             "on the cluster timeline",
    )
    slo.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the burn-rate timeline + alert log as JSON",
    )
    memsys = sub.add_parser(
        "memsys",
        help="off-chip bandwidth sweep with stall shares and crossover",
    )
    memsys.add_argument(
        "--bandwidths", nargs="+", type=float, default=None,
        metavar="GBPS",
        help="peak GB/s values to sweep (default: the named presets)",
    )
    memsys.add_argument(
        "--burst-efficiency", type=float, default=0.8,
        help="sustained fraction of peak for --bandwidths (default: 0.8)",
    )
    memsys.add_argument(
        "--latency-cycles", type=int, default=24,
        help="per-transfer latency for --bandwidths (default: 24)",
    )
    memsys.add_argument(
        "--no-double-buffer", action="store_true",
        help="serialize every weight fetch instead of prefetching",
    )
    serve = sub.add_parser(
        "serve-sim", help="simulate inference serving with dynamic batching"
    )
    serve.add_argument(
        "--rate", type=float, default=2000.0,
        help="mean Poisson arrival rate, requests/s (default: 2000)",
    )
    serve.add_argument(
        "--requests", type=int, default=200,
        help="number of requests to simulate (default: 200)",
    )
    serve.add_argument(
        "--min-len", type=int, default=8,
        help="minimum request length in tokens (default: 8)",
    )
    serve.add_argument(
        "--max-len", type=int, default=None,
        help="maximum request length (default: the SA's seq-len)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="dynamic-batching request cap; 1 = batch-1 (default: 8)",
    )
    serve.add_argument(
        "--max-wait-us", type=float, default=500.0,
        help="batch cut-off wait in microseconds (default: 500)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64,
        help="admission-queue bound (default: 64)",
    )
    serve.add_argument(
        "--timeout-us", type=float, default=None,
        help="queue timeout in microseconds (default: none)",
    )
    serve.add_argument(
        "--devices", type=int, default=1,
        help="simulated accelerator count (default: 1)",
    )
    serve.add_argument(
        "--placement", choices=("replicate", "layer_shard"),
        default="replicate",
        help="model placement across devices (default: replicate)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="workload RNG seed (default: 0)",
    )
    serve.add_argument(
        "--compare-batch1", action="store_true",
        help="also run the batch-1 baseline on the same workload",
    )
    serve.add_argument(
        "--trace-out", help="optional Chrome trace JSON output path"
    )
    serve.add_argument(
        "--batch-fault-rate", type=float, default=0.0,
        help="per-batch-run fault probability (default: 0)",
    )
    serve.add_argument(
        "--device-failure-rate", type=float, default=0.0,
        help="per-batch-run device fail-stop probability (default: 0)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=1,
        help="re-runs per batch after an ABFT-detected fault (default: 1)",
    )
    serve.add_argument(
        "--abft", action="store_true",
        help="protect the accelerator with ABFT checksums (faults are "
             "detected and retried instead of corrupting silently)",
    )
    serve.add_argument(
        "--bandwidth-gbps", type=float, default=None,
        help="model the off-chip link at this peak GB/s (default: "
             "weights are free to reload, the flat-reload accounting)",
    )
    serve.add_argument(
        "--memory-preset", default=None, metavar="NAME",
        help="named off-chip link (lpddr4-2133, ddr4-2400, ddr4-3200, "
             "hbm2-pc, unlimited); --bandwidth-gbps overrides its rate",
    )
    serve.add_argument(
        "--weight-cache-kib", type=float, default=None,
        help="per-device LRU weight-cache capacity in KiB (default: "
             "the Table II BRAM weight-memory budget)",
    )
    serve.add_argument(
        "--no-weight-cache", action="store_true",
        help="refetch every ResBlock's weights on every batch run",
    )
    cluster = sub.add_parser(
        "cluster-sim",
        help="fleet-scale serving: SLO routing + autoscaling over "
             "heterogeneous pools (the pinned 3-pool/3-tenant scenario)",
    )
    cluster.add_argument(
        "--requests-per-tenant", type=int, default=400,
        help="requests each tenant contributes (default: 400)",
    )
    cluster.add_argument(
        "--policy",
        choices=("round_robin", "least_queue", "ewma", "slo"),
        default="slo",
        help="router policy (default: slo)",
    )
    cluster.add_argument(
        "--no-autoscale", action="store_true",
        help="freeze every pool at its max_devices budget (static run)",
    )
    cluster.add_argument(
        "--seed", type=int, default=0,
        help="cluster master RNG seed (default: 0)",
    )
    cluster.add_argument(
        "--compare-round-robin", action="store_true",
        help="also run static round-robin at the same device budget "
             "and report the SLO-attainment delta",
    )
    cluster.add_argument(
        "--trace-out", help="optional Chrome trace JSON output path"
    )
    cluster.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the full cluster report (summary + per-tenant + "
             "per-pool + registry series) as JSON",
    )
    decode = sub.add_parser(
        "decode-sim",
        help="mixed prefill/decode serving over the fused-attention "
             "and KV-cache models",
    )
    decode.add_argument(
        "--policy", choices=("decode_priority", "prefill_chunk"),
        default="decode_priority",
        help="prefill/decode interleaving policy (default: "
             "decode_priority)",
    )
    decode.add_argument(
        "--streams", type=int, default=32,
        help="generation streams to simulate (default: 32)",
    )
    decode.add_argument(
        "--rate", type=float, default=200.0,
        help="mean Poisson stream arrival rate, streams/s (default: 200)",
    )
    decode.add_argument(
        "--prefill-min", type=int, default=96,
        help="minimum prompt length in tokens (default: 96)",
    )
    decode.add_argument(
        "--prefill-max", type=int, default=256,
        help="maximum prompt length in tokens (default: 256)",
    )
    decode.add_argument(
        "--decode-min", type=int, default=8,
        help="minimum generated tokens per stream (default: 8)",
    )
    decode.add_argument(
        "--decode-max", type=int, default=32,
        help="maximum generated tokens per stream (default: 32)",
    )
    decode.add_argument(
        "--max-decode-batch", type=int, default=8,
        help="decode streams stepped together per dispatch (default: 8)",
    )
    decode.add_argument(
        "--kv-capacity-kib", type=float, default=None,
        help="on-chip KV budget per device in KiB; 0 = always-refetch "
             "(default: the Table II BRAM weight-memory budget)",
    )
    decode.add_argument(
        "--devices", type=int, default=1,
        help="simulated accelerator count (default: 1)",
    )
    decode.add_argument(
        "--queue-capacity", type=int, default=256,
        help="pending-stream bound before rejection (default: 256)",
    )
    decode.add_argument(
        "--seed", type=int, default=0,
        help="workload RNG seed (default: 0)",
    )
    decode.add_argument(
        "--memory-preset", default=None, metavar="NAME",
        help="named off-chip link pricing KV refetch (lpddr4-2133, "
             "ddr4-2400, ddr4-3200, hbm2-pc, unlimited)",
    )
    decode.add_argument(
        "--bandwidth-gbps", type=float, default=None,
        help="override the off-chip link's peak GB/s",
    )
    decode.add_argument(
        "--compare-policies", action="store_true",
        help="also run the other policy on the same workload and show "
             "the prefill-p99 / tokens-per-s trade",
    )
    decode.add_argument(
        "--trace-out", help="optional Chrome trace JSON output path"
    )
    decode.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the repro_decode_* metrics registry as JSON",
    )
    profile = sub.add_parser(
        "profile",
        help="cycle-attribution profiler over the instrumented schedules",
    )
    profile.add_argument(
        "--point", default="paper", metavar="NAME",
        help="configuration point: 'paper' or a Table I preset name "
             "(default: paper)",
    )
    profile.add_argument(
        "--block", choices=("mha", "ffn", "both"), default="both",
        help="which ResBlock timelines to profile (default: both)",
    )
    profile.add_argument(
        "--bandwidth-gbps", type=float, default=None,
        help="profile with a finite off-chip link at this peak GB/s "
             "(adds the dram track's stall attribution)",
    )
    profile.add_argument(
        "--compression", default=None, metavar="SPEC",
        help="profile compressed weight passes: 'circN' "
             "(block-circulant, block size N) or 'N:M' (structured "
             "sparse); adds the skipped-vs-paid-overhead split",
    )
    profile.add_argument(
        "--collapsed", metavar="PATH",
        help="write collapsed-stack lines for flamegraph tooling",
    )
    profile.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the metrics registry as structured JSON",
    )
    profile.add_argument(
        "--prom", metavar="PATH",
        help="write the metrics registry as Prometheus text exposition",
    )
    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare BENCH_*.json headlines against the committed "
             "baseline (nonzero exit on regression)",
    )
    bench_diff.add_argument(
        "--current", action="append", metavar="PATH", default=None,
        help="bench artifact(s) to gate (repeatable; default: every "
             "BENCH_*.json in the working directory)",
    )
    bench_diff.add_argument(
        "--baseline", default="benchmarks/baseline.json", metavar="PATH",
        help="pinned baseline document (default: benchmarks/baseline.json)",
    )
    bench_diff.add_argument(
        "--seed-slowdown", type=float, default=None, metavar="FACTOR",
        help="self-proof: perturb every current headline this many "
             "times in the bad direction and show the gate fails",
    )
    bench_diff.add_argument(
        "--only", action="append", metavar="PREFIX", default=None,
        help="gate only pinned headlines with this name prefix "
             "(repeatable; for suite-scoped runs, e.g. --only cluster.)",
    )
    bench_diff.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="also write the comparison report as JSON",
    )
    compress = sub.add_parser(
        "compress",
        help="block-circulant / N:M sparsity sweep: ratio x cycles x "
             "stalls x quality x throughput",
    )
    compress.add_argument(
        "--specs", nargs="+", default=None, metavar="SPEC",
        help="specs to sweep: 'dense', 'circN' or 'N:M' (default: "
             "dense circ4 circ8 circ16 2:4 1:4)",
    )
    compress.add_argument(
        "--memory-preset", default=None, metavar="NAME",
        help="named off-chip link for the stall terms (lpddr4-2133, "
             "ddr4-2400, ddr4-3200, hbm2-pc, unlimited)",
    )
    compress.add_argument(
        "--bandwidth-gbps", type=float, default=None,
        help="override the off-chip link's peak GB/s",
    )
    compress.add_argument(
        "--bleu", action="store_true",
        help="also train the synthetic-NMT toy model and report each "
             "spec's BLEU proxy through the dense-expansion path "
             "(slower)",
    )
    compress.add_argument(
        "--epochs", type=int, default=12,
        help="training epochs for the --bleu proxy model (default: 12)",
    )
    compress.add_argument(
        "--serving", action="store_true",
        help="also run the serving simulator per spec and report "
             "throughput with the compressed cost model",
    )
    compress.add_argument(
        "--seed", type=int, default=7,
        help="RNG seed for the --bleu proxy model (default: 7)",
    )
    compress.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the sweep points as JSON",
    )
    compress.add_argument(
        "--trace-out",
        help="optional Chrome trace JSON: one row per spec plus "
             "overhead/skipped/bytes counter tracks",
    )
    campaign = sub.add_parser(
        "fault-campaign",
        help="seeded fault-injection sweep with ABFT coverage report",
    )
    campaign.add_argument(
        "--trials", type=int, default=32,
        help="trials per (site, mode, rate) cell (default: 32)",
    )
    campaign.add_argument(
        "--sites", nargs="+", default=None, metavar="SITE",
        help="fault sites to sweep (default: all)",
    )
    campaign.add_argument(
        "--rates", nargs="+", type=float, default=[1.0], metavar="RATE",
        help="per-pass fault probabilities to sweep (default: 1.0)",
    )
    campaign.add_argument(
        "--depth", type=int, default=64,
        help="GEMM inner dimension k of each trial (default: 64)",
    )
    campaign.add_argument(
        "--no-abft", action="store_true",
        help="run the GEMM trials unprotected (baseline sweep)",
    )
    campaign.add_argument(
        "--seed", type=int, default=0,
        help="campaign master seed (default: 0)",
    )
    campaign.add_argument(
        "--end-to-end", action="store_true",
        help="also measure one stuck-PE fault through a full quantized "
             "MHA ResBlock vs the golden model (slower)",
    )
    return parser


def _configs(args):
    model = preset(args.model)
    acc = AcceleratorConfig(seq_len=args.seq_len, clock_mhz=args.clock_mhz)
    return model, acc


def _cmd_schedule(args) -> None:
    model, acc = _configs(args)
    results = (("MHA", schedule_mha(model, acc)),
               ("FFN", schedule_ffn(model, acc)))
    rows = []
    for name, result in results:
        rows.append([
            name, result.total_cycles,
            f"{result.latency_us(acc.clock_mhz):.1f}",
            f"{result.sa_utilization:.1%}",
        ])
    print(render_table(
        f"{model.name} @ s={acc.seq_len}, {acc.clock_mhz:.0f} MHz",
        ["block", "cycles", "latency us", "SA util"], rows,
    ))
    if getattr(args, "gantt", False):
        from .core.gantt import render_gantt

        for _, result in results:
            print()
            print(render_gantt(result))


def _cmd_resources(args) -> None:
    model, acc = _configs(args)
    estimates = estimate_top(model, acc)
    rows = []
    for key in ("top", "sa", "softmax", "layernorm", "weight_memory"):
        e = estimates[key].as_dict()
        rows.append([key, int(e["lut"]), int(e["registers"]),
                     round(e["bram"], 1), int(e["dsp"])])
    print(render_table(
        f"resource estimate — {model.name}, s={acc.seq_len}",
        ["module", "LUT", "registers", "BRAM", "DSP"], rows,
    ))


def _cmd_power(args) -> None:
    model, acc = _configs(args)
    p = estimate_power(model, acc).as_dict()
    print(render_table(
        f"power estimate — {model.name} @ {acc.clock_mhz:.0f} MHz (W)",
        ["total", "dynamic", "static", "SA", "memory", "clock"],
        [[f"{p['total_w']:.1f}", f"{p['dynamic_w']:.1f}",
          f"{p['static_w']:.1f}", f"{p['sa_w']:.1f}",
          f"{p['memory_w']:.1f}", f"{p['clock_w']:.1f}"]],
    ))


def _cmd_tables(args) -> None:
    model, acc = _configs(args)
    mha = schedule_mha(model, acc)
    ffn = schedule_ffn(model, acc)
    is_paper_point = (
        model.name == "Transformer-base" and acc.seq_len == 64
    )
    if is_paper_point:
        print(render_table(
            "cycle counts vs paper",
            ["block", "measured", "paper", "deviation"],
            [deviation_row("MHA", mha.total_cycles, PAPER_MHA_CYCLES),
             deviation_row("FFN", ffn.total_cycles, PAPER_FFN_CYCLES)],
        ))
        print()
        spec = v100_batch1()
        gpu_mha = mha_latency_us(model, acc.seq_len, spec)
        gpu_ffn = ffn_latency_us(model, acc.seq_len, spec)
        fpga_mha = mha.latency_us(acc.clock_mhz)
        fpga_ffn = ffn.latency_us(acc.clock_mhz)
        print(render_table(
            "Table III vs paper",
            ["block", "speed-up", "paper"],
            [["MHA", f"{gpu_mha / fpga_mha:.1f}x", f"{PAPER_MHA_SPEEDUP}x"],
             ["FFN", f"{gpu_ffn / fpga_ffn:.1f}x", f"{PAPER_FFN_SPEEDUP}x"]],
        ))
        print()
        estimates = estimate_top(model, acc)
        rows = []
        for key in ("top", "sa", "softmax", "layernorm", "weight_memory"):
            ours = estimates[key].as_dict()
            paper = PAPER_TABLE2[key]
            rows.append([
                key, f"{int(ours['lut']):,} / {paper['lut']:,}",
                f"{ours['bram']:.1f} / {paper['bram']}",
                f"{int(ours['dsp'])} / {paper['dsp']}",
            ])
        print(render_table(
            "Table II vs paper (ours / paper)",
            ["module", "LUT", "BRAM", "DSP"], rows,
        ))
    else:
        _cmd_schedule(args)
        _cmd_resources(args)
        _cmd_power(args)


def _cmd_selftest(args) -> None:
    from .core.verification import run_selftest, selftest_passed

    results = run_selftest()
    rows = [[r.name, "PASS" if r.passed else "FAIL", r.detail]
            for r in results]
    print(render_table("numerical-contract self-test",
                       ["check", "status", "detail"], rows))
    if not selftest_passed(results):
        raise RuntimeError("self-test failed")


def _cmd_check(args) -> int:
    from .errors import ConfigError
    from .statcheck import CheckCache, OverflowPoint, run_check

    if args.point == "paper":
        point = OverflowPoint()
    else:
        model = preset(args.point)
        acc = AcceleratorConfig(
            seq_len=args.seq_len, clock_mhz=args.clock_mhz
        )
        point = OverflowPoint.from_configs(model, acc)
    cache = None
    if args.changed and not args.seed_bug:
        cache = CheckCache.load(args.cache_file)
    try:
        report = run_check(
            point=point,
            sa_acc_bits=args.sa_acc_bits,
            seed_bug=args.seed_bug,
            skip=tuple(args.skip),
            json_path=args.json_path,
            sarif_path=args.sarif_path,
            baseline_path=args.baseline_path,
            cache=cache,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render_text())
    if args.json_path:
        print(f"wrote findings artifact to {args.json_path}")
    if args.sarif_path:
        print(f"wrote SARIF artifact to {args.sarif_path}")
    return 0 if report.passed else 1


def _cmd_memsys(args) -> None:
    from .config import MemoryConfig
    from .memsys import (
        MEMORY_PRESETS,
        analyze_memory_system,
        steady_state_crossover_gbps,
    )

    model, acc = _configs(args)
    if args.bandwidths is not None:
        links = [
            (
                f"{bw:g} GB/s",
                MemoryConfig(
                    bandwidth_gbps=bw,
                    burst_efficiency=args.burst_efficiency,
                    transfer_latency_cycles=args.latency_cycles,
                    double_buffered_prefetch=not args.no_double_buffer,
                ),
            )
            for bw in args.bandwidths
        ]
    else:
        links = [
            (name, mem.with_updates(
                double_buffered_prefetch=not args.no_double_buffer,
            ))
            for name, mem in MEMORY_PRESETS.items()
            if name != "unlimited"
        ]
    rows = []
    for name, mem in links:
        report = analyze_memory_system(model, acc, mem)
        rows.append([
            name, f"{mem.bandwidth_gbps:g}",
            f"{report.mha.total_cycles:,}",
            f"{report.mha.stall_share:.1%}",
            f"{report.ffn.total_cycles:,}",
            f"{report.ffn.stall_share:.1%}",
            f"{report.ffn.utilization:.1%}",
            report.bound,
        ])
    prefetch = "off" if args.no_double_buffer else "on"
    print(render_table(
        f"memory system — {model.name}, s={acc.seq_len}, "
        f"{acc.clock_mhz:.0f} MHz, double-buffered prefetch {prefetch}",
        ["link", "GB/s", "MHA cycles", "MHA stall",
         "FFN cycles", "FFN stall", "FFN util", "bound"],
        rows,
    ))
    crossover = steady_state_crossover_gbps(
        model, acc,
        burst_efficiency=args.burst_efficiency,
        transfer_latency_cycles=args.latency_cycles,
    )
    print(f"\nsteady-state crossover: {crossover:.2f} GB/s peak "
          f"(at {args.burst_efficiency:.0%} burst efficiency) — links "
          f"below it starve the SA on weight fetches even with "
          f"double buffering")


def _serving_memory(args):
    """Fold the serve-sim memory flags into a MemoryConfig (or None)."""
    from .config import MemoryConfig
    from .memsys import memory_preset

    if (args.memory_preset is None and args.bandwidth_gbps is None
            and args.weight_cache_kib is None
            and not args.no_weight_cache):
        return None
    mem = (memory_preset(args.memory_preset)
           if args.memory_preset is not None else MemoryConfig())
    updates = {}
    if args.bandwidth_gbps is not None:
        updates["bandwidth_gbps"] = args.bandwidth_gbps
    if args.weight_cache_kib is not None:
        updates["weight_cache_kib"] = args.weight_cache_kib
    if args.no_weight_cache:
        updates["enable_weight_cache"] = False
    return mem.with_updates(**updates) if updates else mem


def _cmd_serve_sim(args) -> None:
    from .config import ServingConfig
    from .serving import simulate_serving

    model, acc = _configs(args)
    if args.abft:
        acc = acc.with_updates(abft_protected=True)
    serving = ServingConfig(
        arrival_rate_rps=args.rate,
        num_requests=args.requests,
        min_len=args.min_len,
        max_len=acc.seq_len if args.max_len is None else args.max_len,
        queue_capacity=args.queue_capacity,
        queue_timeout_us=(
            float("inf") if args.timeout_us is None else args.timeout_us
        ),
        max_batch_requests=args.max_batch,
        max_wait_us=args.max_wait_us,
        num_devices=args.devices,
        placement=args.placement,
        batch_fault_rate=args.batch_fault_rate,
        device_failure_rate=args.device_failure_rate,
        max_retries=args.max_retries,
        seed=args.seed,
        memory=_serving_memory(args),
    )
    result = simulate_serving(model, acc, serving)
    print(render_table(
        f"serving — {model.name}, {args.devices} device(s), "
        f"{args.rate:.0f} req/s, max batch {args.max_batch}",
        ["metric", "value"], result.metrics.as_rows(),
    ))
    if args.compare_batch1:
        base = simulate_serving(
            model, acc, serving.with_updates(max_batch_requests=1)
        )
        speedup = (result.metrics.throughput_rps
                   / base.metrics.throughput_rps
                   if base.metrics.throughput_rps else float("inf"))
        print()
        print(render_table(
            "dynamic batching vs batch-1 (same workload)",
            ["metric", "dynamic", "batch-1"],
            [["throughput",
              f"{result.metrics.throughput_rps:.1f} req/s",
              f"{base.metrics.throughput_rps:.1f} req/s"],
             ["p99 latency",
              f"{result.metrics.latency_p99_us:.0f} us",
              f"{base.metrics.latency_p99_us:.0f} us"],
             ["rejection rate",
              f"{result.metrics.rejection_rate:.1%}",
              f"{base.metrics.rejection_rate:.1%}"],
             ["speed-up", f"{speedup:.2f}x", "1.00x"]],
        ))
    if args.trace_out:
        count = result.write_trace(args.trace_out)
        print(f"\nwrote {count} trace events to {args.trace_out}")


def _cmd_cluster_sim(args) -> None:
    import dataclasses
    import json

    from .cluster import pinned_cluster, simulate_cluster
    from .telemetry import MetricsRegistry, to_json

    model = preset(args.model)
    cluster = pinned_cluster(
        requests_per_tenant=args.requests_per_tenant,
        router_policy=args.policy,
        autoscale=not args.no_autoscale,
        seed=args.seed,
    )
    registry = MetricsRegistry()
    result = simulate_cluster(
        model, cluster, registry=registry, seq_len=args.seq_len
    )
    metrics = result.metrics
    mode = "static" if args.no_autoscale else "autoscaled"
    print(render_table(
        f"cluster — {model.name}, {len(cluster.pools)} pools / "
        f"{len(cluster.tenants)} tenants, policy {args.policy}, {mode}, "
        f"seed {args.seed}",
        ["metric", "value"], metrics.as_rows(),
    ))
    if args.compare_round_robin:
        baseline_cfg = pinned_cluster(
            requests_per_tenant=args.requests_per_tenant,
            router_policy="round_robin",
            autoscale=False,
            seed=args.seed,
        )
        baseline = simulate_cluster(
            model, baseline_cfg, seq_len=args.seq_len
        ).metrics
        delta = metrics.slo_attainment - baseline.slo_attainment
        print()
        print(render_table(
            "vs static round-robin at equal device budget",
            ["metric", f"{args.policy}/{mode}", "round_robin/static"],
            [["SLO attainment",
              f"{metrics.slo_attainment:.1%}",
              f"{baseline.slo_attainment:.1%}"],
             ["p99 latency",
              f"{metrics.latency_p99_us:.0f} us",
              f"{baseline.latency_p99_us:.0f} us"],
             ["throughput",
              f"{metrics.throughput_rps:.1f} req/s",
              f"{baseline.throughput_rps:.1f} req/s"],
             ["attainment delta", f"{delta:+.1%}", "—"]],
        ))
    if args.trace_out:
        count = result.write_trace(args.trace_out)
        print(f"\nwrote {count} trace events to {args.trace_out}")
    if args.json_path:
        report = {
            "policy": args.policy,
            "autoscale": not args.no_autoscale,
            "seed": args.seed,
            "summary": {
                k: v for k, v in dataclasses.asdict(metrics).items()
                if k not in ("tenants", "pools")
            },
            "tenants": {
                name: dataclasses.asdict(t)
                for name, t in metrics.tenants.items()
            },
            "pools": {
                name: dataclasses.asdict(p)
                for name, p in metrics.pools.items()
            },
            "registry": to_json(registry),
        }
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True,
                      allow_nan=False)
        print(f"wrote cluster report to {args.json_path}")


def _cmd_decode_sim(args) -> None:
    from .config import DecodeConfig, MemoryConfig
    from .decode import simulate_decode
    from .memsys import memory_preset
    from .telemetry import MetricsRegistry, write_json

    model, acc = _configs(args)
    mem = None
    if args.memory_preset is not None or args.bandwidth_gbps is not None:
        mem = (memory_preset(args.memory_preset)
               if args.memory_preset is not None else MemoryConfig())
        if args.bandwidth_gbps is not None:
            mem = mem.with_updates(bandwidth_gbps=args.bandwidth_gbps)
    decode = DecodeConfig(
        arrival_rate_rps=args.rate,
        num_streams=args.streams,
        prefill_len_min=args.prefill_min,
        prefill_len_max=args.prefill_max,
        decode_tokens_min=args.decode_min,
        decode_tokens_max=args.decode_max,
        policy=args.policy,
        max_decode_batch=args.max_decode_batch,
        kv_capacity_bytes=(
            None if args.kv_capacity_kib is None
            else int(args.kv_capacity_kib * 1024)
        ),
        num_devices=args.devices,
        queue_capacity=args.queue_capacity,
        seed=args.seed,
        memory=mem,
    )
    registry = MetricsRegistry()
    result = simulate_decode(model, acc, decode, registry=registry)
    m = result.metrics

    def metric_rows(metrics):
        return [
            ["streams offered / completed / rejected",
             f"{metrics.offered} / {metrics.completed} / "
             f"{metrics.rejected}"],
            ["decode steps / batches",
             f"{metrics.decode_steps} / {metrics.decode_batches}"],
            ["prefill chunks", str(metrics.prefill_chunks)],
            ["decoded tokens", str(metrics.decoded_tokens)],
            ["throughput", f"{metrics.tokens_per_s:.1f} tok/s"],
            ["prefill latency p50 / p99",
             f"{metrics.prefill_p50_us:.0f} / "
             f"{metrics.prefill_p99_us:.0f} us"],
            ["mean inter-token latency",
             f"{metrics.mean_token_latency_us:.1f} us"],
            ["KV-cache hit rate", f"{metrics.kv_hit_rate:.1%}"],
            ["KV refetch cycles", f"{metrics.kv_refetch_cycles:,}"],
            ["makespan", f"{metrics.makespan_us:.0f} us"],
        ]

    print(render_table(
        f"decode — {model.name}, {args.devices} device(s), "
        f"policy {args.policy}, {args.streams} streams, seed {args.seed}",
        ["metric", "value"], metric_rows(m),
    ))
    if args.compare_policies:
        other_policy = ("prefill_chunk" if args.policy == "decode_priority"
                        else "decode_priority")
        other = simulate_decode(
            model, acc, decode.with_updates(policy=other_policy)
        ).metrics
        print()
        print(render_table(
            "policy comparison (same workload)",
            ["metric", args.policy, other_policy],
            [["tokens/s", f"{m.tokens_per_s:.1f}",
              f"{other.tokens_per_s:.1f}"],
             ["prefill p99", f"{m.prefill_p99_us:.0f} us",
              f"{other.prefill_p99_us:.0f} us"],
             ["mean inter-token", f"{m.mean_token_latency_us:.1f} us",
              f"{other.mean_token_latency_us:.1f} us"],
             ["KV hit rate", f"{m.kv_hit_rate:.1%}",
              f"{other.kv_hit_rate:.1%}"]],
        ))
    if args.trace_out:
        count = result.write_trace(args.trace_out)
        print(f"\nwrote {count} trace events to {args.trace_out}")
    if args.json_path:
        write_json(registry, args.json_path)
        print(f"wrote decode metrics JSON to {args.json_path}")


def _cmd_fault_campaign(args) -> None:
    from .reliability import (
        CampaignSpec,
        abft_cycle_overhead,
        resblock_fault_impact,
        run_campaign,
    )

    model, acc = _configs(args)
    spec = CampaignSpec(
        seq_len=acc.seq_len,
        depth=args.depth,
        trials=args.trials,
        rates=tuple(args.rates),
        sites=(tuple(args.sites) if args.sites
               else CampaignSpec().sites),
        abft=not args.no_abft,
        seed=args.seed,
    )
    result = run_campaign(spec)
    rows = [
        [site, mode, f"{rate:g}", str(injected),
         f"{detect:.1%}", f"{correct:.1%}", f"{silent:.1%}",
         f"{err:g}"]
        for site, mode, rate, injected, detect, correct, silent, err
        in result.summary_rows()
    ]
    protection = "ABFT on" if spec.abft else "unprotected"
    print(render_table(
        f"fault campaign — s={spec.seq_len}, k={spec.depth}, "
        f"{spec.trials} trials/cell, {protection}, seed {spec.seed}",
        ["site", "mode", "rate", "inj", "detect", "correct",
         "silent", "max err"],
        rows,
    ))
    overhead = abft_cycle_overhead(model, acc)
    print()
    print(render_table(
        "ABFT schedule overhead (MHA + FFN ResBlock pair)",
        ["metric", "value"],
        [["baseline cycles", f"{overhead.baseline_cycles:,}"],
         ["protected cycles", f"{overhead.protected_cycles:,}"],
         ["overhead", f"{overhead.overhead_cycles:,} cycles "
                      f"({overhead.overhead_fraction:.2%})"]],
    ))
    if args.end_to_end:
        impact = resblock_fault_impact(seed=args.seed)
        print()
        print(render_table(
            "stuck-PE impact on one quantized MHA ResBlock",
            ["metric", "value"],
            [["max |error|", f"{impact.max_abs_error:.4f}"],
             ["mean |error|", f"{impact.mean_abs_error:.6f}"],
             ["rows affected", str(impact.rows_affected)]],
        ))


def _cmd_profile(args) -> int:
    from .config import MemoryConfig
    from .core.cycle_model import ffn_cycle_breakdown, mha_cycle_breakdown
    from .telemetry import (
        MetricsRegistry,
        profile_schedule,
        to_prometheus_text,
        write_collapsed,
        write_json,
    )

    if args.point == "paper":
        model = preset("transformer-base")
        acc = AcceleratorConfig()
    else:
        model = preset(args.point)
        acc = AcceleratorConfig(
            seq_len=args.seq_len, clock_mhz=args.clock_mhz
        )
    mem = (
        MemoryConfig(bandwidth_gbps=args.bandwidth_gbps)
        if args.bandwidth_gbps is not None else None
    )
    registry = MetricsRegistry()
    blocks = ("mha", "ffn") if args.block == "both" else (args.block,)
    schedulers = {"mha": schedule_mha, "ffn": schedule_ffn}
    closed_forms = {"mha": mha_cycle_breakdown, "ffn": ffn_cycle_breakdown}
    spec = (_parse_compression(args.compression)
            if getattr(args, "compression", None) else None)
    if spec is not None:
        from .compress import (
            compressed_ffn_breakdown,
            compressed_mha_breakdown,
            schedule_compressed_ffn,
            schedule_compressed_mha,
        )
        schedulers = {
            "mha": lambda m, a, mm, registry=None:
                schedule_compressed_mha(m, a, spec, mm, registry=registry),
            "ffn": lambda m, a, mm, registry=None:
                schedule_compressed_ffn(m, a, spec, mm, registry=registry),
        }
        closed_forms = {
            "mha": lambda m, a, mm: compressed_mha_breakdown(m, a, spec, mm),
            "ffn": lambda m, a, mm: compressed_ffn_breakdown(m, a, spec, mm),
        }
    results = []
    mismatch = False
    for block in blocks:
        result = schedulers[block](model, acc, mem, registry=registry)
        results.append(result)
        prof = profile_schedule(result)
        closed = closed_forms[block](model, acc, mem).total_cycles
        title = f"{block.upper()} cycle attribution — {model.name}, "
        if spec is not None:
            title += f"compression {spec.label}, "
        print(render_table(
            title + f"s={acc.seq_len}",
            ["unit", "busy", "active", "overhead", "exclusive", "share"],
            prof.rows(),
        ))
        agree = prof.attributed_cycles == closed == result.total_cycles
        print(
            f"attributed {prof.attributed_cycles:,} cycles; closed-form "
            f"model says {closed:,} — "
            + ("exact match" if agree else "MISMATCH")
        )
        # Padding waste: streamed cycles count every SA column the
        # array clocked, effective cycles only the useful MACs — the
        # gap is the zero-padding of partial tiles (near-zero at full
        # prefill rows, ~(s-1)/s for a one-row decode pass).
        # Under compression the effective number stays on the dense MAC
        # roofline so it reads as speedup-vs-dense-ideal: >100% means
        # pruned MACs let the array outrun its own dense peak.
        roofline = " of the dense roofline" if spec is not None else ""
        print(
            f"SA utilization: {result.sa_utilization:.1%} effective "
            f"(useful MACs{roofline}) vs {result.padded_sa_utilization:.1%} "
            f"streamed (incl. zero-padded rows)"
        )
        if spec is not None:
            # The compressed split: the paid overhead is on the wall
            # clock (inside the sa row's overhead attribution, so the
            # partition above still sums exactly); the skipped MACs
            # never ran, so they are reported as avoided cycles next
            # to the dense reference rather than folded into a row.
            dense_result = (schedule_mha if block == "mha"
                            else schedule_ffn)(model, acc, mem)
            skipped = (dense_result.sa_active_cycles
                       - result.sa_active_cycles)
            savings = 1.0 - result.total_cycles / dense_result.total_cycles
            print(
                f"compressed split ({spec.label}): paid "
                f"{result.compress_overhead_cycles:,} index/row-gen "
                f"overhead cycles on the wall clock; skipped "
                f"{skipped:,} MAC cycles vs dense "
                f"({dense_result.total_cycles:,} -> "
                f"{result.total_cycles:,}, {savings:+.1%})"
            )
        print()
        if not agree:
            mismatch = True
    if args.collapsed:
        count = write_collapsed(results, args.collapsed)
        print(f"wrote {count} collapsed-stack lines to {args.collapsed}")
    if args.json_path:
        write_json(registry, args.json_path)
        print(f"wrote metrics JSON to {args.json_path}")
    if args.prom:
        with open(args.prom, "w") as handle:
            handle.write(to_prometheus_text(registry))
        print(f"wrote Prometheus exposition to {args.prom}")
    return 1 if mismatch else 0


def _parse_compression(text: str):
    """Parse a CLI spec string: ``dense``, ``circN`` or ``N:M``."""
    from .config import CompressionSpec, circulant_spec, nm_sparse_spec
    from .errors import ConfigError

    token = text.strip().lower()
    if token == "dense":
        return CompressionSpec()
    if token.startswith("circ") and token[4:].isdigit():
        return circulant_spec(int(token[4:]))
    if ":" in token:
        n_text, _, m_text = token.partition(":")
        if n_text.isdigit() and m_text.isdigit():
            return nm_sparse_spec(int(n_text), int(m_text))
    raise ConfigError(
        f"unrecognized compression spec {text!r} "
        "(expected 'dense', 'circN' or 'N:M')"
    )


def _cmd_compress(args) -> None:
    from .compress import compress_trace_spans, compression_sweep
    from .config import MemoryConfig, ServingConfig
    from .core.trace import write_span_trace
    from .memsys import memory_preset
    from .telemetry import MetricsRegistry

    model, acc = _configs(args)
    mem = None
    if args.memory_preset is not None or args.bandwidth_gbps is not None:
        mem = (memory_preset(args.memory_preset)
               if args.memory_preset is not None else MemoryConfig())
        if args.bandwidth_gbps is not None:
            mem = mem.with_updates(bandwidth_gbps=args.bandwidth_gbps)
    specs = (None if args.specs is None
             else [_parse_compression(s) for s in args.specs])
    nmt = None
    if args.bleu:
        import numpy as np

        from .config import ModelConfig
        from .nmt import SyntheticTranslationTask, train_model
        from .transformer import Transformer

        task = SyntheticTranslationTask(num_words=16, min_len=3, max_len=7)
        nmt_config = ModelConfig(
            "nmt-proxy", d_model=64, d_ff=256, num_heads=1,
            num_encoder_layers=1, num_decoder_layers=1,
            max_seq_len=16, dropout=0.0,
        )
        proxy = Transformer(
            nmt_config, len(task.src_vocab), len(task.tgt_vocab),
            rng=np.random.default_rng(args.seed),
        )
        train, _, test = task.splits(train=1200, valid=40, test=60,
                                     seed=args.seed + 4)
        print(f"training the BLEU proxy model ({args.epochs} epochs)...")
        train_model(proxy, task, train, epochs=args.epochs, batch_size=32,
                    warmup=200, lr_factor=2.0, seed=args.seed + 2)
        nmt = (proxy, task, test)
    serving = ServingConfig() if args.serving else None
    registry = MetricsRegistry()
    points = compression_sweep(
        model, acc, specs=specs, mem=mem, nmt=nmt, serving=serving,
        registry=registry,
    )
    headers = ["spec", "ratio", "bytes", "mha", "ffn", "savings",
               "overhead", "skipped", "stall", "resident"]
    if args.bleu:
        headers += ["BLEU", "drop"]
    if args.serving:
        headers += ["req/s"]
    rows = []
    for p in points:
        row = [
            p.label, f"{p.compression_ratio:.1f}x",
            f"{p.weight_bytes_ratio:.3f}", f"{p.mha_cycles:,}",
            f"{p.ffn_cycles:,}", f"{p.cycle_savings_frac:+.1%}",
            f"{p.index_overhead_cycles:,}", f"{p.skipped_cycles:,}",
            f"{p.stall_share:.1%}", str(p.footprint.layers_resident),
        ]
        if args.bleu:
            row += [f"{p.bleu:.1f}", f"{p.bleu_drop:+.1f}"]
        if args.serving:
            row += [f"{p.throughput_rps:.1f}"]
        rows.append(row)
    mem_label = (f"{mem.bandwidth_gbps:g} GB/s" if mem is not None
                 else "free weights")
    print(render_table(
        f"compression sweep — {model.name} @ s={acc.seq_len}, "
        f"{mem_label} (per-layer MHA+FFN cycles; savings vs dense)",
        headers, rows,
    ))
    print(
        "overhead = paid row-generator/index-decode cycles; skipped = "
        "MAC cycles pruned vs dense; resident = encoder layer sets in "
        "the Table II weight cache"
    )
    if args.json_path:
        import json as json_module

        payload = {
            "model": model.name,
            "seq_len": acc.seq_len,
            "bandwidth_gbps": mem.bandwidth_gbps if mem else None,
            "points": [p.as_dict() for p in points],
        }
        with open(args.json_path, "w") as handle:
            json_module.dump(payload, handle, indent=1)
        print(f"wrote sweep JSON to {args.json_path}")
    if args.trace_out:
        spans, counters = compress_trace_spans(points, acc.clock_mhz)
        count = write_span_trace(
            spans, args.trace_out, counters=counters,
            other_data={"model": model.name, "seq_len": acc.seq_len},
        )
        print(f"wrote {count} trace events to {args.trace_out}")


def _cmd_bench_diff(args) -> int:
    import glob
    import json

    from .telemetry import diff_benchmarks, load_json

    paths = args.current or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        raise RuntimeError(
            "no bench artifacts found (run the benchmarks suite or pass "
            "--current)"
        )
    current: dict = {"headlines": {}}
    suites = []
    for path in paths:
        doc = load_json(path)
        suites.append(str(doc.get("suite", path)))
        current["headlines"].update(doc.get("headlines", {}))
        for key in ("git_sha", "generated_utc", "config_fingerprint"):
            if key in doc:
                current.setdefault(key, doc[key])
    current["suite"] = ",".join(suites)
    baseline = load_json(args.baseline)
    report = diff_benchmarks(
        current, baseline, seed_slowdown=args.seed_slowdown,
        only=args.only,
    )
    seeded = (
        f", seeded slowdown x{args.seed_slowdown:g}"
        if args.seed_slowdown is not None else ""
    )
    print(render_table(
        f"bench-diff — {len(paths)} artifact(s) vs {args.baseline}"
        + seeded,
        ["headline", "baseline", "current", "delta", "dir", "tol",
         "status"],
        report.table_rows(),
    ))
    base_fp = report.baseline_meta.get("config_fingerprint")
    cur_fp = report.current_meta.get("config_fingerprint")
    if base_fp and cur_fp and base_fp != cur_fp:
        print(
            f"warning: config fingerprint changed ({base_fp} -> "
            f"{cur_fp}); the baseline pins a different operating point"
        )
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"wrote comparison report to {args.json_path}")
    if report.passed:
        print("gate passed: every pinned headline is inside its band")
        return 0
    names = ", ".join(r.name for r in report.regressions)
    print(f"gate FAILED: {len(report.regressions)} regression(s): {names}")
    return 1


def _cmd_trace(args) -> int:
    if args.requests is not None:
        return _cmd_trace_requests(args)
    if args.out is None:
        print("error: --out is required in block mode (or pass "
              "--requests to trace a simulated run)", file=sys.stderr)
        return 1
    model, acc = _configs(args)
    result = (schedule_mha if args.block == "mha" else schedule_ffn)(
        model, acc
    )
    count = write_trace(result, args.out, acc.clock_mhz)
    print(f"wrote {count} events ({result.total_cycles:,} cycles) to "
          f"{args.out}")
    return 0


def _run_traced(args):
    """Run the chosen simulator with a tail-sampling trace collector."""
    from .obs import SamplingPolicy, TraceCollector, TraceSampler

    # A requested waterfall must be full regardless of sampling luck.
    head_rate = 1.0 if args.req_id is not None else args.head_rate
    sampler = TraceSampler(
        SamplingPolicy(head_rate=head_rate, seed=args.seed)
    )
    tracer = TraceCollector(sampler=sampler)
    model, acc = _configs(args)
    if args.requests == "serving":
        from .config import ServingConfig
        from .serving import simulate_serving

        serving = ServingConfig(
            num_requests=args.requests_per_tenant,
            max_len=acc.seq_len,
            seed=args.seed,
        )
        simulate_serving(model, acc, serving, tracer=tracer)
    elif args.requests == "cluster":
        from .cluster import pinned_cluster, simulate_cluster

        cluster = pinned_cluster(
            requests_per_tenant=args.requests_per_tenant, seed=args.seed
        )
        simulate_cluster(
            model, cluster, seq_len=args.seq_len, tracer=tracer
        )
    else:
        from .config import DecodeConfig
        from .decode import simulate_decode

        decode = DecodeConfig(
            num_streams=args.requests_per_tenant, seed=args.seed
        )
        simulate_decode(model, acc, decode, tracer=tracer)
    return tracer


def _cmd_trace_requests(args) -> int:
    from .obs import render_trace_report, render_waterfall, write_otlp

    tracer = _run_traced(args)
    if args.req_id is not None:
        trace = tracer.get(args.req_id)
        if trace is None:
            print(f"error: no trace for request id {args.req_id} "
                  f"({len(tracer)} traces collected)", file=sys.stderr)
            return 1
        print(render_waterfall(trace))
    else:
        print(render_trace_report(tracer.traces, top=args.top))
    if args.otlp_out:
        count = write_otlp(tracer.traces, args.otlp_out, seed=args.seed)
        print(f"\nwrote {count} OTLP spans "
              f"({len(tracer.retained())} full traces of {len(tracer)}) "
              f"to {args.otlp_out}")
    if args.out:
        print("note: --out is ignored in --requests mode "
              "(use --otlp-out)", file=sys.stderr)
    return 0


def _cmd_slo_report(args) -> None:
    import json

    from .cluster import pinned_cluster, simulate_cluster
    from .cluster.scenario import bursty_obs_cluster
    from .obs import (
        BurnRateMonitor,
        SloPolicy,
        render_slo_report,
        slo_report_data,
    )

    model = preset(args.model)
    if args.scenario == "bursty":
        cluster = bursty_obs_cluster(
            requests_per_tenant=args.requests_per_tenant, seed=args.seed
        )
    else:
        cluster = pinned_cluster(
            requests_per_tenant=args.requests_per_tenant, seed=args.seed
        )
    policy = (SloPolicy() if args.objective is None
              else SloPolicy(objective=args.objective))
    monitor = BurnRateMonitor(policy=policy)
    result = simulate_cluster(
        model, cluster, seq_len=args.seq_len, monitor=monitor
    )
    metrics = result.metrics
    print(render_table(
        f"cluster — scenario {args.scenario}, seed {args.seed}",
        ["metric", "value"],
        [["offered", str(metrics.offered)],
         ["completed", str(metrics.completed)],
         ["SLO attainment", f"{metrics.slo_attainment:.1%}"],
         ["scale-ups (slo_burn)", str(sum(
             1 for a in result.actions
             if a.direction == "up" and a.reason == "slo_burn"
         ))]],
    ))
    print()
    print(render_slo_report(monitor))
    if args.trace_out:
        count = result.write_trace(
            args.trace_out, extra_spans=monitor.alert_spans()
        )
        print(f"\nwrote {count} trace events to {args.trace_out}")
    if args.json_path:
        payload = slo_report_data(monitor)
        payload["scenario"] = args.scenario
        payload["seed"] = args.seed
        payload["slo_attainment"] = metrics.slo_attainment
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True,
                      allow_nan=False)
        print(f"wrote slo report to {args.json_path}")


_COMMANDS = {
    "bench-diff": _cmd_bench_diff,
    "check": _cmd_check,
    "cluster-sim": _cmd_cluster_sim,
    "compress": _cmd_compress,
    "decode-sim": _cmd_decode_sim,
    "profile": _cmd_profile,
    "fault-campaign": _cmd_fault_campaign,
    "memsys": _cmd_memsys,
    "schedule": _cmd_schedule,
    "resources": _cmd_resources,
    "power": _cmd_power,
    "selftest": _cmd_selftest,
    "serve-sim": _cmd_serve_sim,
    "slo-report": _cmd_slo_report,
    "tables": _cmd_tables,
    "trace": _cmd_trace,
}


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        ret = _COMMANDS[args.command](args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return int(ret or 0)


if __name__ == "__main__":
    sys.exit(main())
