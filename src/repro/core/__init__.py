"""The accelerator itself: the paper's primary contribution.

Public surface:

* :class:`TransformerAccelerator` — Fig. 5 top level (functional + timing).
* :func:`schedule_mha` / :func:`schedule_ffn` — Algorithm 1 timelines.
* :class:`SystolicArray` / :class:`ScalarSystolicArray` — the s x 64 SA.
* :class:`SoftmaxModule` / :class:`LayerNormModule` — Fig. 6 / Fig. 8.
* Partitioning (Section III), memory, resource, power and cycle models.
"""

from .accelerator import AcceleratorOutput, TransformerAccelerator
from .cycle_model import (
    PAPER_CLOCK_MHZ,
    PAPER_FFN_CYCLES,
    PAPER_FFN_LATENCY_US,
    PAPER_FFN_SPEEDUP,
    PAPER_GPU_FFN_LATENCY_US,
    PAPER_GPU_MHA_LATENCY_US,
    PAPER_MHA_CYCLES,
    PAPER_MHA_LATENCY_US,
    PAPER_MHA_SPEEDUP,
    CycleBreakdown,
    ffn_cycle_breakdown,
    ffn_tile_bytes,
    mha_cycle_breakdown,
    mha_tile_bytes,
    paper_deviation,
    pass_busy_cycles,
)
from .deployment import (
    ImageFFNBlock,
    ImageMHABlock,
    export_image,
    image_bytes,
    load_image,
    save_image,
)
from .energy import EnergyBreakdown, energy_per_token_uj, schedule_energy
from .layernorm_module import LayerNormModule, LayerNormTiming
from .memory import (
    BRAM36_BITS,
    BiasMemory,
    MemoryBank,
    WeightMemory,
    bram36_banks,
    data_memory_layout,
)
from .model_runner import (
    AcceleratedStack,
    StackReport,
    ffn_reload_cycles,
    mha_reload_cycles,
    model_reload_cycles,
)
from .partition import (
    QKTPlan,
    WeightBlock,
    partition_columns,
    partition_model_weights,
    plan_qkt,
    qkt_multiply_ratio,
    qkt_multiply_ratio_exact,
    reassemble_columns,
)
from .pe import ProcessingElement, flip_bit
from .postprocess import AdderBank, ReLUUnit
from .power_model import (
    PAPER_DYNAMIC_W,
    PAPER_STATIC_W,
    PAPER_TOTAL_W,
    PowerEstimate,
    energy_per_resblock_uj,
    estimate_power,
)
from .resource_model import (
    PAPER_TABLE2,
    XCVU13P,
    ResourceEstimate,
    accumulator_bits,
    estimate_layernorm,
    estimate_softmax,
    estimate_systolic_array,
    estimate_top,
    estimate_weight_memory,
    utilization_fractions,
)
from .scheduler import (
    ScheduleResult,
    TimelineEvent,
    schedule_autoregressive,
    schedule_encoder_layer,
    schedule_ffn,
    schedule_mha,
    schedule_model,
)
from .softmax_module import SoftmaxModule, SoftmaxTiming
from .streaming import StreamEvent, StreamingLayerNorm, StreamingSoftmax
from .systolic_array import (
    PassResult,
    PEFault,
    ScalarSystolicArray,
    SystolicArray,
    expected_pass_cycles,
    tiled_matmul,
)
from .trace import (
    TraceSpan,
    counter_events,
    schedule_to_trace_events,
    spans_to_trace_events,
    write_span_trace,
    write_trace,
)

__all__ = [
    "AcceleratedStack",
    "AcceleratorOutput",
    "AdderBank",
    "BRAM36_BITS",
    "BiasMemory",
    "CycleBreakdown",
    "EnergyBreakdown",
    "ImageFFNBlock",
    "ImageMHABlock",
    "LayerNormModule",
    "LayerNormTiming",
    "MemoryBank",
    "PAPER_CLOCK_MHZ",
    "PAPER_DYNAMIC_W",
    "PAPER_FFN_CYCLES",
    "PAPER_FFN_LATENCY_US",
    "PAPER_FFN_SPEEDUP",
    "PAPER_GPU_FFN_LATENCY_US",
    "PAPER_GPU_MHA_LATENCY_US",
    "PAPER_MHA_CYCLES",
    "PAPER_MHA_LATENCY_US",
    "PAPER_MHA_SPEEDUP",
    "PAPER_STATIC_W",
    "PAPER_TABLE2",
    "PAPER_TOTAL_W",
    "PEFault",
    "PassResult",
    "PowerEstimate",
    "ProcessingElement",
    "QKTPlan",
    "ReLUUnit",
    "ResourceEstimate",
    "ScalarSystolicArray",
    "ScheduleResult",
    "SoftmaxModule",
    "SoftmaxTiming",
    "StackReport",
    "StreamEvent",
    "StreamingLayerNorm",
    "StreamingSoftmax",
    "SystolicArray",
    "TimelineEvent",
    "TraceSpan",
    "TransformerAccelerator",
    "WeightBlock",
    "WeightMemory",
    "XCVU13P",
    "accumulator_bits",
    "bram36_banks",
    "counter_events",
    "data_memory_layout",
    "energy_per_resblock_uj",
    "energy_per_token_uj",
    "estimate_layernorm",
    "estimate_power",
    "estimate_softmax",
    "estimate_systolic_array",
    "estimate_top",
    "estimate_weight_memory",
    "expected_pass_cycles",
    "export_image",
    "image_bytes",
    "load_image",
    "ffn_cycle_breakdown",
    "ffn_reload_cycles",
    "ffn_tile_bytes",
    "flip_bit",
    "mha_cycle_breakdown",
    "mha_reload_cycles",
    "mha_tile_bytes",
    "model_reload_cycles",
    "paper_deviation",
    "pass_busy_cycles",
    "partition_columns",
    "partition_model_weights",
    "plan_qkt",
    "qkt_multiply_ratio",
    "qkt_multiply_ratio_exact",
    "reassemble_columns",
    "save_image",
    "schedule_autoregressive",
    "schedule_encoder_layer",
    "schedule_energy",
    "schedule_ffn",
    "schedule_mha",
    "schedule_model",
    "schedule_to_trace_events",
    "spans_to_trace_events",
    "tiled_matmul",
    "utilization_fractions",
    "write_span_trace",
    "write_trace",
]
