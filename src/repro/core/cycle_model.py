"""Closed-form analytic cycle model (validates the event scheduler).

Derives the same totals as :mod:`repro.core.scheduler` algebraically, so
tests can check the two agree exactly, and exposes the paper's published
reference numbers for comparison in benches and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig, ModelConfig
from ..errors import ScheduleError

#: Published Section V-B results for Transformer-base, s = 64, batch 1.
PAPER_MHA_CYCLES = 21_344
PAPER_FFN_CYCLES = 42_099
PAPER_CLOCK_MHZ = 200.0
PAPER_MHA_LATENCY_US = 106.7
PAPER_FFN_LATENCY_US = 210.5
PAPER_GPU_MHA_LATENCY_US = 1_557.8
PAPER_GPU_FFN_LATENCY_US = 713.4
PAPER_MHA_SPEEDUP = 14.6
PAPER_FFN_SPEEDUP = 3.4


@dataclass(frozen=True)
class CycleBreakdown:
    """Analytic latency decomposition of one ResBlock.

    Attributes:
        active_cycles: Sum of GEMM inner dimensions (pure MAC streaming).
        issue_cycles: Control overhead over all passes.
        skew_cycles: Fill/drain skew paid at breaks/conflicts (or every
            pass without overlap).
        softmax_stall_cycles: SA idle time waiting for the softmax
            module's exposed tail when the concurrent ``V W_Vi`` pass is
            too short to hide it (zero at the paper's operating point;
            MHA only).
        layernorm_cycles: Exposed LayerNorm tail + output stream.
        total_cycles: Sum of the above.
        ideal_cycles: MACs / PE count (the 100%-utilization bound).
    """

    active_cycles: int
    issue_cycles: int
    skew_cycles: int
    layernorm_cycles: int
    total_cycles: int
    ideal_cycles: int
    softmax_stall_cycles: int = 0

    @property
    def utilization(self) -> float:
        return self.ideal_cycles / self.total_cycles


def _skew_and_drain(acc: AcceleratorConfig, n: int) -> int:
    return (acc.seq_len + n - 2) + acc.sa_drain_cycles


def _layernorm_tail(acc: AcceleratorConfig, d_model: int) -> int:
    if acc.layernorm_mode == "straightforward":
        added = 2 * d_model + acc.layernorm_pipeline_depth
    elif acc.layernorm_mode == "step_one":
        added = d_model + acc.layernorm_pipeline_depth
    else:
        added = acc.layernorm_pipeline_depth
    return added + d_model


def mha_cycle_breakdown(
    model: ModelConfig, acc: AcceleratorConfig
) -> CycleBreakdown:
    """Analytic cycle count of one MHA ResBlock.

    Pass inventory per head: three d_model-deep projections,
    ``ceil(s/64)`` 64-deep ``Q K^T`` chunk passes (Section III's Q
    partitioning; one zero-padded pass when s <= 64) and one s-deep
    ``P V``; then ``h`` d_model-deep output passes.  Skew is paid by the
    per-head dependency breaks (first ``Q K^T`` chunk, ``P V``), the
    first pass overall, the first G pass, and — with single-ported
    buffers — every pass that re-streams its predecessor's buffer
    (extra ``Q K^T`` chunks and the remaining G passes).

    The softmax module's exposed tail (``s`` output columns plus its
    pipeline depth) runs concurrently with the ``V W_Vi`` pass; when the
    tail outlasts that pass — small ``d_model`` or ``s > 64`` — the
    ``P V`` pass stalls for the difference on every head
    (``softmax_stall_cycles``).  At the paper's operating point the
    stall is zero, which is exactly its claim that the softmax "hardly
    stops" the array.
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    qkt_passes = -(-s // acc.sa_cols)
    active = h * (3 * d_model + qkt_passes * acc.sa_cols + s) + h * d_model
    passes = h * (4 + qkt_passes) + h
    issue = passes * (acc.pass_issue_cycles + acc.weight_load_cycles)
    skew_full = _skew_and_drain(acc, acc.sa_cols)
    if acc.pass_overlap:
        # Breaks: first QKt chunk and PV per head, the first pass overall,
        # and the first G pass (operands from the drained P buffer).
        skew = (2 * h + 2) * skew_full
        if acc.single_ported_buffers:
            # Extra QKt chunks contend on Temp1; G passes contend on P.
            skew += h * (qkt_passes - 1) * skew_full
            skew += (h - 1) * skew_full
    else:
        skew = passes * skew_full
    # The PV pass waits for the softmax output (s second-pass columns +
    # pipeline tail after the last QKt drain column); the V projection
    # is the only SA work hiding that wait.
    softmax_exposed = s + acc.softmax_pipeline_depth
    v_busy = acc.pass_issue_cycles + acc.weight_load_cycles + d_model
    if not acc.pass_overlap:
        v_busy += skew_full
    stall = h * max(0, softmax_exposed - v_busy)
    layernorm = _layernorm_tail(acc, d_model)
    total = active + issue + skew + stall + layernorm
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        softmax_stall_cycles=stall,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=model.mha_macs(s) // acc.num_pes,
    )


def ffn_cycle_breakdown(
    model: ModelConfig, acc: AcceleratorConfig
) -> CycleBreakdown:
    """Analytic cycle count of one FFN ResBlock.

    ``4h`` d_model-deep W1 passes then ``h`` d_ff-deep W2 passes; with
    single-ported buffers every pass pays skew (W1 passes all stream X,
    W2 passes all stream P).
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    s = acc.seq_len
    d_model = model.d_model
    d_ff = model.d_ff
    num_w1 = d_ff // acc.sa_cols
    num_w2 = d_model // acc.sa_cols
    active = num_w1 * d_model + num_w2 * d_ff
    passes = num_w1 + num_w2
    issue = passes * (acc.pass_issue_cycles + acc.weight_load_cycles)
    skew_full = _skew_and_drain(acc, acc.sa_cols)
    if acc.pass_overlap:
        if acc.single_ported_buffers:
            skew = passes * skew_full
        else:
            skew = 2 * skew_full          # first pass + the W1->W2 break
    else:
        skew = passes * skew_full
    layernorm = _layernorm_tail(acc, d_model)
    total = active + issue + skew + layernorm
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=model.ffn_macs(s) // acc.num_pes,
    )


def paper_deviation(measured: int, published: int) -> float:
    """Signed relative deviation of a measured count from the paper's."""
    if published <= 0:
        raise ScheduleError("published count must be positive")
    return measured / published - 1.0
