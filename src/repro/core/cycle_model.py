"""Closed-form analytic cycle model (validates the event scheduler).

Derives the same totals as :mod:`repro.core.scheduler` algebraically, so
tests can check the two agree exactly, and exposes the paper's published
reference numbers for comparison in benches and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import AcceleratorConfig, MemoryConfig, ModelConfig
from ..errors import ScheduleError

#: Published Section V-B results for Transformer-base, s = 64, batch 1.
PAPER_MHA_CYCLES = 21_344
PAPER_FFN_CYCLES = 42_099
PAPER_CLOCK_MHZ = 200.0
PAPER_MHA_LATENCY_US = 106.7
PAPER_FFN_LATENCY_US = 210.5
PAPER_GPU_MHA_LATENCY_US = 1_557.8
PAPER_GPU_FFN_LATENCY_US = 713.4
PAPER_MHA_SPEEDUP = 14.6
PAPER_FFN_SPEEDUP = 3.4


@dataclass(frozen=True)
class CycleBreakdown:
    """Analytic latency decomposition of one ResBlock.

    Attributes:
        active_cycles: Sum of GEMM inner dimensions (pure MAC streaming).
        issue_cycles: Control overhead over all passes.
        skew_cycles: Fill/drain skew paid at breaks/conflicts (or every
            pass without overlap).
        softmax_stall_cycles: SA idle time waiting for the softmax
            module's exposed tail when the concurrent ``V W_Vi`` pass is
            too short to hide it (zero at the paper's operating point;
            MHA only).
        layernorm_cycles: Exposed LayerNorm tail + output stream.
        abft_cycles: ABFT verification exposure over all passes (zero
            unless ``abft_protected``): the comparator tail of every
            pass plus the drains that overlap would otherwise hide.
        memsys_stall_cycles: SA idle time waiting for off-chip weight
            tiles (zero unless a finite :class:`MemoryConfig` is
            given): the cold-start fetch plus any steady-state fetch
            that outlasts the pass it hides behind
            (:mod:`repro.memsys`).
        total_cycles: Sum of the above.
        ideal_cycles: MACs / PE count (the 100%-utilization bound).
    """

    active_cycles: int
    issue_cycles: int
    skew_cycles: int
    layernorm_cycles: int
    total_cycles: int
    ideal_cycles: int
    softmax_stall_cycles: int = 0
    abft_cycles: int = 0
    memsys_stall_cycles: int = 0

    @property
    def utilization(self) -> float:
        return self.ideal_cycles / self.total_cycles


def _skew_and_drain(acc: AcceleratorConfig, n: int) -> int:
    return (acc.seq_len + n - 2) + acc.sa_drain_cycles


def _abft_exposure(
    acc: AcceleratorConfig, passes: int, break_passes: int
) -> int:
    """ABFT verify cycles over ``passes`` SA passes.

    Every protected pass pays the ``abft_check_cycles`` comparator tail;
    with ``pass_overlap`` the passes that are *not* dependency breaks
    (``passes - break_passes``) must additionally expose the drain they
    would otherwise hide behind the next pass's fill.  Without overlap
    every pass already pays its drain.
    """
    if not acc.abft_protected:
        return 0
    exposure = passes * acc.abft_check_cycles
    if acc.pass_overlap:
        exposure += (passes - break_passes) * acc.sa_drain_cycles
    return exposure


def _layernorm_tail(acc: AcceleratorConfig, d_model: int) -> int:
    if acc.layernorm_mode == "straightforward":
        added = 2 * d_model + acc.layernorm_pipeline_depth
    elif acc.layernorm_mode == "step_one":
        added = d_model + acc.layernorm_pipeline_depth
    else:
        added = acc.layernorm_pipeline_depth
    return added + d_model


def pass_busy_cycles(
    acc: AcceleratorConfig,
    k: int,
    loads_weights: bool = True,
    break_pass: bool = False,
) -> int:
    """SA-busy cycles of one pass, mirroring the scheduler's rules.

    ``break_pass`` covers every reason the scheduler charges full skew:
    a dependency break, a single-ported-buffer conflict, or being the
    first pass.  This is also the *hiding window* the tile prefetcher
    gets per steady-state weight pass, which is why it is public
    (:mod:`repro.memsys` sizes the compute/memory-bound crossover from
    it).
    """
    busy = acc.pass_issue_cycles + k
    if loads_weights:
        busy += acc.weight_load_cycles
    if acc.pass_overlap:
        if break_pass:
            busy += _skew_and_drain(acc, acc.sa_cols)
        elif acc.abft_protected:
            busy += acc.sa_drain_cycles
    else:
        busy += _skew_and_drain(acc, acc.sa_cols)
    if acc.abft_protected:
        busy += acc.abft_check_cycles
    return busy


def mha_tile_bytes(model: ModelConfig, acc: AcceleratorConfig) -> int:
    """Bytes of one 64-column MHA weight tile (W_Q/K/V/G are d_model-deep)."""
    return model.d_model * acc.sa_cols * acc.weight_bits // 8


def ffn_tile_bytes(
    model: ModelConfig, acc: AcceleratorConfig
) -> tuple[int, int]:
    """Bytes of one 64-column W1 tile and one W2 tile."""
    w1 = model.d_model * acc.sa_cols * acc.weight_bits // 8
    w2 = model.d_ff * acc.sa_cols * acc.weight_bits // 8
    return w1, w2


def _mha_memsys_stalls(
    model: ModelConfig, acc: AcceleratorConfig, mem: MemoryConfig
) -> tuple[int, int]:
    """(memsys stall, softmax stall) of one MHA ResBlock.

    Mirrors the event timeline's prefetch recursion: the fetch of each
    weight tile starts when the previous weight pass starts, so a tile
    stalls its pass by ``max(0, F - gap)`` where ``gap`` is the SA time
    between consecutive weight-pass starts.  A stall on ``V W_Vi``
    also absorbs part of the softmax tail the ``P V`` pass would have
    waited for, so the two terms are coupled per head.
    """
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    qkt_passes = -(-s // acc.sa_cols)
    exposed = s + acc.softmax_pipeline_depth
    b_chain = pass_busy_cycles(acc, d_model, True, False)
    fetch = mem.transfer_cycles(mha_tile_bytes(model, acc), acc.clock_mhz)
    if not mem.double_buffered_prefetch:
        # Every weight pass waits for its own tile; the V-projection's
        # wait doubles as cover for the softmax tail.
        mem_stall = 4 * h * fetch
        sm_stall = h * max(0, exposed - b_chain - fetch)
        return mem_stall, sm_stall
    b_first = pass_busy_cycles(acc, d_model, True, True)
    b_qkt0 = pass_busy_cycles(acc, acc.sa_cols, False, True)
    b_qktx = pass_busy_cycles(
        acc, acc.sa_cols, False, acc.single_ported_buffers
    )
    b_pv = pass_busy_cycles(acc, s, False, True)
    gap_v = b_chain + b_qkt0 + (qkt_passes - 1) * b_qktx
    mem_stall = 0
    sm_stall = 0
    stall_v = 0
    for i in range(h):
        if i == 0:
            # Cold start: nothing hides the very first tile's fetch.
            stall_q = fetch
        else:
            gap_q = max(b_chain, exposed - stall_v) + b_pv
            stall_q = max(0, fetch - gap_q)
        stall_k = max(0, fetch - (b_first if i == 0 else b_chain))
        stall_v = max(0, fetch - gap_v)
        mem_stall += stall_q + stall_k + stall_v
        sm_stall += max(0, exposed - b_chain - stall_v)
    gap_g0 = max(b_chain, exposed - stall_v) + b_pv
    mem_stall += max(0, fetch - gap_g0)
    if h >= 2:
        b_g0 = pass_busy_cycles(acc, d_model, True, True)
        b_gx = pass_busy_cycles(
            acc, d_model, True, acc.single_ported_buffers
        )
        mem_stall += max(0, fetch - b_g0)
        mem_stall += (h - 2) * max(0, fetch - b_gx)
    return mem_stall, sm_stall


def _ffn_memsys_stalls(
    model: ModelConfig, acc: AcceleratorConfig, mem: MemoryConfig
) -> int:
    """Memsys stall of one FFN ResBlock (same recursion, linear chain)."""
    w1_bytes, w2_bytes = ffn_tile_bytes(model, acc)
    fetch1 = mem.transfer_cycles(w1_bytes, acc.clock_mhz)
    fetch2 = mem.transfer_cycles(w2_bytes, acc.clock_mhz)
    num_w1 = model.d_ff // acc.sa_cols
    num_w2 = model.d_model // acc.sa_cols
    if not mem.double_buffered_prefetch:
        return num_w1 * fetch1 + num_w2 * fetch2
    b1_first = pass_busy_cycles(acc, model.d_model, True, True)
    b1_other = pass_busy_cycles(
        acc, model.d_model, True, acc.single_ported_buffers
    )
    b2_first = pass_busy_cycles(acc, model.d_ff, True, True)
    b2_other = pass_busy_cycles(
        acc, model.d_ff, True, acc.single_ported_buffers
    )
    stall = fetch1                       # cold start on w1.0
    if num_w1 >= 2:
        stall += max(0, fetch1 - b1_first)
        stall += (num_w1 - 2) * max(0, fetch1 - b1_other)
    last_w1 = b1_first if num_w1 == 1 else b1_other
    stall += max(0, fetch2 - last_w1)
    if num_w2 >= 2:
        stall += max(0, fetch2 - b2_first)
        stall += (num_w2 - 2) * max(0, fetch2 - b2_other)
    return stall


def mha_cycle_breakdown(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: Optional[MemoryConfig] = None,
) -> CycleBreakdown:
    """Analytic cycle count of one MHA ResBlock.

    Pass inventory per head: three d_model-deep projections,
    ``ceil(s/64)`` 64-deep ``Q K^T`` chunk passes (Section III's Q
    partitioning; one zero-padded pass when s <= 64) and one s-deep
    ``P V``; then ``h`` d_model-deep output passes.  Skew is paid by the
    per-head dependency breaks (first ``Q K^T`` chunk, ``P V``), the
    first pass overall, the first G pass, and — with single-ported
    buffers — every pass that re-streams its predecessor's buffer
    (extra ``Q K^T`` chunks and the remaining G passes).

    The softmax module's exposed tail (``s`` output columns plus its
    pipeline depth) runs concurrently with the ``V W_Vi`` pass; when the
    tail outlasts that pass — small ``d_model`` or ``s > 64`` — the
    ``P V`` pass stalls for the difference on every head
    (``softmax_stall_cycles``).  At the paper's operating point the
    stall is zero, which is exactly its claim that the softmax "hardly
    stops" the array.
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    qkt_passes = -(-s // acc.sa_cols)
    active = h * (3 * d_model + qkt_passes * acc.sa_cols + s) + h * d_model
    passes = h * (4 + qkt_passes) + h
    # Only weight-streaming passes pay the weight fetch: the three
    # projections and the G pass per head.  Q K^T and the softmax x Temp2
    # product read both operands from Data Memory.
    weight_passes = 4 * h
    issue = (passes * acc.pass_issue_cycles
             + weight_passes * acc.weight_load_cycles)
    skew_full = _skew_and_drain(acc, acc.sa_cols)
    if acc.pass_overlap:
        # Breaks: first QKt chunk and PV per head, the first pass overall,
        # and the first G pass (operands from the drained P buffer).
        break_passes = 2 * h + 2
        if acc.single_ported_buffers:
            # Extra QKt chunks contend on Temp1; G passes contend on P.
            break_passes += h * (qkt_passes - 1) + (h - 1)
    else:
        break_passes = passes
    skew = break_passes * skew_full
    abft = _abft_exposure(acc, passes, break_passes)
    # The PV pass waits for the softmax output (s second-pass columns +
    # pipeline tail after the last QKt drain column); the V projection
    # is the only SA work hiding that wait.
    softmax_exposed = s + acc.softmax_pipeline_depth
    v_busy = acc.pass_issue_cycles + acc.weight_load_cycles + d_model
    if acc.pass_overlap:
        if acc.abft_protected:
            # V W_Vi is a chained (non-break) pass: with ABFT it exposes
            # its drain and comparator tail, covering more of the wait.
            v_busy += acc.sa_drain_cycles + acc.abft_check_cycles
    else:
        v_busy += skew_full
        if acc.abft_protected:
            v_busy += acc.abft_check_cycles
    if mem is not None and not mem.is_unlimited:
        # A weight-tile stall on V W_Vi also covers part of the softmax
        # tail, so both terms come from the coupled recursion.
        mem_stall, stall = _mha_memsys_stalls(model, acc, mem)
    else:
        mem_stall = 0
        stall = h * max(0, softmax_exposed - v_busy)
    layernorm = _layernorm_tail(acc, d_model)
    total = active + issue + skew + stall + layernorm + abft + mem_stall
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        softmax_stall_cycles=stall,
        abft_cycles=abft,
        memsys_stall_cycles=mem_stall,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=model.mha_macs(s) // acc.num_pes,
    )


def ffn_cycle_breakdown(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: Optional[MemoryConfig] = None,
) -> CycleBreakdown:
    """Analytic cycle count of one FFN ResBlock.

    ``4h`` d_model-deep W1 passes then ``h`` d_ff-deep W2 passes; with
    single-ported buffers every pass pays skew (W1 passes all stream X,
    W2 passes all stream P).
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    s = acc.seq_len
    d_model = model.d_model
    d_ff = model.d_ff
    num_w1 = d_ff // acc.sa_cols
    num_w2 = d_model // acc.sa_cols
    active = num_w1 * d_model + num_w2 * d_ff
    passes = num_w1 + num_w2
    issue = passes * (acc.pass_issue_cycles + acc.weight_load_cycles)
    skew_full = _skew_and_drain(acc, acc.sa_cols)
    if acc.pass_overlap:
        if acc.single_ported_buffers:
            break_passes = passes
        else:
            break_passes = 2              # first pass + the W1->W2 break
    else:
        break_passes = passes
    skew = break_passes * skew_full
    abft = _abft_exposure(acc, passes, break_passes)
    layernorm = _layernorm_tail(acc, d_model)
    mem_stall = (
        _ffn_memsys_stalls(model, acc, mem)
        if mem is not None and not mem.is_unlimited else 0
    )
    total = active + issue + skew + layernorm + abft + mem_stall
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        abft_cycles=abft,
        memsys_stall_cycles=mem_stall,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=model.ffn_macs(s) // acc.num_pes,
    )


def paper_deviation(measured: int, published: int) -> float:
    """Signed relative deviation of a measured count from the paper's."""
    if published <= 0:
        raise ScheduleError("published count must be positive")
    return measured / published - 1.0
