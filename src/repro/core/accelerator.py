"""Top-level accelerator model (paper Fig. 5).

:class:`TransformerAccelerator` executes Algorithm 1 functionally — every
GEMM through the (optionally cycle-accurate) systolic array on real INT8
codes, the softmax through the Fig. 6 module, bias/residual through the
adder banks, and the final normalization through the Fig. 8 LayerNorm
module — while the scheduler provides the cycle timeline for the same
work.  Its integer arithmetic is bit-identical to
:class:`~repro.quant.qmodel.QuantMHAResBlock` /
:class:`~repro.quant.qmodel.QuantFFNResBlock`, which the integration tests
verify, so accelerator outputs can be dropped back into the quantized
Transformer unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import AcceleratorConfig, ModelConfig
from ..errors import ScheduleError, ShapeError
from ..quant.qmodel import QuantFFNResBlock, QuantMHAResBlock
from ..transformer.functional import LAYERNORM_EPS
from .layernorm_module import LayerNormModule
from .memory import BiasMemory, WeightMemory
from .partition import partition_columns
from .postprocess import AdderBank, ReLUUnit
from .scheduler import ScheduleResult, schedule_ffn, schedule_mha
from .softmax_module import SoftmaxModule
from .systolic_array import SystolicArray


@dataclass(frozen=True)
class AcceleratorOutput:
    """Result of one ResBlock execution on the accelerator.

    Attributes:
        output: ``(s, d_model)`` FP output of the ResBlock.
        schedule: The cycle-level timeline for this execution.
        latency_us: End-to-end latency at the configured clock.
    """

    output: np.ndarray
    schedule: ScheduleResult

    @property
    def cycles(self) -> int:
        return self.schedule.total_cycles


class TransformerAccelerator:
    """Reconfigurable MHA/FFN ResBlock accelerator (the paper's design).

    Usage::

        acc = TransformerAccelerator(model_cfg, acc_cfg)
        acc.load_mha(quant_mha_block)      # INT8 tiles -> weight memory
        result = acc.run_mha(q_in, kv_in, mask)

    Args:
        model: Transformer hyper-parameters (must have 64-wide heads).
        config: Accelerator geometry/timing parameters.
        cycle_accurate_sa: Route every GEMM through the per-cycle SA
            simulator instead of a direct integer matmul.  Bit-identical
            results, ~50x slower; used by the validation tests.
        exact_nonlinear: Use exact FP softmax/layernorm instead of the
            hardware EXP/LN/LUT approximations (for isolating quantization
            effects; the RTL corresponds to ``False``).
    """

    def __init__(
        self,
        model: ModelConfig,
        config: AcceleratorConfig,
        cycle_accurate_sa: bool = False,
        exact_nonlinear: bool = False,
    ) -> None:
        if model.head_dim != config.sa_cols:
            raise ScheduleError(
                f"model head dim {model.head_dim} != SA width {config.sa_cols}"
            )
        self.model = model
        self.config = config
        self.cycle_accurate_sa = cycle_accurate_sa
        self.exact_nonlinear = exact_nonlinear
        self.sa = SystolicArray(
            config.seq_len, config.sa_cols, acc_bits=config.acc_bits
        )
        self.softmax = SoftmaxModule(config, approximate=not exact_nonlinear)
        self.layernorm = LayerNormModule(
            config, model.d_model, approximate=not exact_nonlinear,
            eps=LAYERNORM_EPS,
        )
        self.bias_adders = AdderBank(config.seq_len)
        self.residual_adders = AdderBank(config.seq_len)
        self.relu = ReLUUnit(config.seq_len)
        self.weight_memory = WeightMemory(word_bits=config.weight_bits)
        self.bias_memory = BiasMemory()
        self._mha_block: Optional[QuantMHAResBlock] = None
        self._ffn_block: Optional[QuantFFNResBlock] = None

    # ------------------------------------------------------------------
    # Weight loading (Fig. 4 partitioning into weight memory)
    # ------------------------------------------------------------------
    def load_mha(self, block: QuantMHAResBlock) -> None:
        """Partition and store one quantized MHA ResBlock's weights."""
        if block.d_model != self.model.d_model:
            raise ShapeError(
                f"block d_model {block.d_model} != model {self.model.d_model}"
            )
        for kind in ("q", "k", "v", "g"):
            tiles = partition_columns(
                block.weights[kind].codes, f"W{kind.upper()}",
                self.config.sa_cols,
            )
            for tile in tiles:
                self.weight_memory.store_tile(tile.name, tile.index, tile.data)
                self.bias_memory.store(
                    f"B{kind.upper()}", tile.index,
                    block.biases[kind][tile.columns],
                )
        self._mha_block = block

    def load_ffn(self, block: QuantFFNResBlock) -> None:
        """Partition and store one quantized FFN ResBlock's weights."""
        for name, qt, bias in (
            ("W1", block.w1, block.b1), ("W2", block.w2, block.b2)
        ):
            tiles = partition_columns(qt.codes, name, self.config.sa_cols)
            for tile in tiles:
                self.weight_memory.store_tile(tile.name, tile.index, tile.data)
                self.bias_memory.store(
                    f"B{name[1]}", tile.index, bias[tile.columns]
                )
        self._ffn_block = block

    # ------------------------------------------------------------------
    # GEMM execution
    # ------------------------------------------------------------------
    def _gemm(self, a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
        """Integer GEMM on the SA (padding rows up to the array height)."""
        a_codes = np.asarray(a_codes, dtype=np.int64)
        b_codes = np.asarray(b_codes, dtype=np.int64)
        if not self.cycle_accurate_sa:
            return a_codes @ b_codes
        rows = a_codes.shape[0]
        if rows < self.sa.rows:
            a_codes = np.pad(a_codes, ((0, self.sa.rows - rows), (0, 0)))
        out = np.zeros((self.sa.rows, b_codes.shape[1]), dtype=np.int64)
        for c0 in range(0, b_codes.shape[1], self.sa.cols):
            c1 = min(c0 + self.sa.cols, b_codes.shape[1])
            out[:, c0:c1] = self.sa.run_pass(a_codes, b_codes[:, c0:c1]).product
        return out[:rows]

    def _add_bias_columns(
        self, acc_matrix: np.ndarray, scale: float, bias: np.ndarray
    ) -> np.ndarray:
        """Dequantize SA accumulators and add bias, column by column.

        The RTL adds a requantized bias in the integer domain; the model
        dequantizes first (mathematically identical placement of the same
        values) to stay bit-aligned with :mod:`repro.quant`.
        """
        return acc_matrix.astype(np.float64) * scale + bias

    # ------------------------------------------------------------------
    # Algorithm 1, lines 1-13: the MHA ResBlock
    # ------------------------------------------------------------------
    def run_mha(
        self,
        q_in: np.ndarray,
        kv_in: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> AcceleratorOutput:
        """Execute one MHA ResBlock: output = LayerNorm(Q + MHA(Q, K, V)).

        Args:
            q_in: ``(s, d_model)`` FP query-side input (also the residual).
            kv_in: ``(s_kv, d_model)`` key/value input; defaults to
                ``q_in`` (self-attention; the paper's Fig. 3 K = V case).
            mask: Optional ``(s, s_kv)`` illegal-connection mask.
        """
        block = self._mha_block
        if block is None:
            raise ScheduleError("call load_mha() before run_mha()")
        q_in = self._check_input(q_in, "q_in")
        kv_in = q_in if kv_in is None else self._check_input(kv_in, "kv_in")
        cal = block._cal
        pq = cal.params(block._tap("in_q"))
        pkv = cal.params(block._tap("in_kv"))
        p_qa = cal.params(block._tap("q_act"))
        p_ka = cal.params(block._tap("k_act"))
        p_va = cal.params(block._tap("v_act"))
        p_ctx = cal.params(block._tap("context"))
        q_codes = pq.quantize(q_in)
        kv_codes = pkv.quantize(kv_in)

        h = self.model.num_heads
        d_k = self.config.sa_cols
        s = q_in.shape[0]
        context = np.zeros((s, self.model.d_model))
        for i in range(h):
            # Lines 3-4: Temp1 = Q W_Qi + bias, Temp2 = K W_Ki + bias.
            q_head = self._projection("WQ", "BQ", q_codes, pq.scale, i)
            k_head = self._projection("WK", "BK", kv_codes, pkv.scale, i)
            # Requantize the projected activations (the hardware writes
            # them to Temp1/Temp2 as INT8).
            qh_codes = p_qa.quantize(q_head)
            kh_codes = p_ka.quantize(k_head)
            # Line 5: Softmax_Input = Temp1 x Temp2^T (zero-padded pass).
            logits = (
                self._gemm(qh_codes, kh_codes.T).astype(np.float64)
                * (p_qa.scale * p_ka.scale)
            )
            # Line 6: softmax runs while the SA computes V W_Vi + bias.
            probs = self.softmax(logits, mask)
            v_head = self._projection("WV", "BV", kv_codes, pkv.scale, i)
            vh_codes = p_va.quantize(v_head)
            prob_codes = block._prob_params.quantize(probs)
            # Line 7: P_i = softmax_output x Temp2.
            head_ctx = (
                self._gemm(prob_codes, vh_codes).astype(np.float64)
                * (block._prob_params.scale * p_va.scale)
            )
            context[:, i * d_k:(i + 1) * d_k] = head_ctx
        # Lines 9-11: G_i = P W_Gi + bias_Gi + Q_i (residual adder bank).
        ctx_codes = p_ctx.quantize(context)
        g = np.zeros((s, self.model.d_model))
        for i in range(h):
            tile = self.weight_memory.load_tile("WG", i)
            acc = self._gemm(ctx_codes, tile)
            cols = slice(i * d_k, (i + 1) * d_k)
            partial = self._add_bias_columns(
                acc, p_ctx.scale * block.weights["g"].params.scale,
                self.bias_memory.load("BG", i),
            )
            g[:, cols] = partial + q_in[:, cols]
        # Line 12: LayerNorm.
        fp_norm = block._fp.norm
        output = self.layernorm(g, fp_norm.gamma.data, fp_norm.beta.data)
        schedule = schedule_mha(self.model, self.config)
        return AcceleratorOutput(output=output, schedule=schedule)

    def _projection(
        self,
        weight_name: str,
        bias_name: str,
        in_codes: np.ndarray,
        in_scale: float,
        head: int,
    ) -> np.ndarray:
        """One per-head projection pass: ``X W + bias`` (FP result)."""
        block = self._mha_block
        tile = self.weight_memory.load_tile(weight_name, head)
        acc = self._gemm(in_codes, tile)
        kind = weight_name[1].lower()
        w_scale = block.weights[kind].params.scale
        return self._add_bias_columns(
            acc, in_scale * w_scale, self.bias_memory.load(bias_name, head)
        )

    # ------------------------------------------------------------------
    # Algorithm 1, lines 14-22: the FFN ResBlock
    # ------------------------------------------------------------------
    def run_ffn(self, x_in: np.ndarray) -> AcceleratorOutput:
        """Execute one FFN ResBlock: output = LayerNorm(X + FFN(X))."""
        block = self._ffn_block
        if block is None:
            raise ScheduleError("call load_ffn() before run_ffn()")
        x_in = self._check_input(x_in, "x_in")
        cal = block._cal
        p_in = cal.params(block._tap("in"))
        p_hidden = cal.params(block._tap("hidden"))
        x_codes = p_in.quantize(x_in)
        s = x_in.shape[0]
        d_ff = self.model.d_ff
        d_k = self.config.sa_cols

        # Lines 15-17: P_i = ReLU(X W_1i + b_1i), written to the P buffer.
        hidden = np.zeros((s, d_ff))
        w1_scale = block.w1.params.scale
        for i in range(d_ff // d_k):
            tile = self.weight_memory.load_tile("W1", i)
            acc = self._gemm(x_codes, tile)
            pre = self._add_bias_columns(
                acc, p_in.scale * w1_scale, self.bias_memory.load("B1", i)
            )
            hidden[:, i * d_k:(i + 1) * d_k] = np.maximum(pre, 0.0)
        hidden_codes = p_hidden.quantize(hidden)

        # Lines 18-20: G_i = P W_2i + b_2i + X_i.
        g = np.zeros((s, self.model.d_model))
        w2_scale = block.w2.params.scale
        for i in range(self.model.d_model // d_k):
            tile = self.weight_memory.load_tile("W2", i)
            acc = self._gemm(hidden_codes, tile)
            cols = slice(i * d_k, (i + 1) * d_k)
            partial = self._add_bias_columns(
                acc, p_hidden.scale * w2_scale,
                self.bias_memory.load("B2", i),
            )
            g[:, cols] = partial + x_in[:, cols]
        # Line 21: LayerNorm.
        fp_norm = block._fp.norm
        output = self.layernorm(g, fp_norm.gamma.data, fp_norm.beta.data)
        schedule = schedule_ffn(self.model, self.config)
        return AcceleratorOutput(output=output, schedule=schedule)

    # ------------------------------------------------------------------
    def _check_input(self, x: np.ndarray, name: str) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.model.d_model:
            raise ShapeError(
                f"{name} must be (s, {self.model.d_model}), got {x.shape}"
            )
        if x.shape[0] > self.config.seq_len:
            raise ShapeError(
                f"{name} has {x.shape[0]} rows; the SA supports at most "
                f"{self.config.seq_len}"
            )
        return x
