"""On-chip memory models (paper Fig. 5).

The top-level architecture has four storage structures:

* **Weight Memory** — all INT8 weight tiles of the current layer.
* **Bias Memory** — the bias vectors.
* **Data Memory** — the activation buffers: the ResBlock inputs
  (``Q or X``, ``K = V``), ``Temp1 (s x max(s, 64))``,
  ``Temp2 (s x 64)``, and the large ``P`` buffer (``s x 256h``) holding
  the concatenated heads or the FFN hidden layer.

These models are functional (they hold real integer arrays and bounds-check
every access) and structural (they report capacity and BRAM-bank counts for
the Table II resource model).  A Xilinx BRAM36 stores 36 Kib; banks are
counted from capacity and port width the way Vivado would map a simple
dual-port memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AcceleratorConfig, ModelConfig
from ..errors import MemoryModelError
from .pe import flip_bit

#: Usable bits of one BRAM36 block (Xilinx UltraScale+).
BRAM36_BITS = 36 * 1024


def bram36_banks(total_bits: int, port_width_bits: int) -> int:
    """BRAM36 count for a memory of ``total_bits`` with one port of
    ``port_width_bits``.

    Width-first mapping: enough banks in parallel to serve the port, each
    bank then deep enough for its share of the capacity (BRAM36 natively
    supports up to 72-bit ports per block in SDP mode; we use 64).
    """
    if total_bits <= 0 or port_width_bits <= 0:
        raise MemoryModelError("bits and port width must be positive")
    width_banks = -(-port_width_bits // 64)          # 64-bit SDP ports
    depth_per_bank = BRAM36_BITS * width_banks
    depth_banks = -(-total_bits // depth_per_bank)
    return width_banks * max(depth_banks, 1)


@dataclass
class MemoryBank:
    """A named integer storage array with bounds-checked access.

    Attributes:
        name: Human-readable identifier.
        shape: Logical array shape.
        word_bits: Bits per stored element.
        port_width_words: Words deliverable per cycle through the read port.
    """

    name: str
    shape: tuple
    word_bits: int
    port_width_words: int

    def __post_init__(self) -> None:
        if any(dim <= 0 for dim in self.shape):
            raise MemoryModelError(f"{self.name}: bad shape {self.shape}")
        if self.word_bits <= 0 or self.port_width_words <= 0:
            raise MemoryModelError(f"{self.name}: bad widths")
        self._data = np.zeros(self.shape, dtype=np.int64)
        self.reads = 0
        self.writes = 0

    @property
    def capacity_bits(self) -> int:
        return int(np.prod(self.shape)) * self.word_bits

    @property
    def bram_banks(self) -> int:
        return bram36_banks(
            self.capacity_bits, self.port_width_words * self.word_bits
        )

    def write(self, index, values: np.ndarray) -> None:
        """Store ``values`` at ``index`` (saturating to word width)."""
        values = np.asarray(values, dtype=np.int64)
        limit = 1 << (self.word_bits - 1)
        if np.any(values >= limit) or np.any(values < -limit):
            raise MemoryModelError(
                f"{self.name}: value outside {self.word_bits}-bit range"
            )
        self._data[index] = values
        self.writes += 1

    def read(self, index) -> np.ndarray:
        """Load the stored words at ``index``."""
        self.reads += 1
        return self._data[index].copy()

    def read_cycles(self, num_words: int) -> int:
        """Cycles to stream ``num_words`` through the read port."""
        if num_words < 0:
            raise MemoryModelError("word count must be non-negative")
        return -(-num_words // self.port_width_words)

    def flip_stored_bit(self, index, bit: int) -> None:
        """Invert ``bit`` of the single stored word at ``index``.

        The BRAM-cell model of a single-event upset; the corrupted word
        persists until overwritten (BRAMs have no scrubbing here).
        """
        if not 0 <= bit < self.word_bits:
            raise MemoryModelError(
                f"{self.name}: bit {bit} outside a "
                f"{self.word_bits}-bit word"
            )
        word = self._data[index]
        if np.ndim(word) != 0:
            raise MemoryModelError(
                f"{self.name}: flip_stored_bit needs a scalar index"
            )
        self._data[index] = flip_bit(int(word), bit, self.word_bits)


def data_memory_layout(
    model: ModelConfig, acc: AcceleratorConfig
) -> dict[str, MemoryBank]:
    """Instantiate the Fig. 5 data buffers for a model/accelerator pair."""
    s = acc.seq_len
    h = model.num_heads
    act = acc.act_bits
    return {
        "input_q": MemoryBank("input_q", (s, 64 * h), act, 64),
        "input_kv": MemoryBank("input_kv", (s, 64 * h), act, 64),
        "temp1": MemoryBank("temp1", (s, max(s, 64)), act, 64),
        "temp2": MemoryBank("temp2", (s, 64), act, 64),
        "p_buffer": MemoryBank("p_buffer", (s, 256 * h), act, 64),
    }


class WeightMemory:
    """Weight tile store addressed by ``(matrix_name, block_index)``.

    Holds the INT8 codes of every 64-column weight block of the layer
    currently being executed, in the exact partitioning of Fig. 4.
    """

    def __init__(self, word_bits: int = 8, port_width_words: int = 64) -> None:
        self.word_bits = word_bits
        self.port_width_words = port_width_words
        self._tiles: dict[tuple, np.ndarray] = {}

    def store_tile(self, name: str, index: int, codes: np.ndarray) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:
            raise MemoryModelError(f"tile {name}[{index}] must be 2-D")
        limit = 1 << (self.word_bits - 1)
        if np.any(codes >= limit) or np.any(codes < -limit):
            raise MemoryModelError(
                f"tile {name}[{index}] exceeds {self.word_bits}-bit range"
            )
        self._tiles[(name, index)] = codes.copy()

    def load_tile(self, name: str, index: int) -> np.ndarray:
        key = (name, index)
        if key not in self._tiles:
            raise MemoryModelError(f"tile {name}[{index}] was never stored")
        return self._tiles[key].copy()

    def has_tile(self, name: str, index: int) -> bool:
        return (name, index) in self._tiles

    @property
    def capacity_bits(self) -> int:
        return sum(t.size for t in self._tiles.values()) * self.word_bits

    @property
    def bram_banks(self) -> int:
        if not self._tiles:
            return 0
        return bram36_banks(
            self.capacity_bits, self.port_width_words * self.word_bits
        )

    def flip_tile_bit(
        self, name: str, index: int, row: int, col: int, bit: int
    ) -> None:
        """Invert ``bit`` of one stored weight code (a BRAM upset)."""
        key = (name, index)
        if key not in self._tiles:
            raise MemoryModelError(f"tile {name}[{index}] was never stored")
        tile = self._tiles[key]
        if not (0 <= row < tile.shape[0] and 0 <= col < tile.shape[1]):
            raise MemoryModelError(
                f"({row}, {col}) outside tile {name}[{index}] "
                f"of shape {tile.shape}"
            )
        if not 0 <= bit < self.word_bits:
            raise MemoryModelError(
                f"bit {bit} outside a {self.word_bits}-bit weight word"
            )
        tile[row, col] = flip_bit(int(tile[row, col]), bit, self.word_bits)

    def tile_load_cycles(self, name: str, index: int) -> int:
        """Cycles to stream one tile into the SA (one 64-wide row/cycle)."""
        tile = self.load_tile(name, index)
        return tile.shape[0] * -(-tile.shape[1] // self.port_width_words)


class BiasMemory:
    """Bias vector store addressed by ``(matrix_name, block_index)``."""

    def __init__(self, word_bits: int = 32) -> None:
        self.word_bits = word_bits
        self._vectors: dict[tuple, np.ndarray] = {}

    def store(self, name: str, index: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise MemoryModelError(f"bias {name}[{index}] must be 1-D")
        self._vectors[(name, index)] = values.copy()

    def load(self, name: str, index: int) -> np.ndarray:
        key = (name, index)
        if key not in self._vectors:
            raise MemoryModelError(f"bias {name}[{index}] was never stored")
        return self._vectors[key].copy()

    def corrupt(self, name: str, index: int, pos: int, value: float) -> None:
        """Overwrite one stored bias element (an upset in the bias BRAM;
        biases are kept dequantized here, so the fault model pokes the
        value directly rather than a bit pattern)."""
        key = (name, index)
        if key not in self._vectors:
            raise MemoryModelError(f"bias {name}[{index}] was never stored")
        vector = self._vectors[key]
        if not 0 <= pos < vector.size:
            raise MemoryModelError(
                f"position {pos} outside bias {name}[{index}] "
                f"of length {vector.size}"
            )
        vector[pos] = float(value)

    @property
    def capacity_bits(self) -> int:
        return sum(v.size for v in self._vectors.values()) * self.word_bits
