"""Full-stack accelerated inference (the paper's stated future work).

The paper accelerates single ResBlocks; its conclusion promises "a FPGA or
ASIC accelerator for the complete Transformer inference".  This module
builds that on top of the existing pieces: :class:`AcceleratedStack` runs
every MHA/FFN ResBlock of a quantized Transformer's encoder (and decoder)
through :class:`~repro.core.accelerator.TransformerAccelerator`,
reloading the weight memory between layers and accounting the reload
cycles the on-chip weight memory model implies.

Embeddings, positional encoding and the output projection stay on the
host, exactly the paper's scope boundary (Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import AcceleratorConfig, ModelConfig
from ..errors import ScheduleError, ShapeError
from ..quant.qmodel import QuantizedTransformer
from ..transformer.masks import causal_mask, combine_masks, padding_mask
from .accelerator import TransformerAccelerator


def mha_reload_cycles(
    model: ModelConfig, port_width_words: int = 64
) -> int:
    """Cycles to stream one MHA ResBlock's weight tiles into memory.

    Counts the same words :meth:`AcceleratedStack._reload_cycles_mha`
    does — ``W_Q/W_K/W_V`` for every head plus ``W_G`` — but from the
    :class:`ModelConfig` alone, so cycle-only consumers (the serving
    simulator) can account reloads without building a quantized model.
    """
    words = 3 * model.d_model * model.d_model + model.d_model ** 2
    return -(-words // port_width_words)


def ffn_reload_cycles(
    model: ModelConfig, port_width_words: int = 64
) -> int:
    """Cycles to stream one FFN ResBlock's ``W_1``/``W_2`` tiles."""
    words = 2 * model.d_model * model.d_ff
    return -(-words // port_width_words)


def model_reload_cycles(
    model: ModelConfig,
    port_width_words: int = 64,
    double_buffered: bool = False,
    mha_compute_cycles: int = 0,
    ffn_compute_cycles: int = 0,
) -> int:
    """Total exposed reload cycles for one full model execution.

    Encoder layers hold one MHA + one FFN ResBlock; decoder layers two
    MHA (self + cross) + one FFN.  With ``double_buffered`` each block's
    reload hides behind the *previous* block's compute and only the
    remainder is exposed, mirroring :class:`StackReport.add_reload`.
    """
    reloads = {
        "mha": mha_reload_cycles(model, port_width_words),
        "ffn": ffn_reload_cycles(model, port_width_words),
    }
    compute = {"mha": mha_compute_cycles, "ffn": ffn_compute_cycles}
    blocks = (
        ["mha", "ffn"] * model.num_encoder_layers
        + ["mha", "mha", "ffn"] * model.num_decoder_layers
    )
    if not double_buffered:
        return sum(reloads[kind] for kind in blocks)
    exposed = 0
    prev_compute = 0
    for kind in blocks:
        exposed += max(0, reloads[kind] - prev_compute)
        prev_compute = compute[kind]
    return exposed


@dataclass
class StackReport:
    """Aggregate cycle accounting for one full-stack execution.

    Attributes:
        compute_cycles: Sum of all ResBlock schedule totals.
        reload_cycles: *Exposed* weight-memory reload cycles between
            blocks.  Without double buffering every tile write (one
            64-byte port word per cycle) stalls the pipeline; with double
            buffering the next block's reload hides behind the current
            block's compute and only the remainder is exposed.
        blocks: Per-ResBlock ``(name, cycles)`` entries in execution order.
    """

    compute_cycles: int = 0
    reload_cycles: int = 0
    blocks: list[tuple] = field(default_factory=list)
    _prev_compute: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.reload_cycles

    def latency_us(self, clock_mhz: float) -> float:
        return self.total_cycles / clock_mhz

    def add(self, name: str, cycles: int) -> None:
        self.blocks.append((name, cycles))
        self.compute_cycles += cycles
        self._prev_compute = cycles

    def add_reload(self, cycles: int, double_buffered: bool) -> None:
        """Account a weight reload, hiding it behind the previous block's
        compute when double buffering is enabled."""
        if double_buffered:
            cycles = max(0, cycles - self._prev_compute)
        self.reload_cycles += cycles
        self._prev_compute = 0


class AcceleratedStack:
    """Runs a quantized Transformer's stacks on the accelerator.

    Args:
        quant: A calibrated :class:`QuantizedTransformer`.
        config: Accelerator configuration; ``seq_len`` bounds the input.
        exact_nonlinear: Forwarded to the accelerator (``True`` makes the
            outputs bit-identical to ``quant``'s own int8 forward, which
            the integration tests rely on).
        double_buffered_weights: Hide each block's weight reload behind
            the previous block's compute (a second weight-memory bank).
    """

    def __init__(
        self,
        quant: QuantizedTransformer,
        config: AcceleratorConfig,
        exact_nonlinear: bool = True,
        double_buffered_weights: bool = False,
    ) -> None:
        if not quant.calibrator.frozen:
            raise ScheduleError("calibrate the quantized model first")
        self.quant = quant
        self.config = config
        self.double_buffered_weights = double_buffered_weights
        self.hw = TransformerAccelerator(
            quant.config, config, exact_nonlinear=exact_nonlinear
        )

    # ------------------------------------------------------------------
    def _reload_cycles_mha(self, block) -> int:
        """Cycles to stream one MHA ResBlock's tiles into weight memory."""
        total_words = sum(w.codes.size for w in block.weights.values())
        return -(-total_words // self.hw.weight_memory.port_width_words)

    def _reload_cycles_ffn(self, block) -> int:
        total_words = block.w1.codes.size + block.w2.codes.size
        return -(-total_words // self.hw.weight_memory.port_width_words)

    def _check_rows(self, rows: int) -> None:
        if rows > self.config.seq_len:
            raise ShapeError(
                f"sequence of {rows} exceeds the SA's {self.config.seq_len} "
                "rows"
            )

    # ------------------------------------------------------------------
    def run_encoder(
        self,
        x: np.ndarray,
        src_length: Optional[int] = None,
        report: Optional[StackReport] = None,
    ) -> np.ndarray:
        """Run the full encoder stack on one embedded sequence.

        Args:
            x: ``(s, d_model)`` embedded + positionally-encoded input.
            src_length: Valid length (padded keys masked); defaults to s.
            report: Optional accounting accumulator (shared across calls).
        """
        x = np.asarray(x, dtype=np.float64)
        self._check_rows(x.shape[0])
        s = x.shape[0]
        length = s if src_length is None else src_length
        mask = padding_mask([length], s)[0]
        report = StackReport() if report is None else report
        for i, (mha_blk, ffn_blk) in enumerate(
            zip(self.quant.enc_mha, self.quant.enc_ffn)
        ):
            report.add_reload(self._reload_cycles_mha(mha_blk),
                              self.double_buffered_weights)
            self.hw.load_mha(mha_blk)
            out = self.hw.run_mha(x, mask=mask)
            report.add(f"enc{i}.mha", out.cycles)
            report.add_reload(self._reload_cycles_ffn(ffn_blk),
                              self.double_buffered_weights)
            self.hw.load_ffn(ffn_blk)
            out2 = self.hw.run_ffn(out.output)
            report.add(f"enc{i}.ffn", out2.cycles)
            x = out2.output
        return x

    def run_decoder(
        self,
        y: np.ndarray,
        memory: np.ndarray,
        src_length: Optional[int] = None,
        tgt_length: Optional[int] = None,
        report: Optional[StackReport] = None,
    ) -> np.ndarray:
        """Run the full decoder stack (self-attn, cross-attn, FFN per layer).

        Args:
            y: ``(t, d_model)`` embedded target prefix.
            memory: ``(s, d_model)`` encoder output.
            src_length / tgt_length: Valid lengths for mask construction.
            report: Optional accounting accumulator.
        """
        y = np.asarray(y, dtype=np.float64)
        memory = np.asarray(memory, dtype=np.float64)
        self._check_rows(y.shape[0])
        self._check_rows(memory.shape[0])
        t, s = y.shape[0], memory.shape[0]
        t_len = t if tgt_length is None else tgt_length
        s_len = s if src_length is None else src_length
        self_mask = combine_masks(
            causal_mask(t), padding_mask([t_len], t)[0]
        )
        cross_mask = padding_mask([s_len], s, num_queries=t)[0]
        report = StackReport() if report is None else report
        layers = zip(self.quant.dec_self, self.quant.dec_cross,
                     self.quant.dec_ffn)
        for i, (self_blk, cross_blk, ffn_blk) in enumerate(layers):
            report.add_reload(self._reload_cycles_mha(self_blk),
                              self.double_buffered_weights)
            self.hw.load_mha(self_blk)
            out = self.hw.run_mha(y, mask=self_mask)
            report.add(f"dec{i}.self", out.cycles)
            report.add_reload(self._reload_cycles_mha(cross_blk),
                              self.double_buffered_weights)
            self.hw.load_mha(cross_blk)
            out = self.hw.run_mha(out.output, memory, mask=cross_mask)
            report.add(f"dec{i}.cross", out.cycles)
            report.add_reload(self._reload_cycles_ffn(ffn_blk),
                              self.double_buffered_weights)
            self.hw.load_ffn(ffn_blk)
            out2 = self.hw.run_ffn(out.output)
            report.add(f"dec{i}.ffn", out2.cycles)
            y = out2.output
        return y

    def run_model(
        self,
        src_ids: np.ndarray,
        tgt_ids: np.ndarray,
        src_length: Optional[int] = None,
        tgt_length: Optional[int] = None,
    ):
        """End-to-end: embed on host, run both stacks on the accelerator,
        project to logits on host.  Returns ``(logits, StackReport)``."""
        src_ids = np.asarray(src_ids)
        tgt_ids = np.asarray(tgt_ids)
        if src_ids.ndim != 1 or tgt_ids.ndim != 1:
            raise ShapeError("run_model takes single unbatched id sequences")
        report = StackReport()
        x = self.quant._embed_src(src_ids[None])[0]
        memory = self.run_encoder(x, src_length, report)
        y = self.quant._embed_tgt(tgt_ids[None])[0]
        states = self.run_decoder(
            y, memory, src_length, tgt_length, report
        )
        from ..transformer.tensor import Tensor

        logits = self.quant.generator(Tensor(states[None])).numpy()[0]
        return logits, report
