"""Activity-based power model (paper Section V-B: 16.7 W total on-chip,
13.3 W dynamic + 3.4 W static at 200 MHz).

Dynamic power is modeled per module as (units) x (energy/op) x (clock) x
(activity factor), with energy constants representative of 16 nm
UltraScale+ fabric logic; static power is taken as the device's published
leakage at typical conditions.  As with the resource model, the target is
the reported magnitude and the dynamic/static split, not milliwatt
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig, ModelConfig
from ..errors import ConfigError

#: Paper figures (W).
PAPER_TOTAL_W = 16.7
PAPER_DYNAMIC_W = 13.3
PAPER_STATIC_W = 3.4

#: Energy per INT8 MAC in fabric logic (pJ), incl. local routing.
PJ_PER_MAC = 14.5
#: Energy per softmax-lane cycle (pJ): comparator + EXP/LN shift-adds.
PJ_PER_SOFTMAX_LANE = 25.0
#: Energy per LayerNorm-lane cycle (pJ): two accumulators + DSP scaling.
PJ_PER_LAYERNORM_LANE = 30.0
#: Energy per BRAM36 access (pJ).
PJ_PER_BRAM_ACCESS = 15.0
#: Clock-tree + control overhead as a fraction of module dynamic power.
CLOCK_OVERHEAD_FRACTION = 0.22
#: xcvu13p typical static power (W).
DEVICE_STATIC_W = 3.4


@dataclass(frozen=True)
class PowerEstimate:
    """Power breakdown in watts."""

    sa_w: float
    softmax_w: float
    layernorm_w: float
    memory_w: float
    clock_w: float
    static_w: float

    @property
    def dynamic_w(self) -> float:
        return (
            self.sa_w + self.softmax_w + self.layernorm_w
            + self.memory_w + self.clock_w
        )

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.static_w

    def as_dict(self) -> dict[str, float]:
        return {
            "sa_w": self.sa_w,
            "softmax_w": self.softmax_w,
            "layernorm_w": self.layernorm_w,
            "memory_w": self.memory_w,
            "clock_w": self.clock_w,
            "static_w": self.static_w,
            "dynamic_w": self.dynamic_w,
            "total_w": self.total_w,
        }


def estimate_power(
    model: ModelConfig,
    acc: AcceleratorConfig,
    sa_activity: float = 0.82,
    softmax_activity: float = 0.10,
    layernorm_activity: float = 0.05,
) -> PowerEstimate:
    """Estimate on-chip power at the configured clock.

    Activity factors default to the Transformer-base schedule's measured
    busy fractions (the SA is active ~82% of MHA cycles; the nonlinear
    modules only run in short bursts).
    """
    for name, value in (
        ("sa_activity", sa_activity),
        ("softmax_activity", softmax_activity),
        ("layernorm_activity", layernorm_activity),
    ):
        if not 0.0 <= value <= 1.0:
            raise ConfigError(f"{name} must lie in [0, 1]")
    clock_hz = acc.clock_mhz * 1e6
    num_pes = acc.seq_len * acc.sa_cols
    sa_w = num_pes * PJ_PER_MAC * 1e-12 * clock_hz * sa_activity
    softmax_w = (
        acc.seq_len * PJ_PER_SOFTMAX_LANE * 1e-12 * clock_hz
        * softmax_activity
    )
    layernorm_w = (
        acc.seq_len * PJ_PER_LAYERNORM_LANE * 1e-12 * clock_hz
        * layernorm_activity
    )
    # Memory: weight stream (64 bytes/cycle while the SA runs) + buffers.
    weight_banks = 456 if model.d_ff >= 2048 else 128
    memory_w = (
        weight_banks * PJ_PER_BRAM_ACCESS * 1e-12 * clock_hz * sa_activity
    )
    subtotal = sa_w + softmax_w + layernorm_w + memory_w
    clock_w = subtotal * CLOCK_OVERHEAD_FRACTION
    return PowerEstimate(
        sa_w=sa_w,
        softmax_w=softmax_w,
        layernorm_w=layernorm_w,
        memory_w=memory_w,
        clock_w=clock_w,
        static_w=DEVICE_STATIC_W,
    )


def energy_per_resblock_uj(
    total_w: float, cycles: int, clock_mhz: float
) -> float:
    """Energy of one ResBlock execution in microjoules."""
    if cycles <= 0 or clock_mhz <= 0:
        raise ConfigError("cycles and clock must be positive")
    latency_s = cycles / (clock_mhz * 1e6)
    return total_w * latency_s * 1e6
