"""Energy accounting over a schedule timeline.

Integrates the power model over the scheduler's events: each unit burns
its modelled dynamic power only while one of its events is active, plus
device static power for the whole latency.  This turns the flat
Section V-B power figure into a per-ResBlock energy breakdown and lets
ablations (e.g. the Fig. 7 LayerNorm schedules) be compared in
microjoules rather than cycles alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig, ModelConfig
from ..errors import ScheduleError
from .power_model import (
    CLOCK_OVERHEAD_FRACTION,
    DEVICE_STATIC_W,
    PJ_PER_BRAM_ACCESS,
    PJ_PER_LAYERNORM_LANE,
    PJ_PER_MAC,
    PJ_PER_SOFTMAX_LANE,
)
from .scheduler import ScheduleResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-unit energy of one ResBlock execution, in microjoules.

    Attributes:
        sa_uj / softmax_uj / layernorm_uj / memory_uj: Active energy of
            each unit over its busy cycles.
        clock_uj: Clock-tree overhead over the whole latency.
        static_uj: Leakage over the whole latency.
        total_uj: Everything.
    """

    sa_uj: float
    softmax_uj: float
    layernorm_uj: float
    memory_uj: float
    clock_uj: float
    static_uj: float

    @property
    def dynamic_uj(self) -> float:
        return (self.sa_uj + self.softmax_uj + self.layernorm_uj
                + self.memory_uj + self.clock_uj)

    @property
    def total_uj(self) -> float:
        return self.dynamic_uj + self.static_uj

    def as_dict(self) -> dict[str, float]:
        return {
            "sa_uj": self.sa_uj,
            "softmax_uj": self.softmax_uj,
            "layernorm_uj": self.layernorm_uj,
            "memory_uj": self.memory_uj,
            "clock_uj": self.clock_uj,
            "static_uj": self.static_uj,
            "dynamic_uj": self.dynamic_uj,
            "total_uj": self.total_uj,
        }


def schedule_energy(
    result: ScheduleResult,
    model: ModelConfig,
    acc: AcceleratorConfig,
) -> EnergyBreakdown:
    """Integrate unit energies over a schedule's events."""
    if not result.events:
        raise ScheduleError("schedule has no events")
    num_pes = acc.num_pes
    lanes = acc.seq_len
    weight_banks = 456 if model.d_ff >= 2048 else 128

    # Active cycles per unit (the SA also streams weight memory).
    sa_cycles = sum(
        e.active_cycles for e in result.events if e.unit == "sa"
    )
    softmax_cycles = result.unit_busy_cycles("softmax")
    layernorm_cycles = result.unit_busy_cycles("layernorm")

    sa_uj = num_pes * PJ_PER_MAC * sa_cycles * 1e-6
    softmax_uj = lanes * PJ_PER_SOFTMAX_LANE * softmax_cycles * 1e-6
    layernorm_uj = lanes * PJ_PER_LAYERNORM_LANE * layernorm_cycles * 1e-6
    memory_uj = weight_banks * PJ_PER_BRAM_ACCESS * sa_cycles * 1e-6
    clock_uj = (
        (sa_uj + softmax_uj + layernorm_uj + memory_uj)
        * CLOCK_OVERHEAD_FRACTION
    )
    latency_s = result.total_cycles / (acc.clock_mhz * 1e6)
    static_uj = DEVICE_STATIC_W * latency_s * 1e6
    return EnergyBreakdown(
        sa_uj=sa_uj,
        softmax_uj=softmax_uj,
        layernorm_uj=layernorm_uj,
        memory_uj=memory_uj,
        clock_uj=clock_uj,
        static_uj=static_uj,
    )


def energy_per_token_uj(
    model: ModelConfig, acc: AcceleratorConfig
) -> float:
    """Energy to push one sequence through one encoder layer, per token."""
    from .scheduler import schedule_ffn, schedule_mha

    mha = schedule_energy(schedule_mha(model, acc), model, acc)
    ffn = schedule_energy(schedule_ffn(model, acc), model, acc)
    return (mha.total_uj + ffn.total_uj) / acc.seq_len
