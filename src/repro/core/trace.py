"""Export scheduler timelines as Chrome trace-event JSON.

``chrome://tracing`` / Perfetto can open the emitted file and show the
Algorithm 1 schedule — SA passes, softmax activity and the LayerNorm tail
on separate tracks — which is the easiest way to *see* the overlap the
paper describes.

Two pathways share the format:

* :func:`schedule_to_trace_events` / :func:`write_trace` — one ResBlock's
  :class:`~repro.core.scheduler.ScheduleResult` on the three hardware
  unit tracks;
* :func:`spans_to_trace_events` / :func:`write_span_trace` — arbitrary
  :class:`TraceSpan` lists on named tracks, used by the serving
  simulator to show requests queueing, batches forming and devices
  executing across a whole simulated run.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ScheduleError
from .scheduler import ScheduleResult

#: Track (tid) assignment per hardware unit.
_UNIT_TRACKS = {"sa": 0, "softmax": 1, "layernorm": 2, "dram": 3}

#: Registry of every track name a :class:`TraceSpan` may be emitted on,
#: as fnmatch patterns.  ``repro.statcheck``'s REP003 lint statically
#: checks each ``TraceSpan(track=...)`` site against this list, so a new
#: track must be registered here (keeping the viewer's row inventory,
#: and any tooling keyed on track names, in one place).
KNOWN_TRACK_PATTERNS = tuple(_UNIT_TRACKS) + (
    "queue",      # serving: per-request admission-to-dispatch waits
    "faults",     # serving: ABFT retries and device-failure markers
    "device*",    # serving: one row per simulated accelerator
    "batch*",     # serving: optional per-batch breakout rows
    "queue_depth",            # serving: admission-queue depth counter
    "sa_utilization",         # serving: per-batch useful-MAC share
    "weight_cache_hit_rate",  # serving: cumulative cache hit rate
    "repro_*",    # telemetry: registry timeseries exported as counters
    "*device*",   # cluster: pool-prefixed device rows (<pool>.deviceN)
    "*.queue",    # cluster: per-pool admission-wait rows
    "router",     # cluster: shed-decision markers
    "autoscaler",  # cluster: scale-up/down action markers
    "*.queue_depth",  # cluster: per-pool queue-depth counters
    "*.devices",      # cluster: per-pool active-replica counters
    "prefill",        # decode: per-stream prefill waits and runs
    "decode",         # decode: per-batch token-generation steps
    "kv_cache_hit_rate",  # decode: cumulative KV residency counter
    "compress.*",     # compress: one row per swept spec + counter rows
    "slo_alerts",     # obs: burn-rate alert intervals per tenant
)


@dataclass(frozen=True)
class TraceSpan:
    """One complete ("X") event on a named track.

    Attributes:
        name: Event label (e.g. ``"batch3"``, ``"req17.queued"``).
        track: Track name; each distinct track becomes one ``tid`` row.
        start_us / duration_us: Interval in microseconds.
        category: Trace-event ``cat`` (defaults to ``"serving"``).
        args: Extra key/values shown in the viewer's detail pane.
    """

    name: str
    track: str
    start_us: float
    duration_us: float
    category: str = "serving"
    args: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


def spans_to_trace_events(spans: Sequence[TraceSpan]) -> list[dict]:
    """Convert spans to trace-event dicts with stable track numbering.

    Tracks get ``tid`` values in first-appearance order and a matching
    ``thread_name`` metadata record, so the viewer shows the rows in the
    order the caller emitted them (queue first, then devices, ...).
    """
    if not spans:
        raise ScheduleError("no spans to trace")
    tracks: dict[str, int] = {}
    events = []
    for span in spans:
        if span.duration_us < 0:
            raise ScheduleError(
                f"span {span.name!r} has negative duration"
            )
        tid = tracks.setdefault(span.track, len(tracks))
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_us,
            "dur": span.duration_us,
            "pid": 0,
            "tid": tid,
            "args": dict(span.args),
        })
    for track, tid in tracks.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": track},
        })
    return events


def counter_events(
    name: str,
    samples: Sequence[tuple],
    category: str = "serving",
) -> list[dict]:
    """Build Chrome counter ("C") events from ``(ts_us, value)`` samples.

    Counters render as a stacked area chart in the viewer — the natural
    way to show queue depth over a serving run.  The sample list must be
    non-empty and its timestamps non-decreasing (the viewer renders a
    counter track as-given, so an out-of-order series silently draws a
    wrong chart): violations raise :class:`ScheduleError`.  Callers with
    event-ordered samples (e.g. serving retries landing at past
    completion times) must sort by timestamp first.
    """
    if not samples:
        raise ScheduleError(f"counter {name!r} has no samples")
    events = []
    prev_ts: Optional[float] = None
    for ts_us, value in samples:
        ts_us = float(ts_us)
        if prev_ts is not None and ts_us < prev_ts:
            raise ScheduleError(
                f"counter {name!r} samples are not time-ordered: "
                f"{ts_us} after {prev_ts}"
            )
        prev_ts = ts_us
        events.append({
            "name": name,
            "cat": category,
            "ph": "C",
            "ts": float(ts_us),
            "pid": 0,
            "args": {name: value},
        })
    return events


def write_span_trace(
    spans: Sequence[TraceSpan],
    path: str,
    counters: Optional[list[dict]] = None,
    other_data: Optional[dict] = None,
) -> int:
    """Write spans (plus optional counter events) to ``path``.

    Returns the total event count, mirroring :func:`write_trace`.
    """
    events = spans_to_trace_events(spans)
    if counters:
        events.extend(counters)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(other_data or {}),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return len(events)


def schedule_to_trace_events(
    result: ScheduleResult, clock_mhz: float = 200.0
) -> list[dict]:
    """Convert a :class:`ScheduleResult` to trace-event dicts.

    Cycle counts become microsecond timestamps at ``clock_mhz`` so the
    viewer's time axis reads in real time.
    """
    if not result.events:
        raise ScheduleError("schedule has no events to trace")
    scale = 1.0 / clock_mhz  # cycles -> us
    events = []
    used_units = set()
    for event in result.events:
        if event.unit not in _UNIT_TRACKS:
            raise ScheduleError(f"unknown unit {event.unit!r}")
        used_units.add(event.unit)
        events.append({
            "name": event.name,
            "cat": event.unit,
            "ph": "X",                       # complete event
            "ts": event.start * scale,
            "dur": event.duration * scale,
            "pid": 0,
            "tid": _UNIT_TRACKS[event.unit],
            "args": {
                "cycles": event.duration,
                "active_cycles": event.active_cycles,
            },
        })
    # Name only the tracks that carry events: the dram track exists
    # solely when a memory system put fetches on the timeline.
    for unit, tid in _UNIT_TRACKS.items():
        if unit not in used_units:
            continue
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": unit},
        })
    return events


def write_trace(
    result: ScheduleResult, path: str, clock_mhz: float = 200.0
) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    events = schedule_to_trace_events(result, clock_mhz)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "block": result.block,
            "total_cycles": result.total_cycles,
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return len(events)
