"""Export scheduler timelines as Chrome trace-event JSON.

``chrome://tracing`` / Perfetto can open the emitted file and show the
Algorithm 1 schedule — SA passes, softmax activity and the LayerNorm tail
on separate tracks — which is the easiest way to *see* the overlap the
paper describes.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import ScheduleError
from .scheduler import ScheduleResult

#: Track (tid) assignment per hardware unit.
_UNIT_TRACKS = {"sa": 0, "softmax": 1, "layernorm": 2}


def schedule_to_trace_events(
    result: ScheduleResult, clock_mhz: float = 200.0
) -> List[Dict]:
    """Convert a :class:`ScheduleResult` to trace-event dicts.

    Cycle counts become microsecond timestamps at ``clock_mhz`` so the
    viewer's time axis reads in real time.
    """
    if not result.events:
        raise ScheduleError("schedule has no events to trace")
    scale = 1.0 / clock_mhz  # cycles -> us
    events = []
    for event in result.events:
        if event.unit not in _UNIT_TRACKS:
            raise ScheduleError(f"unknown unit {event.unit!r}")
        events.append({
            "name": event.name,
            "cat": event.unit,
            "ph": "X",                       # complete event
            "ts": event.start * scale,
            "dur": event.duration * scale,
            "pid": 0,
            "tid": _UNIT_TRACKS[event.unit],
            "args": {
                "cycles": event.duration,
                "active_cycles": event.active_cycles,
            },
        })
    for unit, tid in _UNIT_TRACKS.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": unit},
        })
    return events


def write_trace(
    result: ScheduleResult, path: str, clock_mhz: float = 200.0
) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    events = schedule_to_trace_events(result, clock_mhz)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "block": result.block,
            "total_cycles": result.total_cycles,
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return len(events)
