"""FPGA resource model (paper Table II).

Analytic first-principles estimates of LUT / register / BRAM / DSP usage
for each module of the accelerator on the paper's device (Xilinx
``xcvu13p-fhga2104-3-e``).  Constants reflect standard UltraScale+ mapping
costs (an 8x8 signed LUT multiplier, one LUT per adder bit, operand and
accumulator registers per PE); the reproduction target is the *shape* of
Table II — which module dominates which resource and by roughly what
factor — not exact LUT counts.

Notable first-principles detail: the PE accumulator needs
``ceil(log2(k_max * 127^2)) + 1 = 26`` bits for the deepest FFN reduction
(k = 4096 at Transformer-big; 25 suffices for 2048), which matches the
paper's register count far better than a naive 32-bit accumulator would —
evidence the authors sized it minimally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import AcceleratorConfig, ModelConfig
from ..errors import ConfigError
from .memory import bram36_banks

#: Device capacities of the xcvu13p (paper Table II "Available" row).
XCVU13P = {
    "lut": 1_728_000,
    "registers": 3_456_000,
    "bram": 2_688,
    "dsp": 12_288,
}

#: Paper Table II rows for comparison benches.
PAPER_TABLE2 = {
    "top": {"lut": 471_563, "registers": 217_859, "bram": 498, "dsp": 129},
    "sa": {"lut": 420_867, "registers": 173_110, "bram": 0, "dsp": 0},
    "softmax": {"lut": 21_190, "registers": 32_623, "bram": 0, "dsp": 0},
    "layernorm": {"lut": 10_551, "registers": 5_325, "bram": 27.5, "dsp": 129},
    "weight_memory": {"lut": 3_379, "registers": 80, "bram": 456, "dsp": 0},
}

#: LUTs of a signed 8x8 multiplier mapped to fabric (no DSP).
LUT_PER_INT8_MULT = 71
#: LUTs per adder output bit (carry chains map one bit per LUT).
LUT_PER_ADDER_BIT = 1.0
#: Control/muxing LUTs per PE (operand routing, clear, drain mux).
LUT_PE_CONTROL = 5
#: Pipeline registers per softmax lane (4 stages of Q6.10/Q2.15 data,
#: max/sum state, valid/control bits).
REGS_PER_SOFTMAX_LANE = 500
#: LUTs per softmax lane (comparator, subtractor, EXP shift-add network,
#: accumulator, LN leading-one detector + shift-add).
LUT_PER_SOFTMAX_LANE = 320


def accumulator_bits(k_max: int, act_bits: int = 8, weight_bits: int = 8) -> int:
    """Minimal accumulator width for a ``k_max``-deep INT dot product."""
    if k_max <= 0:
        raise ConfigError("k_max must be positive")
    max_prod = (2 ** (act_bits - 1) - 1) * (2 ** (weight_bits - 1) - 1)
    return int(math.ceil(math.log2(k_max * max_prod))) + 1


@dataclass(frozen=True)
class ResourceEstimate:
    """Resource usage of one module."""

    lut: int
    registers: int
    bram: float
    dsp: int

    def __add__(self, other: ResourceEstimate) -> ResourceEstimate:
        return ResourceEstimate(
            lut=self.lut + other.lut,
            registers=self.registers + other.registers,
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "lut": self.lut, "registers": self.registers,
            "bram": self.bram, "dsp": self.dsp,
        }


def estimate_systolic_array(
    model: ModelConfig, acc: AcceleratorConfig
) -> ResourceEstimate:
    """The s x 64 SA: one fabric multiplier + accumulator per PE.

    The SA deliberately uses no DSP slices (Table II row 'SA': 0 DSP) —
    12,288 DSPs could not cover 4,096 PEs at two-per-MAC anyway, and
    INT8 multipliers map efficiently to LUTs.
    """
    acc_bits = accumulator_bits(model.d_ff, acc.act_bits, acc.weight_bits)
    lut_per_pe = (
        LUT_PER_INT8_MULT
        + int(LUT_PER_ADDER_BIT * acc_bits)
        + LUT_PE_CONTROL
    )
    regs_per_pe = acc.act_bits + acc.weight_bits + acc_bits
    num_pes = acc.seq_len * acc.sa_cols
    return ResourceEstimate(
        lut=lut_per_pe * num_pes,
        registers=regs_per_pe * num_pes,
        bram=0,
        dsp=0,
    )


def estimate_softmax(acc: AcceleratorConfig) -> ResourceEstimate:
    """The softmax module: one 4-stage lane per SA row (Fig. 6)."""
    lanes = acc.seq_len
    return ResourceEstimate(
        lut=LUT_PER_SOFTMAX_LANE * lanes,
        registers=REGS_PER_SOFTMAX_LANE * lanes,
        bram=0,
        dsp=0,
    )


def estimate_layernorm(
    model: ModelConfig, acc: AcceleratorConfig
) -> ResourceEstimate:
    """The LayerNorm module (Fig. 8).

    Per row lane: two wide accumulators (sum G, sum G^2 — the G^2 square
    uses the same DSP as the output scaling, time-multiplexed), and the
    ``(G - E) * r * gamma`` output path costs two DSP multiplies per lane
    -> ``2s`` DSPs, plus one shared DSP in the epsilon/variance path =
    ``2s + 1`` = 129 at s = 64, exactly Table II.  The ``x^(-0.5)`` LUT
    and the gamma/beta vectors live in BRAM.
    """
    lanes = acc.seq_len
    acc_bits = accumulator_bits(model.d_model) + acc.act_bits
    lut = lanes * (2 * acc_bits + 2 * 32 + 36)  # accumulators + subs + ctrl
    regs = lanes * (2 * acc_bits + 32)
    # BRAM: the module must re-read G for the output scaling pass
    # (the streaming accumulators consume G as it is produced), so it
    # buffers G in its internal wide fixed-point format; plus the
    # ``x^(-0.5)`` LUT banks and the gamma/beta vectors.
    g_buffer_bits = acc.seq_len * model.d_model * 24
    g_banks = bram36_banks(g_buffer_bits, lanes * 24 // 64)
    isqrt_bits = 2 * 256 * 22
    affine_bits = 2 * model.d_model * 32
    bram = (
        g_banks
        + bram36_banks(isqrt_bits, 22)
        + 0.5 * bram36_banks(affine_bits, 64)
    )
    dsp = 2 * lanes + 1
    return ResourceEstimate(lut=lut, registers=regs, bram=bram, dsp=dsp)


def estimate_weight_memory(
    model: ModelConfig, acc: AcceleratorConfig
) -> ResourceEstimate:
    """Weight memory sized for the largest layer's INT8 weights.

    The FFN weights dominate: ``2 * d_model * d_ff`` INT8 words (2 MiB for
    Transformer-base), streamed through a 64-byte port.
    """
    ffn_bits = 2 * model.d_model * model.d_ff * acc.weight_bits
    mha_bits = 4 * model.d_model * model.d_model * acc.weight_bits
    total_bits = max(ffn_bits, mha_bits)
    banks = bram36_banks(total_bits, 64 * acc.weight_bits)
    # Addressing/control logic only.
    return ResourceEstimate(lut=3_400, registers=80, bram=banks, dsp=0)


def estimate_top(
    model: ModelConfig, acc: AcceleratorConfig
) -> dict[str, ResourceEstimate]:
    """Per-module estimates plus the top-level total.

    The top adds the bias/residual adder banks, the ReLU unit, the data
    memory buffers and global control on top of the four named modules.
    """
    sa = estimate_systolic_array(model, acc)
    softmax = estimate_softmax(acc)
    layernorm = estimate_layernorm(model, acc)
    weight_mem = estimate_weight_memory(model, acc)
    # Glue: two s-lane 32-bit adder banks, ReLU, control FSM, and the data
    # memory buffers (input/Temp1/Temp2/P) in BRAM.
    s, h = acc.seq_len, model.num_heads
    glue_lut = 2 * s * 32 + s * 8 + 4_000
    glue_regs = 2 * s * 32 + 2_000
    data_bits = (
        2 * (s * 64 * h)            # input_q, input_kv
        + s * max(s, 64)            # temp1
        + s * 64                    # temp2
        + s * 256 * h               # p buffer
    ) * acc.act_bits
    glue_bram = bram36_banks(data_bits, 64 * acc.act_bits)
    glue = ResourceEstimate(
        lut=glue_lut, registers=glue_regs, bram=glue_bram, dsp=0
    )
    top = sa + softmax + layernorm + weight_mem + glue
    return {
        "sa": sa,
        "softmax": softmax,
        "layernorm": layernorm,
        "weight_memory": weight_mem,
        "glue": glue,
        "top": top,
    }


def utilization_fractions(
    estimates: dict[str, ResourceEstimate], device: dict[str, int] = None
) -> dict[str, dict[str, float]]:
    """Each module's share of the device, per resource type."""
    device = XCVU13P if device is None else device
    out = {}
    for name, est in estimates.items():
        out[name] = {
            "lut": est.lut / device["lut"],
            "registers": est.registers / device["registers"],
            "bram": est.bram / device["bram"],
            "dsp": est.dsp / device["dsp"],
        }
    return out
