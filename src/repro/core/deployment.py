"""Deployment images: a compiled, standalone accelerator artifact.

Real accelerator toolchains compile a model once into a binary image
(weight tiles, scales, bias vectors, normalization parameters) that the
device loads without any framework present.  This module provides that
artifact for the simulated accelerator:

* :func:`export_image` — serialize every ResBlock of a calibrated
  :class:`~repro.quant.qmodel.QuantizedTransformer` (or encoder-only
  model) into one flat ``{name: ndarray}`` dict, ready for ``np.savez``;
* :func:`save_image` / :func:`load_image` — the .npz round trip;
* :class:`ImageMHABlock` / :class:`ImageFFNBlock` — lightweight block
  views over a loaded image that expose exactly the interface
  :class:`~repro.core.accelerator.TransformerAccelerator` consumes, so a
  deployed image runs on the accelerator **bit-identically** to the
  original quantized model (tested) with no Transformer object in sight.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import QuantizationError
from ..quant.qsoftmax import HardwareSoftmax
from ..quant.quantizer import QuantParams, QuantizedTensor

PathLike = Union[str, Path]

#: Image format version (stored in the archive for forward compatibility).
IMAGE_VERSION = 1

_MHA_KINDS = ("q", "k", "v", "g")
_MHA_TAPS = ("in_q", "in_kv", "q_act", "k_act", "v_act", "context")
_FFN_TAPS = ("in", "hidden")


class _ImageCalibrator:
    """Minimal calibrator view over stored scales."""

    def __init__(self, scales: dict[str, float]) -> None:
        self._scales = scales
        self.frozen = True

    def params(self, tap: str) -> QuantParams:
        if tap not in self._scales:
            raise QuantizationError(f"tap {tap!r} not in image")
        return QuantParams(scale=float(self._scales[tap]))


class _ImageNormParams:
    """gamma/beta carrier mimicking a LayerNorm layer."""

    class _P:
        def __init__(self, data: np.ndarray) -> None:
            self.data = data

    def __init__(self, gamma: np.ndarray, beta: np.ndarray,
                 eps: float = 1e-8) -> None:
        self.gamma = self._P(gamma)
        self.beta = self._P(beta)
        self.eps = eps


class _ImageFP:
    def __init__(self, norm: _ImageNormParams) -> None:
        self.norm = norm


class ImageMHABlock:
    """An MHA ResBlock reconstructed from a deployment image.

    Structurally compatible with
    :class:`~repro.quant.qmodel.QuantMHAResBlock` as far as the
    accelerator's ``load_mha``/``run_mha`` are concerned.
    """

    def __init__(self, prefix: str, data: dict[str, np.ndarray]) -> None:
        self._prefix = prefix
        self.d_model = int(data[f"{prefix}.d_model"])
        self.num_heads = int(data[f"{prefix}.num_heads"])
        self.d_k = self.d_model // self.num_heads
        self.weights = {}
        self.biases = {}
        for kind in _MHA_KINDS:
            codes = data[f"{prefix}.w_{kind}"]
            scale = float(data[f"{prefix}.w_{kind}_scale"])
            self.weights[kind] = QuantizedTensor(
                codes=codes.astype(np.int64),
                params=QuantParams(scale=scale),
            )
            self.biases[kind] = data[f"{prefix}.b_{kind}"]
        scales = {
            tap: float(data[f"{prefix}.tap.{tap}"]) for tap in _MHA_TAPS
        }
        self._cal = _ImageCalibrator(scales)
        self._fp = _ImageFP(_ImageNormParams(
            data[f"{prefix}.ln_gamma"], data[f"{prefix}.ln_beta"],
        ))
        self._prob_params = QuantParams.from_amax(1.0)
        self._hw_softmax = HardwareSoftmax(
            scale_divisor=float(self.d_k) ** 0.5
        )

    def _tap(self, name: str) -> str:
        return name


class ImageFFNBlock:
    """An FFN ResBlock reconstructed from a deployment image."""

    def __init__(self, prefix: str, data: dict[str, np.ndarray]) -> None:
        self._prefix = prefix
        self.w1 = QuantizedTensor(
            codes=data[f"{prefix}.w1"].astype(np.int64),
            params=QuantParams(scale=float(data[f"{prefix}.w1_scale"])),
        )
        self.w2 = QuantizedTensor(
            codes=data[f"{prefix}.w2"].astype(np.int64),
            params=QuantParams(scale=float(data[f"{prefix}.w2_scale"])),
        )
        self.b1 = data[f"{prefix}.b1"]
        self.b2 = data[f"{prefix}.b2"]
        scales = {
            tap: float(data[f"{prefix}.tap.{tap}"]) for tap in _FFN_TAPS
        }
        self._cal = _ImageCalibrator(scales)
        self._fp = _ImageFP(_ImageNormParams(
            data[f"{prefix}.ln_gamma"], data[f"{prefix}.ln_beta"],
        ))

    def _tap(self, name: str) -> str:
        return name


def _export_mha(block, prefix: str, out: dict[str, np.ndarray]) -> None:
    out[f"{prefix}.d_model"] = np.int64(block.d_model)
    out[f"{prefix}.num_heads"] = np.int64(block.num_heads)
    for kind in _MHA_KINDS:
        out[f"{prefix}.w_{kind}"] = block.weights[kind].codes.astype(np.int8)
        out[f"{prefix}.w_{kind}_scale"] = np.float64(
            block.weights[kind].params.scale
        )
        out[f"{prefix}.b_{kind}"] = block.biases[kind]
    for tap in _MHA_TAPS:
        out[f"{prefix}.tap.{tap}"] = np.float64(
            block._cal.params(block._tap(tap)).scale
        )
    norm = block._fp.norm
    out[f"{prefix}.ln_gamma"] = norm.gamma.data
    out[f"{prefix}.ln_beta"] = norm.beta.data


def _export_ffn(block, prefix: str, out: dict[str, np.ndarray]) -> None:
    out[f"{prefix}.w1"] = block.w1.codes.astype(np.int8)
    out[f"{prefix}.w1_scale"] = np.float64(block.w1.params.scale)
    out[f"{prefix}.w2"] = block.w2.codes.astype(np.int8)
    out[f"{prefix}.w2_scale"] = np.float64(block.w2.params.scale)
    out[f"{prefix}.b1"] = block.b1
    out[f"{prefix}.b2"] = block.b2
    for tap in _FFN_TAPS:
        out[f"{prefix}.tap.{tap}"] = np.float64(
            block._cal.params(block._tap(tap)).scale
        )
    norm = block._fp.norm
    out[f"{prefix}.ln_gamma"] = norm.gamma.data
    out[f"{prefix}.ln_beta"] = norm.beta.data


def export_image(quant) -> dict[str, np.ndarray]:
    """Compile a calibrated quantized model into a flat image dict.

    Accepts anything with calibrated ``enc_mha``/``enc_ffn`` lists (and
    optionally ``dec_self``/``dec_cross``/``dec_ffn``).
    """
    if not quant.calibrator.frozen:
        raise QuantizationError("calibrate the model before export")
    out: dict[str, np.ndarray] = {"image_version": np.int64(IMAGE_VERSION)}
    groups = [("enc_mha", "mha"), ("enc_ffn", "ffn")]
    for attr in ("dec_self", "dec_cross", "dec_ffn"):
        if getattr(quant, attr, None):
            kind = "ffn" if attr.endswith("ffn") else "mha"
            groups.append((attr, kind))
    counts = {}
    for attr, kind in groups:
        blocks = getattr(quant, attr)
        counts[attr] = len(blocks)
        for i, block in enumerate(blocks):
            prefix = f"{attr}.{i}"
            if kind == "mha":
                _export_mha(block, prefix, out)
            else:
                _export_ffn(block, prefix, out)
    for attr, count in counts.items():
        out[f"count.{attr}"] = np.int64(count)
    return out


def save_image(quant, path: PathLike) -> int:
    """Compile and write a .npz deployment image; returns entry count."""
    image = export_image(quant)
    np.savez_compressed(str(path), **image)
    return len(image)


def load_image(path: PathLike) -> dict[str, list]:
    """Load a .npz image into block-view lists keyed by stack attribute.

    Returns ``{"enc_mha": [ImageMHABlock...], "enc_ffn": [...], ...}``.
    """
    with np.load(str(path)) as archive:
        data = {name: archive[name] for name in archive.files}
    if int(data.get("image_version", -1)) != IMAGE_VERSION:
        raise QuantizationError("unsupported or missing image version")
    stacks: dict[str, list] = {}
    for attr in ("enc_mha", "enc_ffn", "dec_self", "dec_cross", "dec_ffn"):
        key = f"count.{attr}"
        if key not in data:
            continue
        count = int(data[key])
        blocks = []
        for i in range(count):
            prefix = f"{attr}.{i}"
            if attr.endswith("ffn"):
                blocks.append(ImageFFNBlock(prefix, data))
            else:
                blocks.append(ImageMHABlock(prefix, data))
        stacks[attr] = blocks
    return stacks


def image_bytes(image: dict[str, np.ndarray]) -> int:
    """Total payload size of an (uncompressed) image in bytes."""
    return int(sum(np.asarray(v).nbytes for v in image.values()))
