"""Cycle-accurate simulator of the ``s x 64`` systolic array.

Two implementations of the same output-stationary dataflow:

* :class:`ScalarSystolicArray` — a grid of
  :class:`~repro.core.pe.ProcessingElement` objects stepped one clock at a
  time with explicit neighbour wiring.  Slow; used at small sizes to
  validate the vectorized model PE-for-PE.
* :class:`SystolicArray` — numpy-vectorized: the whole grid advances one
  cycle per iteration (operand wavefronts are shifted arrays).  This is
  the simulator the scheduler uses for full Transformer-base passes.

Both stream ``A (s x k)`` in from the west with rows skewed by one cycle
per row and ``B (k x n)`` from the north skewed by one column, so
``PE(i, j)`` sees ``A[i, m]`` and ``B[m, j]`` together at cycle
``m + i + j``.  A pass over the array therefore takes exactly
``k + s + n - 2`` compute cycles, after which accumulators drain column by
column — matching the paper's "output the product matrix column by column"
description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import ShapeError
from .pe import ProcessingElement, flip_bit

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class PEFault:
    """One injected PE fault.

    Attributes:
        mode: ``"stuck_zero"`` / ``"stuck_max"`` force the multiplier
            output on every active cycle; ``"bit_flip"`` upsets one
            accumulator bit as the result drains.
        bit: Accumulator bit index (``bit_flip`` only).
        transient: Transient faults clear themselves after one pass
            (a single-event upset); persistent faults stay until
            :meth:`SystolicArray.clear_faults` (a hard defect).
    """

    mode: str = "stuck_zero"
    bit: int = 0
    transient: bool = False


@dataclass(frozen=True)
class PassResult:
    """Outcome of one SA pass.

    Attributes:
        product: The integer product matrix ``A @ B`` (saturated per PE).
        compute_cycles: Cycles from first operand injection to the last
            MAC (``k + s + n - 2``).
        useful_macs: Number of MACs with both operands valid (``s*n*k``).
        utilization: ``useful_macs / (compute_cycles * num_pes)``.
    """

    product: np.ndarray
    compute_cycles: int
    useful_macs: int
    utilization: float


def expected_pass_cycles(s: int, k: int, n: int) -> int:
    """Closed-form compute cycles of one output-stationary pass."""
    return k + s + n - 2


class SystolicArray:
    """Vectorized cycle-accurate model of the output-stationary SA.

    Attributes:
        rows: ``s`` (one row per sequence position).
        cols: 64 in the paper's design.
        acc_bits: Saturating accumulator width.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        acc_bits: int = 32,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ShapeError("SA dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.acc_bits = acc_bits
        self._acc_max = (1 << (acc_bits - 1)) - 1
        self._acc_min = -(1 << (acc_bits - 1))
        self._faults = {}
        # Optional telemetry: the registry is used duck-typed so the
        # functional simulator never imports repro.telemetry at runtime.
        self._registry = registry

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    # Fault injection (dependability analysis)
    # ------------------------------------------------------------------
    def inject_fault(
        self,
        row: int,
        col: int,
        mode: str = "stuck_zero",
        *,
        bit: int = 0,
        transient: bool = False,
    ) -> None:
        """Mark ``PE(row, col)`` faulty for subsequent passes.

        Modes: ``"stuck_zero"`` (the PE's multiplier output is always 0),
        ``"stuck_max"`` (the maximum product on every non-idle cycle), or
        ``"bit_flip"`` (accumulator bit ``bit`` inverts at drain).  With
        the output-stationary dataflow a faulty PE corrupts exactly one
        output element per pass — the property the fault tests verify.
        ``transient`` faults self-clear after the next pass.
        """
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ShapeError(f"PE ({row}, {col}) outside the array")
        if mode not in ("stuck_zero", "stuck_max", "bit_flip"):
            raise ShapeError(f"unknown fault mode {mode!r}")
        if not 0 <= bit < self.acc_bits:
            raise ShapeError(
                f"bit {bit} outside a {self.acc_bits}-bit accumulator"
            )
        self._faults[(row, col)] = PEFault(mode, bit, transient)

    def clear_faults(self) -> None:
        """Remove all injected faults."""
        self._faults.clear()

    @property
    def fault_count(self) -> int:
        return len(self._faults)

    def run_pass(self, a: np.ndarray, b: np.ndarray) -> PassResult:
        """Execute one GEMM pass ``A (s x k) @ B (k x n)`` cycle by cycle.

        ``n`` may be smaller than ``cols`` (unused columns idle, e.g. the
        zero-padded ``Q K^T`` pass at s < 64); ``s`` must equal ``rows``.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError(f"bad GEMM shapes {a.shape} @ {b.shape}")
        s, k = a.shape
        n = b.shape[1]
        if s != self.rows:
            raise ShapeError(f"A has {s} rows; the SA has {self.rows}")
        if n > self.cols:
            raise ShapeError(f"B has {n} cols; the SA has {self.cols}")
        if not (np.issubdtype(a.dtype, np.integer)
                and np.issubdtype(b.dtype, np.integer)):
            raise ShapeError("SA operands must be integer typed")

        a = a.astype(np.int64)
        b = b.astype(np.int64)
        acc = np.zeros((s, n), dtype=np.int64)
        # Wavefront algebra: at cycle t, PE(i, j) multiplies A[i, t-i-j]
        # and B[t-i-j, j] when 0 <= t-i-j < k.  Instead of shifting
        # per-PE registers we evaluate each anti-diagonal band directly,
        # which is cycle-for-cycle identical to the register-shift model
        # (ScalarSystolicArray cross-checks this).
        row_idx = np.arange(s)[:, None]
        col_idx = np.arange(n)[None, :]
        offset = row_idx + col_idx                    # i + j per PE
        compute_cycles = expected_pass_cycles(s, k, n)
        for t in range(compute_cycles + 1):
            m = t - offset                            # operand index per PE
            valid = (m >= 0) & (m < k)
            if not valid.any():
                continue
            m_safe = np.where(valid, m, 0)
            products = np.where(
                valid,
                np.take_along_axis(a, m_safe, axis=1)
                * b[m_safe, col_idx],
                0,
            )
            for (fi, fj), fault in self._faults.items():
                if fj >= n:
                    continue
                if fault.mode == "stuck_zero":
                    products[fi, fj] = 0
                elif fault.mode == "stuck_max":
                    products[fi, fj] = np.where(
                        products[fi, fj] != 0, 127 * 127, 0
                    )
            acc = np.clip(acc + products, self._acc_min, self._acc_max)
        for (fi, fj), fault in self._faults.items():
            if fault.mode == "bit_flip" and fj < n:
                acc[fi, fj] = flip_bit(
                    int(acc[fi, fj]), fault.bit, self.acc_bits
                )
        self._faults = {
            key: fault for key, fault in self._faults.items()
            if not fault.transient
        }
        useful = s * n * k
        if self._registry is not None:
            self._registry.counter(
                "repro_sa_passes_total",
                "GEMM passes executed on the functional SA simulator",
            ).inc(1)
            self._registry.counter(
                "repro_sa_compute_cycles_total",
                "Compute cycles across functional SA passes",
            ).inc(compute_cycles)
            self._registry.counter(
                "repro_sa_useful_macs_total",
                "MACs with both operands valid across functional passes",
            ).inc(useful)
        return PassResult(
            product=acc,
            compute_cycles=compute_cycles,
            useful_macs=useful,
            utilization=useful / (compute_cycles * self.num_pes),
        )

    def drain_columns(self, result: PassResult) -> list[np.ndarray]:
        """Output the product column by column (the paper's drain order)."""
        return [result.product[:, j].copy()
                for j in range(result.product.shape[1])]


class ScalarSystolicArray:
    """Register-for-register PE-grid simulator (small sizes only).

    Steps an explicit grid of :class:`ProcessingElement` objects with real
    neighbour wiring; exists to validate :class:`SystolicArray` at RTL
    granularity.  O(cycles * rows * cols) Python objects — keep it small.
    """

    def __init__(self, rows: int, cols: int, acc_bits: int = 32) -> None:
        if rows <= 0 or cols <= 0:
            raise ShapeError("SA dimensions must be positive")
        if rows * cols > 4096:
            raise ShapeError(
                "ScalarSystolicArray is for validation at small sizes; use "
                "SystolicArray for large arrays"
            )
        self.rows = rows
        self.cols = cols
        self.grid = [
            [ProcessingElement(acc_bits=acc_bits) for _ in range(cols)]
            for _ in range(rows)
        ]

    def reset(self) -> None:
        for row in self.grid:
            for pe in row:
                pe.reset()

    def inject_fault(
        self, row: int, col: int, mode: str = "stuck_zero", *, bit: int = 0
    ) -> None:
        """Make ``PE(row, col)`` faulty (same modes as the vectorized SA)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ShapeError(f"PE ({row}, {col}) outside the array")
        self.grid[row][col].inject_fault(mode, bit)

    def clear_faults(self) -> None:
        for row in self.grid:
            for pe in row:
                pe.clear_fault()

    def run_pass(self, a: np.ndarray, b: np.ndarray) -> PassResult:
        """Execute one GEMM pass by stepping every PE each clock."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError(f"bad GEMM shapes {a.shape} @ {b.shape}")
        s, k = a.shape
        n = b.shape[1]
        if s != self.rows or n > self.cols:
            raise ShapeError(
                f"GEMM {a.shape} @ {b.shape} does not fit a "
                f"{self.rows} x {self.cols} SA"
            )
        self.reset()
        compute_cycles = expected_pass_cycles(s, k, n)
        for t in range(compute_cycles + 1):
            # Snapshot forwarded operands before any PE updates (all PEs
            # latch simultaneously on the clock edge).
            east = [[self.grid[i][j].east for j in range(n)] for i in range(s)]
            south = [[self.grid[i][j].south for j in range(n)] for i in range(s)]
            for i in range(s):
                for j in range(n):
                    if j == 0:
                        m = t - i
                        a_in = int(a[i, m]) if 0 <= m < k else 0
                    else:
                        a_in = east[i][j - 1]
                    if i == 0:
                        m = t - j
                        b_in = int(b[m, j]) if 0 <= m < k else 0
                    else:
                        b_in = south[i - 1][j]
                    self.grid[i][j].step(a_in, b_in)
        product = np.array(
            [[self.grid[i][j].drain() for j in range(n)] for i in range(s)],
            dtype=np.int64,
        )
        useful = s * n * k
        return PassResult(
            product=product,
            compute_cycles=compute_cycles,
            useful_macs=useful,
            utilization=useful / (compute_cycles * self.rows * self.cols),
        )


def tiled_matmul(
    sa: SystolicArray, a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, int]:
    """Multiply arbitrary integer matrices by tiling passes over ``sa``.

    Splits ``b`` into 64-column tiles (and ``a`` into row chunks if taller
    than the array) and sums the per-pass cycle counts.  Returns
    ``(product, total_compute_cycles)``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"bad GEMM shapes {a.shape} @ {b.shape}")
    rows_total, k = a.shape
    n_total = b.shape[1]
    product = np.zeros((rows_total, n_total), dtype=np.int64)
    cycles = 0
    for r0 in range(0, rows_total, sa.rows):
        r1 = min(r0 + sa.rows, rows_total)
        a_chunk = a[r0:r1]
        if a_chunk.shape[0] < sa.rows:
            pad = sa.rows - a_chunk.shape[0]
            a_chunk = np.pad(a_chunk, ((0, pad), (0, 0)))
        for c0 in range(0, n_total, sa.cols):
            c1 = min(c0 + sa.cols, n_total)
            result = sa.run_pass(a_chunk, b[:, c0:c1])
            product[r0:r1, c0:c1] = result.product[: r1 - r0]
            cycles += result.compute_cycles
    return product, cycles
