"""Matrix partitioning for SA reuse (paper Section III, Fig. 3-4).

The accelerator owns a single ``s x 64`` systolic array.  Every GEMM of
both ResBlocks must therefore be decomposed into passes of the shape
``(s x k) @ (k x 64)``:

* the per-head projections ``Q W_Qi`` etc. already have 64 columns;
* ``W_G`` (d_model x d_model) splits into ``h`` 64-column blocks;
* ``W_1`` (d_model x d_ff) splits into ``4h`` blocks;
* ``W_2`` (d_ff x d_model) splits into ``h`` blocks;
* the lone irregular op ``Q_i K_i^T`` (output s x s) is zero-padded when
  ``s <= 64`` or row-partitioned over ``Q_i`` when ``s > 64``.

:func:`qkt_multiply_ratio` is the paper's Eq. (3): the share of total MHA
multiplies spent in ``Q K^T``, showing why its special handling cannot hurt
utilization much.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SA_COLS, ModelConfig
from ..errors import PartitionError


@dataclass(frozen=True)
class WeightBlock:
    """One 64-column block of a partitioned weight matrix.

    Attributes:
        name: Source matrix name ("WG", "W1", "W2", ...).
        index: Block index within the source matrix.
        columns: ``slice`` of source columns this block covers.
        data: The ``(k, 64)`` block itself.
    """

    name: str
    index: int
    columns: slice
    data: np.ndarray

    @property
    def inner_dim(self) -> int:
        return self.data.shape[0]


def partition_columns(
    matrix: np.ndarray, name: str, block_cols: int = SA_COLS
) -> list[WeightBlock]:
    """Split ``matrix`` into contiguous ``block_cols``-column blocks.

    Raises :class:`PartitionError` unless the column count divides evenly —
    the Table I pattern (d_model = 64h, d_ff = 256h) guarantees it for all
    the matrices the paper partitions.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise PartitionError(f"{name}: expected a 2-D matrix, got {matrix.shape}")
    rows, cols = matrix.shape
    if cols % block_cols:
        raise PartitionError(
            f"{name}: {cols} columns not divisible by {block_cols}"
        )
    blocks = []
    for i in range(cols // block_cols):
        columns = slice(i * block_cols, (i + 1) * block_cols)
        blocks.append(
            WeightBlock(name=name, index=i, columns=columns,
                        data=matrix[:, columns])
        )
    return blocks


def reassemble_columns(blocks: list[WeightBlock]) -> np.ndarray:
    """Inverse of :func:`partition_columns` (tests the round trip)."""
    if not blocks:
        raise PartitionError("cannot reassemble zero blocks")
    ordered = sorted(blocks, key=lambda b: b.index)
    for expected, block in enumerate(ordered):
        if block.index != expected:
            raise PartitionError(
                f"{block.name}: missing block {expected}"
            )
    return np.concatenate([b.data for b in ordered], axis=1)


@dataclass(frozen=True)
class QKTPlan:
    """Execution plan for the irregular ``Q_i x K_i^T`` operation.

    Attributes:
        strategy: ``"zero_pad"`` (s <= 64: pad K_i^T to 64 columns... i.e.
            pad K_i rows) or ``"partition_q"`` (s > 64: split Q_i rows into
            64-row chunks so each pass output fits the s x 64 SA).
        num_passes: SA passes needed for the whole s x s product.
        padded_cols: Columns after zero padding (zero_pad strategy).
    """

    strategy: str
    num_passes: int
    padded_cols: int


def plan_qkt(s: int, sa_cols: int = SA_COLS) -> QKTPlan:
    """Choose the paper's strategy for ``Q_i K_i^T`` at sequence length s."""
    if s <= 0:
        raise PartitionError("sequence length must be positive")
    if s <= sa_cols:
        return QKTPlan(strategy="zero_pad", num_passes=1, padded_cols=sa_cols)
    num_chunks = -(-s // sa_cols)  # ceil division
    return QKTPlan(
        strategy="partition_q", num_passes=num_chunks, padded_cols=s
    )


def qkt_multiply_ratio(s: int, h: int) -> float:
    """Paper Eq. (3) as printed: ``s / (s + 256 h^2 + 64)``.

    Note: cancelling the common factor ``4096 h s`` from the exact count
    (:func:`qkt_multiply_ratio_exact`) actually yields
    ``s / (s + 256 h^2 + s^2/64)``; the paper's printed ``+64`` equals
    ``s^2/64`` only at ``s = 64`` (its evaluation point).  Both forms are
    provided; the Eq. (3) bench reports the divergence for s != 64.
    """
    if s <= 0 or h <= 0:
        raise PartitionError("s and h must be positive")
    return s / (s + 256 * h * h + 64)


def qkt_multiply_ratio_exact(s: int, h: int) -> float:
    """Eq. (3)'s left-hand side evaluated without algebraic simplification.

    ``s^2 * 64^2 * h`` (the ``Q K^T`` multiplies) over the total of all
    four MHA GEMM groups exactly as enumerated in the paper's numerator
    and denominator.
    """
    if s <= 0 or h <= 0:
        raise PartitionError("s and h must be positive")
    d_model = 64 * h
    qkt = s * s * 64 * 64 * h
    projections = 3 * (64 * s * d_model ** 2) * h
    output = s * d_model ** 3
    attn_v = 64 * s ** 3 * h
    return qkt / (qkt + projections + output + attn_v)


def partition_model_weights(
    config: ModelConfig,
    wg: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
) -> dict:
    """Partition the three large matrices of one encoder layer (Fig. 4).

    Returns ``{"WG": [...h blocks...], "W1": [...4h...], "W2": [...h...]}``
    and validates the block counts against the Table I pattern.
    """
    blocks = {
        "WG": partition_columns(wg, "WG"),
        "W1": partition_columns(w1, "W1"),
        "W2": partition_columns(w2, "W2"),
    }
    expected = {
        "WG": config.num_w2_blocks,
        "W1": config.num_w1_blocks,
        "W2": config.num_w2_blocks,
    }
    for name, expect in expected.items():
        if len(blocks[name]) != expect:
            raise PartitionError(
                f"{name}: got {len(blocks[name])} blocks, Table I pattern "
                f"implies {expect}"
            )
    return blocks
