"""Streaming (column-granular) simulators of the nonlinear modules.

The batch-level models in :mod:`repro.core.softmax_module` and
:mod:`repro.core.layernorm_module` evaluate whole matrices; the RTL,
however, consumes the SA's drain stream *one column per cycle* and keeps
running state.  These classes model that behaviour faithfully:

* :class:`StreamingSoftmax` — Fig. 6: per-row running maxima are updated
  as D's columns arrive (stage one); when the row ends, the buffered
  columns replay through the EXP unit and SUM accumulators (stages two
  and three), then LN + output EXP emit Y column by column (stage four).
* :class:`StreamingLayerNorm` — Fig. 7 step two: per-row ``sum G`` and
  ``sum G^2`` accumulators update as 64-wide column groups of G arrive;
  after the last group, means/variances/reciprocals resolve in one
  pipeline step and the normalized output streams back out.

Both report cycle-stamped activity that the tests check against the
closed-form timing models — the streamed behaviour and the scheduler's
arithmetic must agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ScheduleError, ShapeError
from ..fixedpoint import InverseSqrtLUT, QFormat, SOFTMAX_Q
from ..quant.qsoftmax import HardwareSoftmax


@dataclass
class StreamEvent:
    """One cycle-stamped emission from a streaming unit."""

    cycle: int
    kind: str
    column: int


class StreamingSoftmax:
    """Column-by-column model of the Fig. 6 softmax module.

    Usage::

        unit = StreamingSoftmax(config)
        for j, col in enumerate(d_matrix.T):
            unit.push_column(col, mask[:, j], cycle=start + j)
        y, events = unit.finalize()

    The functional result is identical to
    :class:`~repro.quant.qsoftmax.HardwareSoftmax` on the full matrix
    (verified by tests); the events reproduce the module's timing
    (one output column per cycle after the pipeline tail).
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        scale_divisor: float = 8.0,
        in_fmt: QFormat = SOFTMAX_Q,
    ) -> None:
        self.config = config
        self.scale_divisor = scale_divisor
        self.in_fmt = in_fmt
        self._hw = HardwareSoftmax(scale_divisor=scale_divisor,
                                   in_fmt=in_fmt)
        self._columns: list[np.ndarray] = []
        self._masks: list[Optional[np.ndarray]] = []
        self._running_max: Optional[np.ndarray] = None
        self._first_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None
        self._rows: Optional[int] = None
        self._finalized = False

    @property
    def columns_received(self) -> int:
        return len(self._columns)

    @property
    def running_max(self) -> np.ndarray:
        """Stage one's per-row maxima over the columns received so far."""
        if self._running_max is None:
            raise ScheduleError("no columns pushed yet")
        return self._running_max.copy()

    def push_column(
        self,
        column: np.ndarray,
        mask_column: Optional[np.ndarray] = None,
        cycle: Optional[int] = None,
    ) -> None:
        """Receive one s-element column of D (stage one executes now)."""
        if self._finalized:
            raise ScheduleError("push_column after finalize")
        column = np.asarray(column, dtype=np.float64)
        if column.ndim != 1:
            raise ShapeError("softmax stream columns must be 1-D")
        if self._rows is None:
            self._rows = column.shape[0]
        elif column.shape[0] != self._rows:
            raise ShapeError(
                f"column has {column.shape[0]} rows, stream started with "
                f"{self._rows}"
            )
        if mask_column is not None:
            mask_column = np.asarray(mask_column, dtype=bool)
            if mask_column.shape != column.shape:
                raise ShapeError("mask column shape mismatch")
        scaled = column / self.scale_divisor
        legal = scaled if mask_column is None else np.where(
            mask_column, -np.inf, scaled
        )
        if self._running_max is None:
            self._running_max = legal.copy()
        else:
            self._running_max = np.maximum(self._running_max, legal)
        if cycle is not None:
            if self._first_cycle is None:
                self._first_cycle = cycle
            if self._last_cycle is not None and cycle <= self._last_cycle:
                raise ScheduleError("stream cycles must increase")
            self._last_cycle = cycle
        self._columns.append(column)
        self._masks.append(mask_column)

    def finalize(self):
        """Run stages two-four; returns ``(Y, events)``.

        Events carry one ``"output"`` entry per column.  The buffered
        columns replay through stages two-four as a single pipeline, so
        output column ``j`` emerges ``pipeline_tail`` cycles into the
        replay: ``last_input + 1 + tail + j``.  The stream therefore ends
        exactly ``exposed_after_input`` cycles after the last input —
        the exposure the scheduler charges for the module.
        """
        if self._finalized:
            raise ScheduleError("finalize called twice")
        if not self._columns:
            raise ScheduleError("finalize with no columns")
        self._finalized = True
        d = np.stack(self._columns, axis=1)
        if any(m is not None for m in self._masks):
            mask = np.stack(
                [np.zeros(self._rows, dtype=bool) if m is None else m
                 for m in self._masks], axis=1,
            )
        else:
            mask = None
        y = self._hw(d, mask)
        last = self._last_cycle if self._last_cycle is not None else (
            len(self._columns) - 1
        )
        tail = self.config.softmax_pipeline_depth
        events = [
            StreamEvent(
                cycle=last + 1 + tail + j,
                kind="output", column=j,
            )
            for j in range(len(self._columns))
        ]
        return y, events


class StreamingLayerNorm:
    """Column-group streaming model of the Fig. 8 LayerNorm module.

    Receives G in 64-wide column groups (the SA drain order across output
    passes), keeps the two per-row accumulator banks of the step-two
    schedule up to date, and on :meth:`finalize` resolves the statistics
    and streams the normalized output — verifying that the step-two
    schedule's "very few cycles" claim is *functionally* achievable (no
    second pass over G is needed for the statistics; only the buffered G
    replay for the output scaling).
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        d_model: int,
        eps: float = 1e-8,
    ) -> None:
        if d_model <= 0 or d_model % config.sa_cols:
            raise ShapeError(
                f"d_model {d_model} must be a positive multiple of "
                f"{config.sa_cols}"
            )
        self.config = config
        self.d_model = d_model
        self.eps = eps
        self._isqrt = InverseSqrtLUT()
        self._groups: list[np.ndarray] = []
        self._sum: Optional[np.ndarray] = None
        self._sum_sq: Optional[np.ndarray] = None
        self._rows: Optional[int] = None
        self._last_cycle: Optional[int] = None
        self._finalized = False

    @property
    def groups_received(self) -> int:
        return len(self._groups)

    @property
    def expected_groups(self) -> int:
        return self.d_model // self.config.sa_cols

    def accumulators(self):
        """Current ``(sum G, sum G^2)`` per row — the two register banks."""
        if self._sum is None:
            raise ScheduleError("no groups pushed yet")
        return self._sum.copy(), self._sum_sq.copy()

    def push_group(
        self, group: np.ndarray, cycle: Optional[int] = None
    ) -> None:
        """Receive one ``(s, 64)`` column group of G."""
        if self._finalized:
            raise ScheduleError("push_group after finalize")
        group = np.asarray(group, dtype=np.float64)
        if group.ndim != 2 or group.shape[1] != self.config.sa_cols:
            raise ShapeError(
                f"groups must be (s, {self.config.sa_cols}), got {group.shape}"
            )
        if len(self._groups) >= self.expected_groups:
            raise ScheduleError(
                f"already received all {self.expected_groups} groups"
            )
        if self._rows is None:
            self._rows = group.shape[0]
            self._sum = np.zeros(self._rows)
            self._sum_sq = np.zeros(self._rows)
        elif group.shape[0] != self._rows:
            raise ShapeError("group row count changed mid-stream")
        self._sum += group.sum(axis=1)
        self._sum_sq += (group * group).sum(axis=1)
        if cycle is not None:
            if self._last_cycle is not None and cycle <= self._last_cycle:
                raise ScheduleError("stream cycles must increase")
            self._last_cycle = cycle
        self._groups.append(group)

    def finalize(self, gamma: np.ndarray, beta: np.ndarray):
        """Resolve statistics and stream the output; ``(out, events)``.

        The first output column is stamped ``layernorm_pipeline_depth``
        cycles after the last G group — the step-two exposure.
        """
        if self._finalized:
            raise ScheduleError("finalize called twice")
        if len(self._groups) != self.expected_groups:
            raise ScheduleError(
                f"received {len(self._groups)} of "
                f"{self.expected_groups} groups"
            )
        self._finalized = True
        gamma = np.asarray(gamma, dtype=np.float64)
        beta = np.asarray(beta, dtype=np.float64)
        if gamma.shape != (self.d_model,) or beta.shape != (self.d_model,):
            raise ShapeError("gamma/beta must be (d_model,)")
        g = np.concatenate(self._groups, axis=1)
        mean = self._sum / self.d_model
        var = np.maximum(self._sum_sq / self.d_model - mean ** 2, 0.0)
        r = self._isqrt.evaluate(np.maximum(var + self.eps, 1e-12))
        out = (g - mean[:, None]) * r[:, None] * gamma + beta
        last = self._last_cycle if self._last_cycle is not None else (
            len(self._groups) - 1
        )
        depth = self.config.layernorm_pipeline_depth
        events = [
            StreamEvent(cycle=last + depth + j, kind="output", column=j)
            for j in range(self.d_model)
        ]
        return out, events
