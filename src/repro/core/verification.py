"""Self-verification: the full numerical-contract check as a library call.

Runs the chain of equivalences the repository's correctness rests on
(see docs/ARCHITECTURE.md §7) on a freshly built random model:

1. quantized model vs FP32 model — close (INT8 error only);
2. accelerator (fast integer GEMM path) vs quantized model — bit-equal;
3. accelerator (cycle-accurate SA path) vs fast path — bit-equal;
4. scheduler vs closed-form cycle model — exactly equal;
5. streaming softmax/LayerNorm vs their batch modules — bit-equal;
6. statcheck — the static gate certifies the paper point clean *and*
   detects a seeded undersized-accumulator bug (:mod:`repro.statcheck`);
7. telemetry — the instrumented paper-point schedules are
   cycle-identical to the uninstrumented runs, and the registry /
   profiler totals land exactly on the pinned closed-form cycle counts
   (:mod:`repro.telemetry`).

``python -m repro selftest`` exposes it from the command line.  Each
check returns a :class:`CheckResult`; the suite passes only if all do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AcceleratorConfig, ModelConfig
from ..quant.qmodel import QuantizedTransformer
from ..transformer.model import Transformer
from .accelerator import TransformerAccelerator
from .cycle_model import ffn_cycle_breakdown, mha_cycle_breakdown
from .scheduler import schedule_ffn, schedule_mha
from .streaming import StreamingLayerNorm, StreamingSoftmax


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one verification check."""

    name: str
    passed: bool
    detail: str


def run_selftest(seed: int = 0, seq_len: int = 12) -> list[CheckResult]:
    """Run every contract check; returns one result per check."""
    rng = np.random.default_rng(seed)
    model_cfg = ModelConfig(
        "selftest", d_model=128, d_ff=512, num_heads=2,
        num_encoder_layers=1, num_decoder_layers=1,
        max_seq_len=seq_len, dropout=0.0,
    )
    acc_cfg = AcceleratorConfig(seq_len=seq_len)
    results: list[CheckResult] = []

    # Build + calibrate.
    fp = Transformer(model_cfg, 30, 30, rng=rng).eval()
    quant = QuantizedTransformer(fp)
    src = rng.integers(1, 30, size=(2, seq_len))
    tgt = rng.integers(1, 30, size=(2, seq_len))
    lengths = np.full(2, seq_len)
    quant.calibrate([(src, tgt, lengths)])

    # 1. quant vs FP32.
    fp_logits = fp(src, tgt, src_lengths=lengths).numpy()
    q_logits = quant.forward(src, tgt, lengths).numpy()
    rel = float(np.abs(fp_logits - q_logits).max()
                / max(np.abs(fp_logits).max(), 1e-12))
    results.append(CheckResult(
        "quantized-vs-fp32", rel < 0.1,
        f"max relative logit deviation {rel:.4f} (must be < 0.1)",
    ))

    # 2. accelerator fast path vs quant blocks.
    hw = TransformerAccelerator(model_cfg, acc_cfg, exact_nonlinear=True)
    hw.load_mha(quant.enc_mha[0])
    hw.load_ffn(quant.enc_ffn[0])
    x = rng.normal(size=(seq_len, model_cfg.d_model))
    hw_mha = hw.run_mha(x).output
    ref_mha = quant.enc_mha[0].forward_int8(x[None], x[None], None)[0]
    hw_ffn = hw.run_ffn(hw_mha).output
    ref_ffn = quant.enc_ffn[0].forward_int8(ref_mha[None])[0]
    exact = (np.array_equal(hw_mha, ref_mha)
             and np.array_equal(hw_ffn, ref_ffn))
    results.append(CheckResult(
        "accelerator-vs-quant", exact,
        "bit-identical" if exact else "MISMATCH",
    ))

    # 3. cycle-accurate SA path vs fast path.
    hw_slow = TransformerAccelerator(
        model_cfg, acc_cfg, exact_nonlinear=True, cycle_accurate_sa=True
    )
    hw_slow.load_mha(quant.enc_mha[0])
    slow_mha = hw_slow.run_mha(x).output
    sa_equal = np.array_equal(slow_mha, hw_mha)
    results.append(CheckResult(
        "cycle-accurate-sa", sa_equal,
        "bit-identical" if sa_equal else "MISMATCH",
    ))

    # 4. scheduler vs analytic cycle model.
    sched_ok = True
    detail_parts = []
    for block, sched_fn, model_fn in (
        ("mha", schedule_mha, mha_cycle_breakdown),
        ("ffn", schedule_ffn, ffn_cycle_breakdown),
    ):
        simulated = sched_fn(model_cfg, acc_cfg).total_cycles
        analytic = model_fn(model_cfg, acc_cfg).total_cycles
        sched_ok &= simulated == analytic
        detail_parts.append(f"{block}: {simulated} vs {analytic}")
    results.append(CheckResult(
        "scheduler-vs-analytic", sched_ok, "; ".join(detail_parts),
    ))

    # 5. streaming units vs batch modules.
    from ..quant.qsoftmax import HardwareSoftmax

    d = rng.normal(0, 8, size=(seq_len, seq_len))
    stream_sm = StreamingSoftmax(acc_cfg)
    for j in range(seq_len):
        stream_sm.push_column(d[:, j])
    y_stream, _ = stream_sm.finalize()
    y_batch = HardwareSoftmax()(d)
    g = rng.normal(size=(seq_len, model_cfg.d_model))
    stream_ln = StreamingLayerNorm(acc_cfg, model_cfg.d_model)
    for i in range(model_cfg.d_model // acc_cfg.sa_cols):
        stream_ln.push_group(g[:, i * 64:(i + 1) * 64])
    gamma = np.ones(model_cfg.d_model)
    beta = np.zeros(model_cfg.d_model)
    out_stream, _ = stream_ln.finalize(gamma, beta)
    from .layernorm_module import LayerNormModule

    out_batch = LayerNormModule(
        acc_cfg, model_cfg.d_model, approximate=True
    )(g, gamma, beta)
    stream_ok = (np.array_equal(y_stream, y_batch)
                 and np.allclose(out_stream, out_batch, atol=1e-12))
    results.append(CheckResult(
        "streaming-vs-batch", stream_ok,
        "bit-identical" if stream_ok else "MISMATCH",
    ))

    # 6. static checks: certifier clean at the paper point, and the
    # gate provably able to fail (seeded undersized accumulator).
    from ..statcheck import selftest_check

    problems = selftest_check()
    results.append(CheckResult(
        "statcheck", not problems,
        "paper point certified; seeded overflow detected"
        if not problems else "; ".join(problems),
    ))

    # 7. telemetry: the paper-point schedules through the instrumented
    # path must (a) be cycle-identical to the uninstrumented run —
    # observation may not perturb the model — and (b) land registry
    # totals and profiler attribution exactly on the pinned closed-form
    # totals (21578/39052 hidden-reload, 21834 with exposed weight
    # loads).
    from ..config import paper_accelerator, transformer_base
    from ..telemetry import MetricsRegistry, profile_schedule

    telemetry_ok = True
    tele_parts = []
    paper_model = transformer_base()
    paper_acc = paper_accelerator()
    exposed_acc = paper_acc.with_updates(weight_load_cycles=8)
    registry = MetricsRegistry()
    pinned = (
        ("mha", schedule_mha, paper_acc, 21_578),
        ("ffn", schedule_ffn, paper_acc, 39_052),
        ("mha", schedule_mha, exposed_acc, 21_834),
    )
    for block, sched_fn, acc, expected in pinned:
        plain = sched_fn(paper_model, acc).total_cycles
        result = sched_fn(paper_model, acc, registry=registry)
        attributed = profile_schedule(result).attributed_cycles
        ok = (plain == result.total_cycles == attributed == expected)
        telemetry_ok &= ok
        tele_parts.append(
            f"{block}@wl{acc.weight_load_cycles}: {result.total_cycles}"
            + ("" if ok else f" (expected {expected})")
        )
    cycles = registry.counter("repro_schedule_cycles_total")
    reg_ok = (
        cycles.value(block="mha") == 21_578 + 21_834
        and cycles.value(block="ffn") == 39_052
    )
    telemetry_ok &= reg_ok
    if not reg_ok:
        tele_parts.append("registry totals off")
    results.append(CheckResult(
        "telemetry-attribution", telemetry_ok, "; ".join(tele_parts),
    ))

    # 8. cluster: a small heterogeneous multi-tenant run must conserve
    # requests (every arrival resolves to exactly one outcome), emit
    # spans only on registered trace tracks (the runtime counterpart of
    # the REP003 static lint), and produce identical metrics whether or
    # not a registry observes the run.
    from fnmatch import fnmatch

    from ..cluster import pinned_cluster, simulate_cluster
    from ..telemetry import MetricsRegistry as _Registry
    from .trace import KNOWN_TRACK_PATTERNS

    cluster_cfg = pinned_cluster(requests_per_tenant=40)
    cluster_registry = _Registry()
    cluster_run = simulate_cluster(
        paper_model, cluster_cfg, registry=cluster_registry
    )
    plain_run = simulate_cluster(paper_model, cluster_cfg)
    cm = cluster_run.metrics
    conserved = (
        cm.offered
        == cm.completed + cm.shed + cm.rejected + cm.expired
        == sum(t.num_requests for t in cluster_cfg.tenants)
    )
    bad_tracks = sorted({
        span.track for span in cluster_run.spans
        if not any(fnmatch(span.track, p) for p in KNOWN_TRACK_PATTERNS)
    })
    instrumented_same = cm == plain_run.metrics
    registry_consistent = (
        cluster_registry.counter(
            "repro_cluster_requests_offered_total"
        ).total() == cm.offered
    )
    cluster_ok = (conserved and not bad_tracks and instrumented_same
                  and registry_consistent)
    cluster_parts = [
        f"{cm.offered} offered -> {cm.completed} completed, "
        f"{cm.shed + cm.rejected + cm.expired} dropped"
    ]
    if not conserved:
        cluster_parts.append("CONSERVATION VIOLATED")
    if bad_tracks:
        cluster_parts.append(f"unregistered tracks: {bad_tracks}")
    if not instrumented_same:
        cluster_parts.append("instrumented run diverged")
    if not registry_consistent:
        cluster_parts.append("registry totals off")
    results.append(CheckResult(
        "cluster-serving", cluster_ok, "; ".join(cluster_parts),
    ))
    return results


def selftest_passed(results: list[CheckResult]) -> bool:
    """True when every check passed."""
    return all(r.passed for r in results)
