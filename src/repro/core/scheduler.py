"""Cycle-level scheduler for Algorithm 1 (the overall computation flow).

Builds an explicit event timeline for one MHA or FFN ResBlock on the
accelerator: every SA pass, the softmax module's activity, and the
LayerNorm module's tail, with the dependency structure the paper describes:

* per head: ``Q W_Qi`` -> ``K W_Ki`` -> ``Q_i K_i^T`` (needs both drained)
  -> ``V W_Vi`` on the SA **in parallel with the softmax module**
  -> ``P_i = softmax x Temp2`` (needs the softmax output);
* then the ``h`` output passes ``G_i = P W_Gi + bias + Q_i``;
* LayerNorm runs its accumulators during G production and exposes only its
  schedule-dependent tail (Fig. 7).

Timing rules (documented assumptions — the paper gives end-to-end counts
only; see DESIGN.md):

* an SA pass over ``(s x k) @ (k x n)`` occupies the array for ``k`` active
  cycles plus a fill/drain skew of ``s + n - 2`` cycles measured from the
  cycle-accurate simulator;
* with ``pass_overlap`` (default) a pass chained behind an *independent*
  predecessor hides its skew in the predecessor's; a **dependency break**
  (operands come from the predecessor's drained output) pays the full
  skew + drain;
* every pass pays ``pass_issue_cycles`` of control overhead;
* ``weight_load_cycles`` models a non-double-buffered weight fetch (0 =
  fully hidden, the default) — charged only to passes that stream a
  weight tile from Weight Memory; the activation-only passes
  (``Q_i K_i^T`` and ``softmax x Temp2``) read both operands from the
  Data Memory buffers and fetch no weights;
* with ``abft_protected`` every pass additionally pays the ABFT verify
  exposure: ``abft_check_cycles`` of comparator tail, plus its drain
  when the pass would otherwise have hidden the drain behind the next
  pass's fill (an unverified tile may not be consumed; see
  :mod:`repro.reliability.abft`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..config import AcceleratorConfig, MemoryConfig, ModelConfig
from ..errors import ScheduleError
from ..memsys.prefetch import TilePrefetcher

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry
from .cycle_model import ffn_tile_bytes, mha_tile_bytes
from .layernorm_module import LayerNormModule
from .partition import plan_qkt
from .softmax_module import SoftmaxModule
from .systolic_array import expected_pass_cycles


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled activity on one hardware unit.

    Attributes:
        name: Human-readable label (e.g. ``"head3.QKt"``).
        unit: ``"sa"``, ``"softmax"``, ``"layernorm"`` or ``"dram"``
            (weight-tile fetches when a finite memory system is
            modeled).
        start / end: Cycle interval (end exclusive).
        active_cycles: Useful cycles inside the interval (k for SA passes).
    """

    name: str
    unit: str
    start: int
    end: int
    active_cycles: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Timeline and summary statistics for one ResBlock execution."""

    block: str
    events: list[TimelineEvent] = field(default_factory=list)
    total_cycles: int = 0
    ideal_sa_cycles: int = 0
    memsys_stall_cycles: int = 0
    compress_overhead_cycles: int = 0

    @property
    def sa_events(self) -> list[TimelineEvent]:
        return [e for e in self.events if e.unit == "sa"]

    @property
    def dram_events(self) -> list[TimelineEvent]:
        return [e for e in self.events if e.unit == "dram"]

    @property
    def sa_active_cycles(self) -> int:
        return sum(e.active_cycles for e in self.sa_events)

    @property
    def sa_utilization(self) -> float:
        """Effective utilization: ideal (valid-row) SA cycles / latency.

        Counts only useful MACs, so zero-padded rows — a short request
        in the 64-row array, or a decode step's single valid query row —
        drag it down.  Compare with :attr:`padded_sa_utilization` to see
        how much of the gap is padding waste rather than schedule
        overhead.
        """
        if self.total_cycles == 0:
            return 0.0
        return self.ideal_sa_cycles / self.total_cycles

    @property
    def padded_sa_utilization(self) -> float:
        """Streamed utilization: SA active cycles / total latency.

        Counts every cycle the array streamed operands, including the
        zero-padded rows it multiplied for nothing.  The ratio
        ``sa_utilization / padded_sa_utilization`` is the fraction of
        streamed work that was real — near 1 for full prefill tiles,
        ``~1/seq_len`` for a single-row decode pass.
        """
        if self.total_cycles == 0:
            return 0.0
        return self.sa_active_cycles / self.total_cycles

    def latency_us(self, clock_mhz: float) -> float:
        return self.total_cycles / clock_mhz

    def unit_busy_cycles(self, unit: str) -> int:
        return sum(e.duration for e in self.events if e.unit == unit)

    def find(self, name: str) -> TimelineEvent:
        for event in self.events:
            if event.name == name:
                return event
        raise ScheduleError(f"no event named {name!r}")


class _Timeline:
    """Mutable builder tracking per-unit availability."""

    def __init__(
        self,
        config: AcceleratorConfig,
        mem: Optional[MemoryConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        block: str = "",
    ) -> None:
        self.config = config
        self.events: list[TimelineEvent] = []
        self.sa_free = 0
        self.memsys_stall = 0
        self.compress_overhead = 0
        self._last_buffer: Optional[str] = None
        self._first_pass = True
        self._prefetch = (
            None if mem is None or mem.is_unlimited
            else TilePrefetcher(
                mem, config.clock_mhz, registry=registry, block=block
            )
        )

    def skew(self, n: int) -> int:
        """Fill/drain skew of a pass with ``n`` output columns."""
        return expected_pass_cycles(self.config.seq_len, 0, n)

    def sa_pass(
        self,
        name: str,
        k: int,
        n: Optional[int] = None,
        input_buffer: Optional[str] = None,
        dependency_break: bool = False,
        not_before: int = 0,
        loads_weights: bool = True,
        tile_bytes: int = 0,
        extra_overhead: int = 0,
    ) -> TimelineEvent:
        """Schedule one SA pass and return its event.

        Args:
            name: Event label.
            k: GEMM inner dimension (active cycles).
            n: Output columns (defaults to the SA width).
            input_buffer: Which Data Memory buffer streams the activation
                operand; with single-ported buffers, re-using the previous
                pass's buffer serializes like a dependency break.
            dependency_break: Pass consumes the *drained* output of the
                previous pass (pays skew + drain even when overlapping).
            not_before: External dependency (e.g. softmax completion).
            loads_weights: Whether the pass streams a weight tile from
                Weight Memory (pays ``weight_load_cycles``).  Activation
                x activation passes (``Q_i K_i^T``, ``softmax x Temp2``)
                read both operands from Data Memory and set this False.
            tile_bytes: Off-chip bytes of the pass's weight tile; with a
                finite memory system the tile prefetcher prices its
                fetch (a ``dram`` event) and may stall the pass start.
            extra_overhead: Additional control cycles charged like issue
                overhead (compressed weight passes pay their circulant
                row-generator setup / N:M index decode here;
                :mod:`repro.compress`).
        """
        if k <= 0:
            raise ScheduleError(f"pass {name!r} has non-positive k={k}")
        if extra_overhead < 0:
            raise ScheduleError(
                f"pass {name!r} has negative extra_overhead={extra_overhead}"
            )
        cfg = self.config
        n = cfg.sa_cols if n is None else n
        start = max(self.sa_free, not_before)
        if self._prefetch is not None and loads_weights and tile_bytes > 0:
            fetch = self._prefetch.issue(start, tile_bytes)
            if fetch.fetch_cycles > 0:
                self.events.append(TimelineEvent(
                    name=f"{name}.fetch", unit="dram",
                    start=fetch.fetch_start, end=fetch.fetch_end,
                    active_cycles=fetch.fetch_cycles,
                ))
            start = fetch.pass_start
            self.memsys_stall += fetch.stall_cycles
        overhead = cfg.pass_issue_cycles + extra_overhead
        self.compress_overhead += extra_overhead
        if loads_weights:
            overhead += cfg.weight_load_cycles
        port_conflict = (
            cfg.single_ported_buffers
            and input_buffer is not None
            and input_buffer == self._last_buffer
        )
        if cfg.pass_overlap:
            busy = overhead + k
            if dependency_break or port_conflict or self._first_pass:
                busy += self.skew(n) + cfg.sa_drain_cycles
            elif cfg.abft_protected:
                # The checksum verdict lands at the end of the drain, so
                # a pass that would have hidden its drain behind the next
                # fill must expose it before the tile may be consumed.
                busy += cfg.sa_drain_cycles
        else:
            busy = overhead + k + self.skew(n) + cfg.sa_drain_cycles
        if cfg.abft_protected:
            busy += cfg.abft_check_cycles
        event = TimelineEvent(
            name=name, unit="sa", start=start, end=start + busy,
            active_cycles=k,
        )
        self.events.append(event)
        self.sa_free = event.end
        self._last_buffer = input_buffer
        self._first_pass = False
        return event

    def module_event(
        self, name: str, unit: str, start: int, duration: int
    ) -> TimelineEvent:
        event = TimelineEvent(
            name=name, unit=unit, start=start, end=start + duration,
            active_cycles=duration,
        )
        self.events.append(event)
        return event


def _validate(model: ModelConfig, acc: AcceleratorConfig) -> None:
    if acc.seq_len > model.max_seq_len and model.max_seq_len < acc.seq_len:
        # The SA row count is the hardware's max sequence length; a model
        # with a smaller max_seq_len still runs (rows are zero padded).
        pass
    if model.head_dim != acc.sa_cols:
        raise ScheduleError(
            f"SA has {acc.sa_cols} columns but the model's head dim is "
            f"{model.head_dim}"
        )


def _record(
    result: ScheduleResult, registry: Optional[MetricsRegistry]
) -> None:
    """Fold a finished schedule into ``registry`` (no-op when None).

    The import is lazy so building a schedule never touches
    :mod:`repro.telemetry` unless a caller actually asked for metrics —
    instrumentation cannot perturb the model.
    """
    if registry is None:
        return
    from ..telemetry.instrument import record_schedule

    record_schedule(result, registry)


def schedule_mha(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: Optional[MemoryConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ScheduleResult:
    """Timeline of one MHA ResBlock (Algorithm 1, lines 1-13).

    With a finite ``mem``, every weight-streaming pass's 64-column tile
    is fetched over the off-chip link (``dram`` events); double
    buffered, the fetch overlaps the previous pass and only its excess
    stalls the SA (:mod:`repro.memsys`).  With a ``registry`` the
    finished timeline is recorded through
    :func:`repro.telemetry.instrument.record_schedule`.
    """
    _validate(model, acc)
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    timeline = _Timeline(acc, mem, registry, "mha")
    softmax = SoftmaxModule(acc)
    layernorm = LayerNormModule(acc, d_model)
    tile = mha_tile_bytes(model, acc)

    for i in range(h):
        timeline.sa_pass(
            f"head{i}.QWq", k=d_model, input_buffer="input_q",
            tile_bytes=tile,
        )
        k_proj = timeline.sa_pass(
            f"head{i}.KWk", k=d_model, input_buffer="input_kv",
            tile_bytes=tile,
        )
        # Q_i K_i^T consumes the drained Temp1/Temp2 of the projections.
        # For s > 64, Q_i is partitioned into 64-row chunks (Section III)
        # and the product takes ceil(s / 64) passes; the chunks all stream
        # Temp1, so they serialize on its port.
        qkt_plan = plan_qkt(s, acc.sa_cols)
        qkt = None
        for chunk in range(qkt_plan.num_passes):
            qkt = timeline.sa_pass(
                f"head{i}.QKt{chunk}" if qkt_plan.num_passes > 1
                else f"head{i}.QKt",
                k=acc.sa_cols, n=acc.sa_cols,
                input_buffer="temp1",
                dependency_break=(chunk == 0), not_before=k_proj.end,
                loads_weights=False,
            )
        # The softmax module receives D column by column as QKt drains and
        # runs concurrently with the V projection (Algorithm 1 line 6).
        sm_timing = softmax.timing(s)
        sm_event = timeline.module_event(
            f"head{i}.softmax", "softmax", qkt.end,
            sm_timing.exposed_after_input,
        )
        v_proj = timeline.sa_pass(
            f"head{i}.VWv", k=d_model, input_buffer="input_kv",
            tile_bytes=tile,
        )
        # P_i = softmax_out x Temp2 reduces over all s softmax columns and
        # needs both the softmax output and the drained V projection.
        timeline.sa_pass(
            f"head{i}.PV", k=s,
            input_buffer="temp1",
            dependency_break=True,
            not_before=max(sm_event.end, v_proj.end),
            loads_weights=False,
        )
    for i in range(h):
        timeline.sa_pass(
            f"out.GW{i}", k=d_model, input_buffer="p_buffer",
            dependency_break=(i == 0),
            tile_bytes=tile,
        )
    last_g = timeline.sa_free
    ln_timing = layernorm.timing()
    ln_event = timeline.module_event(
        "layernorm", "layernorm", last_g, ln_timing.total_exposed
    )

    result = ScheduleResult(block="mha", events=timeline.events)
    result.total_cycles = ln_event.end
    result.ideal_sa_cycles = model.mha_macs(s) // acc.num_pes
    result.memsys_stall_cycles = timeline.memsys_stall
    _record(result, registry)
    return result


def schedule_ffn(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: Optional[MemoryConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ScheduleResult:
    """Timeline of one FFN ResBlock (Algorithm 1, lines 14-22)."""
    _validate(model, acc)
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    d_ff = model.d_ff
    timeline = _Timeline(acc, mem, registry, "ffn")
    layernorm = LayerNormModule(acc, d_model)
    w1_tile, w2_tile = ffn_tile_bytes(model, acc)

    num_w1 = d_ff // acc.sa_cols
    for i in range(num_w1):
        timeline.sa_pass(
            f"w1.{i}", k=d_model, input_buffer="input_q",
            tile_bytes=w1_tile,
        )
    # Every W2 pass reduces over the entire P buffer, so the first one must
    # wait for the last W1 pass to drain.
    num_w2 = d_model // acc.sa_cols
    for i in range(num_w2):
        timeline.sa_pass(
            f"w2.{i}", k=d_ff, input_buffer="p_buffer",
            dependency_break=(i == 0),
            tile_bytes=w2_tile,
        )
    last_g = timeline.sa_free
    ln_timing = layernorm.timing()
    ln_event = timeline.module_event(
        "layernorm", "layernorm", last_g, ln_timing.total_exposed
    )

    result = ScheduleResult(block="ffn", events=timeline.events)
    result.total_cycles = ln_event.end
    result.ideal_sa_cycles = model.ffn_macs(s) // acc.num_pes
    result.memsys_stall_cycles = timeline.memsys_stall
    _record(result, registry)
    return result


def schedule_encoder_layer(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: Optional[MemoryConfig] = None,
) -> int:
    """Total cycles of one encoder layer (MHA then FFN, sequential)."""
    return (
        schedule_mha(model, acc, mem).total_cycles
        + schedule_ffn(model, acc, mem).total_cycles
    )


def schedule_autoregressive(
    model: ModelConfig,
    acc: AcceleratorConfig,
    generated_tokens: int,
    mem: Optional[MemoryConfig] = None,
) -> dict:
    """Cycle budget for autoregressive generation on the accelerator.

    The SA always processes its full ``s`` rows (shorter prefixes are
    zero-padded — the design has no early-exit path), so every generated
    token re-runs the whole decoder stack at full cost: the encoder runs
    once, then ``generated_tokens`` decoder-stack passes.  This quantifies
    the batch-1/fixed-s design's cost for generation workloads, the
    regime the paper leaves to future work.
    """
    if generated_tokens <= 0:
        raise ScheduleError("generated_tokens must be positive")
    mha = schedule_mha(model, acc, mem).total_cycles
    ffn = schedule_ffn(model, acc, mem).total_cycles
    encoder = model.num_encoder_layers * (mha + ffn)
    decoder_step = model.num_decoder_layers * (2 * mha + ffn)
    total = encoder + generated_tokens * decoder_step
    return {
        "encoder_cycles": encoder,
        "decoder_cycles_per_token": decoder_step,
        "generated_tokens": generated_tokens,
        "total_cycles": total,
        "cycles_per_token": total / generated_tokens,
    }


def schedule_model(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: Optional[MemoryConfig] = None,
) -> dict:
    """Cycle totals for the full encoder/decoder stacks.

    The decoder layer holds two MHA ResBlocks (self + cross attention)
    and one FFN ResBlock; embeddings and the output softmax layer are out
    of the accelerator's scope (paper Section II-A).
    """
    mha = schedule_mha(model, acc, mem).total_cycles
    ffn = schedule_ffn(model, acc, mem).total_cycles
    encoder = model.num_encoder_layers * (mha + ffn)
    decoder = model.num_decoder_layers * (2 * mha + ffn)
    return {
        "mha_cycles": mha,
        "ffn_cycles": ffn,
        "encoder_cycles": encoder,
        "decoder_cycles": decoder,
        "total_cycles": encoder + decoder,
    }
