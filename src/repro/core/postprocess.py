"""Post-SA processing units: bias adders, residual adders, ReLU (Fig. 5).

The SA drains one 64-wide product column per cycle; directly behind it sit
``s`` adders that add the bias element for that column, and another bank of
``s`` adders that add the residual input right before the LayerNorm module.
The FFN path routes columns through a ReLU before they are written back to
the ``P`` buffer.  All units are column-wise and fully pipelined (one
column per cycle), so they add pipeline depth but no throughput cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError


@dataclass(frozen=True)
class AdderBank:
    """A bank of ``s`` parallel saturating adders.

    Attributes:
        lanes: Number of parallel adders (= SA rows).
        width_bits: Adder word width (the INT32 accumulator domain).
    """

    lanes: int
    width_bits: int = 32

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ShapeError("adder bank needs at least one lane")
        if self.width_bits < 2:
            raise ShapeError("adder width must be >= 2 bits")

    @property
    def _max(self) -> int:
        return (1 << (self.width_bits - 1)) - 1

    @property
    def _min(self) -> int:
        return -(1 << (self.width_bits - 1))

    def add_column(self, column: np.ndarray, addend: np.ndarray) -> np.ndarray:
        """Add ``addend`` to one ``s``-element product column (saturating).

        ``addend`` is either a scalar broadcast to the column (bias add:
        one bias value per output column) or a full ``s``-vector (residual
        add: one residual element per row).
        """
        column = np.asarray(column, dtype=np.int64)
        addend = np.asarray(addend, dtype=np.int64)
        if column.shape != (self.lanes,):
            raise ShapeError(
                f"column has shape {column.shape}, bank has {self.lanes} lanes"
            )
        if addend.shape not in ((), (self.lanes,)):
            raise ShapeError(
                f"addend shape {addend.shape} is neither scalar nor "
                f"({self.lanes},)"
            )
        return np.clip(column + addend, self._min, self._max)


@dataclass(frozen=True)
class ReLUUnit:
    """Column-wise ReLU between the adders and the P buffer (FFN path)."""

    lanes: int

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ShapeError("ReLU unit needs at least one lane")

    def apply_column(self, column: np.ndarray) -> np.ndarray:
        column = np.asarray(column, dtype=np.int64)
        if column.shape != (self.lanes,):
            raise ShapeError(
                f"column has shape {column.shape}, unit has {self.lanes} lanes"
            )
        return np.maximum(column, 0)
