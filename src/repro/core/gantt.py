"""ASCII Gantt rendering of a schedule timeline (for terminals/CLI).

A dependency-free companion to the Chrome-trace exporter: draws the SA /
softmax / LayerNorm tracks as text bars so ``python -m repro schedule
--gantt`` shows the Algorithm 1 overlap structure directly in the
terminal.
"""

from __future__ import annotations


from ..errors import ScheduleError
from .scheduler import ScheduleResult

#: Track order and their bar glyphs.
_TRACKS = (("sa", "#"), ("softmax", "s"), ("layernorm", "L"))


def render_gantt(
    result: ScheduleResult,
    width: int = 100,
    label_width: int = 14,
    max_events_labeled: int = 24,
) -> str:
    """Render the timeline as fixed-width text.

    Args:
        result: A scheduler result.
        width: Character width of the time axis.
        label_width: Left column reserved for track names.
        max_events_labeled: Above this event count, the per-event legend
            is summarized instead of enumerated.
    """
    if not result.events:
        raise ScheduleError("schedule has no events")
    if width < 10:
        raise ScheduleError("width must be at least 10 characters")
    total = result.total_cycles
    scale = width / total

    lines = [
        f"{result.block.upper()} schedule — {total:,} cycles "
        f"({len(result.events)} events; 1 char ~ {total / width:,.0f} cycles)"
    ]
    for unit, glyph in _TRACKS:
        row = [" "] * width
        for event in result.events:
            if event.unit != unit:
                continue
            start = min(int(event.start * scale), width - 1)
            end = min(max(int(event.end * scale), start + 1), width)
            for i in range(start, end):
                row[i] = glyph
        lines.append(f"{unit:<{label_width}}|{''.join(row)}|")
    axis = [" "] * width
    for frac in (0.0, 0.25, 0.5, 0.75):
        axis[int(frac * (width - 1))] = "+"
    axis[width - 1] = "+"
    lines.append(f"{'':<{label_width}}+{''.join(axis)}+")
    quarters = "  ".join(
        f"{int(frac * total):,}" for frac in (0.0, 0.25, 0.5, 0.75, 1.0)
    )
    lines.append(f"{'':<{label_width}} cycles: {quarters}")

    sa_events = result.sa_events
    if len(sa_events) <= max_events_labeled:
        lines.append("")
        for event in sa_events:
            lines.append(
                f"{'':<{label_width}}{event.name:<16} "
                f"[{event.start:>7,} - {event.end:>7,})"
            )
    else:
        lines.append(
            f"{'':<{label_width}}({len(sa_events)} SA passes; "
            f"utilization {result.sa_utilization:.1%})"
        )
    return "\n".join(lines)


def gantt_lines(result: ScheduleResult, width: int = 100) -> list[str]:
    """The rendering as a list of lines (testing convenience)."""
    return render_gantt(result, width=width).splitlines()
