"""A single processing element (PE) of the systolic array.

The SA is an output-stationary 2-D array: operands stream west-to-east
(activations) and north-to-south (weights); each PE multiplies the pair it
sees every cycle and accumulates into a local register, which is drained
column by column at the end of a pass (paper Section IV).

:class:`ProcessingElement` is the scalar reference used by the small-scale
RTL-level tests; the full-array simulator in
:mod:`repro.core.systolic_array` vectorizes the same behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import FixedPointError


def mac_port_widths(
    act_bits: int = 8, weight_bits: int = 8, acc_bits: int = 32
) -> dict[str, int]:
    """Declared bit widths of one PE's ports (statcheck QFMT graph hook).

    The product bus carries one full-precision ``act x weight`` result;
    the accumulator is the stationary partial-sum register whose
    saturation width :class:`ProcessingElement` enforces.
    """
    return {
        "act": act_bits,
        "weight": weight_bits,
        "product": act_bits + weight_bits,
        "acc": acc_bits,
    }


def flip_bit(value: int, bit: int, width: int) -> int:
    """Flip ``bit`` of a two's-complement ``width``-bit ``value``.

    The register-level model of a single-event upset: the stored word is
    reinterpreted as its unsigned bit pattern, one bit is inverted, and
    the result is read back as a signed word of the same width.
    """
    if not 0 <= bit < width:
        raise FixedPointError(f"bit {bit} outside a {width}-bit word")
    pattern = (int(value) & ((1 << width) - 1)) ^ (1 << bit)
    if pattern >= 1 << (width - 1):
        pattern -= 1 << width
    return pattern


@dataclass
class ProcessingElement:
    """One INT8xINT8 MAC cell with pass-through operand registers.

    Attributes:
        acc_bits: Accumulator width; the accumulate saturates at this width
            exactly like the RTL adder would.
        a_reg / b_reg: Operand registers forwarded to the east/south
            neighbours one cycle after being consumed.
        acc: The stationary partial sum.
    """

    acc_bits: int = 32
    a_reg: int = 0
    b_reg: int = 0
    acc: int = 0
    mac_count: int = field(default=0, repr=False)
    fault_mode: Optional[str] = field(default=None, repr=False)
    fault_bit: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.acc_bits < 2:
            raise FixedPointError("accumulator must be at least 2 bits")
        self._acc_max = (1 << (self.acc_bits - 1)) - 1
        self._acc_min = -(1 << (self.acc_bits - 1))

    def reset(self) -> None:
        """Clear all registers for a new pass."""
        self.a_reg = 0
        self.b_reg = 0
        self.acc = 0
        self.mac_count = 0

    def inject_fault(self, mode: str, bit: int = 0) -> None:
        """Make this PE faulty: ``stuck_zero`` / ``stuck_max`` force the
        multiplier output, ``bit_flip`` upsets accumulator bit ``bit`` at
        drain time (see :meth:`drain`)."""
        if mode not in ("stuck_zero", "stuck_max", "bit_flip"):
            raise FixedPointError(f"unknown fault mode {mode!r}")
        if not 0 <= bit < self.acc_bits:
            raise FixedPointError(
                f"bit {bit} outside a {self.acc_bits}-bit accumulator"
            )
        self.fault_mode = mode
        self.fault_bit = bit

    def clear_fault(self) -> None:
        self.fault_mode = None
        self.fault_bit = 0

    def drain(self) -> int:
        """Read the accumulator out (where a ``bit_flip`` fault lands)."""
        if self.fault_mode == "bit_flip":
            return flip_bit(self.acc, self.fault_bit, self.acc_bits)
        return self.acc

    def step(self, a_in: int, b_in: int) -> None:
        """One clock: latch operands, multiply-accumulate (saturating)."""
        self.a_reg = int(a_in)
        self.b_reg = int(b_in)
        product = self.a_reg * self.b_reg
        if self.fault_mode == "stuck_zero":
            product = 0
        elif self.fault_mode == "stuck_max":
            product = 127 * 127 if product != 0 else 0
        acc = self.acc + product
        if acc > self._acc_max:
            acc = self._acc_max
        elif acc < self._acc_min:
            acc = self._acc_min
        self.acc = acc
        if product != 0:
            self.mac_count += 1

    @property
    def east(self) -> int:
        """Operand forwarded to the east neighbour this cycle."""
        return self.a_reg

    @property
    def south(self) -> int:
        """Operand forwarded to the south neighbour this cycle."""
        return self.b_reg
