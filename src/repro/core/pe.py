"""A single processing element (PE) of the systolic array.

The SA is an output-stationary 2-D array: operands stream west-to-east
(activations) and north-to-south (weights); each PE multiplies the pair it
sees every cycle and accumulates into a local register, which is drained
column by column at the end of a pass (paper Section IV).

:class:`ProcessingElement` is the scalar reference used by the small-scale
RTL-level tests; the full-array simulator in
:mod:`repro.core.systolic_array` vectorizes the same behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FixedPointError


@dataclass
class ProcessingElement:
    """One INT8xINT8 MAC cell with pass-through operand registers.

    Attributes:
        acc_bits: Accumulator width; the accumulate saturates at this width
            exactly like the RTL adder would.
        a_reg / b_reg: Operand registers forwarded to the east/south
            neighbours one cycle after being consumed.
        acc: The stationary partial sum.
    """

    acc_bits: int = 32
    a_reg: int = 0
    b_reg: int = 0
    acc: int = 0
    mac_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.acc_bits < 2:
            raise FixedPointError("accumulator must be at least 2 bits")
        self._acc_max = (1 << (self.acc_bits - 1)) - 1
        self._acc_min = -(1 << (self.acc_bits - 1))

    def reset(self) -> None:
        """Clear all registers for a new pass."""
        self.a_reg = 0
        self.b_reg = 0
        self.acc = 0
        self.mac_count = 0

    def step(self, a_in: int, b_in: int) -> None:
        """One clock: latch operands, multiply-accumulate (saturating)."""
        self.a_reg = int(a_in)
        self.b_reg = int(b_in)
        product = self.a_reg * self.b_reg
        acc = self.acc + product
        if acc > self._acc_max:
            acc = self._acc_max
        elif acc < self._acc_min:
            acc = self._acc_min
        self.acc = acc
        if product != 0:
            self.mac_count += 1

    @property
    def east(self) -> int:
        """Operand forwarded to the east neighbour this cycle."""
        return self.a_reg

    @property
    def south(self) -> int:
        """Operand forwarded to the south neighbour this cycle."""
        return self.b_reg
