"""The LayerNorm module (paper Fig. 7-8): function + latency schedules.

LayerNorm sits on the critical path of both ResBlocks: nothing can leave
the accelerator before it runs.  The paper minimizes its latency in two
steps (Fig. 7):

* **straightforward** — wait for the full ``G`` matrix, then one pass
  (``64h`` cycles) for the row means, a second pass for the variances,
  then the output pass: ``2 * 64h`` added cycles before output starts.
* **step_one** — ``s`` row accumulators are wired directly to the module
  input and run *while* G is produced, so ``E(G, i)`` is ready when a row
  completes; only the variance pass (``64h`` cycles) remains.
* **step_two** — a second accumulator bank sums ``G(i,k)^2`` concurrently
  and the variance comes from ``var = E[G^2] - E[G]^2`` (Eq. 9), so "very
  few cycles" separate the last element of G from the first output.

The ``x^(-0.5)`` stage is the
:class:`~repro.fixedpoint.isqrt.InverseSqrtLUT`; the final
``(G - E) * r * gamma + beta`` per-element scaling is where the design's
DSP multipliers live (Table II shows LayerNorm owning all 129 DSPs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError
from ..fixedpoint import InverseSqrtLUT
from ..transformer.functional import LAYERNORM_EPS, layer_norm

#: The three Fig. 7 schedules.
MODES = ("straightforward", "step_one", "step_two")


@dataclass(frozen=True)
class LayerNormTiming:
    """Latency accounting for one LayerNorm over ``G (s x d_model)``.

    Attributes:
        mode: Which Fig. 7 schedule.
        added_latency: Cycles between the last element of G arriving and
            the first output element (the module's exposed latency).
        output_cycles: Cycles of the output stream itself (one 64-wide
            column bundle per cycle -> d_model cycles per row group, rows
            pipelined).
        total_exposed: ``added_latency + output_cycles``.
    """

    mode: str
    added_latency: int
    output_cycles: int
    total_exposed: int


class LayerNormModule:
    """Functional + timing model of the LayerNorm block (Fig. 8)."""

    def __init__(
        self,
        config: AcceleratorConfig,
        d_model: int,
        approximate: bool = True,
        eps: float = LAYERNORM_EPS,
        integer_datapath: bool = False,
    ) -> None:
        """
        Args:
            approximate: Use the isqrt LUT instead of an exact reciprocal
                square root (float statistics either way).
            integer_datapath: Route the whole computation through the
                bit-level fixed-point datapath
                (:class:`~repro.fixedpoint.layernorm_datapath.FixedPointLayerNorm`)
                — integer accumulators, shift-based means, requantized
                scaling chain.  Implies ``approximate``.
        """
        if d_model <= 0:
            raise ShapeError("d_model must be positive")
        self.config = config
        self.d_model = d_model
        self.approximate = approximate
        self.eps = eps
        self.integer_datapath = integer_datapath
        self._isqrt = InverseSqrtLUT()
        self._fxp = None
        if integer_datapath:
            from ..fixedpoint.layernorm_datapath import FixedPointLayerNorm

            self._fxp = FixedPointLayerNorm(d_model=d_model, eps_value=eps)

    # ------------------------------------------------------------------
    # Timing (Fig. 7)
    # ------------------------------------------------------------------
    def timing(self, mode: str = None) -> LayerNormTiming:
        """Exposed latency of the selected schedule.

        The mean/variance passes stream one element per row-accumulator
        per cycle, i.e. ``d_model = 64h`` cycles per pass, matching the
        paper's "at least 128h cycles are added" for the straightforward
        schedule.
        """
        mode = self.config.layernorm_mode if mode is None else mode
        if mode not in MODES:
            raise ShapeError(f"mode {mode!r} not in {MODES}")
        depth = self.config.layernorm_pipeline_depth
        if mode == "straightforward":
            added = 2 * self.d_model + depth
        elif mode == "step_one":
            added = self.d_model + depth
        else:  # step_two
            added = depth
        output_cycles = self.d_model
        return LayerNormTiming(
            mode=mode,
            added_latency=added,
            output_cycles=output_cycles,
            total_exposed=added + output_cycles,
        )

    # ------------------------------------------------------------------
    # Function (Fig. 8)
    # ------------------------------------------------------------------
    def __call__(
        self, g: np.ndarray, gamma: np.ndarray, beta: np.ndarray
    ) -> np.ndarray:
        """Normalize ``G`` row-wise: Eq. (6) with Eq. (9)'s variance.

        In approximate mode the reciprocal square root goes through the
        LUT unit; everything else is exact arithmetic (the RTL uses wide
        fixed point here, whose rounding is negligible next to the LUT).
        """
        g = np.asarray(g, dtype=np.float64)
        if g.shape[-1] != self.d_model:
            raise ShapeError(
                f"G has width {g.shape[-1]}, module built for {self.d_model}"
            )
        if self._fxp is not None:
            return self._fxp(g, np.asarray(gamma), np.asarray(beta))
        if not self.approximate:
            return layer_norm(g, gamma, beta, eps=self.eps)
        mean = g.mean(axis=-1, keepdims=True)
        mean_sq = (g * g).mean(axis=-1, keepdims=True)
        var = np.maximum(mean_sq - mean * mean, 0.0)   # Eq. (9)
        r = self._isqrt.evaluate(np.maximum(var + self.eps, 1e-12))
        return (g - mean) * r * gamma + beta

    def streaming_stats(self, g: np.ndarray) -> tuple:
        """The two accumulator banks' results: ``(sum G, sum G^2)`` per row.

        This is what the step-two hardware has latched by the time the
        last element of each row arrives.
        """
        g = np.asarray(g, dtype=np.float64)
        return g.sum(axis=-1), (g * g).sum(axis=-1)
