"""The Softmax module (paper Fig. 6): function + pipeline timing.

The module receives the ``s x s`` logit matrix ``D = Q_i K_i^T`` column by
column as the SA drains it, applies the ``>> 3`` scaling, and computes the
scaled masked-softmax through four stages:

1. running row-maximum update while columns stream in;
2. EXP of the (input - max) differences via the multiplier-free EXP unit;
3. row-sum accumulation;
4. LN of the sums, then the output EXP producing ``Y`` column by column.

Because stages 1-3 run concurrently with the column stream, the module's
*exposed* latency is a fixed pipeline tail after the last input column —
this is what lets Algorithm 1 hide the entire softmax behind the
``V W_Vi + Bias_Vi`` SA pass (paper Section IV: the SA "will hardly stop
running until the LayerNorm Module starts").

Functionally the module defers to
:class:`~repro.quant.qsoftmax.HardwareSoftmax` (bit-approximate EXP/LN
path) or the exact FP softmax, selected by ``approximate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError
from ..quant.qsoftmax import HardwareSoftmax
from ..transformer.functional import scaled_masked_softmax


@dataclass(frozen=True)
class SoftmaxTiming:
    """Cycle accounting for one s x s softmax.

    Attributes:
        input_cycles: Cycles spent receiving D (one column per cycle).
        second_pass_cycles: Cycles of the output pass re-reading the
            buffered differences (one column per cycle).
        pipeline_tail: Fixed depth of stages 2-4 after the last column.
        total_cycles: End-to-end latency from first input column.
        exposed_after_input: Latency still remaining once the last input
            column has arrived (what a perfectly parallel SA pass must
            cover to hide the module).
    """

    input_cycles: int
    second_pass_cycles: int
    pipeline_tail: int
    total_cycles: int
    exposed_after_input: int


class SoftmaxModule:
    """Functional + timing model of the scaled masked-softmax block."""

    def __init__(
        self,
        config: AcceleratorConfig,
        approximate: bool = True,
        scale_divisor: float = 8.0,
    ) -> None:
        self.config = config
        self.approximate = approximate
        self.scale_divisor = scale_divisor
        self._hw = HardwareSoftmax(scale_divisor=scale_divisor)

    def timing(self, s: Optional[int] = None) -> SoftmaxTiming:
        """Latency of one ``s x s`` softmax (defaults to the configured s)."""
        s = self.config.seq_len if s is None else s
        if s <= 0:
            raise ShapeError("sequence length must be positive")
        input_cycles = s
        second_pass = s
        tail = self.config.softmax_pipeline_depth
        total = input_cycles + second_pass + tail
        return SoftmaxTiming(
            input_cycles=input_cycles,
            second_pass_cycles=second_pass,
            pipeline_tail=tail,
            total_cycles=total,
            exposed_after_input=second_pass + tail,
        )

    def __call__(
        self,
        logits: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compute the scaled masked-softmax of raw (unscaled) logits.

        Args:
            logits: ``(s, s)`` (or batched) raw ``Q K^T`` values.
            mask: Optional illegal-connection mask (1 = masked).
        """
        logits = np.asarray(logits, dtype=np.float64)
        if logits.shape[-1] != logits.shape[-2]:
            raise ShapeError(
                f"softmax module expects square logit tiles, got {logits.shape}"
            )
        if self.approximate:
            return self._hw(logits, mask)
        return scaled_masked_softmax(logits, mask, self.scale_divisor)

    def hideable_behind(self, sa_pass_cycles: int, s: Optional[int] = None) -> bool:
        """Whether a concurrent SA pass of the given length hides the module.

        This is the Algorithm 1 condition: "as long as the Softmax module
        can give the output no later than the SA module finishing
        calculating V W_Vi + Bias_Vi".
        """
        return self.timing(s).exposed_after_input <= sa_pass_cycles
