"""Compressed weight-matrix representations (block-circulant, N:M sparse).

Numeric counterparts of the :class:`~repro.config.CompressionSpec`
pricing: the same two structured families, as actual numpy weight
containers with a *dense-expansion equivalence path* — every format can
expand to an ordinary dense matrix, and its structured ``matvec``
(computed the way the hardware would: circular row regeneration /
skipping zero row-groups) is exactly the dense product with the
expanded matrix.  The property tests hold this to bit-equality for
integer codes and to float equality for real weights.

Layout convention matches :class:`repro.transformer.layers.Linear`:
a weight matrix is ``(in_features, out_features)`` and is applied as
``x @ W``, so the reduction (SA depth) axis is axis 0 and the SA's
64-column tiles partition axis 1.

* :class:`BlockCirculantMatrix` — FTRANS-style: each ``b x b`` block is
  circulant, ``block[i, j] = c[(i - j) mod b]``, storing only the
  defining column ``c``.  ``from_dense`` projects a dense matrix onto
  the circulant family by averaging each block's wrapped diagonals
  (the least-squares projection).
* :class:`NMSparseMatrix` — N:M structured sparsity over the reduction
  axis: in every group of ``m`` consecutive rows only ``n`` carry
  nonzeros, and the kept-row mask is shared by all columns of each
  64-column tile so the SA skips whole zero row-groups.  ``from_dense``
  keeps the ``n`` rows with the largest L2 norm over the tile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SA_COLS, CompressionSpec
from ..errors import ConfigError
from ..quant.quantizer import QuantParams


#: Declared width of the compressed-pass control registers — the
#: circulant rotation-offset counter, the N:M group counter and the
#: stored row-offset field (statcheck QFMT graph hook; the overflow
#: certifier's ``OverflowPoint.compress_counter_bits`` default mirrors
#: this value and the two are cross-checked by the QFMT engine).
CONTROL_COUNTER_BITS = 16


def _check_2d(dense: np.ndarray) -> None:
    if dense.ndim != 2:
        raise ConfigError(f"expected a 2-D weight matrix, got {dense.shape}")


@dataclass(frozen=True)
class BlockCirculantMatrix:
    """A ``(rows, cols)`` weight matrix of ``b x b`` circulant blocks.

    ``seeds[bi, bj]`` is the defining column of block ``(bi, bj)``:
    the dense block is ``block[i, j] = seeds[bi, bj][(i - j) mod b]``.
    Stores ``1/b`` of the dense values.
    """

    seeds: np.ndarray          # (rows // b, cols // b, b)
    block_size: int
    rows: int
    cols: int

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, block_size: int
    ) -> BlockCirculantMatrix:
        """Least-squares projection of ``dense`` onto the circulant family.

        Each block's defining column entry ``c[d]`` is the mean of the
        block's wrapped diagonal ``{(i, j) : (i - j) mod b = d}``.
        """
        _check_2d(dense)
        rows, cols = dense.shape
        b = block_size
        if b <= 0 or rows % b or cols % b:
            raise ConfigError(
                f"block_size {b} must divide the matrix shape {dense.shape}"
            )
        blocks = dense.reshape(rows // b, b, cols // b, b).transpose(0, 2, 1, 3)
        i = np.arange(b)[:, None]
        j = np.arange(b)[None, :]
        diag = (i - j) % b                       # (b, b) diagonal index
        seeds = np.zeros((rows // b, cols // b, b), dtype=np.float64)
        for d in range(b):
            mask = diag == d
            seeds[:, :, d] = blocks[:, :, mask].mean(axis=-1)
        return cls(seeds=seeds, block_size=b, rows=rows, cols=cols)

    @classmethod
    def from_seeds(
        cls, seeds: np.ndarray, block_size: int
    ) -> BlockCirculantMatrix:
        """Wrap an explicit seed tensor (e.g. integer codes)."""
        seeds = np.asarray(seeds)
        if seeds.ndim != 3 or seeds.shape[2] != block_size:
            raise ConfigError(
                f"seeds must be (rows/b, cols/b, {block_size}), "
                f"got {seeds.shape}"
            )
        return cls(
            seeds=seeds, block_size=block_size,
            rows=seeds.shape[0] * block_size,
            cols=seeds.shape[1] * block_size,
        )

    def expand(self) -> np.ndarray:
        """Dense ``(rows, cols)`` matrix with every block made circulant."""
        b = self.block_size
        i = np.arange(b)[:, None]
        j = np.arange(b)[None, :]
        diag = (i - j) % b
        blocks = self.seeds[:, :, diag]          # (Rb, Cb, b, b)
        return blocks.transpose(0, 2, 1, 3).reshape(self.rows, self.cols)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``x @ W`` via per-block circular correlation (no expansion).

        ``y[bj*b + j] = sum_bi sum_i seeds[bi, bj][(i - j) mod b]
        * x[bi*b + i]`` — the row-regeneration order the hardware's
        rotation unit streams.  Exact in integer arithmetic when both
        operands are integer arrays.
        """
        x = np.asarray(x)
        if x.shape[-1] != self.rows:
            raise ConfigError(
                f"matvec expected last dim {self.rows}, got {x.shape}"
            )
        b = self.block_size
        integer = (np.issubdtype(x.dtype, np.integer)
                   and np.issubdtype(self.seeds.dtype, np.integer))
        dtype = np.int64 if integer else np.float64
        xb = x.reshape(*x.shape[:-1], self.rows // b, b).astype(dtype)
        seeds = self.seeds.astype(dtype)
        i = np.arange(b)[:, None]
        j = np.arange(b)[None, :]
        rot = seeds[:, :, (i - j) % b]           # (Rb, Cb, b, b)
        # y[..., bj, j] = sum_bi sum_i xb[..., bi, i] * rot[bi, bj, i, j]
        y = np.einsum("...ri,rcij->...cj", xb, rot)
        return y.reshape(*x.shape[:-1], self.cols)

    def quantize(self, bits: int = 8) -> tuple[BlockCirculantMatrix, QuantParams]:
        """INT8-code copy of this matrix plus its quantization params."""
        params = QuantParams.from_amax(
            float(np.abs(self.seeds).max(initial=0.0)), bits
        )
        return (
            BlockCirculantMatrix(
                seeds=params.quantize(self.seeds),
                block_size=self.block_size, rows=self.rows, cols=self.cols,
            ),
            params,
        )

    @property
    def stored_values(self) -> int:
        return int(self.seeds.size)

    @property
    def dense_values(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class NMSparseMatrix:
    """A ``(rows, cols)`` matrix with N:M row-group sparsity per tile.

    ``keep[g, t]`` lists the ``n`` kept row offsets of group ``g``
    (rows ``g*m .. g*m + m - 1``) in tile ``t`` (columns
    ``t*tile_cols .. ``); ``values[g, t]`` holds the kept rows'
    coefficients.  All columns of a tile share the mask, so the SA
    skips the dropped rows for the whole pass.
    """

    values: np.ndarray         # (groups, tiles, n, tile_cols)
    keep: np.ndarray           # (groups, tiles, n) int row offsets in [0, m)
    n: int
    m: int
    rows: int
    cols: int
    tile_cols: int = SA_COLS

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        n: int,
        m: int,
        tile_cols: int = SA_COLS,
    ) -> NMSparseMatrix:
        """Magnitude pruning: keep each group's ``n`` largest-norm rows."""
        _check_2d(dense)
        rows, cols = dense.shape
        if not 0 < n <= m:
            raise ConfigError(f"need 0 < n <= m, got {n}:{m}")
        if rows % m:
            raise ConfigError(f"m={m} must divide the row count {rows}")
        if cols % tile_cols:
            raise ConfigError(
                f"tile_cols={tile_cols} must divide the column count {cols}"
            )
        groups = rows // m
        tiles = cols // tile_cols
        # (groups, m, tiles, tile_cols) row-group / tile partition.
        part = dense.reshape(groups, m, tiles, tile_cols)
        norms = np.sqrt((part.astype(np.float64) ** 2).sum(axis=3))
        # Keep the n largest-norm rows per (group, tile), in row order so
        # the streaming order is monotonic.
        order = np.argsort(-norms, axis=1, kind="stable")[:, :n, :]
        keep = np.sort(order.transpose(0, 2, 1), axis=2)   # (groups, tiles, n)
        values = np.take_along_axis(
            part.transpose(0, 2, 1, 3),                    # (g, t, m, c)
            keep[:, :, :, None], axis=2,
        )
        return cls(
            values=values, keep=keep, n=n, m=m,
            rows=rows, cols=cols, tile_cols=tile_cols,
        )

    def mask(self) -> np.ndarray:
        """Dense boolean ``(rows, cols)`` mask of the kept coefficients."""
        out = np.zeros((self.rows, self.cols), dtype=bool)
        groups, tiles, n = self.keep.shape
        for g in range(groups):
            for t in range(tiles):
                rows = g * self.m + self.keep[g, t]
                cs = slice(t * self.tile_cols, (t + 1) * self.tile_cols)
                out[rows, cs] = True
        return out

    def expand(self) -> np.ndarray:
        """Dense ``(rows, cols)`` matrix with the dropped rows zeroed."""
        out = np.zeros((self.rows, self.cols), dtype=self.values.dtype)
        groups, tiles, n = self.keep.shape
        for g in range(groups):
            for t in range(tiles):
                rows = g * self.m + self.keep[g, t]
                cs = slice(t * self.tile_cols, (t + 1) * self.tile_cols)
                out[rows, cs] = self.values[g, t]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``x @ W`` touching only the kept rows (the skipped passes).

        Exact in integer arithmetic when both operands are integer.
        """
        x = np.asarray(x)
        if x.shape[-1] != self.rows:
            raise ConfigError(
                f"matvec expected last dim {self.rows}, got {x.shape}"
            )
        integer = (np.issubdtype(x.dtype, np.integer)
                   and np.issubdtype(self.values.dtype, np.integer))
        dtype = np.int64 if integer else np.float64
        lead = x.shape[:-1]
        groups, tiles, n = self.keep.shape
        xg = x.reshape(-1, groups, self.m).astype(dtype)
        out = np.zeros((xg.shape[0], self.cols), dtype=dtype)
        values = self.values.astype(dtype)
        for t in range(tiles):
            idx = np.broadcast_to(
                self.keep[None, :, t, :], (xg.shape[0], groups, n)
            )
            xk = np.take_along_axis(xg, idx, axis=2)
            cs = slice(t * self.tile_cols, (t + 1) * self.tile_cols)
            out[:, cs] = np.einsum("bgn,gnc->bc", xk, values[:, t])
        return out.reshape(*lead, self.cols)

    def quantize(self, bits: int = 8) -> tuple[NMSparseMatrix, QuantParams]:
        """INT8-code copy of this matrix plus its quantization params."""
        params = QuantParams.from_amax(
            float(np.abs(self.values).max(initial=0.0)), bits
        )
        return (
            NMSparseMatrix(
                values=params.quantize(self.values), keep=self.keep,
                n=self.n, m=self.m, rows=self.rows, cols=self.cols,
                tile_cols=self.tile_cols,
            ),
            params,
        )

    @property
    def stored_values(self) -> int:
        return int(self.values.size)

    @property
    def dense_values(self) -> int:
        return self.rows * self.cols


def compress_dense(
    dense: np.ndarray, spec: CompressionSpec
) -> np.ndarray:
    """Project ``dense`` onto ``spec``'s family and expand back to dense.

    The dense-expansion equivalence path: the returned matrix is what
    the hardware's compressed stream computes with, as an ordinary
    dense array a numpy model can consume directly.  A dense spec
    returns the input unchanged.
    """
    _check_2d(dense)
    if spec.is_dense:
        return np.asarray(dense)
    if spec.scheme == "circulant":
        return BlockCirculantMatrix.from_dense(dense, spec.block_size).expand()
    tile_cols = SA_COLS if dense.shape[1] % SA_COLS == 0 else dense.shape[1]
    return NMSparseMatrix.from_dense(
        dense, spec.n, spec.m, tile_cols=tile_cols
    ).expand()
