"""Compressed weight footprint: BRAM fit and off-chip bandwidth relief.

Translates a :class:`~repro.config.CompressionSpec` into the
:mod:`repro.memsys` quantities the rest of the stack consumes:

* per-ResBlock and per-model compressed weight bytes (what the serving
  weight cache stores and the DRAM link moves);
* how many complete encoder-layer weight sets fit the Table II BRAM
  ``WeightCache`` budget — compression's on-chip payoff is *residency*,
  not just bandwidth;
* the steady-state bandwidth each ResBlock needs to stay compute
  bound, from the compressed tile bytes over the compressed pass busy
  time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig, CompressionSpec, ModelConfig
from .cycle_model import (
    _compressed_weight_pass_busy,
    compressed_ffn_tile_bytes,
    compressed_mha_tile_bytes,
)


def mha_weight_bytes(
    model: ModelConfig, acc: AcceleratorConfig, spec: CompressionSpec
) -> int:
    """Compressed bytes of one MHA ResBlock's W_Q/K/V/G set."""
    tiles_per_matrix = model.d_model // acc.sa_cols
    return 4 * tiles_per_matrix * compressed_mha_tile_bytes(model, acc, spec)


def ffn_weight_bytes(
    model: ModelConfig, acc: AcceleratorConfig, spec: CompressionSpec
) -> int:
    """Compressed bytes of one FFN ResBlock's W1/W2 set."""
    w1_tile, w2_tile = compressed_ffn_tile_bytes(model, acc, spec)
    return (model.num_w1_blocks * w1_tile + model.num_w2_blocks * w2_tile)


def layer_weight_bytes(
    model: ModelConfig, acc: AcceleratorConfig, spec: CompressionSpec
) -> int:
    """Compressed bytes of one encoder layer (MHA + FFN ResBlocks)."""
    return (mha_weight_bytes(model, acc, spec)
            + ffn_weight_bytes(model, acc, spec))


@dataclass(frozen=True)
class FootprintReport:
    """Weight-storage consequences of one compression spec.

    Attributes:
        spec_label: Human label of the spec (``dense``/``circ8``/...).
        mha_bytes / ffn_bytes: Compressed per-ResBlock weight bytes.
        dense_mha_bytes / dense_ffn_bytes: Uncompressed references.
        weight_bytes_ratio: Compressed / dense bytes over a full layer
            (index metadata included).
        cache_capacity_bytes: The Table II BRAM ``WeightCache`` budget
            the layers must share.
        layers_resident: Complete encoder-layer weight sets that fit
            the budget simultaneously.
        dense_layers_resident: Same count for dense weights.
        mha_crossover_gbps / ffn_crossover_gbps: Steady-state link
            bandwidth (GB/s) above which the compressed block stays
            compute bound (tile bytes over the hiding window).
    """

    spec_label: str
    mha_bytes: int
    ffn_bytes: int
    dense_mha_bytes: int
    dense_ffn_bytes: int
    weight_bytes_ratio: float
    cache_capacity_bytes: int
    layers_resident: int
    dense_layers_resident: int
    mha_crossover_gbps: float
    ffn_crossover_gbps: float


def _crossover_gbps(
    tile_bytes: int, busy_cycles: int, clock_mhz: float
) -> float:
    """Link bandwidth needed to fetch a tile inside its hiding window."""
    if busy_cycles <= 0:
        return float("inf")
    return tile_bytes * clock_mhz * 1e6 / busy_cycles / 1e9


def footprint_report(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    cache_capacity_bytes: int | None = None,
) -> FootprintReport:
    """Full footprint accounting for one spec at one operating point."""
    from ..memsys.cache import default_weight_cache_bytes

    dense = CompressionSpec()
    mha = mha_weight_bytes(model, acc, spec)
    ffn = ffn_weight_bytes(model, acc, spec)
    dense_mha = mha_weight_bytes(model, acc, dense)
    dense_ffn = ffn_weight_bytes(model, acc, dense)
    capacity = (
        default_weight_cache_bytes(model, acc)
        if cache_capacity_bytes is None else cache_capacity_bytes
    )
    layer = mha + ffn
    dense_layer = dense_mha + dense_ffn
    busy_mha = _compressed_weight_pass_busy(
        acc, spec, model.d_model, acc.single_ported_buffers
    )
    busy_ffn = _compressed_weight_pass_busy(
        acc, spec, model.d_ff, acc.single_ported_buffers
    )
    w1_tile, w2_tile = compressed_ffn_tile_bytes(model, acc, spec)
    return FootprintReport(
        spec_label=spec.label,
        mha_bytes=mha,
        ffn_bytes=ffn,
        dense_mha_bytes=dense_mha,
        dense_ffn_bytes=dense_ffn,
        weight_bytes_ratio=layer / dense_layer,
        cache_capacity_bytes=capacity,
        layers_resident=capacity // layer,
        dense_layers_resident=capacity // dense_layer,
        mha_crossover_gbps=_crossover_gbps(
            compressed_mha_tile_bytes(model, acc, spec), busy_mha,
            acc.clock_mhz,
        ),
        ffn_crossover_gbps=max(
            _crossover_gbps(w1_tile, busy_mha, acc.clock_mhz),
            _crossover_gbps(w2_tile, busy_ffn, acc.clock_mhz),
        ),
    )
