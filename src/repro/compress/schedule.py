"""Event-timeline schedules for compressed MHA/FFN ResBlocks.

Mirrors :func:`repro.core.scheduler.schedule_mha` / ``schedule_ffn``
pass-for-pass, with the weight-streaming passes priced under a
:class:`~repro.config.CompressionSpec`:

* the pass's active cycles become ``spec.effective_depth(k)`` (N:M
  sparsity skips whole zero row-groups; circulant streaming regenerates
  every row, so its depth is unchanged);
* the pass pays ``spec.pass_overhead_cycles(k)`` of extra control
  overhead (circulant row-generator seed loads / N:M index decode),
  charged through ``_Timeline.sa_pass(extra_overhead=...)``;
* the weight tile's off-chip footprint becomes
  ``spec.weight_tile_bytes(...)``, so a finite memory system fetches
  less and stalls less.

Activation-only passes (``Q K^T``, ``softmax x Temp2``) and the softmax
and LayerNorm modules are untouched — compression applies to stored
weights only.  A dense spec (compression ratio 1.0) reproduces the
uncompressed timeline bit-for-bit, event names included.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..config import (
    AcceleratorConfig,
    CompressionSpec,
    MemoryConfig,
    ModelConfig,
)
from ..core.layernorm_module import LayerNormModule
from ..core.partition import plan_qkt
from ..core.scheduler import ScheduleResult, _record, _Timeline, _validate
from ..core.softmax_module import SoftmaxModule

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry


def schedule_compressed_mha(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    mem: Optional[MemoryConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ScheduleResult:
    """Timeline of one MHA ResBlock with compressed weight matrices.

    The four weight passes per head (``Q W_Qi``, ``K W_Ki``, ``V W_Vi``
    and the output pass ``G_i``) stream compressed d_model-deep tiles;
    everything else matches :func:`repro.core.scheduler.schedule_mha`.
    """
    _validate(model, acc)
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    k_w = spec.effective_depth(d_model)
    over = spec.pass_overhead_cycles(d_model)
    timeline = _Timeline(acc, mem, registry, "mha")
    softmax = SoftmaxModule(acc)
    layernorm = LayerNormModule(acc, d_model)
    tile = spec.weight_tile_bytes(d_model, acc.sa_cols, acc.weight_bits)

    for i in range(h):
        timeline.sa_pass(
            f"head{i}.QWq", k=k_w, input_buffer="input_q",
            tile_bytes=tile, extra_overhead=over,
        )
        k_proj = timeline.sa_pass(
            f"head{i}.KWk", k=k_w, input_buffer="input_kv",
            tile_bytes=tile, extra_overhead=over,
        )
        qkt_plan = plan_qkt(s, acc.sa_cols)
        qkt = None
        for chunk in range(qkt_plan.num_passes):
            qkt = timeline.sa_pass(
                f"head{i}.QKt{chunk}" if qkt_plan.num_passes > 1
                else f"head{i}.QKt",
                k=acc.sa_cols, n=acc.sa_cols,
                input_buffer="temp1",
                dependency_break=(chunk == 0), not_before=k_proj.end,
                loads_weights=False,
            )
        sm_timing = softmax.timing(s)
        sm_event = timeline.module_event(
            f"head{i}.softmax", "softmax", qkt.end,
            sm_timing.exposed_after_input,
        )
        v_proj = timeline.sa_pass(
            f"head{i}.VWv", k=k_w, input_buffer="input_kv",
            tile_bytes=tile, extra_overhead=over,
        )
        timeline.sa_pass(
            f"head{i}.PV", k=s,
            input_buffer="temp1",
            dependency_break=True,
            not_before=max(sm_event.end, v_proj.end),
            loads_weights=False,
        )
    for i in range(h):
        timeline.sa_pass(
            f"out.GW{i}", k=k_w, input_buffer="p_buffer",
            dependency_break=(i == 0),
            tile_bytes=tile, extra_overhead=over,
        )
    last_g = timeline.sa_free
    ln_timing = layernorm.timing()
    ln_event = timeline.module_event(
        "layernorm", "layernorm", last_g, ln_timing.total_exposed
    )

    result = ScheduleResult(block="mha", events=timeline.events)
    result.total_cycles = ln_event.end
    result.ideal_sa_cycles = model.mha_macs(s) // acc.num_pes
    result.memsys_stall_cycles = timeline.memsys_stall
    result.compress_overhead_cycles = timeline.compress_overhead
    _record(result, registry)
    return result


def schedule_compressed_ffn(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    mem: Optional[MemoryConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ScheduleResult:
    """Timeline of one FFN ResBlock with compressed W1/W2 matrices.

    Every pass streams a weight tile, so every pass is compressed: W1
    passes reduce over ``effective_depth(d_model)``, W2 passes over
    ``effective_depth(d_ff)``.
    """
    _validate(model, acc)
    d_model = model.d_model
    d_ff = model.d_ff
    k1 = spec.effective_depth(d_model)
    k2 = spec.effective_depth(d_ff)
    over1 = spec.pass_overhead_cycles(d_model)
    over2 = spec.pass_overhead_cycles(d_ff)
    timeline = _Timeline(acc, mem, registry, "ffn")
    layernorm = LayerNormModule(acc, d_model)
    w1_tile = spec.weight_tile_bytes(d_model, acc.sa_cols, acc.weight_bits)
    w2_tile = spec.weight_tile_bytes(d_ff, acc.sa_cols, acc.weight_bits)

    num_w1 = d_ff // acc.sa_cols
    for i in range(num_w1):
        timeline.sa_pass(
            f"w1.{i}", k=k1, input_buffer="input_q",
            tile_bytes=w1_tile, extra_overhead=over1,
        )
    num_w2 = d_model // acc.sa_cols
    for i in range(num_w2):
        timeline.sa_pass(
            f"w2.{i}", k=k2, input_buffer="p_buffer",
            dependency_break=(i == 0),
            tile_bytes=w2_tile, extra_overhead=over2,
        )
    last_g = timeline.sa_free
    ln_timing = layernorm.timing()
    ln_event = timeline.module_event(
        "layernorm", "layernorm", last_g, ln_timing.total_exposed
    )

    result = ScheduleResult(block="ffn", events=timeline.events)
    result.total_cycles = ln_event.end
    result.ideal_sa_cycles = model.ffn_macs(acc.seq_len) // acc.num_pes
    result.memsys_stall_cycles = timeline.memsys_stall
    result.compress_overhead_cycles = timeline.compress_overhead
    _record(result, registry)
    return result
