"""Structured weight compression as a first-class scenario.

Block-circulant (FTRANS-style) and N:M structured-sparse weight
representations, aligned to the SA's 64-column tiles and priced through
the whole stack:

* :mod:`formats <repro.compress.formats>` — the numeric containers
  with INT8 quantization and the dense-expansion equivalence path;
* :mod:`schedule <repro.compress.schedule>` /
  :mod:`cycle_model <repro.compress.cycle_model>` — event-timeline and
  closed-form pricing of compressed passes, held to exact agreement
  (zero row-groups skipped, index/setup overhead charged);
* :mod:`footprint <repro.compress.footprint>` — BRAM residency and
  off-chip bandwidth relief (:mod:`repro.memsys` terms);
* :mod:`apply <repro.compress.apply>` — project a trained Transformer
  onto a spec's family for the BLEU proxy;
* :mod:`sweep <repro.compress.sweep>` — the full
  ratio x cycles x stalls x BLEU x throughput measurement behind
  ``repro compress``.

The spec itself (:class:`repro.config.CompressionSpec`) lives in
:mod:`repro.config` so serving/cluster configs can carry one without
importing this package.
"""

from ..config import CompressionSpec, circulant_spec, nm_sparse_spec
from .apply import (
    RESBLOCK_WEIGHT_LEAVES,
    compress_model,
    resblock_weight_keys,
    restore_weights,
    snapshot_weights,
)
from .cycle_model import (
    compressed_ffn_breakdown,
    compressed_ffn_tile_bytes,
    compressed_mha_breakdown,
    compressed_mha_tile_bytes,
)
from .footprint import (
    FootprintReport,
    ffn_weight_bytes,
    footprint_report,
    layer_weight_bytes,
    mha_weight_bytes,
)
from .formats import BlockCirculantMatrix, NMSparseMatrix, compress_dense
from .schedule import schedule_compressed_ffn, schedule_compressed_mha
from .sweep import (
    CompressPoint,
    compress_trace_spans,
    compression_sweep,
    default_sweep_specs,
    sweep_point,
)

__all__ = [
    "BlockCirculantMatrix",
    "CompressPoint",
    "CompressionSpec",
    "FootprintReport",
    "NMSparseMatrix",
    "RESBLOCK_WEIGHT_LEAVES",
    "circulant_spec",
    "compress_dense",
    "compress_model",
    "compressed_ffn_breakdown",
    "compressed_ffn_tile_bytes",
    "compressed_mha_breakdown",
    "compressed_mha_tile_bytes",
    "compress_trace_spans",
    "compression_sweep",
    "default_sweep_specs",
    "ffn_weight_bytes",
    "footprint_report",
    "layer_weight_bytes",
    "mha_weight_bytes",
    "nm_sparse_spec",
    "resblock_weight_keys",
    "restore_weights",
    "schedule_compressed_ffn",
    "schedule_compressed_mha",
    "snapshot_weights",
    "sweep_point",
]
