"""Apply a compression spec to a trained Transformer (BLEU-proxy path).

The accelerator streams compressed weights; the numpy model cannot, so
quality is measured through the *dense-expansion equivalence path*:
every ResBlock weight matrix is projected onto the spec's structured
family (:func:`repro.compress.formats.compress_dense`) and written back
as an ordinary dense matrix.  The resulting model computes exactly what
the hardware's compressed stream would, and
:func:`repro.nmt.evaluate_bleu` scores it unchanged.

Only the weights the accelerator actually tiles are touched — the
Q/K/V/G projections of every attention ResBlock and the W1/W2 matrices
of every FFN ResBlock.  Embeddings and the generator stay dense (out of
the accelerator's scope, paper Section II-A).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional

import numpy as np

from ..config import CompressionSpec
from ..errors import ConfigError
from .formats import compress_dense

#: Weight leaves of one ResBlock, in streaming order.
RESBLOCK_WEIGHT_LEAVES = (
    "q_proj.weight", "k_proj.weight", "v_proj.weight", "out_proj.weight",
    "linear1.weight", "linear2.weight",
)


def resblock_weight_keys(model) -> dict[str, list[str]]:
    """Group the model's compressible weight names by ResBlock.

    Returns ``{"encoder.layer0.self_attn": [...weight names...], ...}``
    in model order; keys match the ResBlock labels the compression
    tolerance sweep reports.
    """
    groups: dict[str, list[str]] = {}
    for name, param in model.named_parameters():
        if param.data.ndim != 2:
            continue
        for leaf in RESBLOCK_WEIGHT_LEAVES:
            if name.endswith("." + leaf):
                block = name[: -len(leaf) - 1]
                # Drop the wrapper module level (``.mha`` / ``.ffn``).
                head, _, tail = block.rpartition(".")
                if tail in ("mha", "ffn") and head:
                    block = head
                groups.setdefault(block, []).append(name)
                break
    return groups


def compress_model(
    model,
    spec: CompressionSpec,
    blocks: Optional[Iterable[str]] = None,
) -> dict[str, int]:
    """Project ``model``'s ResBlock weights onto ``spec``'s family.

    Modifies the model in place (use :func:`snapshot_weights` /
    :func:`restore_weights` around it to measure and roll back).
    ``blocks`` restricts the projection to the named ResBlocks
    (default: all of them).  Returns ``{block: matrices_compressed}``.
    """
    groups = resblock_weight_keys(model)
    if blocks is not None:
        wanted = list(blocks)
        unknown = [b for b in wanted if b not in groups]
        if unknown:
            raise ConfigError(f"unknown ResBlocks: {unknown}")
        groups = {b: groups[b] for b in wanted}
    params = dict(model.named_parameters())
    compressed: dict[str, int] = {}
    for block, names in groups.items():
        for name in names:
            param = params[name]
            param.data[...] = compress_dense(np.asarray(param.data), spec)
        compressed[block] = len(names)
    return compressed


def snapshot_weights(model) -> dict[str, np.ndarray]:
    """Copies of every compressible weight (for later restoration)."""
    groups = resblock_weight_keys(model)
    params = dict(model.named_parameters())
    return {
        name: np.array(params[name].data, copy=True)
        for names in groups.values() for name in names
    }


def restore_weights(model, snapshot: Mapping[str, np.ndarray]) -> None:
    """Write a :func:`snapshot_weights` copy back into the model."""
    params = dict(model.named_parameters())
    for name, data in snapshot.items():
        params[name].data[...] = data
