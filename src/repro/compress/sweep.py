"""Compression sweep: ratio x cycles x stalls x quality x throughput.

The measurement the whole subsystem exists for — for each candidate
:class:`~repro.config.CompressionSpec` at one operating point it
reports, side by side:

* the storage story (value compression ratio, weight-bytes ratio with
  index metadata, encoder-layer sets resident in the Table II BRAM);
* the cycle story (compressed MHA/FFN totals from the event timeline,
  savings vs dense, paid index/setup overhead, memsys stall share);
* optionally the quality story (BLEU proxy on the synthetic NMT task
  through the dense-expansion equivalence path) and the serving story
  (simulated throughput with the compressed cost model).

``repro compress`` drives this from the CLI; the A8 bench pins three
of its headline numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..config import (
    AcceleratorConfig,
    CompressionSpec,
    MemoryConfig,
    ModelConfig,
    ServingConfig,
    circulant_spec,
    nm_sparse_spec,
)
from ..errors import ScheduleError
from .cycle_model import compressed_ffn_breakdown, compressed_mha_breakdown
from .footprint import FootprintReport, footprint_report
from .schedule import schedule_compressed_ffn, schedule_compressed_mha

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry


def default_sweep_specs() -> list[CompressionSpec]:
    """The canonical sweep: dense reference, circulant and N:M ladders."""
    return [
        CompressionSpec(),
        circulant_spec(4),
        circulant_spec(8),
        circulant_spec(16),
        nm_sparse_spec(2, 4),
        nm_sparse_spec(1, 4),
    ]


@dataclass(frozen=True)
class CompressPoint:
    """One compression spec's full-stack measurement.

    Attributes:
        spec: The spec measured.
        compression_ratio: Dense / stored weight-value count.
        weight_bytes_ratio: Compressed / dense layer weight bytes
            (index metadata included).
        mha_cycles / ffn_cycles: Event-timeline ResBlock totals.
        dense_mha_cycles / dense_ffn_cycles: Dense references.
        cycle_savings_frac: ``1 - compressed / dense`` over one
            MHA + FFN layer (negative when overhead outweighs savings,
            e.g. circulant on an unconstrained memory system).
        index_overhead_cycles: Paid row-generator/index-decode cycles
            over one MHA + FFN layer.
        skipped_cycles: SA active cycles the sparsity skipped vs dense
            (zero for circulant — it compresses bytes, not MACs).
        memsys_stall_cycles: Layer memsys stall at this point.
        stall_share: Memsys stall / layer total.
        footprint: The BRAM/bandwidth accounting
            (:class:`~repro.compress.footprint.FootprintReport`).
        bleu: BLEU proxy of the compressed NMT model (None when no
            trained model was supplied).
        bleu_drop: Dense-model BLEU minus compressed BLEU (None as
            above).
        throughput_rps: Simulated serving throughput with the
            compressed cost model (None when serving was not swept).
    """

    spec: CompressionSpec
    compression_ratio: float
    weight_bytes_ratio: float
    mha_cycles: int
    ffn_cycles: int
    dense_mha_cycles: int
    dense_ffn_cycles: int
    cycle_savings_frac: float
    index_overhead_cycles: int
    skipped_cycles: int
    memsys_stall_cycles: int
    stall_share: float
    footprint: FootprintReport
    bleu: Optional[float] = None
    bleu_drop: Optional[float] = None
    throughput_rps: Optional[float] = None

    @property
    def label(self) -> str:
        return self.spec.label

    def as_dict(self) -> dict:
        """JSON-friendly flat view (CLI / CI artifact format)."""
        return {
            "spec": self.label,
            "scheme": self.spec.scheme,
            "compression_ratio": self.compression_ratio,
            "weight_bytes_ratio": self.weight_bytes_ratio,
            "mha_cycles": self.mha_cycles,
            "ffn_cycles": self.ffn_cycles,
            "dense_mha_cycles": self.dense_mha_cycles,
            "dense_ffn_cycles": self.dense_ffn_cycles,
            "cycle_savings_frac": self.cycle_savings_frac,
            "index_overhead_cycles": self.index_overhead_cycles,
            "skipped_cycles": self.skipped_cycles,
            "memsys_stall_cycles": self.memsys_stall_cycles,
            "stall_share": self.stall_share,
            "layers_resident": self.footprint.layers_resident,
            "bleu": self.bleu,
            "bleu_drop": self.bleu_drop,
            "throughput_rps": self.throughput_rps,
        }


def sweep_point(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    mem: Optional[MemoryConfig] = None,
) -> CompressPoint:
    """Price one spec (cycles + footprint; no quality/serving terms)."""
    mha = schedule_compressed_mha(model, acc, spec, mem)
    ffn = schedule_compressed_ffn(model, acc, spec, mem)
    dense = CompressionSpec()
    dense_mha = schedule_compressed_mha(model, acc, dense, mem)
    dense_ffn = schedule_compressed_ffn(model, acc, dense, mem)
    # Cross-check the closed form at every swept point (the property
    # tests do this across random configs; the sweep asserts it on the
    # exact points it reports).
    bd_mha = compressed_mha_breakdown(model, acc, spec, mem)
    bd_ffn = compressed_ffn_breakdown(model, acc, spec, mem)
    assert bd_mha.total_cycles == mha.total_cycles
    assert bd_ffn.total_cycles == ffn.total_cycles
    layer = mha.total_cycles + ffn.total_cycles
    dense_layer = dense_mha.total_cycles + dense_ffn.total_cycles
    skipped = (
        (dense_mha.sa_active_cycles + dense_ffn.sa_active_cycles)
        - (mha.sa_active_cycles + ffn.sa_active_cycles)
    )
    fp = footprint_report(model, acc, spec)
    return CompressPoint(
        spec=spec,
        compression_ratio=spec.compression_ratio,
        weight_bytes_ratio=fp.weight_bytes_ratio,
        mha_cycles=mha.total_cycles,
        ffn_cycles=ffn.total_cycles,
        dense_mha_cycles=dense_mha.total_cycles,
        dense_ffn_cycles=dense_ffn.total_cycles,
        cycle_savings_frac=1.0 - layer / dense_layer,
        index_overhead_cycles=(mha.compress_overhead_cycles
                               + ffn.compress_overhead_cycles),
        skipped_cycles=skipped,
        memsys_stall_cycles=(mha.memsys_stall_cycles
                             + ffn.memsys_stall_cycles),
        stall_share=(mha.memsys_stall_cycles + ffn.memsys_stall_cycles)
        / layer,
        footprint=fp,
    )


def compress_trace_spans(
    points: list[CompressPoint], clock_mhz: float = 200.0
) -> tuple[list, list[dict]]:
    """Chrome-trace view of a sweep: one row per spec, side by side.

    Each spec's compressed MHA + FFN passes become two spans on a
    ``compress.<label>`` track, laid left to right in sweep order so the
    rows' lengths *are* the cycle comparison.  Counter tracks chart the
    paid index/setup overhead, the MAC cycles the sparsity skipped and
    the weight-bytes ratio across the sweep.  Returns ``(spans,
    counter_events)`` for :func:`repro.core.trace.write_span_trace`.
    """
    from ..core.trace import TraceSpan, counter_events

    if not points:
        raise ScheduleError("no sweep points to trace")
    scale = 1.0 / clock_mhz
    spans = []
    overhead, skipped, ratio = [], [], []
    cursor = 0.0
    for point in points:
        track = f"compress.{point.label}"
        mha_us = point.mha_cycles * scale
        ffn_us = point.ffn_cycles * scale
        spans.append(TraceSpan(
            name="mha", track=track, start_us=cursor, duration_us=mha_us,
            category="compress",
            args={"cycles": point.mha_cycles,
                  "dense_cycles": point.dense_mha_cycles},
        ))
        spans.append(TraceSpan(
            name="ffn", track=track, start_us=cursor + mha_us,
            duration_us=ffn_us, category="compress",
            args={"cycles": point.ffn_cycles,
                  "dense_cycles": point.dense_ffn_cycles},
        ))
        overhead.append((cursor, point.index_overhead_cycles))
        skipped.append((cursor, point.skipped_cycles))
        ratio.append((cursor, point.weight_bytes_ratio))
        cursor += mha_us + ffn_us
    counters = (
        counter_events("compress.index_overhead_cycles", overhead, "compress")
        + counter_events("compress.skipped_cycles", skipped, "compress")
        + counter_events("compress.weight_bytes_ratio", ratio, "compress")
    )
    return spans, counters


def compression_sweep(
    model: ModelConfig,
    acc: AcceleratorConfig,
    specs: Optional[list[CompressionSpec]] = None,
    mem: Optional[MemoryConfig] = None,
    nmt: Optional[tuple] = None,
    serving: Optional[ServingConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> list[CompressPoint]:
    """Measure every spec across the axes the caller enabled.

    Args:
        model / acc: Operating point for the cycle/footprint pricing.
        specs: Candidate specs (default :func:`default_sweep_specs`);
            a dense entry anchors the comparisons.
        mem: Finite memory system for the stall terms (None = the
            paper's free-weights assumption, stall share 0).
        nmt: Optional ``(trained_model, task, eval_pairs)`` triple; when
            given, each spec's BLEU proxy is measured through the
            dense-expansion path (the trained model is snapshotted and
            restored around each projection).
        serving: Optional :class:`ServingConfig`; when given, each spec
            runs the serving simulator with ``compression=spec`` and
            reports its throughput.
        registry: Optional metrics registry; each point is recorded as
            ``repro_compress_*`` families
            (:func:`repro.telemetry.instrument.record_compress`).
    """
    points: list[CompressPoint] = []
    dense_bleu: Optional[float] = None
    if nmt is not None:
        from ..nmt import evaluate_bleu

        trained, task, pairs = nmt
        dense_bleu = evaluate_bleu(trained, task, pairs)
    for spec in (default_sweep_specs() if specs is None else specs):
        point = sweep_point(model, acc, spec, mem)
        bleu = bleu_drop = None
        if nmt is not None:
            from ..nmt import evaluate_bleu

            from .apply import compress_model, restore_weights, snapshot_weights

            trained, task, pairs = nmt
            if spec.is_dense:
                bleu = dense_bleu
            else:
                snapshot = snapshot_weights(trained)
                try:
                    compress_model(trained, spec)
                    bleu = evaluate_bleu(trained, task, pairs)
                finally:
                    restore_weights(trained, snapshot)
            bleu_drop = dense_bleu - bleu
        throughput = None
        if serving is not None:
            from ..serving import simulate_serving

            result = simulate_serving(
                model, acc, serving.with_updates(compression=spec)
            )
            throughput = result.metrics.throughput_rps
        point = dataclasses.replace(
            point, bleu=bleu, bleu_drop=bleu_drop,
            throughput_rps=throughput,
        )
        points.append(point)
        if registry is not None:
            from ..telemetry.instrument import record_compress

            record_compress(registry, point=point)
    return points
