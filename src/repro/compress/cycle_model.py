"""Closed-form cycle model for compressed MHA/FFN ResBlocks.

Derives the totals of :mod:`repro.compress.schedule` algebraically so
the property tests can hold the two to EXACT integer agreement, the
same contract the dense MHA/FFN and fused-attention models satisfy.

Pricing, mirroring the timeline:

* every weight-streaming pass reduces over
  ``spec.effective_depth(k)`` active cycles and pays
  ``spec.pass_overhead_cycles(k)`` extra control cycles — the circulant
  row-generator seed loads or the N:M index decode.  The overhead is
  folded into ``issue_cycles`` (it is control time on the SA, exactly
  like ``pass_issue_cycles``), so :class:`CycleBreakdown` needs no new
  field and the REP002 pricing-parity lint holds unchanged;
* the memsys stall recursions rerun with the compressed pass busy
  times and the compressed tile fetch cost
  (``spec.weight_tile_bytes``) — a compressed weight pass is shorter
  *and* its tile is smaller, which moves the compute/memory-bound
  crossover;
* ``ideal_cycles`` stays the *dense* MAC bound, so utilization and
  cycle-savings numbers compare compressed runs against the
  uncompressed ideal rather than moving the goalposts.

Activation-only passes, softmax and LayerNorm are identical to
:mod:`repro.core.cycle_model`.
"""

from __future__ import annotations

from typing import Optional

from ..config import (
    AcceleratorConfig,
    CompressionSpec,
    MemoryConfig,
    ModelConfig,
)
from ..core.cycle_model import (
    CycleBreakdown,
    _abft_exposure,
    _layernorm_tail,
    _skew_and_drain,
    pass_busy_cycles,
)
from ..errors import ScheduleError


def compressed_mha_tile_bytes(
    model: ModelConfig, acc: AcceleratorConfig, spec: CompressionSpec
) -> int:
    """Bytes of one compressed 64-column MHA weight tile."""
    return spec.weight_tile_bytes(model.d_model, acc.sa_cols, acc.weight_bits)


def compressed_ffn_tile_bytes(
    model: ModelConfig, acc: AcceleratorConfig, spec: CompressionSpec
) -> tuple[int, int]:
    """Bytes of one compressed 64-column W1 tile and one W2 tile."""
    w1 = spec.weight_tile_bytes(model.d_model, acc.sa_cols, acc.weight_bits)
    w2 = spec.weight_tile_bytes(model.d_ff, acc.sa_cols, acc.weight_bits)
    return w1, w2


def _compressed_weight_pass_busy(
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    k: int,
    break_pass: bool,
) -> int:
    """SA-busy cycles of one compressed weight pass (depth ``k``)."""
    return (
        pass_busy_cycles(acc, spec.effective_depth(k), True, break_pass)
        + spec.pass_overhead_cycles(k)
    )


def _compressed_mha_memsys_stalls(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    mem: MemoryConfig,
) -> tuple[int, int]:
    """(memsys stall, softmax stall) of one compressed MHA ResBlock.

    The recursion of :func:`repro.core.cycle_model._mha_memsys_stalls`
    with every weight-pass busy time and tile fetch replaced by its
    compressed counterpart; the activation passes (``Q K^T``, ``P V``)
    keep their dense busy times.
    """
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    qkt_passes = -(-s // acc.sa_cols)
    exposed = s + acc.softmax_pipeline_depth
    b_chain = _compressed_weight_pass_busy(acc, spec, d_model, False)
    fetch = mem.transfer_cycles(
        compressed_mha_tile_bytes(model, acc, spec), acc.clock_mhz
    )
    if not mem.double_buffered_prefetch:
        mem_stall = 4 * h * fetch
        sm_stall = h * max(0, exposed - b_chain - fetch)
        return mem_stall, sm_stall
    b_first = _compressed_weight_pass_busy(acc, spec, d_model, True)
    b_qkt0 = pass_busy_cycles(acc, acc.sa_cols, False, True)
    b_qktx = pass_busy_cycles(
        acc, acc.sa_cols, False, acc.single_ported_buffers
    )
    b_pv = pass_busy_cycles(acc, s, False, True)
    gap_v = b_chain + b_qkt0 + (qkt_passes - 1) * b_qktx
    mem_stall = 0
    sm_stall = 0
    stall_v = 0
    for i in range(h):
        if i == 0:
            stall_q = fetch
        else:
            gap_q = max(b_chain, exposed - stall_v) + b_pv
            stall_q = max(0, fetch - gap_q)
        stall_k = max(0, fetch - (b_first if i == 0 else b_chain))
        stall_v = max(0, fetch - gap_v)
        mem_stall += stall_q + stall_k + stall_v
        sm_stall += max(0, exposed - b_chain - stall_v)
    gap_g0 = max(b_chain, exposed - stall_v) + b_pv
    mem_stall += max(0, fetch - gap_g0)
    if h >= 2:
        b_g0 = _compressed_weight_pass_busy(acc, spec, d_model, True)
        b_gx = _compressed_weight_pass_busy(
            acc, spec, d_model, acc.single_ported_buffers
        )
        mem_stall += max(0, fetch - b_g0)
        mem_stall += (h - 2) * max(0, fetch - b_gx)
    return mem_stall, sm_stall


def _compressed_ffn_memsys_stalls(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    mem: MemoryConfig,
) -> int:
    """Memsys stall of one compressed FFN ResBlock (linear chain)."""
    w1_bytes, w2_bytes = compressed_ffn_tile_bytes(model, acc, spec)
    fetch1 = mem.transfer_cycles(w1_bytes, acc.clock_mhz)
    fetch2 = mem.transfer_cycles(w2_bytes, acc.clock_mhz)
    num_w1 = model.d_ff // acc.sa_cols
    num_w2 = model.d_model // acc.sa_cols
    if not mem.double_buffered_prefetch:
        return num_w1 * fetch1 + num_w2 * fetch2
    b1_first = _compressed_weight_pass_busy(acc, spec, model.d_model, True)
    b1_other = _compressed_weight_pass_busy(
        acc, spec, model.d_model, acc.single_ported_buffers
    )
    b2_first = _compressed_weight_pass_busy(acc, spec, model.d_ff, True)
    b2_other = _compressed_weight_pass_busy(
        acc, spec, model.d_ff, acc.single_ported_buffers
    )
    stall = fetch1                       # cold start on w1.0
    if num_w1 >= 2:
        stall += max(0, fetch1 - b1_first)
        stall += (num_w1 - 2) * max(0, fetch1 - b1_other)
    last_w1 = b1_first if num_w1 == 1 else b1_other
    stall += max(0, fetch2 - last_w1)
    if num_w2 >= 2:
        stall += max(0, fetch2 - b2_first)
        stall += (num_w2 - 2) * max(0, fetch2 - b2_other)
    return stall


def compressed_mha_breakdown(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    mem: Optional[MemoryConfig] = None,
) -> CycleBreakdown:
    """Analytic cycle count of one compressed MHA ResBlock.

    Same pass inventory as the dense model; the ``4h`` weight passes
    (three projections and the output pass per head) stream compressed
    tiles.  With a dense spec this returns the dense breakdown exactly.
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    s = acc.seq_len
    h = model.num_heads
    d_model = model.d_model
    k_w = spec.effective_depth(d_model)
    over = spec.pass_overhead_cycles(d_model)
    qkt_passes = -(-s // acc.sa_cols)
    active = h * (3 * k_w + qkt_passes * acc.sa_cols + s) + h * k_w
    passes = h * (4 + qkt_passes) + h
    weight_passes = 4 * h
    issue = (passes * acc.pass_issue_cycles
             + weight_passes * acc.weight_load_cycles
             + weight_passes * over)
    skew_full = _skew_and_drain(acc, acc.sa_cols)
    if acc.pass_overlap:
        break_passes = 2 * h + 2
        if acc.single_ported_buffers:
            break_passes += h * (qkt_passes - 1) + (h - 1)
    else:
        break_passes = passes
    skew = break_passes * skew_full
    abft = _abft_exposure(acc, passes, break_passes)
    softmax_exposed = s + acc.softmax_pipeline_depth
    # The V projection is a chained pass; its compressed busy time is
    # the only SA work hiding the softmax tail before P V may start.
    v_busy = _compressed_weight_pass_busy(acc, spec, d_model, False)
    if mem is not None and not mem.is_unlimited:
        mem_stall, stall = _compressed_mha_memsys_stalls(
            model, acc, spec, mem
        )
    else:
        mem_stall = 0
        stall = h * max(0, softmax_exposed - v_busy)
    layernorm = _layernorm_tail(acc, d_model)
    total = active + issue + skew + stall + layernorm + abft + mem_stall
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        softmax_stall_cycles=stall,
        abft_cycles=abft,
        memsys_stall_cycles=mem_stall,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=model.mha_macs(s) // acc.num_pes,
    )


def compressed_ffn_breakdown(
    model: ModelConfig,
    acc: AcceleratorConfig,
    spec: CompressionSpec,
    mem: Optional[MemoryConfig] = None,
) -> CycleBreakdown:
    """Analytic cycle count of one compressed FFN ResBlock.

    All ``d_ff/64`` W1 and ``d_model/64`` W2 passes stream compressed
    tiles; W1 passes reduce over ``effective_depth(d_model)``, W2
    passes over ``effective_depth(d_ff)``.
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    d_model = model.d_model
    d_ff = model.d_ff
    k1 = spec.effective_depth(d_model)
    k2 = spec.effective_depth(d_ff)
    over1 = spec.pass_overhead_cycles(d_model)
    over2 = spec.pass_overhead_cycles(d_ff)
    num_w1 = d_ff // acc.sa_cols
    num_w2 = d_model // acc.sa_cols
    active = num_w1 * k1 + num_w2 * k2
    passes = num_w1 + num_w2
    issue = (passes * (acc.pass_issue_cycles + acc.weight_load_cycles)
             + num_w1 * over1 + num_w2 * over2)
    skew_full = _skew_and_drain(acc, acc.sa_cols)
    if acc.pass_overlap:
        if acc.single_ported_buffers:
            break_passes = passes
        else:
            break_passes = 2              # first pass + the W1->W2 break
    else:
        break_passes = passes
    skew = break_passes * skew_full
    abft = _abft_exposure(acc, passes, break_passes)
    layernorm = _layernorm_tail(acc, d_model)
    mem_stall = (
        _compressed_ffn_memsys_stalls(model, acc, spec, mem)
        if mem is not None and not mem.is_unlimited else 0
    )
    total = active + issue + skew + layernorm + abft + mem_stall
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        abft_cycles=abft,
        memsys_stall_cycles=mem_stall,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=model.ffn_macs(acc.seq_len) // acc.num_pes,
    )
