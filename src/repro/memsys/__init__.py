"""Off-chip memory system: bandwidth, weight prefetch, cross-batch cache.

The paper's accelerator keeps every weight tile on-chip; this package
models what it costs to get them there over a DDR/AXI link:

* :class:`DramChannel` + :class:`~repro.config.MemoryConfig` presets —
  the link itself (GB/s, burst efficiency, per-transfer latency,
  channel sharing);
* :class:`TilePrefetcher` — double-buffered 64-column weight-tile
  prefetch used by the core scheduler and the analytic cycle model;
* :class:`WeightCache` — LRU over ResBlock weight sets, sized from the
  Table II BRAM budget, hit across serving batches;
* :func:`analyze_memory_system` / :class:`MemorySystemReport` — stall
  shares, the accelerator-side roofline ceiling, and the
  compute/memory-bound crossover bandwidth.

``report`` is loaded lazily: it depends on :mod:`repro.core`, which
itself imports this package (the scheduler uses the prefetcher), so an
eager import here would be circular.
"""

from ..config import MemoryConfig
from .bandwidth import (
    MEMORY_PRESETS,
    DramChannel,
    contenders_per_channel,
    ddr4_2400,
    ddr4_3200,
    hbm2_pc,
    lpddr4_2133,
    memory_preset,
    unlimited,
)
from .cache import WeightCache, default_weight_cache_bytes
from .prefetch import PrefetchEvent, TilePrefetcher

_REPORT_EXPORTS = (
    "BlockMemoryStats",
    "MemorySystemReport",
    "analyze_memory_system",
    "steady_state_crossover_gbps",
)

__all__ = [
    "MEMORY_PRESETS",
    "DramChannel",
    "MemoryConfig",
    "PrefetchEvent",
    "TilePrefetcher",
    "WeightCache",
    "contenders_per_channel",
    "ddr4_2400",
    "ddr4_3200",
    "default_weight_cache_bytes",
    "hbm2_pc",
    "lpddr4_2133",
    "memory_preset",
    "unlimited",
    *_REPORT_EXPORTS,
]


def __getattr__(name: str):
    if name in _REPORT_EXPORTS:
        from . import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
