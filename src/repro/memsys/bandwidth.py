"""Off-chip link models: DRAM channel accounting and named presets.

The cycle arithmetic itself lives on :class:`repro.config.MemoryConfig`
(``transfer_cycles``) so the core scheduler can price a fetch without
importing this package; :class:`DramChannel` wraps one configured link
shared by ``requesters`` contenders and keeps traffic counters, which
is what the serving pool and the report layer want.

The presets are sustained numbers for common embedded/server parts —
peak GB/s with a typical burst efficiency and a fixed request latency
in 200 MHz accelerator cycles.
"""

from __future__ import annotations


from ..config import MemoryConfig
from ..errors import MemoryModelError


class DramChannel:
    """One DDR/AXI channel shared fairly by ``requesters`` contenders.

    Each requester sees ``1/requesters`` of the sustained bandwidth;
    the per-transfer latency is not divided (each request pays its own
    CAS/AXI pipeline).  The channel tallies everything it moves so a
    run can report achieved bandwidth and link utilization.
    """

    def __init__(
        self,
        mem: MemoryConfig,
        clock_mhz: float,
        requesters: int = 1,
    ) -> None:
        if clock_mhz <= 0:
            raise MemoryModelError("clock_mhz must be positive")
        if requesters <= 0:
            raise MemoryModelError("requesters must be positive")
        self.mem = mem
        self.clock_mhz = clock_mhz
        self.requesters = requesters
        self.bytes_transferred = 0
        self.transfers = 0
        self.busy_cycles = 0

    @property
    def bytes_per_cycle(self) -> float:
        """Sustained bytes per accelerator cycle seen by one requester."""
        return self.mem.bytes_per_cycle(self.clock_mhz) / self.requesters

    def transfer_cycles(self, num_bytes: int) -> int:
        """Price and record one ``num_bytes`` transfer."""
        cycles = self.mem.transfer_cycles(
            num_bytes, self.clock_mhz, self.requesters
        )
        self.bytes_transferred += num_bytes
        self.transfers += 1
        self.busy_cycles += cycles
        return cycles

    def achieved_gbps(self, elapsed_cycles: int) -> float:
        """Mean GB/s actually moved over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / (self.clock_mhz * 1e6)
        return self.bytes_transferred / seconds / 1e9


def contenders_per_channel(num_requesters: int, channels: int) -> int:
    """Requesters contending on the busiest of ``channels`` links."""
    if num_requesters <= 0 or channels <= 0:
        raise MemoryModelError(
            "num_requesters and channels must be positive"
        )
    return -(-num_requesters // channels)


def lpddr4_2133() -> MemoryConfig:
    """One 32-bit LPDDR4-2133 channel (embedded target)."""
    return MemoryConfig(
        bandwidth_gbps=8.5, bus_width_bits=32,
        burst_efficiency=0.75, transfer_latency_cycles=28,
    )


def ddr4_2400() -> MemoryConfig:
    """One 64-bit DDR4-2400 channel (the FPGA-card baseline)."""
    return MemoryConfig(
        bandwidth_gbps=19.2, bus_width_bits=64,
        burst_efficiency=0.8, transfer_latency_cycles=24,
    )


def ddr4_3200() -> MemoryConfig:
    """One 64-bit DDR4-3200 channel."""
    return MemoryConfig(
        bandwidth_gbps=25.6, bus_width_bits=64,
        burst_efficiency=0.8, transfer_latency_cycles=24,
    )


def hbm2_pc() -> MemoryConfig:
    """One HBM2 pseudo-channel (64-bit at 2 Gb/s/pin)."""
    return MemoryConfig(
        bandwidth_gbps=16.0, bus_width_bits=64,
        burst_efficiency=0.9, transfer_latency_cycles=16,
    )


def unlimited() -> MemoryConfig:
    """Free transfers — the paper's implicit on-chip-only assumption."""
    return MemoryConfig()


#: Named presets for the CLI's ``--memory`` choices.
MEMORY_PRESETS: dict[str, MemoryConfig] = {
    "lpddr4-2133": lpddr4_2133(),
    "ddr4-2400": ddr4_2400(),
    "ddr4-3200": ddr4_3200(),
    "hbm2-pc": hbm2_pc(),
    "unlimited": unlimited(),
}


def memory_preset(name: str) -> MemoryConfig:
    """Look up a memory preset by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in MEMORY_PRESETS:
        raise MemoryModelError(
            f"unknown memory preset {name!r}; "
            f"available: {sorted(MEMORY_PRESETS)}"
        )
    return MEMORY_PRESETS[key]
