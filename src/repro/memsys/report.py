"""Memory-system analysis: stall shares, ceilings, bound crossover.

:func:`analyze_memory_system` runs the analytic cycle model with and
without the configured link and reports, per ResBlock, how much of the
latency the off-chip memory system adds — plus the accelerator-side
roofline (the link as the operand ceiling, instead of the V100 HBM
numbers the analysis layer had before) and the steady-state crossover
bandwidth below which the SA starves on weight fetches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.roofline import (
    Roofline,
    RooflinePoint,
    memory_system_roofline,
    offchip_weights_point,
)
from ..config import AcceleratorConfig, MemoryConfig, ModelConfig
from ..errors import MemoryModelError

# Function-level core imports below: repro.core imports this package
# (the scheduler uses the prefetcher), so module-level ones would be
# circular.


@dataclass(frozen=True)
class BlockMemoryStats:
    """Memory-system impact on one ResBlock.

    Attributes:
        block: ``"mha"`` or ``"ffn"``.
        compute_cycles: Infinite-bandwidth total (the paper's number).
        total_cycles: Total with the configured link.
        memsys_stall_cycles: SA cycles stalled on weight fetches.
        stall_share: ``memsys_stall / total``.
        tile_bytes: Largest weight tile the block streams.
        tile_fetch_cycles: Link cycles to move that tile.
        utilization: Useful-MAC utilization with the link priced in.
    """

    block: str
    compute_cycles: int
    total_cycles: int
    memsys_stall_cycles: int
    stall_share: float
    tile_bytes: int
    tile_fetch_cycles: int
    utilization: float


@dataclass(frozen=True)
class MemorySystemReport:
    """Everything :func:`analyze_memory_system` derives for one link."""

    memory: MemoryConfig
    clock_mhz: float
    mha: BlockMemoryStats
    ffn: BlockMemoryStats
    roofline: Roofline
    streaming_ffn: RooflinePoint
    crossover_gbps: float

    @property
    def bound(self) -> str:
        """``"memory"`` below the steady-state crossover, else ``"compute"``."""
        if self.memory.bandwidth_gbps < self.crossover_gbps:
            return "memory"
        return "compute"

    @property
    def total_stall_cycles(self) -> int:
        return self.mha.memsys_stall_cycles + self.ffn.memsys_stall_cycles


def steady_state_crossover_gbps(
    model: ModelConfig,
    acc: AcceleratorConfig,
    burst_efficiency: float = 1.0,
    transfer_latency_cycles: int = 0,
) -> float:
    """Peak GB/s below which steady-state weight fetches stall the SA.

    With double buffering, the fetch of tile ``j+1`` hides behind pass
    ``j``; the tightest hiding windows are a chained MHA projection
    pass (``d_model`` deep) for its ``d_model x 64`` tile and a
    steady-state W2 pass (``d_ff`` deep) for its ``d_ff x 64`` tile.
    The crossover is the bandwidth where the slowest of those fetches
    exactly fills its window — above it only the cold-start fetch is
    exposed, below it every tile stalls.
    """
    from ..core.cycle_model import (
        ffn_tile_bytes,
        mha_tile_bytes,
        pass_busy_cycles,
    )

    if not 0.0 < burst_efficiency <= 1.0:
        raise MemoryModelError("burst_efficiency must lie in (0, 1]")
    if transfer_latency_cycles < 0:
        raise MemoryModelError("transfer_latency_cycles must be >= 0")
    windows = [
        (
            mha_tile_bytes(model, acc),
            pass_busy_cycles(acc, model.d_model, True, False),
        ),
        (
            ffn_tile_bytes(model, acc)[0],
            pass_busy_cycles(
                acc, model.d_model, True, acc.single_ported_buffers
            ),
        ),
        (
            ffn_tile_bytes(model, acc)[1],
            pass_busy_cycles(
                acc, model.d_ff, True, acc.single_ported_buffers
            ),
        ),
    ]
    required_bpc = max(
        tile / max(1, window - transfer_latency_cycles)
        for tile, window in windows
    )
    bytes_per_s = required_bpc * acc.clock_mhz * 1e6
    return bytes_per_s / burst_efficiency / 1e9


def analyze_memory_system(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: MemoryConfig,
) -> MemorySystemReport:
    """Quantify what the configured off-chip link costs the paper point."""
    from ..core.cycle_model import (
        ffn_cycle_breakdown,
        ffn_tile_bytes,
        mha_cycle_breakdown,
        mha_tile_bytes,
    )

    base_mha = mha_cycle_breakdown(model, acc)
    base_ffn = ffn_cycle_breakdown(model, acc)
    with_mha = mha_cycle_breakdown(model, acc, mem)
    with_ffn = ffn_cycle_breakdown(model, acc, mem)
    mha_tile = mha_tile_bytes(model, acc)
    ffn_tile = max(ffn_tile_bytes(model, acc))
    blocks = {}
    for name, base, with_mem, tile in (
        ("mha", base_mha, with_mha, mha_tile),
        ("ffn", base_ffn, with_ffn, ffn_tile),
    ):
        blocks[name] = BlockMemoryStats(
            block=name,
            compute_cycles=base.total_cycles,
            total_cycles=with_mem.total_cycles,
            memsys_stall_cycles=with_mem.memsys_stall_cycles,
            stall_share=(
                with_mem.memsys_stall_cycles / with_mem.total_cycles
            ),
            tile_bytes=tile,
            tile_fetch_cycles=mem.transfer_cycles(tile, acc.clock_mhz),
            utilization=with_mem.utilization,
        )
    return MemorySystemReport(
        memory=mem,
        clock_mhz=acc.clock_mhz,
        mha=blocks["mha"],
        ffn=blocks["ffn"],
        roofline=memory_system_roofline(acc, mem),
        streaming_ffn=offchip_weights_point(model, acc, mem=mem),
        crossover_gbps=steady_state_crossover_gbps(
            model, acc,
            burst_efficiency=mem.burst_efficiency,
            transfer_latency_cycles=mem.transfer_latency_cycles,
        ),
    )
