"""Cross-batch weight caching (LRU over ResBlock weight sets).

A serving device that just ran ``enc3.ffn`` still holds that block's
weights in its on-chip Weight Memory; if the next batch runs the same
model, those weights need no off-chip traffic.  :class:`WeightCache`
models that reuse as an LRU over whole ResBlock weight sets, with the
capacity defaulting to the Table II BRAM budget the paper actually
synthesizes (:func:`default_weight_cache_bytes`).

A block larger than the whole cache counts as a miss and is *not*
inserted (it would only evict everything for nothing — the hardware
streams it through the double-buffered banks instead).
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import AcceleratorConfig, ModelConfig
from ..errors import MemoryModelError

# Imported as a submodule path on purpose: this module loads while
# repro.core's own __init__ may still be executing (the scheduler pulls
# in repro.memsys), so it must not depend on repro.core's re-exports.
from ..core.memory import BRAM36_BITS
from ..core.resource_model import estimate_weight_memory


def default_weight_cache_bytes(
    model: ModelConfig, acc: AcceleratorConfig
) -> int:
    """Cache capacity implied by the Table II weight-memory BRAM budget.

    The synthesized Weight Memory holds the largest layer's weights
    (456 BRAM36 banks for Transformer-base); that same storage is what
    a device can keep warm across batches.
    """
    banks = estimate_weight_memory(model, acc).bram
    return int(banks * BRAM36_BITS) // 8


class WeightCache:
    """LRU cache of ResBlock weight sets, keyed by block name."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise MemoryModelError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, int]" = OrderedDict()

    @property
    def used_bytes(self) -> int:
        return sum(self._entries.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: str) -> bool:
        return block in self._entries

    def __iter__(self):
        """Resident block names, least-recently-used first."""
        return iter(self._entries)

    def access(self, block: str, num_bytes: int) -> bool:
        """Touch ``block``; return True on a hit, else insert (LRU).

        A miss evicts least-recently-used blocks until the new one
        fits; blocks larger than the whole cache are never inserted.
        """
        if num_bytes <= 0:
            raise MemoryModelError(
                f"block {block!r} has non-positive size {num_bytes}"
            )
        if block in self._entries:
            self._entries.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        if num_bytes <= self.capacity_bytes:
            while self.used_bytes + num_bytes > self.capacity_bytes:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[block] = num_bytes
        return False

    def remove(self, block: str) -> bool:
        """Drop ``block`` without counting an eviction (owner freed it).

        Returns True if the block was resident.  Capacity-pressure
        evictions stay in :attr:`evictions`; explicit removal is the
        owner releasing storage (e.g. a finished decode stream's KV
        pages), not the cache running out of room.
        """
        return self._entries.pop(block, None) is not None
