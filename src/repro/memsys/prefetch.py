"""Double-buffered weight-tile prefetch timing.

The Weight Memory's second bank lets the accelerator fetch the *next*
64-column weight tile while the SA streams the current one.  The
prefetch FSM modeled here issues the fetch for tile ``j+1`` the cycle
pass ``j`` starts streaming (one outstanding fetch; both the channel
and the spare bank are provably free from that point), so a weight
pass stalls only when its tile's transfer outlasts the whole previous
pass — ``tile_bytes / effective_bandwidth > per-tile busy time``.

With ``double_buffered_prefetch=False`` there is no spare bank: every
weight pass waits for its own tile, fully exposed, before it may
start.

This module imports only :mod:`repro.config` so the core scheduler can
use it without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..config import MemoryConfig
from ..errors import MemoryModelError

if TYPE_CHECKING:
    from ..telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class PrefetchEvent:
    """Timing of one weight-tile fetch and the pass it feeds.

    Attributes:
        fetch_start / fetch_cycles: DRAM transfer interval (cycles).
        stall_cycles: SA cycles the pass waited for the tile.
        pass_start: When the pass actually starts (natural start +
            stall).
    """

    fetch_start: int
    fetch_cycles: int
    stall_cycles: int
    pass_start: int

    @property
    def fetch_end(self) -> int:
        return self.fetch_start + self.fetch_cycles


class TilePrefetcher:
    """Sequences weight-tile fetches for one SA pass stream.

    Call :meth:`issue` once per weight-streaming pass, in pass order,
    with the pass's *natural* start (when the SA could begin absent any
    memory stall); it returns where the fetch sits on the DRAM track
    and how long the pass must stall.  Activation-only passes do not
    fetch and never stall.
    """

    def __init__(
        self,
        mem: MemoryConfig,
        clock_mhz: float,
        contenders: int = 1,
        registry: Optional[MetricsRegistry] = None,
        block: str = "",
    ) -> None:
        if clock_mhz <= 0:
            raise MemoryModelError("clock_mhz must be positive")
        if contenders <= 0:
            raise MemoryModelError("contenders must be positive")
        self.mem = mem
        self.clock_mhz = clock_mhz
        self.contenders = contenders
        self.stall_cycles = 0
        self.tiles_fetched = 0
        self.bytes_fetched = 0
        self._prev_pass_start: Optional[int] = None
        # Optional telemetry: the registry object is used duck-typed so
        # this module still imports only repro.config at runtime.
        self._registry = registry
        self._block = block

    def fetch_cycles(self, tile_bytes: int) -> int:
        """Transfer cycles for one ``tile_bytes`` tile."""
        return self.mem.transfer_cycles(
            tile_bytes, self.clock_mhz, self.contenders
        )

    def issue(self, natural_start: int, tile_bytes: int) -> PrefetchEvent:
        """Schedule the fetch feeding a pass that could start now.

        Double buffered, the fetch was issued when the previous weight
        pass started (cycle 0 for the first tile: a cold cache has
        nothing to overlap with); otherwise it starts at
        ``natural_start`` and is fully exposed.
        """
        if natural_start < 0:
            raise MemoryModelError("natural_start must be non-negative")
        cycles = self.fetch_cycles(tile_bytes)
        if self.mem.double_buffered_prefetch:
            fetch_start = (
                0 if self._prev_pass_start is None else self._prev_pass_start
            )
            stall = max(0, fetch_start + cycles - natural_start)
        else:
            fetch_start = natural_start
            stall = cycles
        pass_start = natural_start + stall
        self._prev_pass_start = pass_start
        self.stall_cycles += stall
        self.tiles_fetched += 1
        self.bytes_fetched += tile_bytes
        if self._registry is not None:
            outcome = "stalled" if stall > 0 else "hidden"
            self._registry.counter(
                "repro_memsys_prefetch_tiles_total",
                "Weight-tile fetches by outcome (hidden vs stalled)",
            ).inc(1, block=self._block, outcome=outcome)
            self._registry.counter(
                "repro_memsys_prefetch_bytes_total",
                "Off-chip bytes fetched for weight tiles",
            ).inc(tile_bytes, block=self._block)
            if stall > 0:
                self._registry.counter(
                    "repro_memsys_stall_cycles_total",
                    "SA cycles stalled waiting on weight-tile fetches",
                ).inc(stall, block=self._block)
        return PrefetchEvent(
            fetch_start=fetch_start,
            fetch_cycles=cycles,
            stall_cycles=stall,
            pass_start=pass_start,
        )
