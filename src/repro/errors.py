"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch one base type.  Specific subclasses mark which subsystem detected
the problem; they carry plain messages and never wrap unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid model or accelerator configuration was supplied."""


class ShapeError(ReproError):
    """A tensor/matrix did not have the shape an operation requires."""


class PartitionError(ReproError):
    """A weight matrix cannot be partitioned into the required tiles."""


class QuantizationError(ReproError):
    """A quantization step received values it cannot represent."""


class FixedPointError(ReproError):
    """A fixed-point format or operation was misused."""


class ScheduleError(ReproError):
    """The accelerator scheduler was driven into an invalid state."""


class ServingError(ReproError):
    """The serving simulator was misconfigured or driven inconsistently."""


class MemoryModelError(ReproError):
    """An on-chip memory model was accessed out of range or misconfigured."""


class ReliabilityError(ReproError):
    """A fault model, ABFT check, or injection campaign was misused."""


class DecodingError(ReproError):
    """Sequence decoding (greedy/beam) could not proceed."""


class TrainingError(ReproError):
    """The numpy training loop diverged or was misconfigured."""


class TelemetryError(ReproError):
    """A metrics instrument, exporter, or the bench-diff gate was misused."""


class ObsError(ReproError):
    """A request trace, trace sampler, or SLO monitor was misused."""
