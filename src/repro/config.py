"""Model and accelerator configurations.

This module defines:

* :class:`ModelConfig` — the hyper-parameters of a Transformer-family model,
  with presets for every row of the paper's Table I (Transformer-base/big,
  BERT-base/large).
* :class:`AcceleratorConfig` — the parameters of the proposed hardware
  accelerator (systolic-array geometry, clock, pipeline overheads) used by
  the cycle-level simulator, the analytic cycle model, and the resource and
  power models.

The paper's central structural observation (Section III) is that all the
listed architectures satisfy ``d_model = 64 * h`` and
``d_ff = 4 * d_model = 256 * h``; :meth:`ModelConfig.validate` enforces the
first relation and records whether the second holds (the partitioner only
needs divisibility by 64).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional

from .errors import ConfigError

#: Head dimension d_k used by every architecture in Table I.
HEAD_DIM = 64

#: Number of systolic-array columns; equal to the head dimension.
SA_COLS = 64


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of a Transformer-family model (paper Table I).

    Attributes:
        name: Human-readable preset name.
        d_model: Model (embedding) width.
        d_ff: Inner width of the position-wise feed-forward network.
        num_heads: Number of attention heads ``h``.
        num_encoder_layers: Encoder stack depth (6 for Transformer-base).
        num_decoder_layers: Decoder stack depth (0 for encoder-only BERT).
        max_seq_len: Maximum sequence length ``s`` the hardware is sized for.
        dropout: Training-time dropout rate (ignored by the accelerator).
    """

    name: str
    d_model: int
    d_ff: int
    num_heads: int
    num_encoder_layers: int = 6
    num_decoder_layers: int = 6
    max_seq_len: int = 64
    dropout: float = 0.1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        if self.d_model <= 0 or self.d_ff <= 0 or self.num_heads <= 0:
            raise ConfigError(
                f"{self.name}: dimensions must be positive, got "
                f"d_model={self.d_model}, d_ff={self.d_ff}, h={self.num_heads}"
            )
        if self.d_model % self.num_heads != 0:
            raise ConfigError(
                f"{self.name}: d_model={self.d_model} is not divisible by "
                f"h={self.num_heads}"
            )
        if self.head_dim != HEAD_DIM:
            raise ConfigError(
                f"{self.name}: head dimension d_model/h={self.head_dim} must "
                f"equal {HEAD_DIM} (paper Table I pattern d_model = 64h)"
            )
        if self.d_ff % SA_COLS != 0:
            raise ConfigError(
                f"{self.name}: d_ff={self.d_ff} is not divisible by "
                f"{SA_COLS}; the SA partitioning of W1/W2 requires it"
            )
        if self.max_seq_len <= 0:
            raise ConfigError(f"{self.name}: max_seq_len must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigError(f"{self.name}: dropout must lie in [0, 1)")

    @property
    def head_dim(self) -> int:
        """Per-head dimension ``d_k = d_model / h`` (64 for all presets)."""
        return self.d_model // self.num_heads

    @property
    def follows_dff_pattern(self) -> bool:
        """Whether ``d_ff == 4 * d_model`` (true for every Table I row)."""
        return self.d_ff == 4 * self.d_model

    @property
    def num_w1_blocks(self) -> int:
        """Number of 64-column blocks of W1 (``4h`` when the pattern holds)."""
        return self.d_ff // SA_COLS

    @property
    def num_w2_blocks(self) -> int:
        """Number of 64-column blocks of W2 / WG (``h`` under the pattern)."""
        return self.d_model // SA_COLS

    def mha_macs(self, s: int) -> int:
        """Multiply-accumulate count of one MHA ResBlock at sequence length s.

        Counts the four projection GEMM groups plus the two attention
        matmuls, matching the numerator structure of the paper's Eq. (3).
        """
        h, dm, dk = self.num_heads, self.d_model, self.head_dim
        proj = 3 * h * s * dm * dk        # Q/K/V projections, all heads
        attn = h * (s * s * dk + s * s * dk)  # QK^T and (softmax)V
        out = s * dm * dm                 # P x W_G
        return proj + attn + out

    def ffn_macs(self, s: int) -> int:
        """Multiply-accumulate count of one FFN ResBlock at length s."""
        return s * self.d_model * self.d_ff * 2

    def with_updates(self, **changes: object) -> ModelConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def transformer_base() -> ModelConfig:
    """Transformer-base (Vaswani et al. 2017): d_model=512, d_ff=2048, h=8."""
    return ModelConfig("Transformer-base", d_model=512, d_ff=2048, num_heads=8)


def transformer_big() -> ModelConfig:
    """Transformer-big: d_model=1024, d_ff=4096, h=16."""
    return ModelConfig("Transformer-big", d_model=1024, d_ff=4096, num_heads=16)


def bert_base() -> ModelConfig:
    """BERT-base: d_model=768, d_ff=3072, h=12 (encoder-only)."""
    return ModelConfig(
        "BERT-base", d_model=768, d_ff=3072, num_heads=12,
        num_encoder_layers=12, num_decoder_layers=0,
    )


def bert_large() -> ModelConfig:
    """BERT-large: d_model=1024, d_ff=4096, h=16 (encoder-only)."""
    return ModelConfig(
        "BERT-large", d_model=1024, d_ff=4096, num_heads=16,
        num_encoder_layers=24, num_decoder_layers=0,
    )


def tiny_for_tests() -> ModelConfig:
    """A minimal config (h=1, d_model=64) for fast unit tests."""
    return ModelConfig(
        "tiny", d_model=64, d_ff=256, num_heads=1,
        num_encoder_layers=1, num_decoder_layers=1, max_seq_len=16,
    )


#: All Table I presets keyed by canonical name.
TABLE1_PRESETS: dict[str, ModelConfig] = {
    "transformer-base": transformer_base(),
    "transformer-big": transformer_big(),
    "bert-base": bert_base(),
    "bert-large": bert_large(),
}


def preset(name: str) -> ModelConfig:
    """Look up a Table I preset by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in TABLE1_PRESETS:
        raise ConfigError(
            f"unknown preset {name!r}; available: {sorted(TABLE1_PRESETS)}"
        )
    return TABLE1_PRESETS[key]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Parameters of the proposed accelerator and its latency model.

    The systolic array has ``seq_len`` rows and :data:`SA_COLS` columns
    (the paper's ``s x 64`` SA with s = 64 in the evaluation).  The pipeline
    overhead parameters are the knobs the paper does not publish; the
    defaults are calibrated so the simulated cycle counts land in the same
    utilization band as the paper's reported 21,344 / 42,099 cycles (81.6% /
    77.8% SA utilization at Transformer-base, s = 64).

    Attributes:
        seq_len: SA row count ``s`` (and max sequence length processed).
        sa_cols: SA column count (64, equal to the head dimension).
        clock_mhz: Target clock frequency (paper: 200 MHz).
        sa_fill_cycles: Cycles to fill the SA input skew at the start of a
            pass before the first column of products appears.
        sa_drain_cycles: Cycles to drain outputs after the last input column.
        weight_load_cycles: Non-overlapped cycles to load a 64-column weight
            tile into the SA between passes (0 = fully double buffered).
        pass_issue_cycles: Fixed control overhead per SA pass (address
            generation, bias fetch).
        softmax_pipeline_depth: Latency in cycles of the 4-stage softmax
            pipeline for one column (Fig. 6).
        layernorm_pipeline_depth: Latency in cycles from the last element of
            a row of G to that row's first normalized output (Fig. 8).
        layernorm_mode: Which Fig. 7 schedule the LayerNorm module uses:
            ``"straightforward"``, ``"step_one"`` or ``"step_two"``.
        abft_protected: Whether every SA pass carries ABFT checksums
            (:mod:`repro.reliability.abft`).  Dedicated checksum MAC
            unit columns/rows compute the expected row/column sums
            alongside the array, and the verification comparators
            pipeline with the column-by-column drain; the priced cost
            is ``abft_check_cycles`` of comparator tail per pass, plus
            the drain exposure of passes that would otherwise hide
            their drain behind the next pass's fill (a consumer may
            not read an unverified tile).
        abft_check_cycles: Comparator-tree depth of the ABFT verify
            stage (cycles exposed after the drain of every protected
            pass).
        pass_overlap: Whether consecutive independent SA passes overlap
            their fill/drain skew (pipelined control).  When True, a pass
            chained behind another costs only its ``k`` active cycles, and
            the skew/drain penalty is paid only at dependency breaks —
            matching the paper's claim that the SA "will hardly stop
            running".  When False every pass pays the full
            ``k + s + n - 2 + drain`` latency (simple control logic).
        single_ported_buffers: Whether the activation buffers (Fig. 5's
            Data Memory blocks) have a single read port.  If so, two
            consecutive passes that stream the *same* buffer cannot
            overlap their skew (the fill of pass i+1 would contend with
            the tail of pass i) and serialize like a dependency break.
            This is what separates the FFN's utilization from the MHA's:
            all 4h W1 passes re-read X and all h W2 passes re-read P.
        act_bits: Activation word width (INT8 in the paper).
        weight_bits: Weight word width (INT8).
        acc_bits: Accumulator width inside a PE.
    """

    seq_len: int = 64
    sa_cols: int = SA_COLS
    clock_mhz: float = 200.0
    sa_fill_cycles: int = 64
    sa_drain_cycles: int = 16
    weight_load_cycles: int = 0
    pass_issue_cycles: int = 2
    softmax_pipeline_depth: int = 20
    layernorm_pipeline_depth: int = 12
    layernorm_mode: str = "step_two"
    abft_protected: bool = False
    abft_check_cycles: int = 8
    pass_overlap: bool = True
    single_ported_buffers: bool = True
    act_bits: int = 8
    weight_bits: int = 8
    acc_bits: int = 32

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid accelerator parameters."""
        if self.seq_len <= 0 or self.sa_cols <= 0:
            raise ConfigError("SA dimensions must be positive")
        if self.clock_mhz <= 0:
            raise ConfigError("clock_mhz must be positive")
        names = (
            "sa_fill_cycles", "sa_drain_cycles", "weight_load_cycles",
            "pass_issue_cycles", "softmax_pipeline_depth",
            "layernorm_pipeline_depth", "abft_check_cycles",
        )
        for field_name in names:
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be non-negative")
        if self.layernorm_mode not in ("straightforward", "step_one", "step_two"):
            raise ConfigError(
                f"layernorm_mode {self.layernorm_mode!r} is not one of "
                "'straightforward', 'step_one', 'step_two'"
            )
        if self.act_bits <= 1 or self.weight_bits <= 1:
            raise ConfigError("datapath widths must exceed 1 bit")
        if self.acc_bits < self.act_bits + self.weight_bits:
            raise ConfigError(
                "accumulator must be at least act_bits + weight_bits wide"
            )

    @property
    def num_pes(self) -> int:
        """Total processing elements in the SA (``s * 64``)."""
        return self.seq_len * self.sa_cols

    @property
    def clock_period_us(self) -> float:
        """Clock period in microseconds."""
        return 1.0 / self.clock_mhz

    def cycles_to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds at the configured clock."""
        return cycles * self.clock_period_us

    def with_updates(self, **changes: object) -> AcceleratorConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def paper_accelerator() -> AcceleratorConfig:
    """The configuration evaluated in the paper: 64x64 SA at 200 MHz."""
    return AcceleratorConfig()


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory-system parameters (:mod:`repro.memsys`).

    The paper assumes every weight tile is already resident in the
    on-chip Weight Memory; this config describes the DDR/AXI link that
    has to put it there.  The default is an *infinite* link (zero-cost
    transfers), so a plain ``MemoryConfig()`` reproduces the paper's
    cycle counts bit-for-bit and every memsys term is strictly opt-in.

    Attributes:
        bandwidth_gbps: Peak link bandwidth in GB/s (``inf`` = free).
        bus_width_bits: Data-bus width of the link (descriptive; the
            cycle cost is set by ``bandwidth_gbps * burst_efficiency``).
        burst_efficiency: Fraction of peak bandwidth a real burst
            achieves (row activations, refresh, protocol overhead).
        transfer_latency_cycles: Fixed accelerator-clock cycles per
            transfer before the first beat lands (request + CAS + AXI
            pipeline).
        double_buffered_prefetch: Fetch weight tile ``k+1`` into the
            second Weight Memory bank while the SA streams tile ``k``
            (:class:`repro.memsys.TilePrefetcher`).  When False every
            weight pass waits for its own tile, fully exposed.
        weight_cache_kib: Capacity of the per-device weight cache in
            KiB; ``None`` sizes it from the Table II BRAM budget
            (:func:`repro.memsys.default_weight_cache_bytes`).
        enable_weight_cache: Whether serving devices keep weights of
            recently run ResBlocks across batches (LRU); disabling it
            restreams every block's weights on every run.
        shared_channels: Number of independent DRAM channels a
            multi-device pool shares; ``ceil(devices / channels)``
            requesters contend for each channel's bandwidth.
    """

    bandwidth_gbps: float = float("inf")
    bus_width_bits: int = 64
    burst_efficiency: float = 1.0
    transfer_latency_cycles: int = 0
    double_buffered_prefetch: bool = True
    weight_cache_kib: Optional[float] = None
    enable_weight_cache: bool = True
    shared_channels: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid memory parameters."""
        if self.bandwidth_gbps <= 0:
            raise ConfigError("bandwidth_gbps must be positive")
        if self.bus_width_bits <= 0 or self.bus_width_bits % 8:
            raise ConfigError("bus_width_bits must be a positive multiple of 8")
        if not 0.0 < self.burst_efficiency <= 1.0:
            raise ConfigError("burst_efficiency must lie in (0, 1]")
        if self.transfer_latency_cycles < 0:
            raise ConfigError("transfer_latency_cycles must be non-negative")
        if self.weight_cache_kib is not None and self.weight_cache_kib <= 0:
            raise ConfigError("weight_cache_kib must be positive (or None)")
        if self.shared_channels <= 0:
            raise ConfigError("shared_channels must be positive")

    @property
    def is_unlimited(self) -> bool:
        """Whether transfers are free (the paper's implicit assumption)."""
        return (
            math.isinf(self.bandwidth_gbps)
            and self.transfer_latency_cycles == 0
        )

    @property
    def effective_bytes_per_s(self) -> float:
        """Sustained link bandwidth after burst efficiency."""
        return self.bandwidth_gbps * 1e9 * self.burst_efficiency

    def bytes_per_cycle(self, clock_mhz: float) -> float:
        """Sustained bytes per accelerator clock cycle."""
        return self.effective_bytes_per_s / (clock_mhz * 1e6)

    def transfer_cycles(
        self, num_bytes: int, clock_mhz: float, contenders: int = 1
    ) -> int:
        """Accelerator cycles to move ``num_bytes`` over the link.

        ``contenders`` requesters sharing the channel each see ``1/n``
        of the sustained bandwidth (fair interleaving); the fixed
        per-transfer latency is not divided.
        """
        if num_bytes < 0:
            raise ConfigError("num_bytes must be non-negative")
        if contenders <= 0:
            raise ConfigError("contenders must be positive")
        if num_bytes == 0:
            return 0
        if math.isinf(self.bandwidth_gbps):
            return self.transfer_latency_cycles
        per_requester = self.bytes_per_cycle(clock_mhz) / contenders
        stream = math.ceil(num_bytes / per_requester)
        return self.transfer_latency_cycles + stream

    def with_updates(self, **changes: object) -> MemoryConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class CompressionSpec:
    """Structured weight-compression scheme (:mod:`repro.compress`).

    Describes how the off-chip weight matrices are stored and how the
    accelerator prices a compressed weight pass.  Two hardware-friendly
    families, both aligned to the SA's 64-column tile partitioning:

    * ``circulant`` — FTRANS-style block-circulant weights: each
      ``block_size x block_size`` sub-block is a circulant matrix and
      stores only its defining column.  A rotation unit regenerates the
      block rows while streaming, so the SA's active cycles are
      unchanged but the tile's off-chip footprint shrinks by
      ``block_size`` (bandwidth/BRAM relief) at a small per-pass
      row-generator setup cost.
    * ``nm_sparse`` — N:M structured sparsity over the reduction
      dimension: in every group of ``m`` consecutive weight rows only
      ``n`` are nonzero, with the mask shared by all 64 columns of a
      tile so whole zero rows are *skipped* by the SA (fewer active
      cycles).  The pass pays an index-decode overhead and the tile
      carries per-group index metadata.

    The ``dense`` scheme — and any parameterization with compression
    ratio 1.0 (``block_size == 1`` or ``n == m``) — degenerates to the
    uncompressed schedule bit-for-bit.

    Attributes:
        scheme: ``"dense"``, ``"circulant"`` or ``"nm_sparse"``.
        block_size: Circulant block edge; must divide the SA tile width
            (64) and every weight-matrix depth it is applied to.
        n: Nonzero rows kept per sparsity group (``nm_sparse`` only).
        m: Sparsity group size in rows; must divide the SA tile width
            (64) and every weight-matrix depth (``nm_sparse`` only).
    """

    scheme: str = "dense"
    block_size: int = 8
    n: int = 2
    m: int = 4

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid compression parameters."""
        if self.scheme not in ("dense", "circulant", "nm_sparse"):
            raise ConfigError(
                f"unknown compression scheme {self.scheme!r} "
                "(expected dense | circulant | nm_sparse)"
            )
        if self.scheme == "circulant":
            if self.block_size <= 0:
                raise ConfigError("block_size must be positive")
            if SA_COLS % self.block_size:
                raise ConfigError(
                    f"block_size must divide the SA tile width {SA_COLS}"
                )
        if self.scheme == "nm_sparse":
            if self.m <= 0 or self.n <= 0:
                raise ConfigError("n and m must be positive")
            if self.n > self.m:
                raise ConfigError("n:m sparsity needs n <= m")
            if SA_COLS % self.m:
                raise ConfigError(
                    f"m must divide the SA tile width {SA_COLS}"
                )

    @property
    def is_dense(self) -> bool:
        """Whether this spec degenerates to the uncompressed schedule."""
        if self.scheme == "dense":
            return True
        if self.scheme == "circulant":
            return self.block_size == 1
        return self.n == self.m

    @property
    def label(self) -> str:
        """Short human label (``dense``, ``circ8``, ``2:4``)."""
        if self.scheme == "dense":
            return "dense"
        if self.scheme == "circulant":
            return f"circ{self.block_size}"
        return f"{self.n}:{self.m}"

    @property
    def compression_ratio(self) -> float:
        """Dense / compressed weight-value count (index bytes excluded)."""
        if self.is_dense:
            return 1.0
        if self.scheme == "circulant":
            return float(self.block_size)
        return self.m / self.n

    def _check_depth(self, k: int) -> None:
        if k <= 0:
            raise ConfigError("weight depth k must be positive")
        if self.scheme == "circulant" and k % self.block_size:
            raise ConfigError(
                f"circulant block_size {self.block_size} must divide the "
                f"weight depth {k}"
            )
        if self.scheme == "nm_sparse" and k % self.m:
            raise ConfigError(
                f"sparsity group m={self.m} must divide the weight depth {k}"
            )

    def effective_depth(self, k: int) -> int:
        """SA active cycles of a compressed pass over depth ``k``.

        Circulant streaming regenerates every row (same MAC count);
        N:M sparsity skips the zero row-groups entirely.
        """
        self._check_depth(k)
        if self.scheme == "nm_sparse" and not self.is_dense:
            return k * self.n // self.m
        return k

    def pass_overhead_cycles(self, k: int) -> int:
        """Extra per-pass control cycles a compressed weight pass pays.

        Circulant: one row-generator seed load per block row
        (``k / block_size``).  N:M: one index-decode cycle per row
        group (``k / m``).  Dense (or ratio 1.0): zero.
        """
        self._check_depth(k)
        if self.is_dense:
            return 0
        if self.scheme == "circulant":
            return k // self.block_size
        return k // self.m

    def index_bits_per_group(self) -> int:
        """Metadata bits encoding the kept-row positions of one group."""
        if self.scheme != "nm_sparse" or self.is_dense:
            return 0
        return self.n * max(1, (self.m - 1).bit_length())

    def weight_tile_bytes(self, k: int, cols: int, weight_bits: int) -> int:
        """Off-chip bytes of one compressed ``k x cols`` weight tile.

        Circulant stores one defining column per block (``1/block_size``
        of the values); N:M stores the kept rows plus the per-group
        index metadata (shared across the tile's columns).
        """
        self._check_depth(k)
        if cols <= 0 or weight_bits <= 0:
            raise ConfigError("cols and weight_bits must be positive")
        if self.is_dense:
            return k * cols * weight_bits // 8
        if self.scheme == "circulant":
            return k * cols * weight_bits // (8 * self.block_size)
        values = (k * self.n // self.m) * cols * weight_bits
        index = (k // self.m) * self.index_bits_per_group()
        return -(-(values + index) // 8)

    def weight_bytes_ratio(self, k: int, cols: int, weight_bits: int) -> float:
        """Compressed / dense tile bytes (metadata included)."""
        dense = k * cols * weight_bits // 8
        return self.weight_tile_bytes(k, cols, weight_bits) / dense

    def with_updates(self, **changes: object) -> CompressionSpec:
        """Return a copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def circulant_spec(block_size: int = 8) -> CompressionSpec:
    """Block-circulant spec with the given block edge."""
    return CompressionSpec(scheme="circulant", block_size=block_size)


def nm_sparse_spec(n: int = 2, m: int = 4) -> CompressionSpec:
    """N:M structured-sparsity spec (default the common 2:4)."""
    return CompressionSpec(scheme="nm_sparse", n=n, m=m)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's traffic contract in a cluster run (:mod:`repro.cluster`).

    A tenant is an independent traffic source with its own arrival
    process, sequence-length range, latency SLO and fair-share weight.
    The cluster workload layer generates each tenant's request stream
    from its own seeded RNG and merges the streams time-sorted, so one
    :class:`ClusterConfig` pins the entire multi-tenant trace.

    Attributes:
        name: Tenant identifier (label value on every per-tenant metric).
        arrival: Arrival process: ``"poisson"`` (memoryless at
            ``rate_rps``), ``"diurnal"`` (inhomogeneous Poisson whose
            rate follows a sinusoid — the day/night traffic shape), or
            ``"mmpp"`` (2-state Markov-modulated Poisson process:
            calm/burst alternation, the classic bursty-traffic model).
        rate_rps: Mean arrival rate in requests/s (the long-run average
            for every arrival process).
        num_requests: Requests this tenant contributes to the run.
        min_len / max_len: Sequence-length bounds in tokens (uniform).
        slo_us: Latency SLO — a request completing within ``slo_us`` of
            its arrival attains the SLO; later completions (and every
            rejected/expired request) miss it.
        weight: Fair-share weight for deadline-aware admission; a
            tenant's share of admitted work is ``weight / sum(weights)``
            and overload shedding hits tenants above their share first.
        diurnal_period_us: Period of the diurnal sinusoid.
        diurnal_amplitude: Relative swing of the diurnal rate in
            ``[0, 1)``: the instantaneous rate is
            ``rate_rps * (1 + amplitude * sin(2 pi t / period))``.
        burst_multiplier: MMPP burst-state rate as a multiple of the
            calm-state rate (> 1).
        burst_fraction: Long-run fraction of time spent in the burst
            state, in ``(0, 1)``.
        burst_mean_us: Mean sojourn time of one burst episode.
        seed: Per-tenant RNG stream component; combined with the
            cluster seed so tenants draw independent streams.
    """

    name: str
    arrival: str = "poisson"
    rate_rps: float = 500.0
    num_requests: int = 100
    min_len: int = 8
    max_len: int = 64
    slo_us: float = 50_000.0
    weight: float = 1.0
    diurnal_period_us: float = 1_000_000.0
    diurnal_amplitude: float = 0.8
    burst_multiplier: float = 8.0
    burst_fraction: float = 0.15
    burst_mean_us: float = 50_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid tenant parameters."""
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.arrival not in ("poisson", "diurnal", "mmpp"):
            raise ConfigError(
                f"tenant {self.name}: arrival {self.arrival!r} is not "
                "'poisson', 'diurnal' or 'mmpp'"
            )
        if self.rate_rps <= 0:
            raise ConfigError(f"tenant {self.name}: rate_rps must be positive")
        if self.num_requests <= 0:
            raise ConfigError(
                f"tenant {self.name}: num_requests must be positive"
            )
        if not 0 < self.min_len <= self.max_len:
            raise ConfigError(
                f"tenant {self.name}: need 0 < min_len <= max_len, got "
                f"[{self.min_len}, {self.max_len}]"
            )
        if self.slo_us <= 0:
            raise ConfigError(f"tenant {self.name}: slo_us must be positive")
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name}: weight must be positive")
        if self.diurnal_period_us <= 0:
            raise ConfigError(
                f"tenant {self.name}: diurnal_period_us must be positive"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError(
                f"tenant {self.name}: diurnal_amplitude must lie in [0, 1)"
            )
        if self.burst_multiplier <= 1.0:
            raise ConfigError(
                f"tenant {self.name}: burst_multiplier must exceed 1"
            )
        if not 0.0 < self.burst_fraction < 1.0:
            raise ConfigError(
                f"tenant {self.name}: burst_fraction must lie in (0, 1)"
            )
        if self.burst_mean_us <= 0:
            raise ConfigError(
                f"tenant {self.name}: burst_mean_us must be positive"
            )

    def with_updates(self, **changes: object) -> TenantConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class PoolConfig:
    """One heterogeneous device pool in a cluster (:mod:`repro.cluster`).

    A pool is an independent worker group fronted by its own admission
    queue and dynamic batcher: either a pool of the paper's FPGA
    accelerators (priced by the cycle-accurate schedules, optionally
    through a :class:`MemoryConfig` weight-traffic model) or a pool of
    ``repro.gpu_model`` V100 devices (priced by the roofline kernel
    model).  The autoscaler may grow or drain ``"replicate"`` pools
    between ``min_devices`` and ``max_devices``.

    Attributes:
        name: Pool identifier (trace-track prefix and metric label).
        kind: ``"fpga"`` (cycle-model accelerator devices) or ``"gpu"``
            (:func:`repro.gpu_model.v100_batched` roofline devices).
        num_devices: Devices the pool starts with.
        min_devices / max_devices: Autoscaler bounds on the replica
            count; ``max_devices`` is also the pool's device budget for
            equal-budget policy comparisons.
        placement: ``"replicate"`` or ``"layer_shard"`` (FPGA only;
            layer-sharded pools are static — the pipeline shape cannot
            change at runtime).
        clock_mhz: FPGA accelerator clock (ignored for GPU pools).
        abft_protected: Whether the pool's FPGA accelerators carry ABFT
            checksums (prices the protection's cycle overhead into
            every batch; ignored for GPU pools).
        memory: Off-chip memory system of each FPGA device (``None`` =
            the free-reload accounting); heterogeneity between pools
            typically comes from this and from ``kind``.
        gpu_kernel_overhead_us: Per-kernel overhead of GPU-pool devices
            in microseconds (default: the batched/steady-state server
            setup; raise it toward the paper's 96.5 us to model the
            eager measurement stack).
        compression: Weight-compression spec the pool's model is served
            with (``None`` = dense weights); FPGA pools price
            compressed passes through :mod:`repro.compress`, GPU pools
            take no spec.
    """

    name: str
    kind: str = "fpga"
    num_devices: int = 1
    min_devices: int = 1
    max_devices: int = 4
    placement: str = "replicate"
    clock_mhz: float = 200.0
    abft_protected: bool = False
    memory: Optional[MemoryConfig] = None
    gpu_kernel_overhead_us: float = 5.0
    compression: Optional[CompressionSpec] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid pool parameters."""
        if not self.name:
            raise ConfigError("pool name must be non-empty")
        if self.kind not in ("fpga", "gpu"):
            raise ConfigError(
                f"pool {self.name}: kind {self.kind!r} is not 'fpga' or "
                "'gpu'"
            )
        if self.placement not in ("replicate", "layer_shard"):
            raise ConfigError(
                f"pool {self.name}: placement {self.placement!r} is not "
                "'replicate' or 'layer_shard'"
            )
        if self.kind == "gpu" and self.placement != "replicate":
            raise ConfigError(
                f"pool {self.name}: gpu pools only support 'replicate'"
            )
        if not 1 <= self.min_devices <= self.num_devices <= self.max_devices:
            raise ConfigError(
                f"pool {self.name}: need 1 <= min_devices <= num_devices "
                f"<= max_devices, got {self.min_devices} <= "
                f"{self.num_devices} <= {self.max_devices}"
            )
        if self.clock_mhz <= 0:
            raise ConfigError(f"pool {self.name}: clock_mhz must be positive")
        if self.gpu_kernel_overhead_us <= 0:
            raise ConfigError(
                f"pool {self.name}: gpu_kernel_overhead_us must be positive"
            )
        if self.memory is not None and not isinstance(self.memory, MemoryConfig):
            raise ConfigError(
                f"pool {self.name}: memory must be a MemoryConfig (or None)"
            )
        if self.kind == "gpu" and self.memory is not None:
            raise ConfigError(
                f"pool {self.name}: gpu pools take no MemoryConfig (the "
                "roofline model already prices HBM traffic)"
            )
        if self.compression is not None:
            if not isinstance(self.compression, CompressionSpec):
                raise ConfigError(
                    f"pool {self.name}: compression must be a "
                    "CompressionSpec (or None)"
                )
            if self.kind == "gpu":
                raise ConfigError(
                    f"pool {self.name}: gpu pools take no CompressionSpec "
                    "(the roofline model prices dense kernels only)"
                )

    def with_updates(self, **changes: object) -> PoolConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class AutoscalerConfig:
    """Threshold autoscaling policy over a cluster's replicate pools.

    The autoscaler wakes every ``interval_us``, reads each pool's
    telemetry signals (queue depth per device, windowed p99 latency,
    busy fraction, weight-cache hit rate) and adds or drains one
    replica at a time, subject to per-pool cooldowns and the
    ``[min_devices, max_devices]`` bounds of each
    :class:`PoolConfig`.  Draining is graceful: a draining device
    finishes its in-flight batch and only then retires, so scale-down
    never drops admitted requests.

    Attributes:
        enabled: Master switch; when False the cluster runs its pools
            at their configured ``num_devices`` throughout.
        interval_us: Evaluation period.
        scale_up_queue_depth: Add a replica when a pool's queued
            requests per active device exceed this.
        scale_up_p99_us: Add a replica when a pool's windowed p99
            latency exceeds this (``None`` disables the signal).
        scale_down_busy: Drain a replica when a pool's busy fraction
            over the last interval falls below this and its queue is
            empty.
        cooldown_up_us: Minimum time between scale-ups of one pool.
        cooldown_down_us: Minimum time between drains of one pool.
        p99_window_us: Width of the completed-latency window the p99
            signal is computed over.
        scale_up_burn_rate: Add a replica when the SLO monitor's worst
            short-window burn rate exceeds this (``None`` disables the
            signal).  Only active when a
            :class:`~repro.obs.slo.BurnRateMonitor` is passed to
            :func:`~repro.cluster.simulator.simulate_cluster` — the
            explicit alert→autoscaler opt-in.
    """

    enabled: bool = True
    interval_us: float = 20_000.0
    scale_up_queue_depth: float = 4.0
    scale_up_p99_us: Optional[float] = None
    scale_down_busy: float = 0.15
    cooldown_up_us: float = 40_000.0
    cooldown_down_us: float = 80_000.0
    p99_window_us: float = 200_000.0
    scale_up_burn_rate: Optional[float] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid autoscaler parameters."""
        if self.interval_us <= 0:
            raise ConfigError("interval_us must be positive")
        if self.scale_up_queue_depth <= 0:
            raise ConfigError("scale_up_queue_depth must be positive")
        if self.scale_up_p99_us is not None and self.scale_up_p99_us <= 0:
            raise ConfigError("scale_up_p99_us must be positive (or None)")
        if not 0.0 <= self.scale_down_busy < 1.0:
            raise ConfigError("scale_down_busy must lie in [0, 1)")
        if self.cooldown_up_us < 0 or self.cooldown_down_us < 0:
            raise ConfigError("cooldowns must be non-negative")
        if self.p99_window_us <= 0:
            raise ConfigError("p99_window_us must be positive")
        if (self.scale_up_burn_rate is not None
                and self.scale_up_burn_rate <= 0):
            raise ConfigError(
                "scale_up_burn_rate must be positive (or None)"
            )

    def with_updates(self, **changes: object) -> AutoscalerConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of one simulated cluster run (:mod:`repro.cluster`).

    A cluster is N heterogeneous :class:`PoolConfig` pools fronted by
    an SLO-aware router, an :class:`AutoscalerConfig` policy, and a
    multi-tenant workload built from :class:`TenantConfig` traffic
    contracts.  One config (plus the model preset) pins the entire
    run bit-for-bit.

    Attributes:
        pools: The device pools (at least one).
        tenants: The traffic sources (at least one).
        router_policy: How arrivals pick a pool: ``"round_robin"``,
            ``"least_queue"`` (fewest queued requests per active
            device), ``"ewma"`` (lowest exponentially weighted moving
            average of completed-request latency) or ``"slo"``
            (deadline-aware: minimize predicted completion among pools
            that can make the deadline, with weighted-fairness
            admission shedding under overload).
        autoscaler: The scaling policy (see :class:`AutoscalerConfig`).
        queue_capacity: Per-pool admission-queue bound.
        queue_timeout_us: Per-pool queueing timeout (``inf`` disables).
        max_batch_requests: Dynamic-batching request cap per pool batch.
        max_wait_us: Batch cut-off wait per pool.
        ewma_alpha: Smoothing factor of the router's latency EWMA.
        fairness_window_us: Width of the sliding window the router's
            weighted-fairness admission accounts tenant work over.
        seed: Master RNG seed; tenant streams combine it with their own
            ``seed`` field, so one value pins the whole workload.
    """

    pools: tuple[PoolConfig, ...] = ()
    tenants: tuple[TenantConfig, ...] = ()
    router_policy: str = "slo"
    autoscaler: AutoscalerConfig = dataclasses.field(
        default_factory=AutoscalerConfig
    )
    queue_capacity: int = 64
    queue_timeout_us: float = float("inf")
    max_batch_requests: int = 8
    max_wait_us: float = 500.0
    ewma_alpha: float = 0.2
    fairness_window_us: float = 250_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid cluster parameters."""
        if not self.pools:
            raise ConfigError("cluster needs at least one pool")
        if not self.tenants:
            raise ConfigError("cluster needs at least one tenant")
        pool_names = [p.name for p in self.pools]
        if len(set(pool_names)) != len(pool_names):
            raise ConfigError(f"duplicate pool names in {pool_names}")
        tenant_names = [t.name for t in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigError(f"duplicate tenant names in {tenant_names}")
        for pool in self.pools:
            if not isinstance(pool, PoolConfig):
                raise ConfigError("pools must be PoolConfig instances")
        for tenant in self.tenants:
            if not isinstance(tenant, TenantConfig):
                raise ConfigError("tenants must be TenantConfig instances")
        if self.router_policy not in (
            "round_robin", "least_queue", "ewma", "slo"
        ):
            raise ConfigError(
                f"router_policy {self.router_policy!r} is not one of "
                "'round_robin', 'least_queue', 'ewma', 'slo'"
            )
        if not isinstance(self.autoscaler, AutoscalerConfig):
            raise ConfigError("autoscaler must be an AutoscalerConfig")
        if self.queue_capacity <= 0:
            raise ConfigError("queue_capacity must be positive")
        if self.queue_timeout_us <= 0:
            raise ConfigError("queue_timeout_us must be positive")
        if self.max_batch_requests <= 0:
            raise ConfigError("max_batch_requests must be positive")
        if self.max_wait_us < 0:
            raise ConfigError("max_wait_us must be non-negative")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must lie in (0, 1]")
        if self.fairness_window_us <= 0:
            raise ConfigError("fairness_window_us must be positive")

    @property
    def device_budget(self) -> int:
        """Total ``max_devices`` across pools — the capacity budget."""
        return sum(p.max_devices for p in self.pools)

    def with_updates(self, **changes: object) -> ClusterConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ServingConfig:
    """Parameters of one simulated serving run (:mod:`repro.serving`).

    Attributes:
        arrival_rate_rps: Mean Poisson request arrival rate (requests/s).
        num_requests: Number of requests to generate for the run.
        length_dist: Sequence-length distribution of arriving requests:
            ``"fixed"`` (always ``max_len``) or ``"uniform"`` (integers
            in ``[min_len, max_len]``).
        min_len / max_len: Sequence-length bounds in tokens; ``max_len``
            may not exceed the accelerator's SA row count.
        queue_capacity: Admission-queue bound; arrivals beyond it are
            rejected immediately.
        queue_timeout_us: Maximum queueing time before a waiting request
            is dropped (``inf`` disables timeouts).
        max_batch_requests: Dynamic-batching cap on requests per batch
            (1 reproduces the paper's batch-1 operating point).
        max_wait_us: Batch cut-off: dispatch a partial batch once its
            oldest request has waited this long (0 = never hold back).
        num_devices: Simulated accelerator count in the worker pool.
        placement: ``"replicate"`` (every device holds the full model,
            paying per-block weight reloads) or ``"layer_shard"`` (layers
            pipelined across devices with resident weights).
        double_buffered_weights: Hide reloads behind the previous
            block's compute (second weight-memory bank), as in
            :class:`~repro.core.model_runner.AcceleratedStack`.
        batch_fault_rate: Per-batch probability that a soft error
            strikes the datapath during the run.  With ABFT on the
            accelerator (``AcceleratorConfig.abft_protected``) the
            fault is *detected* and the batch retried (up to
            ``max_retries`` times, then its requests fail); without
            ABFT it is *silent* and the batch's responses are counted
            as corrupted.
        device_failure_rate: Per-batch probability that the executing
            device dies (hard failure) at the end of the run.  The
            batch itself still completes; a ``"replicate"`` pool then
            keeps serving degraded on the survivors, while losing any
            stage of a ``"layer_shard"`` pipeline kills the pool and
            fails all still-queued requests.
        max_retries: Detected-fault retry budget per batch.
        seed: Workload RNG seed; fixing it makes the whole simulation
            deterministic (fault events draw from an independent
            stream spawned from the same seed).
        memory: Off-chip memory system (:class:`MemoryConfig`).  When
            set, ``"replicate"`` devices price weight reloads as
            miss-driven traffic through a per-device LRU weight cache
            over a shared DRAM channel, replacing the flat
            ``model_reload_cycles`` constant; ``None`` keeps the
            legacy flat-reload accounting.
        compression: Weight-compression spec the served model uses
            (``None`` = dense weights).  Batches are priced with the
            compressed MHA/FFN schedules and the smaller compressed
            weight footprint flows into the reload/cache traffic
            (:mod:`repro.compress`).
    """

    arrival_rate_rps: float = 2000.0
    num_requests: int = 200
    length_dist: str = "uniform"
    min_len: int = 8
    max_len: int = 64
    queue_capacity: int = 64
    queue_timeout_us: float = float("inf")
    max_batch_requests: int = 8
    max_wait_us: float = 500.0
    num_devices: int = 1
    placement: str = "replicate"
    double_buffered_weights: bool = False
    batch_fault_rate: float = 0.0
    device_failure_rate: float = 0.0
    max_retries: int = 1
    seed: int = 0
    memory: Optional[MemoryConfig] = None
    compression: Optional[CompressionSpec] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid serving parameters."""
        if self.arrival_rate_rps <= 0:
            raise ConfigError("arrival_rate_rps must be positive")
        if self.num_requests <= 0:
            raise ConfigError("num_requests must be positive")
        if self.length_dist not in ("fixed", "uniform"):
            raise ConfigError(
                f"length_dist {self.length_dist!r} is not 'fixed' or "
                "'uniform'"
            )
        if not 0 < self.min_len <= self.max_len:
            raise ConfigError(
                f"need 0 < min_len <= max_len, got [{self.min_len}, "
                f"{self.max_len}]"
            )
        if self.queue_capacity <= 0:
            raise ConfigError("queue_capacity must be positive")
        if self.queue_timeout_us <= 0:
            raise ConfigError("queue_timeout_us must be positive")
        if self.max_batch_requests <= 0:
            raise ConfigError("max_batch_requests must be positive")
        if self.max_wait_us < 0:
            raise ConfigError("max_wait_us must be non-negative")
        if self.num_devices <= 0:
            raise ConfigError("num_devices must be positive")
        if self.placement not in ("replicate", "layer_shard"):
            raise ConfigError(
                f"placement {self.placement!r} is not 'replicate' or "
                "'layer_shard'"
            )
        for name in ("batch_fault_rate", "device_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {rate}")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.memory is not None and not isinstance(self.memory, MemoryConfig):
            raise ConfigError("memory must be a MemoryConfig (or None)")
        if self.compression is not None and not isinstance(
                self.compression, CompressionSpec):
            raise ConfigError("compression must be a CompressionSpec (or None)")

    def with_updates(self, **changes: object) -> ServingConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class DecodeConfig:
    """Parameters of one mixed prefill/decode run (:mod:`repro.decode`).

    Attributes:
        arrival_rate_rps: Mean Poisson stream arrival rate (streams/s).
        num_streams: Number of generation streams for the run.
        prefill_len_min / prefill_len_max: Prompt-length bounds in
            tokens (uniform); prompts longer than the SA's rows run as
            fused row-tiled prefill.
        decode_tokens_min / decode_tokens_max: Tokens generated per
            stream after prefill (uniform).
        policy: Interleaving policy when prefills and decode steps
            compete for a device: ``"decode_priority"`` dispatches
            pending decode steps before any queued prefill (protects
            inter-token latency), ``"prefill_chunk"`` splits each
            prefill into its 64-row tiles and round-robins chunks with
            decode batches (protects time-to-first-token under load).
        max_decode_batch: Upper bound on decode streams stepped together
            in one dispatch (batch cost = slowest member's step +
            everyone's KV refetch).
        kv_capacity_bytes: On-chip KV budget per device; ``None`` uses
            the Table II BRAM default, ``0`` forces always-refetch.
        kv_page_tokens: Tokens per KV residency page (one SA pass).
        num_devices: Simulated accelerator count.
        queue_capacity: Pending-stream bound; arrivals beyond it are
            rejected.
        seed: RNG seed; fixing it makes the run fully deterministic.
        memory: Off-chip link pricing KV refetch (``None`` = free).
    """

    arrival_rate_rps: float = 200.0
    num_streams: int = 32
    prefill_len_min: int = 96
    prefill_len_max: int = 256
    decode_tokens_min: int = 8
    decode_tokens_max: int = 32
    policy: str = "decode_priority"
    max_decode_batch: int = 8
    kv_capacity_bytes: Optional[int] = None
    kv_page_tokens: int = 64
    num_devices: int = 1
    queue_capacity: int = 256
    seed: int = 0
    memory: Optional[MemoryConfig] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid decode parameters."""
        if self.arrival_rate_rps <= 0:
            raise ConfigError("arrival_rate_rps must be positive")
        if self.num_streams <= 0:
            raise ConfigError("num_streams must be positive")
        if not 0 < self.prefill_len_min <= self.prefill_len_max:
            raise ConfigError(
                f"need 0 < prefill_len_min <= prefill_len_max, got "
                f"[{self.prefill_len_min}, {self.prefill_len_max}]"
            )
        if not 0 < self.decode_tokens_min <= self.decode_tokens_max:
            raise ConfigError(
                f"need 0 < decode_tokens_min <= decode_tokens_max, got "
                f"[{self.decode_tokens_min}, {self.decode_tokens_max}]"
            )
        if self.policy not in ("decode_priority", "prefill_chunk"):
            raise ConfigError(
                f"policy {self.policy!r} is not 'decode_priority' or "
                "'prefill_chunk'"
            )
        if self.max_decode_batch <= 0:
            raise ConfigError("max_decode_batch must be positive")
        if self.kv_capacity_bytes is not None and self.kv_capacity_bytes < 0:
            raise ConfigError(
                "kv_capacity_bytes must be non-negative (or None)"
            )
        if self.kv_page_tokens <= 0:
            raise ConfigError("kv_page_tokens must be positive")
        if self.num_devices <= 0:
            raise ConfigError("num_devices must be positive")
        if self.queue_capacity <= 0:
            raise ConfigError("queue_capacity must be positive")
        if self.memory is not None and not isinstance(self.memory, MemoryConfig):
            raise ConfigError("memory must be a MemoryConfig (or None)")

    def with_updates(self, **changes: object) -> DecodeConfig:
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)
