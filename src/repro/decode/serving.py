"""Mixed prefill/decode serving over the fused and decode-step models.

:func:`simulate_decode` drives seeded generation streams — a long
prompt prefill followed by per-token decode — through a small device
pool, interleaving the two phases under one of two policies:

* ``"decode_priority"`` — pending decode steps always dispatch before
  any queued prefill, protecting inter-token latency at the cost of
  time-to-first-token under prefill bursts;
* ``"prefill_chunk"`` — each prefill is split into its 64-row tiles and
  chunks round-robin with decode batches, bounding how long a prompt
  can monopolize the array.

Costs come from the closed-form decode models (property-tested against
the event timelines): :func:`~repro.decode.cycle_model.prefill_layer_cycles`
per layer for prompts, :func:`~repro.decode.cycle_model.decode_step_breakdown`
plus the FFN per layer for steps, and
:class:`~repro.decode.kvcache.KVCacheModel` refetch cycles for K/V
pages that fell out of the BRAM budget.  Generation is modeled
decoder-only-style: prompt and generated tokens share one
self-attention context per layer, so a step at context ``t`` reads
``t`` cached K/V positions.  The run is exactly reproducible from its
:class:`~repro.config.DecodeConfig` and emits ``repro_decode_*``
telemetry plus Chrome-trace spans (``repro decode-sim``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..config import AcceleratorConfig, DecodeConfig, ModelConfig
from ..core.cycle_model import ffn_cycle_breakdown
from ..core.trace import TraceSpan, counter_events, write_span_trace
from ..errors import ServingError
from ..obs.spans import stream_trace
from .cycle_model import decode_step_breakdown, prefill_layer_cycles
from .kvcache import KVCacheModel

if TYPE_CHECKING:
    from ..obs.spans import TraceCollector
    from ..telemetry.registry import MetricsRegistry

__all__ = [
    "DecodeMetrics",
    "DecodeResult",
    "DecodeStream",
    "StreamRecord",
    "sample_decode_streams",
    "simulate_decode",
]


@dataclass(frozen=True)
class DecodeStream:
    """One generation stream: a prompt, then autoregressive tokens."""

    stream_id: int
    arrival_us: float
    prefill_len: int
    decode_tokens: int


@dataclass
class StreamRecord:
    """Final outcome of one stream.

    ``status`` is ``"completed"`` or ``"rejected"`` (pending-stream
    queue full on arrival).  ``first_token_us`` is when the prefill's
    last layer drained — the time-to-first-token reference point.
    """

    stream: DecodeStream
    status: str
    first_token_us: Optional[float] = None
    completed_us: Optional[float] = None

    @property
    def ttft_us(self) -> Optional[float]:
        if self.first_token_us is None:
            return None
        return self.first_token_us - self.stream.arrival_us


@dataclass(frozen=True)
class DecodeMetrics:
    """Summary of one mixed prefill/decode run.

    ``tokens_per_s`` counts every emitted token (the prefill's first
    plus each decode step's) over the makespan;
    ``mean_token_latency_us`` is the mean decode-step wall time
    including any wait for a device.
    """

    offered: int
    completed: int
    rejected: int
    decode_steps: int
    decode_batches: int
    prefill_chunks: int
    decoded_tokens: int
    tokens_per_s: float
    prefill_p50_us: float
    prefill_p99_us: float
    mean_token_latency_us: float
    kv_hit_rate: float
    kv_refetch_cycles: int
    makespan_us: float


@dataclass
class DecodeResult:
    """Everything one simulated mixed run produced."""

    decode: DecodeConfig
    metrics: DecodeMetrics
    records: list[StreamRecord]
    spans: list[TraceSpan] = field(default_factory=list)
    kv_samples: list[tuple] = field(default_factory=list)

    def write_trace(self, path: str) -> int:
        """Write spans + the KV hit-rate counter as Chrome JSON."""
        counters = []
        if self.kv_samples:
            counters.extend(counter_events(
                "kv_cache_hit_rate",
                sorted(self.kv_samples, key=lambda s: s[0]),
            ))
        return write_span_trace(
            self.spans, path, counters=counters,
            other_data={
                "completed": self.metrics.completed,
                "tokens_per_s": self.metrics.tokens_per_s,
                "kv_hit_rate": self.metrics.kv_hit_rate,
                "policy": self.decode.policy,
            },
        )


def sample_decode_streams(decode: DecodeConfig) -> list[DecodeStream]:
    """Seeded Poisson stream workload for :func:`simulate_decode`."""
    rng = np.random.default_rng(decode.seed)
    gap_us = 1e6 / decode.arrival_rate_rps
    streams = []
    now = 0.0
    for sid in range(decode.num_streams):
        now += float(rng.exponential(gap_us))
        streams.append(DecodeStream(
            stream_id=sid,
            arrival_us=now,
            prefill_len=int(rng.integers(
                decode.prefill_len_min, decode.prefill_len_max + 1
            )),
            decode_tokens=int(rng.integers(
                decode.decode_tokens_min, decode.decode_tokens_max + 1
            )),
        ))
    return streams


def _percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q))


class _CostModel:
    """Memoized prefill/step cycle costs for one (model, acc, mem)."""

    def __init__(
        self,
        model: ModelConfig,
        acc: AcceleratorConfig,
        decode: DecodeConfig,
    ) -> None:
        self.model = model
        self.acc = acc
        self.mem = decode.memory
        # Generation runs decoder-only-style through one stack; an
        # encoder-only preset (BERT) generates through its encoder
        # layers rather than refusing to run.
        self.num_layers = (
            model.num_decoder_layers or model.num_encoder_layers
        )
        self._prefill: dict[int, int] = {}
        self._step: dict[int, int] = {}

    def prefill_cycles(self, s: int) -> int:
        if s not in self._prefill:
            self._prefill[s] = self.num_layers * prefill_layer_cycles(
                self.model, self.acc, s, self.mem
            )
        return self._prefill[s]

    def step_cycles(self, context_len: int) -> int:
        """One layer-stack decode step at ``context_len`` (no refetch)."""
        if context_len not in self._step:
            layer = (
                decode_step_breakdown(
                    self.model, self.acc, context_len, self.mem
                ).total_cycles
                + ffn_cycle_breakdown(
                    self.model, self.acc, self.mem
                ).total_cycles
            )
            self._step[context_len] = self.num_layers * layer
        return self._step[context_len]


@dataclass
class _Active:
    """Mutable progress of one admitted stream."""

    stream: DecodeStream
    record: StreamRecord
    chunks_left: int          # prefill tiles still to run
    tokens_left: int
    context: int = 0          # K/V positions cached so far
    busy_until: float = 0.0   # serializes the stream across devices


def simulate_decode(
    model: ModelConfig,
    acc: AcceleratorConfig,
    decode: Optional[DecodeConfig] = None,
    streams: Optional[list[DecodeStream]] = None,
    registry: Optional["MetricsRegistry"] = None,
    tracer: Optional["TraceCollector"] = None,
) -> DecodeResult:
    """Simulate mixed prefill/decode serving (seeded, deterministic).

    Args:
        model / acc: Model and accelerator under test; prompt and step
            costs come from the decode cycle models.
        decode: Workload/policy parameters (default
            :class:`~repro.config.DecodeConfig`).
        streams: Explicit stream list; overrides the generated one.
        registry: Optional metrics registry; the run's
            ``repro_decode_*`` series are recorded for export.
        tracer: Optional :class:`~repro.obs.spans.TraceCollector`;
            every stream gets one span tree (waits, prefill chunks,
            decode steps) whose hops sum exactly to arrival →
            completion.  Strictly passive.
    """
    decode = DecodeConfig() if decode is None else decode
    workload = (
        list(streams) if streams is not None
        else sample_decode_streams(decode)
    )
    if not workload:
        raise ServingError("decode simulation needs at least one stream")
    cost = _CostModel(model, acc, decode)
    kv = KVCacheModel(
        model, acc,
        capacity_bytes=decode.kv_capacity_bytes,
        mem=decode.memory,
        page_tokens=decode.kv_page_tokens,
    )
    chunk_rows = acc.seq_len
    clock = acc.clock_mhz

    records: dict[int, StreamRecord] = {}
    spans: list[TraceSpan] = []
    kv_samples: list[tuple] = []
    # stream_id -> [(label, kind, start_us, end_us, attrs)], tracer-only
    trace_intervals: dict[int, list] = {}
    prefill_latencies: list[float] = []
    token_gaps: list[float] = []
    decode_steps = 0
    decode_batches = 0
    prefill_chunks = 0
    decoded_tokens = 0
    refetch_cycles_total = 0

    arrivals = sorted(workload, key=lambda s: s.arrival_us)
    next_arrival = 0
    device_free = [0.0] * decode.num_devices
    pending: list[_Active] = []       # prefill queue (FIFO)
    active: list[_Active] = []        # streams past prefill, mid-decode
    last_kind = "decode"              # prefill_chunk round-robin state

    def admit(now_us: float) -> None:
        nonlocal next_arrival
        while (next_arrival < len(arrivals)
               and arrivals[next_arrival].arrival_us <= now_us):
            stream = arrivals[next_arrival]
            next_arrival += 1
            record = StreamRecord(stream, "rejected")
            records[stream.stream_id] = record
            if len(pending) >= decode.queue_capacity:
                continue
            record.status = "queued"
            chunks = -(-stream.prefill_len // chunk_rows)
            pending.append(_Active(
                stream=stream, record=record,
                chunks_left=(
                    chunks if decode.policy == "prefill_chunk" else 1
                ),
                tokens_left=stream.decode_tokens,
                busy_until=stream.arrival_us,
            ))

    def sample_hit_rate(ts_us: float) -> None:
        if kv.lookups:
            kv_samples.append((ts_us, kv.hit_rate))

    def complete(item: _Active, end_us: float) -> None:
        item.record.status = "completed"
        item.record.completed_us = end_us
        kv.evict_stream(item.stream.stream_id)
        if item in active:
            active.remove(item)

    def finish_prefill(item: _Active, end_us: float) -> None:
        nonlocal decoded_tokens
        item.context = item.stream.prefill_len
        item.record.first_token_us = end_us
        prefill_latencies.append(end_us - item.stream.arrival_us)
        # The prefill's K/V pages land in the budget as they are
        # produced — residency, not lookups, so the hit rate counts
        # only decode-step reads.
        for layer in range(cost.num_layers):
            kv.populate(item.stream.stream_id, layer, item.context)
        decoded_tokens += 1          # the prefill emits the first token
        if item.tokens_left == 0:
            complete(item, end_us)

    def decode_candidates(now_us: float) -> list[_Active]:
        return [
            a for a in active
            if a.tokens_left > 0 and a.busy_until <= now_us
        ]

    def prefill_candidate(now_us: float) -> Optional[_Active]:
        for item in pending:
            if item.busy_until <= now_us:
                return item
        return None

    def run_decode_batch(
        device: int, now_us: float, batch: list[_Active]
    ) -> float:
        nonlocal decode_steps, decode_batches, decoded_tokens
        nonlocal refetch_cycles_total
        step_cycles = 0
        refetch = 0
        for item in batch:
            item.context += 1        # the new token's K/V row
            step_cycles = max(step_cycles, cost.step_cycles(item.context))
            for layer in range(cost.num_layers):
                lookup = kv.lookup(
                    item.stream.stream_id, layer, item.context
                )
                refetch += lookup.refetch_cycles
        total_cycles = step_cycles + refetch
        refetch_cycles_total += refetch
        end_us = now_us + total_cycles / clock
        if tracer is not None:
            for item in batch:
                trace_intervals.setdefault(
                    item.stream.stream_id, []
                ).append((
                    f"s{item.stream.stream_id}.decode.b{decode_batches}",
                    "decode_step", now_us, end_us,
                    {"device": device, "batch_streams": len(batch)},
                ))
        spans.append(TraceSpan(
            name=f"decode.batch{decode_batches}",
            track=f"device{device}",
            start_us=now_us, duration_us=total_cycles / clock,
            args={"streams": len(batch), "refetch_cycles": refetch},
        ))
        decode_batches += 1
        decode_steps += len(batch)
        for item in batch:
            item.busy_until = end_us
            item.tokens_left -= 1
            decoded_tokens += 1
            first_step = item.context == item.stream.prefill_len + 1
            gap_from = (
                item.record.first_token_us if first_step else now_us
            )
            token_gaps.append(end_us - gap_from)
            if item.tokens_left == 0:
                complete(item, end_us)
        sample_hit_rate(end_us)
        return end_us

    def run_prefill_chunk(
        device: int, now_us: float, item: _Active
    ) -> float:
        nonlocal prefill_chunks
        total_chunks = -(-item.stream.prefill_len // chunk_rows)
        if decode.policy == "prefill_chunk":
            chunk_cycles = cost.prefill_cycles(
                item.stream.prefill_len
            ) // total_chunks
            label = (
                f"prefill.s{item.stream.stream_id}."
                f"c{total_chunks - item.chunks_left}"
            )
        else:
            chunk_cycles = cost.prefill_cycles(item.stream.prefill_len)
            label = f"prefill.s{item.stream.stream_id}"
        end_us = now_us + chunk_cycles / clock
        if tracer is not None:
            trace_intervals.setdefault(
                item.stream.stream_id, []
            ).append((
                label,
                ("prefill_chunk" if decode.policy == "prefill_chunk"
                 else "prefill"),
                now_us, end_us, {"device": device},
            ))
        spans.append(TraceSpan(
            name=label,
            track=f"device{device}",
            start_us=now_us, duration_us=chunk_cycles / clock,
            args={"prefill_len": item.stream.prefill_len},
        ))
        prefill_chunks += 1
        item.chunks_left -= 1
        item.busy_until = end_us
        if item.chunks_left == 0:
            pending.remove(item)
            active.append(item)
            finish_prefill(item, end_us)
        return end_us

    def dispatch(device: int, now_us: float) -> Optional[float]:
        """Pick and run one unit of work; returns its end time."""
        nonlocal last_kind
        ready = decode_candidates(now_us)
        prefill = prefill_candidate(now_us)
        if decode.policy == "decode_priority":
            run_decode = bool(ready)
        else:
            # Round-robin: alternate kinds whenever both are pending.
            run_decode = bool(ready) and (
                prefill is None or last_kind != "decode"
            )
        if run_decode:
            last_kind = "decode"
            return run_decode_batch(
                device, now_us, ready[:decode.max_decode_batch]
            )
        if prefill is not None:
            last_kind = "prefill"
            return run_prefill_chunk(device, now_us, prefill)
        return None

    # Event loop: the earliest-free device repeatedly grabs work; when
    # nothing is runnable *now*, it advances to the next event time
    # (arrival, a stream freeing up, or another device finishing).
    while True:
        device = min(
            range(len(device_free)), key=device_free.__getitem__
        )
        now_us = device_free[device]
        admit(now_us)
        end_us = dispatch(device, now_us)
        if end_us is not None:
            device_free[device] = end_us
            continue
        horizon = []
        if next_arrival < len(arrivals):
            horizon.append(arrivals[next_arrival].arrival_us)
        horizon.extend(
            a.busy_until for a in pending + active
            if a.busy_until > now_us
        )
        horizon.extend(t for t in device_free if t > now_us)
        if not horizon:
            break
        device_free[device] = min(horizon)

    if any(r.status == "queued" for r in records.values()):
        raise ServingError("decode simulation ended with streams queued")

    offered = len(workload)
    completed = sum(r.status == "completed" for r in records.values())
    rejected = sum(r.status == "rejected" for r in records.values())
    first_arrival = arrivals[0].arrival_us
    last_completion = max(
        (r.completed_us for r in records.values()
         if r.completed_us is not None),
        default=first_arrival,
    )
    makespan_us = last_completion - first_arrival
    metrics = DecodeMetrics(
        offered=offered,
        completed=completed,
        rejected=rejected,
        decode_steps=decode_steps,
        decode_batches=decode_batches,
        prefill_chunks=prefill_chunks,
        decoded_tokens=decoded_tokens,
        tokens_per_s=(
            decoded_tokens / (makespan_us / 1e6) if makespan_us else 0.0
        ),
        prefill_p50_us=_percentile(prefill_latencies, 50),
        prefill_p99_us=_percentile(prefill_latencies, 99),
        mean_token_latency_us=(
            sum(token_gaps) / len(token_gaps) if token_gaps else 0.0
        ),
        kv_hit_rate=kv.hit_rate,
        kv_refetch_cycles=refetch_cycles_total,
        makespan_us=makespan_us,
    )
    if registry is not None:
        from ..telemetry.instrument import record_decode

        record_decode(
            registry,
            policy=decode.policy,
            metrics=metrics,
            prefill_latencies_us=prefill_latencies,
            token_gaps_us=token_gaps,
            kv_hits=kv.hits,
            kv_misses=kv.misses,
        )
    ordered = [records[s.stream_id] for s in arrivals]
    if tracer is not None:
        for record in ordered:
            sid = record.stream.stream_id
            tracer.add(stream_trace(
                stream_id=sid,
                status=record.status,
                arrival_us=record.stream.arrival_us,
                intervals=tuple(trace_intervals.get(sid, ())),
                attrs={
                    "prefill_len": record.stream.prefill_len,
                    "decode_tokens": record.stream.decode_tokens,
                },
            ))
    return DecodeResult(
        decode=decode,
        metrics=metrics,
        records=ordered,
        spans=spans,
        kv_samples=kv_samples,
    )
