"""Long-sequence and autoregressive-decode workloads (`repro.decode`).

The paper's accelerator is an encoder-style fixed-length design: the SA
processes exactly ``seq_len`` rows and the softmax module sees at most
one 64-column ``Q K^T`` drain per head.  This package opens the two
workload families that design cannot natively express:

* **Fused long-sequence prefill** — :func:`schedule_fused_mha` runs
  ``s >> seq_len`` attention as tiled ``Q K^T -> online softmax -> P V``
  passes (SystolicAttention-style streaming normalization, built on the
  running-max machinery of :class:`~repro.core.streaming.StreamingSoftmax`)
  without ever materializing the full ``s x s`` score matrix, priced on
  the event timeline *and* by the closed-form
  :func:`fused_mha_breakdown` with property-tested exact agreement.
* **Per-token decode** — :func:`schedule_decode_step` prices one
  KV-cached autoregressive step (single valid query row against cached
  K/V), with :class:`KVCacheModel` charging off-chip refetch through
  :mod:`repro.memsys` when evicted from the Table II BRAM budget.
* **Mixed prefill/decode serving** — :func:`simulate_decode` interleaves
  long-prefill streams with per-token decode under decode-priority or
  prefill-chunking policies, exporting ``repro_decode_*`` telemetry and
  Chrome-trace tracks (``repro decode-sim``).
"""

from .cycle_model import (
    decode_step_breakdown,
    decode_step_macs,
    fused_mha_breakdown,
    fused_mha_macs,
    prefill_layer_cycles,
)
from .fused import schedule_decode_step, schedule_fused_mha
from .kvcache import (
    KVCacheModel,
    KVLookup,
    default_kv_cache_bytes,
    kv_bytes_per_token,
)
from .serving import (
    DecodeMetrics,
    DecodeResult,
    DecodeStream,
    sample_decode_streams,
    simulate_decode,
)

__all__ = [
    "DecodeMetrics",
    "DecodeResult",
    "DecodeStream",
    "KVCacheModel",
    "KVLookup",
    "decode_step_breakdown",
    "decode_step_macs",
    "default_kv_cache_bytes",
    "fused_mha_breakdown",
    "fused_mha_macs",
    "kv_bytes_per_token",
    "prefill_layer_cycles",
    "sample_decode_streams",
    "schedule_decode_step",
    "schedule_fused_mha",
    "simulate_decode",
]
