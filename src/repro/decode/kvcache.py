"""KV-cache residency model, priced through :mod:`repro.memsys`.

Autoregressive decode re-reads every past token's K and V rows each
step.  On this accelerator those rows live in the same BRAM pool the
Table II budget sizes (:func:`default_kv_cache_bytes` reuses the
Weight-Memory estimate — the decode datapath repurposes the idle weight
banks, since cached K/V *are* the weights of the ``q K^T`` and ``p V``
passes).  What doesn't fit on chip is refetched over the off-chip link
at :meth:`~repro.config.MemoryConfig.transfer_cycles` prices.

Residency is tracked per 64-token *page* (one SA pass worth of K or V
rows) with the LRU machinery of
:class:`~repro.memsys.cache.WeightCache`, keyed
``s{stream}.l{layer}.{self|cross}.p{page}``.  A zero-capacity cache is
the always-refetch mode: every lookup misses in full and nothing is
retained — the upper bound a host-DRAM-resident KV cache would pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import AcceleratorConfig, MemoryConfig, ModelConfig
from ..errors import MemoryModelError
from ..memsys.cache import WeightCache, default_weight_cache_bytes

__all__ = [
    "KVCacheModel",
    "KVLookup",
    "default_kv_cache_bytes",
    "kv_bytes_per_token",
]

#: Tokens per residency page — one zero-padded SA pass worth of rows.
DEFAULT_PAGE_TOKENS = 64


def kv_bytes_per_token(model: ModelConfig, acc: AcceleratorConfig) -> int:
    """Bytes of one token's K and V rows across all heads (one layer)."""
    return 2 * model.d_model * acc.act_bits // 8


def default_kv_cache_bytes(
    model: ModelConfig, acc: AcceleratorConfig
) -> int:
    """KV capacity implied by the Table II BRAM budget (456 banks)."""
    return default_weight_cache_bytes(model, acc)


@dataclass(frozen=True)
class KVLookup:
    """Outcome of one decode step's K/V residency check.

    Attributes:
        pages: Pages the step touched (``ceil(context_len / 64)``).
        hits / misses: Page-granular outcome split
            (``hits + misses == pages`` always — the conservation law
            the telemetry tests pin).
        missed_bytes: Off-chip bytes behind the misses.
        refetch_cycles: Link cycles to re-read them (0 with unlimited
            memory — residency still tracked, refetch free).
    """

    pages: int
    hits: int
    misses: int
    missed_bytes: int
    refetch_cycles: int


class KVCacheModel:
    """Page-granular LRU residency of per-layer K/V in the BRAM budget.

    Args:
        model / acc: Shapes and word widths (page size in bytes).
        capacity_bytes: On-chip budget; ``None`` uses the Table II
            default, ``0`` selects always-refetch mode.
        mem: Off-chip link pricing misses; ``None``/unlimited makes
            refetch free while still tracking residency.
        page_tokens: Tokens per page (default one 64-row SA pass).
    """

    def __init__(
        self,
        model: ModelConfig,
        acc: AcceleratorConfig,
        capacity_bytes: Optional[int] = None,
        mem: Optional[MemoryConfig] = None,
        page_tokens: int = DEFAULT_PAGE_TOKENS,
    ) -> None:
        if page_tokens <= 0:
            raise MemoryModelError("page_tokens must be positive")
        if capacity_bytes is None:
            capacity_bytes = default_kv_cache_bytes(model, acc)
        if capacity_bytes < 0:
            raise MemoryModelError("capacity_bytes must be non-negative")
        self.model = model
        self.acc = acc
        self.mem = mem
        self.capacity_bytes = int(capacity_bytes)
        self.page_tokens = page_tokens
        self.page_bytes = page_tokens * kv_bytes_per_token(model, acc)
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        # WeightCache requires a positive capacity; zero-capacity mode
        # (always-refetch) never retains anything, so no LRU is needed.
        self._lru = (
            WeightCache(self.capacity_bytes)
            if self.capacity_bytes > 0 else None
        )

    @property
    def evictions(self) -> int:
        return self._lru.evictions if self._lru is not None else 0

    @property
    def used_bytes(self) -> int:
        return self._lru.used_bytes if self._lru is not None else 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def layer_set_bytes(self, context_len: int) -> int:
        """On-chip bytes of one layer's full K/V set at ``context_len``."""
        if context_len <= 0:
            raise MemoryModelError("context_len must be positive")
        pages = -(-context_len // self.page_tokens)
        return pages * self.page_bytes

    def _refetch_cycles(self, missed_bytes: int) -> int:
        if missed_bytes == 0 or self.mem is None or self.mem.is_unlimited:
            return 0
        return self.mem.transfer_cycles(missed_bytes, self.acc.clock_mhz)

    def lookup(
        self,
        stream: int,
        layer: int,
        context_len: int,
        kind: str = "self",
    ) -> KVLookup:
        """Touch every K/V page one decode step at ``context_len`` reads.

        Pages are touched oldest-first (the order the ``q K^T`` chunk
        passes consume them), so under pressure the LRU keeps the tail
        of the context — the pages the *next* step reads last.
        """
        if kind not in ("self", "cross"):
            raise MemoryModelError(
                f"kind {kind!r} is not 'self' or 'cross'"
            )
        if context_len <= 0:
            raise MemoryModelError("context_len must be positive")
        pages = -(-context_len // self.page_tokens)
        hits = 0
        if self._lru is not None:
            for page in range(pages):
                key = f"s{stream}.l{layer}.{kind}.p{page}"
                if self._lru.access(key, self.page_bytes):
                    hits += 1
        misses = pages - hits
        self.lookups += pages
        self.hits += hits
        self.misses += misses
        missed_bytes = misses * self.page_bytes
        return KVLookup(
            pages=pages,
            hits=hits,
            misses=misses,
            missed_bytes=missed_bytes,
            refetch_cycles=self._refetch_cycles(missed_bytes),
        )

    def populate(
        self, stream: int, layer: int, context_len: int, kind: str = "self"
    ) -> None:
        """Insert a prefill's K/V pages without counting lookups.

        Prefill *produces* the pages (writes), so residency is seeded
        but the hit/miss statistics — which describe decode-step
        *reads* — are left untouched.  No-op in zero-capacity mode.
        """
        if self._lru is None:
            return
        if context_len <= 0:
            raise MemoryModelError("context_len must be positive")
        pages = -(-context_len // self.page_tokens)
        saved = (self._lru.hits, self._lru.misses)
        for page in range(pages):
            self._lru.access(
                f"s{stream}.l{layer}.{kind}.p{page}", self.page_bytes
            )
        self._lru.hits, self._lru.misses = saved

    def evict_stream(self, stream: int) -> None:
        """Drop a finished stream's pages (frees capacity immediately)."""
        if self._lru is None:
            return
        prefix = f"s{stream}."
        stale = [key for key in self._lru if key.startswith(prefix)]
        for key in stale:
            self._lru.remove(key)
