"""Closed-form cycle model for the fused and decode-step schedules.

Mirrors the :mod:`repro.core.cycle_model` split: pass-count algebra for
the active/issue/skew/ABFT components, plus a scalar walk over the pass
sequence for the two *coupled* idle terms — softmax-tail waits and
prefetch stalls — which in the fused pipeline depend on each other and
on the running position of the softmax module (the same reason the base
model's ``_mha_memsys_stalls`` is a per-head recursion rather than a
product).  The property suite holds every breakdown to EXACT agreement
with its event-timeline twin in :mod:`repro.decode.fused`; the
conservation identity

    total = active + issue + skew + abft + softmax_stall
            + memsys_stall + layernorm

is the fused analogue of the SCH004 lint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import AcceleratorConfig, MemoryConfig, ModelConfig
from ..core.cycle_model import (
    CycleBreakdown,
    _abft_exposure,
    _layernorm_tail,
    _skew_and_drain,
    ffn_cycle_breakdown,
    mha_tile_bytes,
    pass_busy_cycles,
)
from ..errors import ScheduleError

__all__ = [
    "decode_step_breakdown",
    "decode_step_macs",
    "fused_mha_breakdown",
    "fused_mha_macs",
    "mha_tile_bytes",
    "prefill_layer_cycles",
]


def fused_mha_macs(model: ModelConfig, s: int) -> int:
    """Useful MACs of one fused MHA ResBlock at sequence length ``s``.

    Tiling never adds or removes arithmetic, so this is exactly
    :meth:`~repro.config.ModelConfig.mha_macs` — kept as a named entry
    point so decode callers don't encode that identity themselves.
    """
    return model.mha_macs(s)


def decode_step_macs(
    model: ModelConfig, context_len: int, new_kv: bool = True
) -> int:
    """Useful MACs of one MHA ResBlock for a single decode token.

    One valid query row: the new token's Q (and, for self-attention,
    K/V) projections, a 1 x ``t`` score row against the cached K, a
    1 x ``d_k`` reduction against the cached V, and the output
    projection.  The ``s^2`` attention terms of the prefill count
    collapse to ``t`` — the arithmetic the KV cache saves.
    """
    if context_len <= 0:
        raise ScheduleError(
            f"context_len must be positive, got {context_len}"
        )
    h, dm, dk = model.num_heads, model.d_model, model.head_dim
    proj = (3 if new_kv else 1) * h * dm * dk
    attn = h * (context_len * dk + context_len * dk)
    out = dm * dm
    return proj + attn + out


@dataclass
class _Walk:
    """Scalar emulation of ``_Timeline`` availability for stall terms.

    Tracks the SA free cycle, the softmax module's free cycle and the
    tile prefetcher's previous-pass-start anchor, accumulating the two
    idle components the count algebra cannot express: ``sm_stall``
    (SA gaps where a pass's ``not_before`` — a softmax or projection
    completion — lands after the array went idle) and ``mem_stall``
    (weight-tile fetches outlasting the pass they hide behind).
    """

    acc: AcceleratorConfig
    fetch_cycles: int
    double_buffered: bool
    free: int = 0
    sm_free: int = 0
    sm_stall: int = 0
    mem_stall: int = 0
    prev_weight_start: Optional[int] = None

    def weight_pass(self, k: int, brk: bool) -> None:
        """A weight-streaming pass whose 64-column tile is prefetched."""
        start = self.free
        if self.fetch_cycles > 0:
            if self.double_buffered:
                anchor = (
                    0 if self.prev_weight_start is None
                    else self.prev_weight_start
                )
                stall = max(0, anchor + self.fetch_cycles - start)
            else:
                stall = self.fetch_cycles
            start += stall
            self.mem_stall += stall
        self.prev_weight_start = start
        self.free = start + pass_busy_cycles(self.acc, k, True, brk)

    def plain_pass(self, k: int, brk: bool, not_before: int = 0) -> None:
        """A Data-Memory-only pass (no weight tile, no fetch)."""
        start = max(self.free, not_before)
        self.sm_stall += start - self.free
        self.free = start + pass_busy_cycles(self.acc, k, False, brk)

    def softmax(self, exposed: int) -> int:
        """One softmax drain; returns its end cycle (serialized module)."""
        end = max(self.free, self.sm_free) + exposed
        self.sm_free = end
        return end


def _make_walk(
    model: ModelConfig,
    acc: AcceleratorConfig,
    mem: Optional[MemoryConfig],
) -> _Walk:
    if mem is None or mem.is_unlimited:
        return _Walk(acc, fetch_cycles=0, double_buffered=True)
    return _Walk(
        acc,
        fetch_cycles=mem.transfer_cycles(
            mha_tile_bytes(model, acc), acc.clock_mhz
        ),
        double_buffered=mem.double_buffered_prefetch,
    )


def _fused_stall_walk(
    model: ModelConfig,
    acc: AcceleratorConfig,
    s: int,
    mem: Optional[MemoryConfig],
) -> tuple[int, int]:
    """(softmax stall, memsys stall) of one fused MHA ResBlock.

    Replays the fused pass order of
    :func:`repro.decode.fused.schedule_fused_mha` with the same
    break/conflict classification the count algebra uses, so the sum of
    per-pass busy cycles cancels against ``active + issue + skew +
    abft`` and only the idle gaps survive.
    """
    rows, cols = acc.seq_len, acc.sa_cols
    h, dm = model.num_heads, model.d_model
    num_tiles = -(-s // rows)
    num_chunks = -(-s // cols)
    sp = acc.single_ported_buffers
    exposed = s + acc.softmax_pipeline_depth
    walk = _make_walk(model, acc, mem)

    for i in range(h):
        for proj in range(3):            # Q, K, V weight blocks
            if proj == 2:
                # QKt tile 0 runs between the K and V projections,
                # overlapping tile 0's softmax with the V row tiles.
                for j in range(num_chunks):
                    walk.plain_pass(cols, brk=(j == 0) or sp and j > 0)
                sm_ends = [walk.softmax(exposed)]
            walk.weight_pass(dm, brk=(i == 0 and proj == 0))
            for _ in range(1, num_tiles):
                walk.plain_pass(dm, brk=sp)
        v_done = walk.free
        for tau in range(1, num_tiles):
            for j in range(num_chunks):
                brk = sp and (j > 0 or tau >= 2)
                walk.plain_pass(cols, brk=brk)
            sm_ends.append(walk.softmax(exposed))
            walk.plain_pass(
                s, brk=True, not_before=max(sm_ends[tau - 1], v_done)
            )
        walk.plain_pass(
            s, brk=True, not_before=max(sm_ends[num_tiles - 1], v_done)
        )
    for c in range(h):
        walk.weight_pass(dm, brk=(c == 0) or sp)
        for _ in range(1, num_tiles):
            walk.plain_pass(dm, brk=sp)
    return walk.sm_stall, walk.mem_stall


def fused_mha_breakdown(
    model: ModelConfig,
    acc: AcceleratorConfig,
    s: int,
    mem: Optional[MemoryConfig] = None,
) -> CycleBreakdown:
    """Analytic cycle count of one fused MHA ResBlock at length ``s``.

    Pass inventory with ``T = ceil(s / seq_len)`` query row tiles and
    ``C = ceil(s / 64)`` key chunks: per head ``3T`` projection row
    tiles (weight-stationary — only the first of each group streams its
    tile), ``T x C`` ``Q K^T`` chunks, ``T`` s-deep ``P V`` passes;
    then ``h x T`` output row tiles — ``hT(5 + C)`` passes, of which
    ``4h`` load weights, exactly as in the base model.  Breaks: each
    tile's ``P V`` (``hT``), tile 0's first ``Q K^T`` chunk per head
    (``h``), the first pass overall and the first G pass.  Single-ported
    conflicts: projection replays (``3h(T-1)``), extra ``Q K^T`` chunks
    (``hT(C-1)``), tile >= 2 first chunks re-streaming Temp1 after a
    ``P V`` (``h * max(0, T-2)`` — tile 1's follows the V projection on
    the other port), and the ``hT - 1`` G passes after the first.  At
    ``T = 1`` every count reduces to
    :func:`repro.core.cycle_model.mha_cycle_breakdown`'s.

    The ``s + pipeline_depth`` softmax tail of each tile is hidden by
    the V row tiles (tile 0) or the next tile's ``Q K^T`` chunks
    (software pipelining); what leaks — plus tiles serializing on the
    one softmax module — comes out of :func:`_fused_stall_walk` as
    ``softmax_stall_cycles``, coupled with the prefetch stalls.
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    if s <= 0:
        raise ScheduleError(f"s must be positive, got {s}")
    h, dm = model.num_heads, model.d_model
    num_tiles = -(-s // acc.seq_len)
    num_chunks = -(-s // acc.sa_cols)
    passes = h * num_tiles * (5 + num_chunks)
    weight_passes = 4 * h
    active = (
        h * num_tiles * (3 * dm + num_chunks * acc.sa_cols + s)
        + h * num_tiles * dm
    )
    issue = (passes * acc.pass_issue_cycles
             + weight_passes * acc.weight_load_cycles)
    if acc.pass_overlap:
        break_passes = h + h * num_tiles + 2
        if acc.single_ported_buffers:
            break_passes += (
                3 * h * (num_tiles - 1)
                + h * num_tiles * (num_chunks - 1)
                + h * max(0, num_tiles - 2)
                + (h * num_tiles - 1)
            )
    else:
        break_passes = passes
    skew = break_passes * _skew_and_drain(acc, acc.sa_cols)
    abft = _abft_exposure(acc, passes, break_passes)
    sm_stall, mem_stall = _fused_stall_walk(model, acc, s, mem)
    layernorm = _layernorm_tail(acc, dm)
    total = active + issue + skew + sm_stall + abft + mem_stall + layernorm
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        softmax_stall_cycles=sm_stall,
        abft_cycles=abft,
        memsys_stall_cycles=mem_stall,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=fused_mha_macs(model, s) // acc.num_pes,
    )


def _decode_stall_walk(
    model: ModelConfig,
    acc: AcceleratorConfig,
    context_len: int,
    mem: Optional[MemoryConfig],
    new_kv: bool,
) -> tuple[int, int]:
    """(softmax stall, memsys stall) of one decode-step MHA ResBlock."""
    cols = acc.sa_cols
    h, dm = model.num_heads, model.d_model
    num_chunks = -(-context_len // cols)
    sp = acc.single_ported_buffers
    exposed = context_len + acc.softmax_pipeline_depth
    walk = _make_walk(model, acc, mem)

    for i in range(h):
        walk.weight_pass(dm, brk=(i == 0))
        if new_kv:
            walk.weight_pass(dm, brk=False)
        for j in range(num_chunks):
            walk.plain_pass(cols, brk=(j == 0) or sp and j > 0)
        sm_end = walk.free + exposed
        if new_kv:
            walk.weight_pass(dm, brk=False)
        walk.plain_pass(context_len, brk=True, not_before=sm_end)
    for c in range(h):
        walk.weight_pass(dm, brk=(c == 0) or sp)
    return walk.sm_stall, walk.mem_stall


def decode_step_breakdown(
    model: ModelConfig,
    acc: AcceleratorConfig,
    context_len: int,
    mem: Optional[MemoryConfig] = None,
    new_kv: bool = True,
) -> CycleBreakdown:
    """Analytic cycle count of one decode-token MHA ResBlock.

    Same pass skeleton as the base MHA model with the roles of ``s``
    rewired: the score product is ``ceil(t/64)`` chunks against the
    *cached* K, the softmax row is ``t`` columns wide, and the ``P V``
    reduction is ``t`` deep — while every projection still costs its
    full ``d_model`` streaming cycles for one valid row.  With
    ``new_kv=False`` (cross-attention) the K/V projections drop out.
    ``ideal_cycles`` counts only the valid row's MACs, so utilization
    here *is* the padding-waste story ``repro profile`` reports.
    """
    if model.head_dim != acc.sa_cols:
        raise ScheduleError("model head dim must match SA columns")
    if context_len <= 0:
        raise ScheduleError(
            f"context_len must be positive, got {context_len}"
        )
    t = context_len
    h, dm = model.num_heads, model.d_model
    num_chunks = -(-t // acc.sa_cols)
    per_head = 2 + num_chunks + (2 if new_kv else 0)
    passes = h * per_head + h
    weight_passes = h * ((3 if new_kv else 1) + 1)
    active = (
        h * ((3 if new_kv else 1) * dm + num_chunks * acc.sa_cols + t)
        + h * dm
    )
    issue = (passes * acc.pass_issue_cycles
             + weight_passes * acc.weight_load_cycles)
    if acc.pass_overlap:
        break_passes = 2 * h + 2
        if acc.single_ported_buffers:
            break_passes += h * (num_chunks - 1) + (h - 1)
    else:
        break_passes = passes
    skew = break_passes * _skew_and_drain(acc, acc.sa_cols)
    abft = _abft_exposure(acc, passes, break_passes)
    sm_stall, mem_stall = _decode_stall_walk(
        model, acc, t, mem, new_kv
    )
    layernorm = _layernorm_tail(acc, dm)
    total = active + issue + skew + sm_stall + abft + mem_stall + layernorm
    return CycleBreakdown(
        active_cycles=active,
        issue_cycles=issue,
        skew_cycles=skew,
        softmax_stall_cycles=sm_stall,
        abft_cycles=abft,
        memsys_stall_cycles=mem_stall,
        layernorm_cycles=layernorm,
        total_cycles=total,
        ideal_cycles=decode_step_macs(model, t, new_kv) // acc.num_pes,
    )


def prefill_layer_cycles(
    model: ModelConfig,
    acc: AcceleratorConfig,
    s: int,
    mem: Optional[MemoryConfig] = None,
) -> int:
    """Cycles of one encoder layer's prefill at sequence length ``s``.

    Fused MHA plus the FFN run once per 64-row tile (the FFN is
    row-parallel, so tiling it is exact in arithmetic; re-streaming the
    W1/W2 tiles per row tile is the conservative simplification — a
    weight-stationary FFN would amortize them like the fused
    projections do).
    """
    num_tiles = -(-s // acc.seq_len)
    mha = fused_mha_breakdown(model, acc, s, mem).total_cycles
    ffn = ffn_cycle_breakdown(model, acc, mem).total_cycles
    return mha + num_tiles * ffn
